//! Dataset statistics — reproduces Table 2.
//!
//! The paper's Table 2 reports `(# of tuples, # of keys)` for the two
//! datasets. We report both the reference (paper) numbers and measured
//! statistics from a sampled run of our generators, so the benchmark
//! harness can print the table with a scaled sample column next to the
//! full-trace reference.

use crate::didi::{DidiConfig, DidiGenerator};
use crate::nasdaq::{NasdaqConfig, NasdaqGenerator};
use std::collections::HashSet;

/// One row of Table 2.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Tuples in the paper's full trace.
    pub paper_tuples: u64,
    /// Distinct keys in the paper's full trace.
    pub paper_keys: u64,
    /// Tuples sampled from our generator for this row.
    pub sampled_tuples: u64,
    /// Distinct keys observed in the sample.
    pub sampled_keys: u64,
}

/// Sample the Didi generator and produce its Table 2 row.
///
/// `sample` location records are generated; keys are driver ids.
pub fn didi_row(seed: u64, config: DidiConfig, sample: u64) -> DatasetRow {
    let mut g = DidiGenerator::new(seed, config);
    let mut keys = HashSet::new();
    for _ in 0..sample {
        keys.insert(g.next_location().driver_id);
    }
    DatasetRow {
        dataset: "Didi Orders",
        paper_tuples: crate::didi::scale::PAPER_TRAJECTORIES,
        paper_keys: crate::didi::scale::PAPER_DRIVERS,
        sampled_tuples: sample,
        sampled_keys: keys.len() as u64,
    }
}

/// Sample the NASDAQ generator and produce its Table 2 row.
///
/// Keys are stock symbols.
pub fn nasdaq_row(seed: u64, config: NasdaqConfig, sample: u64) -> DatasetRow {
    let mut g = NasdaqGenerator::new(seed, config);
    let mut keys = HashSet::new();
    for _ in 0..sample {
        keys.insert(g.next_record().symbol);
    }
    DatasetRow {
        dataset: "Nasdaq Stock",
        paper_tuples: crate::nasdaq::scale::PAPER_RECORDS,
        paper_keys: crate::nasdaq::scale::PAPER_SYMBOLS,
        sampled_tuples: sample,
        sampled_keys: keys.len() as u64,
    }
}

/// Both rows of Table 2 with a default sample size.
pub fn table2(seed: u64, sample: u64) -> Vec<DatasetRow> {
    vec![
        didi_row(seed, DidiConfig::default(), sample),
        nasdaq_row(seed, NasdaqConfig::default(), sample),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn didi_row_reference_values() {
        let row = didi_row(1, DidiConfig::default(), 10_000);
        assert_eq!(row.paper_tuples, 13_000_000_000);
        assert_eq!(row.paper_keys, 6_000_000);
        assert_eq!(row.sampled_tuples, 10_000);
        assert!(row.sampled_keys > 1_000, "keys={}", row.sampled_keys);
    }

    #[test]
    fn nasdaq_row_reference_values() {
        let row = nasdaq_row(1, NasdaqConfig::default(), 50_000);
        assert_eq!(row.paper_tuples, 274_000_000);
        assert_eq!(row.paper_keys, 6_649);
        // With Zipf skew the sample covers a good share of symbols but
        // never more than exist.
        assert!(row.sampled_keys <= 6_649);
        assert!(row.sampled_keys > 1_000);
    }

    #[test]
    fn table_has_both_rows() {
        let t = table2(7, 5_000);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].dataset, "Didi Orders");
        assert_eq!(t[1].dataset, "Nasdaq Stock");
    }

    #[test]
    fn sampling_is_deterministic() {
        assert_eq!(table2(3, 2_000), table2(3, 2_000));
    }
}
