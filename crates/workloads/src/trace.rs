//! Trace files: export generated workloads to CSV and replay them.
//!
//! The authors publish their evaluation inputs as a separate Dataset
//! artifact; this module is the equivalent for the synthetic generators —
//! write a reproducible trace once, replay it across experiments (or feed
//! an external tool), byte-identical on every platform.

use crate::didi::{DidiConfig, DidiGenerator, DriverLocation, OrderRequest};
use crate::nasdaq::{NasdaqConfig, NasdaqGenerator, Side, StockRecord};
use std::io::{self, BufRead, Write};

/// Errors from parsing a trace line.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line (1-based line number and reason).
    Parse {
        /// Line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Parse { line, reason } => {
                write!(f, "trace parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// CSV header of driver-location traces.
pub const LOCATION_HEADER: &str = "driver_id,lat,lng,ts";
/// CSV header of order-request traces.
pub const ORDER_HEADER: &str = "order_id,lat,lng,ts";
/// CSV header of stock-record traces.
pub const STOCK_HEADER: &str = "symbol,side,price,volume,ts,valid";

/// Write `count` driver locations from a seeded generator as CSV.
pub fn export_locations<W: Write>(
    out: &mut W,
    seed: u64,
    config: DidiConfig,
    count: u64,
) -> io::Result<()> {
    let mut g = DidiGenerator::new(seed, config);
    writeln!(out, "{LOCATION_HEADER}")?;
    for _ in 0..count {
        let l = g.next_location();
        writeln!(out, "{},{:.6},{:.6},{}", l.driver_id, l.lat, l.lng, l.ts)?;
    }
    Ok(())
}

/// Write `count` passenger requests from a seeded generator as CSV.
pub fn export_orders<W: Write>(
    out: &mut W,
    seed: u64,
    config: DidiConfig,
    count: u64,
) -> io::Result<()> {
    let mut g = DidiGenerator::new(seed, config);
    writeln!(out, "{ORDER_HEADER}")?;
    for _ in 0..count {
        let o = g.next_order();
        writeln!(out, "{},{:.6},{:.6},{}", o.order_id, o.lat, o.lng, o.ts)?;
    }
    Ok(())
}

/// Write `count` exchange records from a seeded generator as CSV.
pub fn export_stocks<W: Write>(
    out: &mut W,
    seed: u64,
    config: NasdaqConfig,
    count: u64,
) -> io::Result<()> {
    let mut g = NasdaqGenerator::new(seed, config);
    writeln!(out, "{STOCK_HEADER}")?;
    for _ in 0..count {
        let r = g.next_record();
        writeln!(
            out,
            "{},{},{:.4},{},{},{}",
            r.symbol,
            if r.side == Side::Buy { "B" } else { "S" },
            r.price,
            r.volume,
            r.ts,
            u8::from(r.valid)
        )?;
    }
    Ok(())
}

fn fields(line: &str, expect: usize, lineno: usize) -> Result<Vec<&str>, TraceError> {
    let parts: Vec<&str> = line.split(',').collect();
    if parts.len() != expect {
        return Err(TraceError::Parse {
            line: lineno,
            reason: format!("expected {expect} fields, found {}", parts.len()),
        });
    }
    Ok(parts)
}

fn parse<T: std::str::FromStr>(s: &str, what: &str, lineno: usize) -> Result<T, TraceError> {
    s.parse().map_err(|_| TraceError::Parse {
        line: lineno,
        reason: format!("bad {what}: {s:?}"),
    })
}

/// Read a driver-location trace.
pub fn import_locations<R: BufRead>(input: R) -> Result<Vec<DriverLocation>, TraceError> {
    let mut out = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line = line?;
        if i == 0 {
            if line.trim() != LOCATION_HEADER {
                return Err(TraceError::Parse {
                    line: 1,
                    reason: format!("bad header {line:?}"),
                });
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let f = fields(&line, 4, i + 1)?;
        out.push(DriverLocation {
            driver_id: parse(f[0], "driver_id", i + 1)?,
            lat: parse(f[1], "lat", i + 1)?,
            lng: parse(f[2], "lng", i + 1)?,
            ts: parse(f[3], "ts", i + 1)?,
        });
    }
    Ok(out)
}

/// Read an order-request trace.
pub fn import_orders<R: BufRead>(input: R) -> Result<Vec<OrderRequest>, TraceError> {
    let mut out = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line = line?;
        if i == 0 {
            if line.trim() != ORDER_HEADER {
                return Err(TraceError::Parse {
                    line: 1,
                    reason: format!("bad header {line:?}"),
                });
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let f = fields(&line, 4, i + 1)?;
        out.push(OrderRequest {
            order_id: parse(f[0], "order_id", i + 1)?,
            lat: parse(f[1], "lat", i + 1)?,
            lng: parse(f[2], "lng", i + 1)?,
            ts: parse(f[3], "ts", i + 1)?,
        });
    }
    Ok(out)
}

/// Read a stock-record trace.
pub fn import_stocks<R: BufRead>(input: R) -> Result<Vec<StockRecord>, TraceError> {
    let mut out = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line = line?;
        if i == 0 {
            if line.trim() != STOCK_HEADER {
                return Err(TraceError::Parse {
                    line: 1,
                    reason: format!("bad header {line:?}"),
                });
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let f = fields(&line, 6, i + 1)?;
        let side = match f[1] {
            "B" => Side::Buy,
            "S" => Side::Sell,
            other => {
                return Err(TraceError::Parse {
                    line: i + 1,
                    reason: format!("bad side {other:?}"),
                })
            }
        };
        let valid_raw: u8 = parse(f[5], "valid", i + 1)?;
        out.push(StockRecord {
            symbol: f[0].to_string(),
            side,
            price: parse(f[2], "price", i + 1)?,
            volume: parse(f[3], "volume", i + 1)?,
            ts: parse(f[4], "ts", i + 1)?,
            valid: valid_raw != 0,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn locations_roundtrip() {
        let mut buf = Vec::new();
        export_locations(&mut buf, 7, DidiConfig::default(), 200).unwrap();
        let records = import_locations(BufReader::new(&buf[..])).unwrap();
        assert_eq!(records.len(), 200);
        // Same seed reproduces the same stream (ts exact; coords to the
        // 1e-6 precision of the CSV).
        let mut g = DidiGenerator::new(7, DidiConfig::default());
        for r in &records {
            let expect = g.next_location();
            assert_eq!(r.driver_id, expect.driver_id);
            assert_eq!(r.ts, expect.ts);
            assert!((r.lat - expect.lat).abs() < 1e-5);
            assert!((r.lng - expect.lng).abs() < 1e-5);
        }
    }

    #[test]
    fn orders_roundtrip() {
        let mut buf = Vec::new();
        export_orders(&mut buf, 9, DidiConfig::default(), 50).unwrap();
        let records = import_orders(BufReader::new(&buf[..])).unwrap();
        assert_eq!(records.len(), 50);
        assert_eq!(records[0].order_id, 1);
    }

    #[test]
    fn stocks_roundtrip() {
        let mut buf = Vec::new();
        export_stocks(&mut buf, 3, NasdaqConfig::default(), 300).unwrap();
        let records = import_stocks(BufReader::new(&buf[..])).unwrap();
        assert_eq!(records.len(), 300);
        let mut g = NasdaqGenerator::new(3, NasdaqConfig::default());
        for r in &records {
            let expect = g.next_record();
            assert_eq!(r.symbol, expect.symbol);
            assert_eq!(r.side, expect.side);
            assert_eq!(r.volume, expect.volume);
            assert_eq!(r.valid, expect.valid);
            assert!((r.price - expect.price).abs() < 1e-3);
        }
    }

    #[test]
    fn bad_header_rejected() {
        let data = b"not,a,header\n1,2,3,4\n";
        let err = import_locations(BufReader::new(&data[..])).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn wrong_field_count_rejected() {
        let data = format!("{LOCATION_HEADER}\n1,2,3\n");
        let err = import_locations(BufReader::new(data.as_bytes())).unwrap_err();
        match err {
            TraceError::Parse { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("expected 4"));
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn bad_number_rejected() {
        let data = format!("{LOCATION_HEADER}\nxyz,39.9,116.3,5\n");
        let err = import_locations(BufReader::new(data.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("driver_id"));
    }

    #[test]
    fn bad_side_rejected() {
        let data = format!("{STOCK_HEADER}\nSYM0001,Q,10.0,5,1,1\n");
        let err = import_stocks(BufReader::new(data.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("bad side"));
    }

    #[test]
    fn blank_lines_skipped() {
        let data = format!("{ORDER_HEADER}\n1,39.9,116.3,5\n\n2,39.8,116.2,6\n");
        let records = import_orders(BufReader::new(data.as_bytes())).unwrap();
        assert_eq!(records.len(), 2);
    }
}
