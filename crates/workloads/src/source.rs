//! Rate-controlled stream sources: the Kafka stand-in.
//!
//! The paper feeds topologies from Kafka at controlled rates: Poisson at
//! the maximum sustainable rate for the steady-state experiments, and a
//! stepped profile (30k → 60k → 80k → 100k → 80k tuples/s at the 40/80/
//! 120/160 s marks) for the dynamic experiments of Figs 23–24.

use whale_sim::{SimDuration, SimRng, SimTime};

/// A time-varying target input rate.
#[derive(Clone, Debug)]
pub enum RatePlan {
    /// Constant rate (tuples/s), deterministic spacing.
    Fixed(f64),
    /// Poisson arrivals with a constant mean rate (tuples/s).
    Poisson(f64),
    /// Piecewise-constant Poisson rate: `(from_time, rate)` steps, sorted.
    Steps(Vec<(SimTime, f64)>),
}

impl RatePlan {
    /// The dynamic profile of the paper's Figs 23–24.
    pub fn paper_dynamic() -> RatePlan {
        RatePlan::Steps(vec![
            (SimTime::ZERO, 30_000.0),
            (SimTime::from_secs(40), 60_000.0),
            (SimTime::from_secs(80), 80_000.0),
            (SimTime::from_secs(120), 100_000.0),
            (SimTime::from_secs(160), 80_000.0),
        ])
    }

    /// Target rate at time `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        match self {
            RatePlan::Fixed(r) | RatePlan::Poisson(r) => *r,
            RatePlan::Steps(steps) => {
                let mut rate = 0.0;
                for &(from, r) in steps {
                    if t >= from {
                        rate = r;
                    } else {
                        break;
                    }
                }
                rate
            }
        }
    }
}

/// Generates arrival instants according to a [`RatePlan`].
#[derive(Clone, Debug)]
pub struct ArrivalProcess {
    plan: RatePlan,
    rng: SimRng,
    now: SimTime,
    emitted: u64,
}

impl Iterator for ArrivalProcess {
    type Item = SimTime;
    fn next(&mut self) -> Option<SimTime> {
        self.next_arrival()
    }
}

impl ArrivalProcess {
    /// Create with a seed.
    pub fn new(plan: RatePlan, seed: u64) -> Self {
        ArrivalProcess {
            plan,
            rng: SimRng::new(seed),
            now: SimTime::ZERO,
            emitted: 0,
        }
    }

    /// The plan driving this process.
    pub fn plan(&self) -> &RatePlan {
        &self.plan
    }

    /// Arrivals generated so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The next arrival instant, or `None` if the current rate is zero and
    /// constant (stream exhausted).
    pub fn next_arrival(&mut self) -> Option<SimTime> {
        let rate = self.plan.rate_at(self.now);
        let gap = match &self.plan {
            RatePlan::Fixed(r) => {
                if *r <= 0.0 {
                    return None;
                }
                SimDuration::from_secs_f64(1.0 / r)
            }
            RatePlan::Poisson(r) => {
                if *r <= 0.0 {
                    return None;
                }
                SimDuration::from_secs_f64(self.rng.exp(*r))
            }
            RatePlan::Steps(_) => {
                if rate <= 0.0 {
                    // Jump to the next step boundary, if any.
                    let next = self.next_boundary()?;
                    self.now = next;
                    return self.next_arrival();
                }
                SimDuration::from_secs_f64(self.rng.exp(rate))
            }
        };
        // Never stall: quantize sub-ns gaps up to 1 ns.
        let gap = gap.max(SimDuration::from_nanos(1));
        let candidate = self.now + gap;
        // If the gap crosses a rate-step boundary, resample from there so
        // the new rate takes effect promptly.
        if let Some(boundary) = self.next_boundary() {
            if candidate > boundary {
                self.now = boundary;
                return self.next_arrival();
            }
        }
        self.now = candidate;
        self.emitted += 1;
        Some(candidate)
    }

    fn next_boundary(&self) -> Option<SimTime> {
        match &self.plan {
            RatePlan::Steps(steps) => steps
                .iter()
                .map(|&(from, _)| from)
                .find(|&from| from > self.now),
            _ => None,
        }
    }

    /// Iterate arrivals up to `until` without collecting.
    pub fn iter_until(&mut self, until: SimTime) -> impl Iterator<Item = SimTime> + '_ {
        std::iter::from_fn(move || self.next_arrival()).take_while(move |&t| t <= until)
    }

    /// Generate all arrivals up to `until` (convenience for tests/benches).
    pub fn arrivals_until(&mut self, until: SimTime) -> Vec<SimTime> {
        let mut out = Vec::new();
        while let Some(t) = self.next_arrival() {
            if t > until {
                break;
            }
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_rate_spacing() {
        let mut p = ArrivalProcess::new(RatePlan::Fixed(1_000.0), 1);
        let a = p.next_arrival().unwrap();
        let b = p.next_arrival().unwrap();
        assert_eq!(b - a, SimDuration::from_millis(1));
    }

    #[test]
    fn poisson_rate_approximates_target() {
        let mut p = ArrivalProcess::new(RatePlan::Poisson(10_000.0), 2);
        let arrivals = p.arrivals_until(SimTime::from_secs(5));
        let rate = arrivals.len() as f64 / 5.0;
        assert!((rate - 10_000.0).abs() / 10_000.0 < 0.03, "rate={rate}");
    }

    #[test]
    fn paper_dynamic_steps() {
        let plan = RatePlan::paper_dynamic();
        assert_eq!(plan.rate_at(SimTime::from_secs(0)), 30_000.0);
        assert_eq!(plan.rate_at(SimTime::from_secs(39)), 30_000.0);
        assert_eq!(plan.rate_at(SimTime::from_secs(40)), 60_000.0);
        assert_eq!(plan.rate_at(SimTime::from_secs(119)), 80_000.0);
        assert_eq!(plan.rate_at(SimTime::from_secs(120)), 100_000.0);
        assert_eq!(plan.rate_at(SimTime::from_secs(200)), 80_000.0);
    }

    #[test]
    fn stepped_process_changes_rate() {
        let plan = RatePlan::Steps(vec![
            (SimTime::ZERO, 1_000.0),
            (SimTime::from_secs(1), 10_000.0),
        ]);
        let mut p = ArrivalProcess::new(plan, 3);
        let arrivals = p.arrivals_until(SimTime::from_secs(2));
        let first: usize = arrivals
            .iter()
            .filter(|&&t| t <= SimTime::from_secs(1))
            .count();
        let second = arrivals.len() - first;
        assert!((800..1_200).contains(&first), "first={first}");
        assert!((9_000..11_000).contains(&second), "second={second}");
    }

    #[test]
    fn zero_rate_fixed_ends_stream() {
        let mut p = ArrivalProcess::new(RatePlan::Fixed(0.0), 4);
        assert!(p.next_arrival().is_none());
    }

    #[test]
    fn steps_with_initial_zero_rate_skip_forward() {
        let plan = RatePlan::Steps(vec![(SimTime::ZERO, 0.0), (SimTime::from_secs(1), 1_000.0)]);
        let mut p = ArrivalProcess::new(plan, 5);
        let first = p.next_arrival().unwrap();
        assert!(first >= SimTime::from_secs(1));
    }

    #[test]
    fn deterministic_with_seed() {
        let plan = RatePlan::paper_dynamic();
        let mut a = ArrivalProcess::new(plan.clone(), 9);
        let mut b = ArrivalProcess::new(plan, 9);
        for _ in 0..1_000 {
            assert_eq!(a.next_arrival(), b.next_arrival());
        }
    }

    #[test]
    fn iterator_interface() {
        let mut p = ArrivalProcess::new(RatePlan::Fixed(1_000.0), 1);
        let first_three: Vec<SimTime> = p.by_ref().take(3).collect();
        assert_eq!(first_three.len(), 3);
        assert!(first_three[0] < first_three[2]);
        let more: Vec<SimTime> = p.iter_until(SimTime::from_millis(10)).collect();
        assert!(!more.is_empty());
        assert!(more.iter().all(|&t| t <= SimTime::from_millis(10)));
    }

    #[test]
    fn arrivals_monotone() {
        let mut p = ArrivalProcess::new(RatePlan::paper_dynamic(), 6);
        let arrivals = p.arrivals_until(SimTime::from_millis(100));
        for w in arrivals.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(p.emitted() as usize, arrivals.len() + 1); // +1 past horizon
    }
}
