//! Synthetic Didi-style ride-hailing workload.
//!
//! Stand-in for the proprietary GAIA dataset (13 B trajectory records,
//! 6 M drivers, 74 M passenger requests). The generator reproduces the
//! properties the experiments depend on — record schema, key cardinality,
//! hot-spot skew, and tuple sizes — from a seed, so every run sees the
//! same stream.

use whale_dsps::{Schema, Tuple, Value};
use whale_sim::{SimRng, Zipf};

/// GAIA-scale constants (scaled generators use a fraction of these).
pub mod scale {
    /// Distinct drivers in the full dataset.
    pub const PAPER_DRIVERS: u64 = 6_000_000;
    /// Trajectory records in the full dataset.
    pub const PAPER_TRAJECTORIES: u64 = 13_000_000_000;
    /// Passenger requests in the full dataset.
    pub const PAPER_ORDERS: u64 = 74_000_000;
}

/// A driver location update (the key-grouped stream).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DriverLocation {
    /// Driver key.
    pub driver_id: u64,
    /// Latitude in the city bounding box.
    pub lat: f64,
    /// Longitude in the city bounding box.
    pub lng: f64,
    /// Event timestamp (ms).
    pub ts: i64,
}

/// A passenger request (the all-grouped / broadcast stream).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct OrderRequest {
    /// Order key.
    pub order_id: u64,
    /// Pickup latitude.
    pub lat: f64,
    /// Pickup longitude.
    pub lng: f64,
    /// Event timestamp (ms).
    pub ts: i64,
}

/// Beijing-like bounding box used by the generator.
const LAT_MIN: f64 = 39.6;
const LAT_MAX: f64 = 40.2;
const LNG_MIN: f64 = 116.0;
const LNG_MAX: f64 = 116.8;
/// Hot-spot grid resolution per axis.
const GRID: u64 = 64;

/// Configuration of the generator.
#[derive(Clone, Copy, Debug)]
pub struct DidiConfig {
    /// Number of distinct drivers.
    pub drivers: u64,
    /// Zipf exponent of the spatial hot-spot distribution.
    pub hotspot_skew: f64,
    /// Milliseconds between consecutive records of the stream clock.
    pub tick_ms: i64,
}

impl Default for DidiConfig {
    fn default() -> Self {
        DidiConfig {
            drivers: 60_000, // 1% of the paper's cardinality: laptop scale
            hotspot_skew: 0.9,
            tick_ms: 1,
        }
    }
}

impl DidiConfig {
    /// Full paper-scale key cardinality (memory heavy; used by Table 2
    /// accounting, not by default benchmarks).
    pub fn paper_scale() -> Self {
        DidiConfig {
            drivers: scale::PAPER_DRIVERS,
            ..Default::default()
        }
    }
}

/// Deterministic generator of the two ride-hailing streams.
#[derive(Clone, Debug)]
pub struct DidiGenerator {
    config: DidiConfig,
    rng: SimRng,
    cells: Zipf,
    now_ms: i64,
    next_order_id: u64,
    locations_emitted: u64,
    orders_emitted: u64,
}

impl DidiGenerator {
    /// Create with a seed.
    pub fn new(seed: u64, config: DidiConfig) -> Self {
        let mut rng = SimRng::new(seed);
        let cells = Zipf::new(GRID * GRID, config.hotspot_skew);
        let _ = rng.next_u64();
        DidiGenerator {
            config,
            rng,
            cells,
            now_ms: 0,
            next_order_id: 0,
            locations_emitted: 0,
            orders_emitted: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> DidiConfig {
        self.config
    }

    fn point_in_hot_cell(&mut self) -> (f64, f64) {
        let cell = self.cells.sample(&mut self.rng);
        let cx = (cell % GRID) as f64;
        let cy = (cell / GRID) as f64;
        let jitter_x = self.rng.next_f64();
        let jitter_y = self.rng.next_f64();
        let lat = LAT_MIN + (LAT_MAX - LAT_MIN) * ((cy + jitter_y) / GRID as f64);
        let lng = LNG_MIN + (LNG_MAX - LNG_MIN) * ((cx + jitter_x) / GRID as f64);
        (lat, lng)
    }

    /// Next driver location record.
    pub fn next_location(&mut self) -> DriverLocation {
        self.now_ms += self.config.tick_ms;
        let (lat, lng) = self.point_in_hot_cell();
        let rec = DriverLocation {
            driver_id: self.rng.gen_range(self.config.drivers),
            lat,
            lng,
            ts: self.now_ms,
        };
        self.locations_emitted += 1;
        rec
    }

    /// Next passenger request record.
    pub fn next_order(&mut self) -> OrderRequest {
        self.now_ms += self.config.tick_ms;
        let (lat, lng) = self.point_in_hot_cell();
        let rec = OrderRequest {
            order_id: {
                self.next_order_id += 1;
                self.next_order_id
            },
            lat,
            lng,
            ts: self.now_ms,
        };
        self.orders_emitted += 1;
        rec
    }

    /// Location records produced so far.
    pub fn locations_emitted(&self) -> u64 {
        self.locations_emitted
    }

    /// Orders produced so far.
    pub fn orders_emitted(&self) -> u64 {
        self.orders_emitted
    }
}

/// Schema of the location stream.
pub fn location_schema() -> Schema {
    Schema::new(vec!["driver_id", "lat", "lng", "ts"])
}

/// Schema of the request stream.
pub fn order_schema() -> Schema {
    Schema::new(vec!["order_id", "lat", "lng", "ts"])
}

impl DriverLocation {
    /// Convert to a tuple (field order matches [`location_schema`]).
    pub fn to_tuple(&self, id: u64) -> Tuple {
        Tuple::with_id(
            id,
            vec![
                Value::I64(self.driver_id as i64),
                Value::F64(self.lat),
                Value::F64(self.lng),
                Value::I64(self.ts),
            ],
        )
    }
}

impl OrderRequest {
    /// Convert to a tuple (field order matches [`order_schema`]).
    pub fn to_tuple(&self, id: u64) -> Tuple {
        Tuple::with_id(
            id,
            vec![
                Value::I64(self.order_id as i64),
                Value::F64(self.lat),
                Value::F64(self.lng),
                Value::I64(self.ts),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = DidiGenerator::new(7, DidiConfig::default());
        let mut b = DidiGenerator::new(7, DidiConfig::default());
        for _ in 0..100 {
            assert_eq!(a.next_location(), b.next_location());
            assert_eq!(a.next_order(), b.next_order());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DidiGenerator::new(1, DidiConfig::default());
        let mut b = DidiGenerator::new(2, DidiConfig::default());
        let same = (0..50)
            .filter(|_| a.next_location() == b.next_location())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn coordinates_in_bounding_box() {
        let mut g = DidiGenerator::new(3, DidiConfig::default());
        for _ in 0..1_000 {
            let l = g.next_location();
            assert!((LAT_MIN..=LAT_MAX).contains(&l.lat));
            assert!((LNG_MIN..=LNG_MAX).contains(&l.lng));
        }
    }

    #[test]
    fn driver_ids_bounded_and_diverse() {
        let cfg = DidiConfig {
            drivers: 1_000,
            ..Default::default()
        };
        let mut g = DidiGenerator::new(4, cfg);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            let l = g.next_location();
            assert!(l.driver_id < 1_000);
            seen.insert(l.driver_id);
        }
        assert!(seen.len() > 900, "most drivers should appear");
    }

    #[test]
    fn order_ids_unique_and_monotone() {
        let mut g = DidiGenerator::new(5, DidiConfig::default());
        let ids: Vec<u64> = (0..100).map(|_| g.next_order().order_id).collect();
        for w in ids.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn timestamps_advance() {
        let mut g = DidiGenerator::new(6, DidiConfig::default());
        let a = g.next_location().ts;
        let b = g.next_order().ts;
        let c = g.next_location().ts;
        assert!(a < b && b < c);
    }

    #[test]
    fn hotspots_are_skewed() {
        let mut g = DidiGenerator::new(8, DidiConfig::default());
        // Bucket requests into the grid; the top cell must far exceed the
        // median cell.
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            let o = g.next_order();
            let cx = ((o.lng - LNG_MIN) / (LNG_MAX - LNG_MIN) * GRID as f64) as u64;
            let cy = ((o.lat - LAT_MIN) / (LAT_MAX - LAT_MIN) * GRID as f64) as u64;
            *counts
                .entry((cx.min(GRID - 1), cy.min(GRID - 1)))
                .or_insert(0u64) += 1;
        }
        let max = *counts.values().max().unwrap();
        let mean = 20_000.0 / counts.len() as f64;
        assert!(max as f64 > 10.0 * mean, "max={max} mean={mean}");
    }

    #[test]
    fn tuple_conversion_shapes() {
        let mut g = DidiGenerator::new(9, DidiConfig::default());
        let t = g.next_location().to_tuple(42);
        assert_eq!(t.id, 42);
        assert_eq!(t.arity(), location_schema().arity());
        let t = g.next_order().to_tuple(43);
        assert_eq!(t.arity(), order_schema().arity());
        // Evaluation tuples are ~40-60 B of payload.
        assert!(t.payload_bytes() > 30 && t.payload_bytes() < 100);
    }

    #[test]
    fn emission_counters() {
        let mut g = DidiGenerator::new(10, DidiConfig::default());
        for _ in 0..3 {
            g.next_location();
        }
        g.next_order();
        assert_eq!(g.locations_emitted(), 3);
        assert_eq!(g.orders_emitted(), 1);
    }
}
