//! Synthetic NASDAQ-style stock exchange workload.
//!
//! Stand-in for the authors' one-month trace: 274 M records over 6,649
//! stock symbols, each record `(symbol, side, price, timestamp)`. Symbol
//! popularity is Zipf-skewed (a few tickers dominate volume) and prices
//! follow a per-symbol log-normal baseline with small excursions, so the
//! buy/sell matching operator sees realistic match rates.

use whale_dsps::{Schema, Tuple, Value};
use whale_sim::{SimRng, Zipf};

/// Paper-trace constants.
pub mod scale {
    /// Records in the full trace.
    pub const PAPER_RECORDS: u64 = 274_000_000;
    /// Distinct stock symbols.
    pub const PAPER_SYMBOLS: u64 = 6_649;
}

/// Trade side.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Side {
    /// A buy order.
    Buy,
    /// A sell order.
    Sell,
}

impl Side {
    /// Encode for tuples: 0 = buy, 1 = sell.
    pub fn code(self) -> i64 {
        match self {
            Side::Buy => 0,
            Side::Sell => 1,
        }
    }

    /// Decode from a tuple field.
    pub fn from_code(c: i64) -> Option<Side> {
        match c {
            0 => Some(Side::Buy),
            1 => Some(Side::Sell),
            _ => None,
        }
    }
}

/// One exchange record.
#[derive(Clone, PartialEq, Debug)]
pub struct StockRecord {
    /// Ticker symbol (e.g. "SYM0042").
    pub symbol: String,
    /// Buy or sell.
    pub side: Side,
    /// Limit price.
    pub price: f64,
    /// Shares.
    pub volume: i64,
    /// Event timestamp (ms).
    pub ts: i64,
    /// True if the record complies with trading rules (the split operator
    /// filters out non-compliant ones).
    pub valid: bool,
}

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct NasdaqConfig {
    /// Distinct symbols.
    pub symbols: u64,
    /// Zipf exponent of symbol popularity.
    pub symbol_skew: f64,
    /// Fraction of records violating trading rules (filtered by split).
    pub invalid_rate: f64,
    /// Milliseconds between records.
    pub tick_ms: i64,
}

impl Default for NasdaqConfig {
    fn default() -> Self {
        NasdaqConfig {
            symbols: scale::PAPER_SYMBOLS,
            symbol_skew: 1.0,
            invalid_rate: 0.02,
            tick_ms: 1,
        }
    }
}

/// Deterministic exchange record generator.
#[derive(Clone, Debug)]
pub struct NasdaqGenerator {
    config: NasdaqConfig,
    rng: SimRng,
    symbols: Zipf,
    /// Per-symbol log-price baseline, lazily materialized.
    base_log_price: Vec<f64>,
    now_ms: i64,
    emitted: u64,
}

impl NasdaqGenerator {
    /// Create with a seed.
    pub fn new(seed: u64, config: NasdaqConfig) -> Self {
        let mut rng = SimRng::new(seed);
        let symbols = Zipf::new(config.symbols, config.symbol_skew);
        // Baselines: log-normal around $40 with wide spread across symbols.
        let mut price_rng = rng.fork(0xBEEF);
        let base_log_price = (0..config.symbols)
            .map(|_| price_rng.normal(3.7, 0.8))
            .collect();
        NasdaqGenerator {
            config,
            rng,
            symbols,
            base_log_price,
            now_ms: 0,
            emitted: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> NasdaqConfig {
        self.config
    }

    /// Next exchange record.
    pub fn next_record(&mut self) -> StockRecord {
        self.now_ms += self.config.tick_ms;
        let sym = self.symbols.sample(&mut self.rng);
        let side = if self.rng.gen_bool(0.5) {
            Side::Buy
        } else {
            Side::Sell
        };
        // Price = symbol baseline with ±1% excursion; buys bid slightly
        // above, sells ask slightly below, so matches occur regularly.
        let base = self.base_log_price[sym as usize].exp();
        let excursion = 1.0 + 0.01 * self.rng.std_normal();
        let tilt = match side {
            Side::Buy => 1.002,
            Side::Sell => 0.998,
        };
        let price = (base * excursion * tilt).max(0.01);
        let volume = 1 + self.rng.gen_range(1_000) as i64;
        let valid = !self.rng.gen_bool(self.config.invalid_rate);
        self.emitted += 1;
        StockRecord {
            symbol: format!("SYM{sym:04}"),
            side,
            price,
            volume,
            ts: self.now_ms,
            valid,
        }
    }

    /// Records produced so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

/// Schema of the exchange stream.
pub fn stock_schema() -> Schema {
    Schema::new(vec!["symbol", "side", "price", "volume", "ts", "valid"])
}

impl StockRecord {
    /// Convert to a tuple (field order matches [`stock_schema`]).
    pub fn to_tuple(&self, id: u64) -> Tuple {
        Tuple::with_id(
            id,
            vec![
                Value::str(self.symbol.as_str()),
                Value::I64(self.side.code()),
                Value::F64(self.price),
                Value::I64(self.volume),
                Value::I64(self.ts),
                Value::Bool(self.valid),
            ],
        )
    }

    /// Parse back from a tuple.
    pub fn from_tuple(t: &Tuple) -> Option<StockRecord> {
        Some(StockRecord {
            symbol: t.get(0)?.as_str()?.to_string(),
            side: Side::from_code(t.get(1)?.as_i64()?)?,
            price: t.get(2)?.as_f64()?,
            volume: t.get(3)?.as_i64()?,
            ts: t.get(4)?.as_i64()?,
            valid: t.get(5)?.as_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = NasdaqGenerator::new(1, NasdaqConfig::default());
        let mut b = NasdaqGenerator::new(1, NasdaqConfig::default());
        for _ in 0..200 {
            assert_eq!(a.next_record(), b.next_record());
        }
    }

    #[test]
    fn symbols_bounded_and_skewed() {
        let mut g = NasdaqGenerator::new(2, NasdaqConfig::default());
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            let r = g.next_record();
            assert!(r.symbol.starts_with("SYM"));
            *counts.entry(r.symbol).or_insert(0u64) += 1;
        }
        let max = *counts.values().max().unwrap();
        let mean = 20_000.0 / counts.len() as f64;
        assert!(
            max as f64 > 20.0 * mean,
            "Zipf head expected, max={max} mean={mean}"
        );
    }

    #[test]
    fn sides_roughly_balanced() {
        let mut g = NasdaqGenerator::new(3, NasdaqConfig::default());
        let buys = (0..10_000)
            .filter(|_| g.next_record().side == Side::Buy)
            .count();
        assert!((4_500..5_500).contains(&buys), "buys={buys}");
    }

    #[test]
    fn prices_positive_and_per_symbol_stable() {
        let mut g = NasdaqGenerator::new(4, NasdaqConfig::default());
        let mut by_symbol: std::collections::HashMap<String, Vec<f64>> = Default::default();
        for _ in 0..20_000 {
            let r = g.next_record();
            assert!(r.price > 0.0);
            by_symbol.entry(r.symbol).or_default().push(r.price);
        }
        // Within a symbol, prices stay within a few percent of each other.
        let (_, prices) = by_symbol.iter().max_by_key(|(_, v)| v.len()).unwrap();
        let min = prices.iter().cloned().fold(f64::MAX, f64::min);
        let max = prices.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 1.2, "min={min} max={max}");
    }

    #[test]
    fn buys_tilt_above_sells() {
        // Aggregate buy prices should exceed sell prices for a hot symbol,
        // producing regular matches.
        let mut g = NasdaqGenerator::new(5, NasdaqConfig::default());
        let mut buy_sum = 0.0;
        let mut buy_n = 0.0;
        let mut sell_sum = 0.0;
        let mut sell_n = 0.0;
        for _ in 0..50_000 {
            let r = g.next_record();
            if r.symbol == "SYM0000" {
                match r.side {
                    Side::Buy => {
                        buy_sum += r.price;
                        buy_n += 1.0;
                    }
                    Side::Sell => {
                        sell_sum += r.price;
                        sell_n += 1.0;
                    }
                }
            }
        }
        assert!(buy_n > 0.0 && sell_n > 0.0);
        assert!(buy_sum / buy_n > sell_sum / sell_n);
    }

    #[test]
    fn invalid_rate_honored() {
        let cfg = NasdaqConfig {
            invalid_rate: 0.2,
            ..Default::default()
        };
        let mut g = NasdaqGenerator::new(6, cfg);
        let invalid = (0..10_000).filter(|_| !g.next_record().valid).count();
        assert!((1_700..2_300).contains(&invalid), "invalid={invalid}");
    }

    #[test]
    fn tuple_roundtrip() {
        let mut g = NasdaqGenerator::new(7, NasdaqConfig::default());
        let r = g.next_record();
        let t = r.to_tuple(5);
        assert_eq!(t.arity(), stock_schema().arity());
        let back = StockRecord::from_tuple(&t).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn side_codes() {
        assert_eq!(Side::from_code(Side::Buy.code()), Some(Side::Buy));
        assert_eq!(Side::from_code(Side::Sell.code()), Some(Side::Sell));
        assert_eq!(Side::from_code(7), None);
    }
}
