//! # whale-workloads — synthetic datasets and rate-controlled sources
//!
//! Stand-ins for the paper's data infrastructure: a seeded Didi-GAIA-style
//! ride-hailing generator (driver locations + passenger requests with
//! Zipf-skewed hot spots), a NASDAQ-style exchange-record generator
//! (6,649 symbols, buy/sell with per-symbol price baselines), a Kafka-like
//! rate-controlled arrival process (fixed / Poisson / the stepped dynamic
//! profile of Figs 23–24), and the Table 2 statistics reproduction.

#![warn(missing_docs)]

pub mod didi;
pub mod nasdaq;
pub mod source;
pub mod stats;
pub mod trace;

pub use didi::{DidiConfig, DidiGenerator, DriverLocation, OrderRequest};
pub use nasdaq::{NasdaqConfig, NasdaqGenerator, Side, StockRecord};
pub use source::{ArrivalProcess, RatePlan};
pub use stats::{didi_row, nasdaq_row, table2, DatasetRow};
pub use trace::TraceError;
