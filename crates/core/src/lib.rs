//! # whale-core — the experiment engine
//!
//! Assembles the substrates into the five runnable systems of §5.1
//! (Storm, RDMA-based Storm, Whale-WOC, Whale-WOC-RDMA, full Whale) and
//! drives them through a cluster-scale discrete-event simulation that
//! measures everything the paper's figures report: throughput, processing
//! and multicast latency, CPU utilization and breakdowns, communication
//! time/traffic, queue dynamics, and dynamic-switching behaviour.

#![warn(missing_docs)]

pub mod engine;
pub mod modes;
pub mod sweep;

pub use engine::{run, AppProfile, Drive, EngineConfig, EngineReport};
pub use modes::SystemMode;
pub use sweep::{par_map, par_map_with, sweep_grid, SweepPoint};
