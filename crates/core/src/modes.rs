//! The experimental systems of §5.1 and their ablation chain.
//!
//! The paper evaluates five systems. All but plain Storm run on the RDMA
//! fabric; the chain isolates each technique's contribution:
//!
//! | Mode | fabric | messaging | verbs | multicast |
//! |---|---|---|---|---|
//! | `Storm` | TCP | instance-oriented | — | sequential |
//! | `RdmaStorm` | RDMA | instance-oriented | send/recv | sequential |
//! | `WhaleWoc` | RDMA | worker-oriented | send/recv | sequential |
//! | `WhaleWocRdma` | RDMA | worker-oriented | read + ring MR | sequential |
//! | `WhaleFull` | RDMA | worker-oriented | read + ring MR | non-blocking tree |

use whale_dsps::CommMode;
use whale_multicast::Structure;
use whale_net::VerbPolicy;
use whale_sim::Transport;

/// One of the five evaluated systems.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SystemMode {
    /// Apache Storm: TCP, instance-oriented, sequential sends.
    Storm,
    /// RDMA-based Storm (Yang et al.): RDMA send/recv, instance-oriented.
    RdmaStorm,
    /// Whale with worker-oriented communication only.
    WhaleWoc,
    /// Whale-WOC plus optimized RDMA primitives (one-sided read, ring MR).
    WhaleWocRdma,
    /// Full Whale: + self-adjusting non-blocking multicast.
    WhaleFull,
}

impl SystemMode {
    /// All modes, in ablation order.
    pub const ALL: [SystemMode; 5] = [
        SystemMode::Storm,
        SystemMode::RdmaStorm,
        SystemMode::WhaleWoc,
        SystemMode::WhaleWocRdma,
        SystemMode::WhaleFull,
    ];

    /// The network transport.
    pub fn transport(self) -> Transport {
        match self {
            SystemMode::Storm => Transport::Tcp,
            _ => Transport::Rdma,
        }
    }

    /// The communication mechanism.
    pub fn comm_mode(self) -> CommMode {
        match self {
            SystemMode::Storm | SystemMode::RdmaStorm => CommMode::InstanceOriented,
            _ => CommMode::WorkerOriented,
        }
    }

    /// The verb policy.
    pub fn verb_policy(self) -> VerbPolicy {
        match self {
            SystemMode::Storm => VerbPolicy::TwoSided, // ignored on TCP
            SystemMode::RdmaStorm | SystemMode::WhaleWoc => VerbPolicy::TwoSided,
            SystemMode::WhaleWocRdma | SystemMode::WhaleFull => VerbPolicy::DiffVerbs,
        }
    }

    /// The default multicast structure (`d_star` filled at runtime for the
    /// non-blocking tree).
    pub fn structure(self, d_star: u32) -> Structure {
        match self {
            SystemMode::WhaleFull => Structure::NonBlocking { d_star },
            _ => Structure::Sequential,
        }
    }

    /// Whether the self-adjusting controller runs.
    pub fn adaptive(self) -> bool {
        matches!(self, SystemMode::WhaleFull)
    }

    /// Display label used in report rows (matches the paper's names).
    pub fn label(self) -> &'static str {
        match self {
            SystemMode::Storm => "Storm",
            SystemMode::RdmaStorm => "RDMA-Storm",
            SystemMode::WhaleWoc => "Whale-WOC",
            SystemMode::WhaleWocRdma => "Whale-WOC-RDMA",
            SystemMode::WhaleFull => "Whale",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_sim::Verb;

    #[test]
    fn storm_is_tcp_everything_else_rdma() {
        assert_eq!(SystemMode::Storm.transport(), Transport::Tcp);
        for m in &SystemMode::ALL[1..] {
            assert_eq!(m.transport(), Transport::Rdma, "{m:?}");
        }
    }

    #[test]
    fn messaging_split() {
        assert_eq!(SystemMode::Storm.comm_mode(), CommMode::InstanceOriented);
        assert_eq!(
            SystemMode::RdmaStorm.comm_mode(),
            CommMode::InstanceOriented
        );
        assert_eq!(SystemMode::WhaleWoc.comm_mode(), CommMode::WorkerOriented);
        assert_eq!(SystemMode::WhaleFull.comm_mode(), CommMode::WorkerOriented);
    }

    #[test]
    fn verb_chain() {
        assert_eq!(
            SystemMode::WhaleWoc.verb_policy().data_verb(),
            Verb::SendRecv
        );
        assert_eq!(
            SystemMode::WhaleWocRdma.verb_policy().data_verb(),
            Verb::Read
        );
        assert_eq!(
            SystemMode::WhaleFull.verb_policy().control_verb(),
            Verb::SendRecv,
            "control messages stay two-sided under DiffVerbs"
        );
    }

    #[test]
    fn only_full_whale_is_adaptive() {
        for m in SystemMode::ALL {
            assert_eq!(m.adaptive(), m == SystemMode::WhaleFull, "{m:?}");
        }
    }

    #[test]
    fn structures() {
        assert_eq!(
            SystemMode::WhaleFull.structure(3),
            Structure::NonBlocking { d_star: 3 }
        );
        assert_eq!(SystemMode::Storm.structure(3), Structure::Sequential);
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<&str> =
            SystemMode::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), 5);
    }
}
