//! The cluster-scale experiment engine.
//!
//! A discrete-event simulation of the paper's measurement pipeline: a
//! source instance performing one-to-many partitioning to `p` matching
//! instances spread over the cluster, followed by an aggregation sink.
//! Every mode of §5.1 runs through this one world; the differences are
//! confined to what the source pays per tuple (serializations, verbs),
//! how messages fan out (per instance vs per worker), and which relay
//! structure forwards them (star, binomial, non-blocking tree with the
//! self-adjusting controller).
//!
//! Two drive modes:
//! - [`Drive::Saturate`]: the source is never idle — measures capacity
//!   (the paper feeds "the maximum stream rate the system can sustain").
//! - [`Drive::Rate`]: open-loop (Poisson/stepped) arrivals through the
//!   bounded transfer queue — measures queue dynamics, drops, and the
//!   dynamic switching behaviour of Figs 3 and 23–24.

use crate::modes::SystemMode;
use std::collections::HashMap;
use whale_dsps::{CommMode, LatencyTracker, MulticastTracker};
use whale_multicast::{
    plan_switch, AdjustController, ControllerConfig, Decision, MulticastTree, Node, Structure,
    WorkloadMonitor,
};
use whale_net::{ClusterSpec, MachineId, Nic, VerbPolicy};
use whale_sim::{
    BoundedQueue, CoreClock, CostModel, CpuAccount, CpuCategory, Engine, MetricsRegistry,
    PushOutcome, RateMeter, Scheduler, SimDuration, SimRng, SimTime, SimWorld, StopReason,
    TimeSeries,
};
use whale_workloads::{ArrivalProcess, RatePlan};

/// How tuples are fed to the source.
#[derive(Clone, Debug)]
pub enum Drive {
    /// Closed loop: the source always has the next tuple ready; processes
    /// exactly `tuples` of them. Measures capacity.
    Saturate {
        /// Number of tuples to push through.
        tuples: u64,
    },
    /// Open loop: arrivals follow `plan` until `horizon`, buffered in the
    /// bounded transfer queue (drops on overflow).
    Rate {
        /// The arrival rate plan.
        plan: RatePlan,
        /// Virtual-time horizon of the run.
        horizon: SimTime,
    },
}

/// Downstream application profile.
///
/// The matching work per broadcast tuple is `fixed + scan_total / p`: each
/// instance holds `1/p` of the state (drivers / order books), so more
/// parallelism means less probe work per instance — the reason Whale's
/// throughput *rises* with parallelism in Figs 13/15 while the upstream
/// bottleneck makes Storm's *fall*.
#[derive(Clone, Copy, Debug)]
pub struct AppProfile {
    /// Fixed per-tuple operator cost.
    pub fixed: SimDuration,
    /// Total probe cost across all instances (divided by parallelism).
    pub scan_total: SimDuration,
    /// Expected matching candidates emitted to the aggregator per tuple.
    pub candidates_per_tuple: f64,
    /// Aggregator cost per candidate.
    pub agg_cost: SimDuration,
}

impl Default for AppProfile {
    fn default() -> Self {
        AppProfile {
            fixed: SimDuration::from_micros(120),
            scan_total: SimDuration::from_millis(54),
            candidates_per_tuple: 8.0,
            agg_cost: SimDuration::from_micros(4),
        }
    }
}

impl AppProfile {
    /// A near-zero-cost downstream, for experiments that isolate the
    /// multicast/transport path (e.g. the RDMC blocking study, Fig 3).
    pub fn lightweight() -> Self {
        AppProfile {
            fixed: SimDuration::from_micros(5),
            scan_total: SimDuration::ZERO,
            candidates_per_tuple: 1.0,
            agg_cost: SimDuration::from_micros(1),
        }
    }
}

/// Full experiment configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Which system runs.
    pub mode: SystemMode,
    /// Override the multicast structure (Figs 17–22); `None` = mode default.
    pub structure: Option<Structure>,
    /// Override the verb policy (Figs 29–32); `None` = mode default.
    pub verbs: Option<VerbPolicy>,
    /// Parallelism of the matching operator.
    pub parallelism: u32,
    /// The physical cluster.
    pub cluster: ClusterSpec,
    /// Calibrated costs.
    pub cost: CostModel,
    /// Serialized data-item size (bytes).
    pub tuple_bytes: usize,
    /// Downstream application profile.
    pub app: AppProfile,
    /// Drive mode.
    pub drive: Drive,
    /// RNG seed.
    pub seed: u64,
    /// Monitoring interval Δt for the workload monitor.
    pub monitor_interval: SimDuration,
    /// Initial/fixed `d*` for non-blocking structures.
    pub initial_d_star: u32,
    /// Record time series (queue length, throughput, latency-over-time).
    pub record_series: bool,
    /// Closed-loop backpressure: maximum tuples in flight before the
    /// source pauses (Storm's `max.spout.pending`).
    pub inflight_window: usize,
    /// Use the baseline dynamic switch (Definition 3: act only at the
    /// waterline) instead of the proactive rules — the Theorem 3 ablation.
    pub baseline_switch: bool,
}

impl EngineConfig {
    /// A paper-testbed configuration for `mode` at `parallelism`,
    /// saturating with `tuples` tuples.
    pub fn paper(mode: SystemMode, parallelism: u32, tuples: u64) -> Self {
        EngineConfig {
            mode,
            structure: None,
            verbs: None,
            parallelism,
            cluster: ClusterSpec::paper_testbed(),
            cost: CostModel::default(),
            tuple_bytes: 150,
            app: AppProfile::default(),
            drive: Drive::Saturate { tuples },
            seed: 42,
            monitor_interval: SimDuration::from_millis(100),
            initial_d_star: 3,
            record_series: false,
            inflight_window: 8,
            baseline_switch: false,
        }
    }
}

/// Everything a run reports.
#[derive(Clone, Debug)]
pub struct EngineReport {
    /// Fully processed tuples.
    pub completed: u64,
    /// Tuples dropped at the transfer queue.
    pub dropped: u64,
    /// Completed tuples per second.
    pub throughput: f64,
    /// Mean end-to-end processing latency.
    pub mean_latency: SimDuration,
    /// 99th percentile processing latency.
    pub p99_latency: SimDuration,
    /// Mean multicast latency (source entry → last instance receipt).
    pub mean_multicast_latency: SimDuration,
    /// Source-instance CPU utilization over the run.
    pub source_cpu: f64,
    /// Mean downstream-instance CPU utilization.
    pub downstream_cpu: f64,
    /// Mean worker-dispatcher CPU utilization (receive + forward +
    /// deserialize + local dispatch) — the relay-side bottleneck gauge.
    pub dispatcher_cpu: f64,
    /// Aggregator CPU utilization.
    pub agg_cpu: f64,
    /// Source CPU share per category (serialization, packet processing, ...).
    pub source_breakdown: Vec<(CpuCategory, f64)>,
    /// Source-side communication time per tuple (serialization + sends).
    pub comm_time_per_tuple: SimDuration,
    /// Source-side serialization time per tuple.
    pub ser_time_per_tuple: SimDuration,
    /// Bytes the source transmitted per 10,000 generated tuples.
    pub traffic_per_10k: u64,
    /// Data-item serializations performed by the source.
    pub serializations: u64,
    /// Mean transfer-queue load factor (occupancy / capacity).
    pub mean_load_factor: f64,
    /// Queue length over time (if `record_series`).
    pub queue_series: TimeSeries,
    /// Completion throughput over time (1 s windows, if `record_series`).
    pub throughput_series: TimeSeries,
    /// Processing latency over time (if `record_series`).
    pub latency_series: TimeSeries,
    /// Dynamic switches performed: `(time, new d*, switch delay)`.
    pub switches: Vec<(SimTime, u32, SimDuration)>,
    /// Virtual duration of the run.
    pub elapsed: SimDuration,
    /// Unified observability snapshot: every per-stage counter, gauge,
    /// latency summary, and time series under dotted names
    /// (`engine.*`, `multicast.*`, `net.*`). Keys are sorted, so two
    /// same-seed runs render to byte-identical JSON.
    pub metrics: MetricsRegistry,
}

impl std::fmt::Display for EngineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "completed {} tuples in {} ({:.1} tuples/s), dropped {}",
            self.completed, self.elapsed, self.throughput, self.dropped
        )?;
        writeln!(
            f,
            "latency: mean {} / p99 {}; multicast {}",
            self.mean_latency, self.p99_latency, self.mean_multicast_latency
        )?;
        writeln!(
            f,
            "cpu: source {:.2}, downstream {:.2}, dispatchers {:.2}, aggregator {:.2}",
            self.source_cpu, self.downstream_cpu, self.dispatcher_cpu, self.agg_cpu
        )?;
        write!(
            f,
            "source: {} per tuple on communication ({} serializing), {} B / 10k tuples",
            self.comm_time_per_tuple, self.ser_time_per_tuple, self.traffic_per_10k
        )?;
        if !self.switches.is_empty() {
            write!(f, "; {} dynamic switches", self.switches.len())?;
        }
        Ok(())
    }
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Open-loop arrival at the source.
    Arrival,
    /// The source core is free: process the next queued tuple.
    SourceReady,
    /// Relay node `node` (tree destination index) received tuple `seq`.
    NodeRecv { node: u32, seq: u64 },
    /// Monitoring interval tick.
    MonitorTick,
    /// Dynamic switch finished; apply the pending tree.
    SwitchDone,
}

/// Per-tuple completion bookkeeping.
struct Inflight {
    /// Instances that have not yet finished their work item.
    pending_instances: u32,
    /// Latest end time seen across all work items (incl. aggregation).
    latest_end: SimTime,
}

struct World {
    cfg: EngineConfig,
    verb_policy: VerbPolicy,
    comm: CommMode,
    structure: Structure,
    /// Relay tree over destination nodes (remote workers or instances).
    tree: MulticastTree,
    pending_tree: Option<(MulticastTree, u32)>,
    relay_over_workers: bool,

    // Placement.
    /// instance -> worker (round-robin, worker 0 hosts the source).
    inst_worker: Vec<u32>,
    /// worker -> its matching instances.
    worker_insts: Vec<Vec<u32>>,

    // Clocks and accounts.
    source_core: CoreClock,
    source_cpu: CpuAccount,
    dispatcher_cores: Vec<CoreClock>,
    dispatcher_busy: Vec<SimDuration>,
    instance_cores: Vec<CoreClock>,
    instance_busy: Vec<SimDuration>,
    agg_core: CoreClock,
    agg_busy: SimDuration,
    nics: Vec<Nic>,

    // Drive state.
    queue: BoundedQueue<(u64, SimTime)>,
    arrivals: Option<ArrivalProcess>,
    remaining_saturate: u64,
    next_seq: u64,
    source_idle: bool,
    switching: bool,
    horizon: SimTime,

    // Adaptive control.
    monitor: WorkloadMonitor,
    controller: Option<AdjustController>,
    switches: Vec<(SimTime, u32, SimDuration)>,

    // Measurements.
    inflight: HashMap<u64, Inflight>,
    latency: LatencyTracker,
    multicast: MulticastTracker,
    completions: Vec<(SimTime, SimDuration)>,
    queue_series: TimeSeries,
    /// Per-monitor-tick snapshots of the progress counters (sourced,
    /// completed, dropped) — the run's health as a function of time, not
    /// just its final totals.
    sourced_series: TimeSeries,
    completed_series: TimeSeries,
    dropped_series: TimeSeries,
    load_sum: f64,
    load_samples: u64,
    source_tx_bytes: u64,
    serializations: u64,
    tuples_sourced: u64,
    dropped: u64,
    rng: SimRng,
}

impl World {
    fn new(cfg: EngineConfig) -> Self {
        let p = cfg.parallelism;
        let n_workers = cfg.cluster.machines();
        assert!(n_workers >= 1);
        // Round-robin instances over workers, like the even scheduler.
        let inst_worker: Vec<u32> = (0..p).map(|i| i % n_workers).collect();
        let mut worker_insts = vec![Vec::new(); n_workers as usize];
        for (i, &w) in inst_worker.iter().enumerate() {
            worker_insts[w as usize].push(i as u32);
        }

        let comm = cfg.mode.comm_mode();
        let relay_over_workers = comm == CommMode::WorkerOriented;
        let structure = cfg
            .structure
            .unwrap_or_else(|| cfg.mode.structure(cfg.initial_d_star));
        let n_relays = if relay_over_workers {
            n_workers - 1 // remote workers; worker 0 is dispatched locally
        } else {
            p
        };
        let tree = structure.build(n_relays);
        let verb_policy = cfg.verbs.unwrap_or_else(|| cfg.mode.verb_policy());
        let transport = cfg.mode.transport();
        let nics = (0..n_workers).map(|_| Nic::new(transport)).collect();

        let horizon = match &cfg.drive {
            Drive::Saturate { .. } => SimTime::MAX,
            Drive::Rate { horizon, .. } => *horizon,
        };
        let arrivals = match &cfg.drive {
            Drive::Saturate { .. } => None,
            Drive::Rate { plan, .. } => Some(ArrivalProcess::new(plan.clone(), cfg.seed ^ 0xA11)),
        };
        let remaining_saturate = match &cfg.drive {
            Drive::Saturate { tuples } => *tuples,
            Drive::Rate { .. } => 0,
        };

        let t_e_default = cfg.cost.t_e(verb_policy.data_verb()).as_secs_f64();
        let monitor = WorkloadMonitor::new(cfg.monitor_interval, 0.5, t_e_default);
        let controller = if cfg.mode.adaptive() && cfg.structure.is_none() {
            let q = cfg.cost.transfer_queue_capacity;
            let ctl_cfg = if cfg.baseline_switch {
                ControllerConfig::baseline(q, n_relays)
            } else {
                ControllerConfig::for_queue(q, n_relays)
            };
            Some(AdjustController::new(ctl_cfg, cfg.initial_d_star))
        } else {
            None
        };

        World {
            verb_policy,
            comm,
            structure,
            tree,
            pending_tree: None,
            relay_over_workers,
            inst_worker,
            worker_insts,
            source_core: CoreClock::new(),
            source_cpu: CpuAccount::new(),
            dispatcher_cores: (0..n_workers).map(|_| CoreClock::new()).collect(),
            dispatcher_busy: vec![SimDuration::ZERO; n_workers as usize],
            instance_cores: (0..p).map(|_| CoreClock::new()).collect(),
            instance_busy: vec![SimDuration::ZERO; p as usize],
            agg_core: CoreClock::new(),
            agg_busy: SimDuration::ZERO,
            nics,
            queue: BoundedQueue::new(cfg.cost.transfer_queue_capacity),
            arrivals,
            remaining_saturate,
            next_seq: 0,
            source_idle: true,
            switching: false,
            horizon,
            monitor,
            controller,
            switches: Vec::new(),
            inflight: HashMap::new(),
            latency: LatencyTracker::new(),
            multicast: MulticastTracker::new(),
            completions: Vec::new(),
            queue_series: TimeSeries::new(),
            sourced_series: TimeSeries::new(),
            completed_series: TimeSeries::new(),
            dropped_series: TimeSeries::new(),
            load_sum: 0.0,
            load_samples: 0,
            source_tx_bytes: 0,
            serializations: 0,
            tuples_sourced: 0,
            dropped: 0,
            rng: SimRng::new(cfg.seed),
            cfg,
        }
    }

    fn transport(&self) -> whale_sim::Transport {
        self.cfg.mode.transport()
    }

    /// Machine hosting a relay-tree destination node.
    fn relay_machine(&self, node: u32) -> u32 {
        if self.relay_over_workers {
            node + 1
        } else {
            self.inst_worker[node as usize]
        }
    }

    /// Wire size of one data message.
    fn message_bytes(&self, dst_worker: u32) -> usize {
        match self.comm {
            CommMode::InstanceOriented => 8 + self.cfg.tuple_bytes,
            CommMode::WorkerOriented => {
                8 + 4 * self.worker_insts[dst_worker as usize].len() + self.cfg.tuple_bytes
            }
        }
    }

    /// Per-instance matching cost for the current parallelism.
    fn app_cost(&self) -> SimDuration {
        self.cfg.app.fixed + self.cfg.app.scan_total / self.cfg.parallelism.max(1) as u64
    }

    /// Run one instance's work item starting no earlier than `ready`;
    /// returns its end time (including any candidate it sends to the
    /// aggregator).
    fn run_instance(&mut self, inst: u32, ready: SimTime, seq: u64) -> SimTime {
        let app = self.app_cost();
        let (_, mut end) = self.instance_cores[inst as usize].begin_work(ready, app);
        self.instance_busy[inst as usize] += app;
        // Candidate emission to the aggregator.
        let p_cand = (self.cfg.app.candidates_per_tuple / self.cfg.parallelism as f64).min(1.0);
        if self.rng.gen_bool(p_cand) {
            let send = self
                .cfg
                .cost
                .send_cpu(self.transport(), self.verb_policy.data_verb(), 32);
            let (_, send_end) = self.instance_cores[inst as usize].begin_work(end, send);
            self.instance_busy[inst as usize] += send;
            let machine = self.inst_worker[inst as usize];
            let (_, arrive) = self.nics[machine as usize].transmit(send_end, 40, 0, &self.cfg.cost);
            let (_, agg_end) = self.agg_core.begin_work(arrive, self.cfg.app.agg_cost);
            self.agg_busy += self.cfg.app.agg_cost;
            end = agg_end;
        }
        let _ = seq;
        end
    }

    /// Account one instance receipt + execution; finalize the tuple when
    /// it was the last.
    fn deliver_to_instance(
        &mut self,
        inst: u32,
        receipt: SimTime,
        seq: u64,
        sched: &mut Scheduler<Ev>,
    ) {
        self.multicast.received(seq, receipt);
        let end = self.run_instance(inst, receipt, seq);
        let Some(fl) = self.inflight.get_mut(&seq) else {
            return;
        };
        fl.latest_end = fl.latest_end.max(end);
        fl.pending_instances -= 1;
        if fl.pending_instances == 0 {
            let fl = self.inflight.remove(&seq).unwrap();
            if let Some(lat) = self.latency.completed(seq, fl.latest_end) {
                self.completions.push((fl.latest_end, lat));
            }
            // The window opened: wake the source when the completion
            // lands (clamped to now by the scheduler if already past).
            sched.at(fl.latest_end, Ev::SourceReady);
        }
    }

    /// The source processes one tuple: serialize, send to tree children,
    /// dispatch locally. Returns when the source core frees up.
    fn source_process(
        &mut self,
        seq: u64,
        enter: SimTime,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        let cost = self.cfg.cost.clone();
        let transport = self.transport();
        let data_verb = self.verb_policy.data_verb();
        let per_dest_ser = self.comm == CommMode::InstanceOriented
            && matches!(self.structure, Structure::Sequential);

        self.tuples_sourced += 1;
        self.latency.emitted(seq, enter);
        self.multicast.emitted(seq, enter, self.cfg.parallelism);
        self.inflight.insert(
            seq,
            Inflight {
                pending_instances: self.cfg.parallelism,
                latest_end: enter,
            },
        );

        let mut cursor = now;
        let mut ser_end = now;
        let mut busy = SimDuration::ZERO;
        // Single up-front serialization for worker-oriented and for
        // relay-based (RDMC-style) instance transfers.
        if !per_dest_ser {
            let ser = match self.comm {
                CommMode::WorkerOriented => {
                    cost.serialize_batch(self.cfg.tuple_bytes, self.cfg.parallelism as usize)
                }
                CommMode::InstanceOriented => cost.serialize(self.cfg.tuple_bytes),
            };
            let (_, end) = self.source_core.begin_work(cursor, ser);
            self.source_cpu.charge(CpuCategory::Serialization, ser);
            self.serializations += 1;
            cursor = end;
            ser_end = end;
            busy += ser;
        }

        // Sends to the tree children of the source.
        let children: Vec<Node> = self.tree.children(Node::Source).to_vec();
        let n_children = children.len().max(1) as u64;
        for child in children {
            let Node::Dest(node) = child else { continue };
            if per_dest_ser {
                let ser = cost.serialize(self.cfg.tuple_bytes);
                let (_, end) = self.source_core.begin_work(cursor, ser);
                self.source_cpu.charge(CpuCategory::Serialization, ser);
                self.serializations += 1;
                cursor = end;
                busy += ser;
            }
            let dst_machine = self.relay_machine(node);
            let bytes = self.message_bytes(dst_machine);
            let send = cost.send_cpu(transport, data_verb, bytes);
            let cat = match transport {
                whale_sim::Transport::Tcp => CpuCategory::PacketProcessing,
                whale_sim::Transport::Rdma => CpuCategory::WorkRequestPost,
            };
            let (_, end) = self.source_core.begin_work(cursor, send);
            self.source_cpu.charge(cat, send);
            cursor = end;
            busy += send;
            let local = dst_machine == 0;
            if local {
                sched.at(end, Ev::NodeRecv { node, seq });
            } else {
                let hops = self
                    .cfg
                    .cluster
                    .rack_hops(MachineId(0), MachineId(dst_machine));
                let (_, arrive) = self.nics[0].transmit(end, bytes, hops, &cost);
                self.source_tx_bytes += bytes as u64;
                sched.at(arrive, Ev::NodeRecv { node, seq });
            }
        }
        // The QueueMonitor's `t_e` is the measured per-destination emit
        // cost, so the fixed serialization work is amortized over the
        // fan-out — this is what the real monitor sees per hop.
        self.monitor.record_emit_time(SimDuration::from_nanos(
            (busy.as_nanos() / n_children).max(1),
        ));

        // Worker-oriented: the source's own worker dispatches locally once
        // the data item is serialized, in parallel with the source's
        // remote sends (the dispatcher is a different core).
        if self.relay_over_workers {
            self.local_dispatch(0, ser_end, seq, sched);
        }

        sched.at(cursor, Ev::SourceReady);
    }

    /// The dispatcher of `worker` deserializes once and hands the tuple to
    /// every local matching instance.
    fn local_dispatch(&mut self, worker: u32, ready: SimTime, seq: u64, sched: &mut Scheduler<Ev>) {
        let deser = self.cfg.cost.deserialize(self.cfg.tuple_bytes);
        let (_, mut cursor) = self.dispatcher_cores[worker as usize].begin_work(ready, deser);
        self.dispatcher_busy[worker as usize] += deser;
        let insts = self.worker_insts[worker as usize].clone();
        for inst in insts {
            let (_, end) =
                self.dispatcher_cores[worker as usize].begin_work(cursor, self.cfg.cost.dispatch);
            self.dispatcher_busy[worker as usize] += self.cfg.cost.dispatch;
            cursor = end;
            self.deliver_to_instance(inst, end, seq, sched);
        }
    }

    /// Handle receipt at a relay node: forward to tree children, then
    /// process/dispatch locally.
    fn node_recv(&mut self, node: u32, seq: u64, now: SimTime, sched: &mut Scheduler<Ev>) {
        let cost = self.cfg.cost.clone();
        let transport = self.transport();
        let data_verb = self.verb_policy.data_verb();
        let machine = self.relay_machine(node);
        let recv = cost.recv_cpu(transport, data_verb);

        if self.relay_over_workers {
            // Receive + forward on the worker's dispatcher core.
            let (_, mut cursor) = self.dispatcher_cores[machine as usize].begin_work(now, recv);
            self.dispatcher_busy[machine as usize] += recv;
            let children: Vec<Node> = self.tree.children(Node::Dest(node)).to_vec();
            for child in children {
                let Node::Dest(c) = child else { continue };
                let dst_machine = self.relay_machine(c);
                let bytes = self.message_bytes(dst_machine);
                let send = cost.send_cpu(transport, data_verb, bytes) + cost.ring_mr_op;
                let (_, end) = self.dispatcher_cores[machine as usize].begin_work(cursor, send);
                self.dispatcher_busy[machine as usize] += send;
                cursor = end;
                let hops = self
                    .cfg
                    .cluster
                    .rack_hops(MachineId(machine), MachineId(dst_machine));
                let (_, arrive) = self.nics[machine as usize].transmit(end, bytes, hops, &cost);
                sched.at(arrive, Ev::NodeRecv { node: c, seq });
            }
            self.local_dispatch(machine, cursor, seq, sched);
        } else {
            // Instance-relay: receive + deserialize + forward + own work,
            // all on the instance's core.
            let inst = node;
            let deser = cost.deserialize(self.cfg.tuple_bytes);
            let (_, mut cursor) = self.instance_cores[inst as usize].begin_work(now, recv + deser);
            self.instance_busy[inst as usize] += recv + deser;
            let children: Vec<Node> = self.tree.children(Node::Dest(node)).to_vec();
            for child in children {
                let Node::Dest(c) = child else { continue };
                let dst_machine = self.relay_machine(c);
                let bytes = self.message_bytes(dst_machine);
                let send = cost.send_cpu(transport, data_verb, bytes);
                let (_, end) = self.instance_cores[inst as usize].begin_work(cursor, send);
                self.instance_busy[inst as usize] += send;
                cursor = end;
                let same_machine = dst_machine == machine;
                if same_machine {
                    sched.at(end, Ev::NodeRecv { node: c, seq });
                } else {
                    let hops = self
                        .cfg
                        .cluster
                        .rack_hops(MachineId(machine), MachineId(dst_machine));
                    let (_, arrive) = self.nics[machine as usize].transmit(end, bytes, hops, &cost);
                    sched.at(arrive, Ev::NodeRecv { node: c, seq });
                }
            }
            self.deliver_to_instance(inst, cursor, seq, sched);
        }
    }

    fn try_start_source(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        if !self.source_idle || self.switching {
            return;
        }
        // Closed-loop backpressure (max.spout.pending).
        if self.inflight.len() >= self.cfg.inflight_window {
            return;
        }
        // Saturate drive: synthesize the next tuple on demand.
        if self.remaining_saturate > 0 {
            self.remaining_saturate -= 1;
            let seq = self.next_seq;
            self.next_seq += 1;
            self.source_idle = false;
            self.source_process(seq, now, now, sched);
            return;
        }
        if let Some((seq, enter)) = self.queue.pop() {
            self.source_idle = false;
            self.source_process(seq, enter, now, sched);
        }
    }

    fn on_monitor_tick(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        let report = self.monitor.sample(now, self.queue.len());
        if self.cfg.record_series {
            self.queue_series.push(now, self.queue.len() as f64);
            self.sourced_series.push(now, self.tuples_sourced as f64);
            self.completed_series
                .push(now, self.latency.completed_count() as f64);
            self.dropped_series.push(now, self.dropped as f64);
        }
        self.load_sum += self.queue.len() as f64 / self.queue.capacity() as f64;
        self.load_samples += 1;
        if let Some(controller) = &mut self.controller {
            if !self.switching {
                let decision = controller.decide(&report);
                let new_d = match decision {
                    Decision::Hold => None,
                    Decision::ScaleDown { d_star } | Decision::ScaleUp { d_star } => Some(d_star),
                };
                if let Some(d) = new_d {
                    let (new_tree, plan) = plan_switch(&self.tree, d);
                    // Control-plane traffic (§3.4/§4): the StatusMessage is
                    // multicast to every relay node and a ControlMessage
                    // goes to each participant, all via two-sided verbs
                    // (DiffVerbs keeps control on SEND/RECV). Charge the
                    // source CPU and count the bytes.
                    let control_verb = self.verb_policy.control_verb();
                    let n_relays = self.tree.n() as u64;
                    let n_control = plan.len() as u64 * 2; // to mover + new parent
                    let per_msg = self.cfg.cost.send_cpu(self.transport(), control_verb, 32);
                    let control_cpu = per_msg * (n_relays + n_control);
                    let (_, ctl_end) = self.source_core.begin_work(now, control_cpu);
                    self.source_cpu.charge(CpuCategory::Other, control_cpu);
                    self.source_tx_bytes += 32 * (n_relays + n_control);
                    // Switch delay: the control fan-out above, plus a
                    // round-trip for the ACKs and per-move reconnection.
                    let delay = ctl_end.since(now)
                        + SimDuration::from_micros(200)
                        + SimDuration::from_micros(20) * plan.len() as u64;
                    self.pending_tree = Some((new_tree, d));
                    self.switching = true;
                    self.switches.push((now, d, delay));
                    sched.after(delay, Ev::SwitchDone);
                }
            }
        }
        if now + self.cfg.monitor_interval <= self.horizon {
            sched.after(self.cfg.monitor_interval, Ev::MonitorTick);
        }
    }
}

impl SimWorld for World {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::Arrival => {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.monitor.record_arrivals(1);
                match self.queue.push((seq, now)) {
                    PushOutcome::Enqueued => {}
                    PushOutcome::Dropped => self.dropped += 1,
                }
                self.try_start_source(now, sched);
                if let Some(proc) = &mut self.arrivals {
                    if let Some(next) = proc.next_arrival() {
                        if next <= self.horizon {
                            sched.at(next, Ev::Arrival);
                        }
                    }
                }
            }
            Ev::SourceReady => {
                self.source_idle = true;
                self.try_start_source(now, sched);
            }
            Ev::NodeRecv { node, seq } => {
                self.node_recv(node, seq, now, sched);
            }
            Ev::MonitorTick => {
                self.on_monitor_tick(now, sched);
            }
            Ev::SwitchDone => {
                if let Some((tree, _d)) = self.pending_tree.take() {
                    self.tree = tree;
                }
                self.switching = false;
                self.try_start_source(now, sched);
            }
        }
    }
}

/// Run one experiment to completion and report.
pub fn run(cfg: EngineConfig) -> EngineReport {
    let record_series = cfg.record_series;
    let drive = cfg.drive.clone();
    let mut engine = Engine::new(World::new(cfg));

    match &drive {
        Drive::Saturate { .. } => {
            engine.scheduler().at(SimTime::ZERO, Ev::SourceReady);
            // Monitoring still ticks so t_e/λ statistics exist, but no
            // horizon bound: run until drained.
            let reason = engine.run_to_completion(2_000_000_000);
            assert_eq!(reason, StopReason::Drained, "saturate run must drain");
        }
        Drive::Rate { horizon, .. } => {
            let h = *horizon;
            {
                let sched = engine.scheduler();
                sched.at(SimTime::ZERO, Ev::Arrival);
                sched.at(SimTime::ZERO, Ev::MonitorTick);
            }
            engine.run_until(h + SimDuration::from_secs(2));
        }
    }

    let end = engine.now();
    let w = engine.world_mut();
    let elapsed = match &drive {
        Drive::Saturate { .. } => {
            // Makespan: from first tuple to last completion.
            w.completions
                .iter()
                .map(|&(t, _)| t)
                .max()
                .unwrap_or(end)
                .since(SimTime::ZERO)
        }
        Drive::Rate { horizon, .. } => horizon.since(SimTime::ZERO),
    };

    let completed = w.latency.completed_count();
    let throughput = if elapsed.is_zero() {
        0.0
    } else {
        completed as f64 / elapsed.as_secs_f64()
    };

    // Build ordered series from completion records.
    w.completions.sort_by_key(|&(t, _)| t);
    let mut tput_meter = RateMeter::new(SimDuration::from_secs(1));
    let mut latency_series = TimeSeries::new();
    for &(t, lat) in &w.completions {
        tput_meter.record(t, 1);
        if record_series {
            latency_series.push(t, lat.as_secs_f64() * 1e3);
        }
    }
    let throughput_series = if record_series {
        tput_meter.finish(end)
    } else {
        TimeSeries::new()
    };

    let source_busy = w.source_cpu.total_busy();
    let sourced = w.tuples_sourced.max(1);
    let ser_busy = w.source_cpu.busy_in(CpuCategory::Serialization);

    let mean_util = |busy: &[SimDuration]| -> f64 {
        if busy.is_empty() || elapsed.is_zero() {
            return 0.0;
        }
        busy.iter()
            .map(|b| (b.as_nanos() as f64 / elapsed.as_nanos() as f64).min(1.0))
            .sum::<f64>()
            / busy.len() as f64
    };
    let downstream_cpu = mean_util(&w.instance_busy);
    let dispatcher_cpu = mean_util(&w.dispatcher_busy);
    let agg_cpu = if elapsed.is_zero() {
        0.0
    } else {
        (w.agg_busy.as_nanos() as f64 / elapsed.as_nanos() as f64).min(1.0)
    };

    // The unified observability snapshot. Dotted names group by layer;
    // BTreeMap ordering in the registry makes the JSON rendering stable.
    let mut metrics = MetricsRegistry::new();
    metrics.set_counter("engine.completed", completed);
    metrics.set_counter("engine.dropped", w.dropped);
    metrics.set_counter("engine.sourced", w.tuples_sourced);
    metrics.set_counter("engine.serializations", w.serializations);
    metrics.set_counter("engine.traffic_per_10k_bytes", {
        (w.source_tx_bytes * 10_000)
            .checked_div(w.tuples_sourced)
            .unwrap_or(0)
    });
    metrics.set_gauge("engine.throughput", throughput);
    metrics.set_gauge("engine.elapsed_secs", elapsed.as_secs_f64());
    metrics.set_summary("engine.latency_ns", w.latency.histogram());
    metrics.set_summary("engine.multicast_latency_ns", w.multicast.histogram());
    metrics.set_gauge("engine.cpu.source", w.source_cpu.utilization(elapsed));
    metrics.set_gauge("engine.cpu.downstream", downstream_cpu);
    metrics.set_gauge("engine.cpu.dispatcher", dispatcher_cpu);
    metrics.set_gauge("engine.cpu.aggregator", agg_cpu);
    for &c in CpuCategory::ALL.iter() {
        let name = format!("engine.cpu.source_share.{:?}", c).to_lowercase();
        metrics.set_gauge(&name, w.source_cpu.share(c));
    }
    metrics.set_gauge(
        "engine.comm_secs_per_tuple",
        (source_busy / sourced).as_secs_f64(),
    );
    metrics.set_gauge(
        "engine.ser_secs_per_tuple",
        (ser_busy / sourced).as_secs_f64(),
    );
    metrics.set_gauge("engine.queue.capacity", w.queue.capacity() as f64);
    metrics.set_gauge(
        "engine.queue.mean_load_factor",
        if w.load_samples == 0 {
            0.0
        } else {
            w.load_sum / w.load_samples as f64
        },
    );
    if record_series {
        metrics.set_series("engine.queue.depth", &w.queue_series);
        metrics.set_series("engine.throughput_series", &throughput_series);
        metrics.set_series("engine.latency_ms_series", &latency_series);
        metrics.set_series("engine.sourced_series", &w.sourced_series);
        metrics.set_series("engine.completed_series", &w.completed_series);
        metrics.set_series("engine.dropped_series", &w.dropped_series);
    }
    metrics.set_counter("multicast.switches", w.switches.len() as u64);
    if let Some(&(_, d, delay)) = w.switches.last() {
        metrics.set_gauge("multicast.last_d_star", d as f64);
        metrics.set_gauge("multicast.last_t_switch_secs", delay.as_secs_f64());
    }
    w.monitor.export_metrics(&mut metrics, "multicast.monitor");
    if let Some(ctl) = &w.controller {
        ctl.export_metrics(&mut metrics, "multicast.controller");
    }
    let (nic_msgs, nic_bytes) = w
        .nics
        .iter()
        .fold((0, 0), |(m, b), n| (m + n.sent_msgs(), b + n.sent_bytes()));
    metrics.set_counter("net.nic.total.sent_msgs", nic_msgs);
    metrics.set_counter("net.nic.total.sent_bytes", nic_bytes);
    if let Some(src_nic) = w.nics.first() {
        src_nic.export_metrics(&mut metrics, "net.nic.source", elapsed);
    }

    EngineReport {
        completed,
        dropped: w.dropped,
        throughput,
        mean_latency: w.latency.mean(),
        p99_latency: SimDuration::from_nanos(w.latency.histogram().percentile(99.0) as u64),
        mean_multicast_latency: w.multicast.mean(),
        source_cpu: w.source_cpu.utilization(elapsed),
        downstream_cpu,
        dispatcher_cpu,
        agg_cpu,
        source_breakdown: CpuCategory::ALL
            .iter()
            .map(|&c| (c, w.source_cpu.share(c)))
            .collect(),
        comm_time_per_tuple: source_busy / sourced,
        ser_time_per_tuple: ser_busy / sourced,
        traffic_per_10k: (w.source_tx_bytes * 10_000)
            .checked_div(w.tuples_sourced)
            .unwrap_or(0),
        serializations: w.serializations,
        mean_load_factor: if w.load_samples == 0 {
            0.0
        } else {
            w.load_sum / w.load_samples as f64
        },
        queue_series: std::mem::take(&mut w.queue_series),
        throughput_series,
        latency_series,
        switches: std::mem::take(&mut w.switches),
        elapsed,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn saturate(mode: SystemMode, p: u32, tuples: u64) -> EngineReport {
        run(EngineConfig::paper(mode, p, tuples))
    }

    #[test]
    fn all_tuples_complete_in_every_mode() {
        for mode in SystemMode::ALL {
            let r = saturate(mode, 64, 50);
            assert_eq!(r.completed, 50, "{mode:?}");
            assert_eq!(r.dropped, 0);
            assert!(r.throughput > 0.0);
        }
    }

    #[test]
    fn storm_collapses_with_parallelism_whale_does_not() {
        let storm_120 = saturate(SystemMode::Storm, 120, 60).throughput;
        let storm_480 = saturate(SystemMode::Storm, 480, 60).throughput;
        assert!(
            storm_480 < storm_120 * 0.5,
            "Storm must collapse: 120→{storm_120:.1}/s, 480→{storm_480:.1}/s"
        );
        let whale_120 = saturate(SystemMode::WhaleFull, 120, 60).throughput;
        let whale_480 = saturate(SystemMode::WhaleFull, 480, 60).throughput;
        assert!(
            whale_480 > whale_120,
            "Whale must rise: 120→{whale_120:.1}/s, 480→{whale_480:.1}/s"
        );
    }

    #[test]
    fn ablation_chain_is_monotone_at_480() {
        let tput: Vec<f64> = SystemMode::ALL
            .iter()
            .map(|&m| saturate(m, 480, 60).throughput)
            .collect();
        for i in 1..tput.len() {
            assert!(
                tput[i] > tput[i - 1] * 0.99,
                "chain must not regress: {tput:?}"
            );
        }
        let ratio = tput[4] / tput[0];
        assert!(ratio > 20.0, "Whale/Storm = {ratio:.1} (target ~56x)");
    }

    #[test]
    fn latency_ordering_matches_paper() {
        let storm = saturate(SystemMode::Storm, 480, 40).mean_latency;
        let whale = saturate(SystemMode::WhaleFull, 480, 40).mean_latency;
        assert!(
            whale.as_nanos() * 10 < storm.as_nanos(),
            "whale={whale} storm={storm} (paper: 96.6% reduction)"
        );
    }

    #[test]
    fn serialization_counts() {
        let storm = saturate(SystemMode::Storm, 480, 20);
        assert_eq!(storm.serializations, 20 * 480, "per-destination");
        let whale = saturate(SystemMode::WhaleFull, 480, 20);
        assert_eq!(whale.serializations, 20, "once per tuple");
    }

    #[test]
    fn traffic_reduction_matches_fig27_shape() {
        let storm = saturate(SystemMode::Storm, 480, 20).traffic_per_10k;
        let whale = saturate(SystemMode::WhaleFull, 480, 20).traffic_per_10k;
        let reduction = 1.0 - whale as f64 / storm as f64;
        assert!(reduction > 0.8, "reduction = {reduction:.3} (paper: 91.9%)");
    }

    #[test]
    fn source_cpu_breakdown_dominated_by_ser_and_packets_in_storm() {
        let r = saturate(SystemMode::Storm, 300, 30);
        let share: f64 = r
            .source_breakdown
            .iter()
            .filter(|(c, _)| {
                matches!(
                    c,
                    CpuCategory::Serialization | CpuCategory::PacketProcessing
                )
            })
            .map(|&(_, s)| s)
            .sum();
        assert!(share > 0.95, "share = {share:.3} (Fig 2d)");
        assert!(r.source_cpu > 0.5, "upstream hot: {}", r.source_cpu);
        assert!(r.downstream_cpu < r.source_cpu);
    }

    #[test]
    fn report_display_is_complete() {
        let r = saturate(SystemMode::WhaleFull, 64, 20);
        let text = r.to_string();
        assert!(text.contains("completed 20 tuples"));
        assert!(text.contains("latency: mean"));
        assert!(text.contains("cpu: source"));
        assert!(text.contains("/ 10k tuples"));
    }

    #[test]
    fn stage_utilization_diagnostics() {
        // Whale at full load: dispatchers and instances both busy, source
        // light; the aggregator modest.
        let r = saturate(SystemMode::WhaleFull, 480, 60);
        assert!(r.dispatcher_cpu > 0.01, "dispatcher={}", r.dispatcher_cpu);
        assert!(r.agg_cpu < 0.5, "agg={}", r.agg_cpu);
        // Storm: dispatchers are idle (instance-oriented path bypasses
        // worker dispatch entirely).
        let storm = saturate(SystemMode::Storm, 480, 40);
        assert_eq!(storm.dispatcher_cpu, 0.0);
    }

    #[test]
    fn rate_drive_stable_under_low_load() {
        let mut cfg = EngineConfig::paper(SystemMode::WhaleFull, 120, 0);
        cfg.drive = Drive::Rate {
            plan: RatePlan::Poisson(200.0),
            horizon: SimTime::from_secs(2),
        };
        cfg.record_series = true;
        let r = run(cfg);
        assert_eq!(r.dropped, 0);
        assert!(r.completed > 300, "completed={}", r.completed);
        assert!(r.mean_load_factor < 0.05);
        assert!(!r.queue_series.is_empty());
        // Progress counters are snapshotted every monitor tick: the
        // sourced/completed curves climb to the final totals and the
        // dropped curve stays flat at zero.
        let series = |name: &str| -> Vec<(f64, f64)> {
            match r.metrics.get(name) {
                Some(whale_sim::MetricValue::Series(pts)) => pts.clone(),
                other => panic!("{name} must be a series, got {other:?}"),
            }
        };
        let sourced = series("engine.sourced_series");
        assert!(sourced.len() > 10, "ticks recorded: {}", sourced.len());
        let climbs = sourced.windows(2).all(|w| w[0].1 <= w[1].1);
        assert!(climbs, "sourced snapshots must be monotonic");
        let done = series("engine.completed_series");
        assert!(done.last().unwrap().1 <= r.completed as f64);
        assert!(series("engine.dropped_series").iter().all(|&(_, v)| v == 0.0));
    }

    #[test]
    fn rate_drive_overload_drops_with_fixed_structure() {
        // RDMC-style fixed binomial over instances under overload (Fig 3).
        let mut cfg = EngineConfig::paper(SystemMode::RdmaStorm, 480, 0);
        cfg.structure = Some(Structure::Binomial);
        cfg.drive = Drive::Rate {
            plan: RatePlan::Poisson(50_000.0),
            horizon: SimTime::from_secs(1),
        };
        let r = run(cfg);
        assert!(r.dropped > 0, "overload must overflow the queue");
        assert!(r.mean_load_factor > 0.5, "load={}", r.mean_load_factor);
    }

    #[test]
    fn adaptive_whale_switches_under_rate_steps() {
        let mut cfg = EngineConfig::paper(SystemMode::WhaleFull, 480, 0);
        cfg.initial_d_star = 4;
        cfg.drive = Drive::Rate {
            plan: RatePlan::Steps(vec![
                (SimTime::ZERO, 500.0),
                (SimTime::from_secs(1), 4_000.0),
            ]),
            horizon: SimTime::from_secs(3),
        };
        let r = run(cfg);
        assert!(!r.switches.is_empty(), "controller must react to the step");
    }

    #[test]
    fn multicast_latency_structure_ordering() {
        let base = |s: Structure| {
            let mut cfg = EngineConfig::paper(SystemMode::WhaleWocRdma, 480, 40);
            cfg.structure = Some(s);
            run(cfg).mean_multicast_latency
        };
        let seq = base(Structure::Sequential);
        let bin = base(Structure::Binomial);
        let nb = base(Structure::NonBlocking { d_star: 3 });
        assert!(nb < seq, "nonblocking {nb} must beat sequential {seq}");
        assert!(bin < seq, "binomial {bin} must beat sequential {seq}");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = saturate(SystemMode::WhaleFull, 120, 30);
        let b = saturate(SystemMode::WhaleFull, 120, 30);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.mean_latency, b.mean_latency);
        assert_eq!(a.traffic_per_10k, b.traffic_per_10k);
    }

    #[test]
    fn metrics_snapshot_covers_all_layers() {
        let r = saturate(SystemMode::WhaleFull, 120, 30);
        let m = &r.metrics;
        assert_eq!(m.counter("engine.completed"), Some(30));
        assert_eq!(m.counter("engine.serializations"), Some(30));
        assert!(m.gauge("engine.throughput").unwrap() > 0.0);
        assert!(m.gauge("engine.cpu.source").unwrap() > 0.0);
        let lat = m.summary("engine.latency_ns").unwrap();
        assert_eq!(lat.count, 30);
        assert!(lat.p99 >= lat.p50 && lat.p50 > 0.0);
        assert!(m.gauge("multicast.monitor.lambda").is_some());
        assert!(m.gauge("multicast.controller.degree").is_some());
        assert!(m.counter("net.nic.total.sent_msgs").unwrap() > 0);
        assert!(m.gauge("net.nic.source.utilization").is_some());
    }

    #[test]
    fn metrics_series_only_when_recording() {
        let quiet = saturate(SystemMode::WhaleFull, 64, 10);
        assert!(quiet.metrics.get("engine.queue.depth").is_none());
        let mut cfg = EngineConfig::paper(SystemMode::WhaleFull, 64, 0);
        cfg.drive = Drive::Rate {
            plan: RatePlan::Poisson(200.0),
            horizon: SimTime::from_secs(1),
        };
        cfg.record_series = true;
        let r = run(cfg);
        assert!(r.metrics.get("engine.queue.depth").is_some());
        assert!(r.metrics.get("engine.throughput_series").is_some());
    }

    #[test]
    fn metrics_json_is_byte_identical_across_same_seed_runs() {
        let a = saturate(SystemMode::WhaleFull, 240, 40);
        let b = saturate(SystemMode::WhaleFull, 240, 40);
        assert_eq!(
            a.metrics.to_json().to_json_pretty(),
            b.metrics.to_json().to_json_pretty()
        );
    }
}
