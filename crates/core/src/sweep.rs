//! Parameter sweeps: run grids of independent experiments, optionally in
//! parallel (each run is a self-contained deterministic simulation).

use crate::engine::{run, EngineConfig, EngineReport};
use crate::modes::SystemMode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One grid point's configuration and result.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Which system ran.
    pub mode: SystemMode,
    /// At which parallelism.
    pub parallelism: u32,
    /// The run's report.
    pub report: EngineReport,
}

/// Map `f` over `items` on up to `threads` worker threads, preserving
/// input order in the output.
pub fn par_map_with<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("each slot taken once");
                let r = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("no poison")
                .expect("all slots filled")
        })
        .collect()
}

/// [`par_map_with`] at the machine's available parallelism (capped at 8:
/// a 480-instance simulation holds non-trivial per-run state).
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(8);
    par_map_with(items, threads, f)
}

/// Run the `modes × parallelisms` grid derived from `base` (its `mode`
/// and `parallelism` fields are overridden per point), in parallel,
/// results in grid order (parallelism-major, then mode).
pub fn sweep_grid(
    base: &EngineConfig,
    modes: &[SystemMode],
    parallelisms: &[u32],
) -> Vec<SweepPoint> {
    let points: Vec<(u32, SystemMode)> = parallelisms
        .iter()
        .flat_map(|&p| modes.iter().map(move |&m| (p, m)))
        .collect();
    par_map(points, |(parallelism, mode)| {
        let mut cfg = base.clone();
        cfg.mode = mode;
        cfg.parallelism = parallelism;
        // Mode-dependent defaults must re-derive: clear overrides only if
        // the caller left them unset in `base` (they did not override).
        SweepPoint {
            mode,
            parallelism,
            report: run(cfg),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Drive;

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..64).collect(), |x: i32| x * 3);
        assert_eq!(out, (0..64).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty_and_single() {
        assert!(par_map(Vec::<u8>::new(), |x| x).is_empty());
        assert_eq!(par_map_with(vec![9], 4, |x: u8| x + 1), vec![10]);
    }

    #[test]
    fn grid_runs_all_points_in_order() {
        let base = EngineConfig::paper(SystemMode::Storm, 64, 0);
        let mut base = base;
        base.drive = Drive::Saturate { tuples: 10 };
        let grid = sweep_grid(
            &base,
            &[SystemMode::Storm, SystemMode::WhaleFull],
            &[64, 128],
        );
        assert_eq!(grid.len(), 4);
        assert_eq!(grid[0].parallelism, 64);
        assert_eq!(grid[0].mode, SystemMode::Storm);
        assert_eq!(grid[1].mode, SystemMode::WhaleFull);
        assert_eq!(grid[3].parallelism, 128);
        for p in &grid {
            assert_eq!(p.report.completed, 10, "{:?}", (p.mode, p.parallelism));
        }
    }

    #[test]
    fn parallel_grid_equals_sequential_runs() {
        // Determinism across threading: par results must match direct runs.
        let mut base = EngineConfig::paper(SystemMode::WhaleFull, 64, 0);
        base.drive = Drive::Saturate { tuples: 15 };
        let grid = sweep_grid(&base, &[SystemMode::WhaleFull], &[64, 96, 128]);
        for point in grid {
            let mut cfg = base.clone();
            cfg.parallelism = point.parallelism;
            let direct = run(cfg);
            assert_eq!(point.report.completed, direct.completed);
            assert_eq!(point.report.mean_latency, direct.mean_latency);
            assert_eq!(point.report.traffic_per_10k, direct.traffic_per_10k);
        }
    }
}
