//! Property tests for `RingRegion` wraparound behavior.
//!
//! The one-sided fetch path addresses outbox slots *by sequence number*
//! (`tail_seq` / `peek_at` / `addr_of`), so the ring's bookkeeping must
//! stay coherent across arbitrary interleavings of produce and consume —
//! especially at tiny capacities where every operation wraps.

use proptest::prelude::*;
use whale_net::{MemoryRegistry, RingRegion};

/// One step of a generated workload.
#[derive(Clone, Copy, Debug)]
enum Op {
    Produce,
    Consume,
}

fn ops(max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        any::<bool>().prop_map(|p| if p { Op::Produce } else { Op::Consume }),
        0..=max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Drive a tiny ring through a random produce/consume interleaving
    /// and check every invariant the fetch path depends on:
    /// - FIFO: values come out in the order they went in.
    /// - Sequence numbers are dense and monotonic: `tail_seq` equals the
    ///   number of consumed values, `next_seq` the number of accepted
    ///   produces, and the readable window is exactly `tail..next`.
    /// - `len` / `is_full` / `total_consumed` agree with a shadow model.
    /// - A full ring never overwrites an unconsumed slot (produce fails
    ///   with `RingFull` and the head value is untouched).
    #[test]
    fn wraparound_keeps_fifo_and_seq_invariants(
        slots in 1usize..=8,
        workload in ops(96),
    ) {
        let mut registry = MemoryRegistry::new();
        let mut ring: RingRegion<u64> = RingRegion::new(slots, 8, &mut registry);

        let mut next_value: u64 = 0; // next value to produce
        let mut shadow: std::collections::VecDeque<u64> = Default::default();
        let mut consumed: u64 = 0;

        for op in workload {
            match op {
                Op::Produce => {
                    let accepted = ring.produce(next_value).is_ok();
                    prop_assert_eq!(
                        accepted,
                        shadow.len() < slots,
                        "produce must fail iff the ring is full (len {} of {})",
                        shadow.len(),
                        slots
                    );
                    if accepted {
                        shadow.push_back(next_value);
                        next_value += 1;
                    } else {
                        // The rejected produce must not clobber the head.
                        prop_assert_eq!(ring.peek().copied(), shadow.front().copied());
                    }
                }
                Op::Consume => {
                    let got = ring.consume().map(|(_, v)| v);
                    prop_assert_eq!(got, shadow.pop_front(), "FIFO order violated");
                    if got.is_some() {
                        consumed += 1;
                    }
                }
            }

            // Bookkeeping agrees with the shadow model after every step.
            prop_assert_eq!(ring.len(), shadow.len());
            prop_assert_eq!(ring.is_empty(), shadow.is_empty());
            prop_assert_eq!(ring.is_full(), shadow.len() == slots);
            prop_assert_eq!(ring.total_consumed(), consumed);
            prop_assert_eq!(ring.tail_seq(), consumed);
            prop_assert_eq!(ring.next_seq(), consumed + shadow.len() as u64);

            // The whole readable window is addressable by sequence and
            // yields exactly the queued values, in order.
            for (i, expect) in shadow.iter().enumerate() {
                let seq = consumed + i as u64;
                prop_assert!(ring.addr_of(seq).is_some(), "seq {} unaddressable", seq);
                prop_assert_eq!(ring.peek_at(seq), Some(expect), "seq {}", seq);
            }
            // And nothing outside it is.
            prop_assert!(consumed == 0 || ring.addr_of(consumed - 1).is_none());
            prop_assert!(ring.addr_of(ring.next_seq()).is_none());
            prop_assert_eq!(ring.peek().copied(), shadow.front().copied());
        }
    }
}
