//! `RingFabric`: a bounded ring-buffer live transport with verbs-style
//! doorbell semantics.
//!
//! Sends *post a descriptor* into a fixed-capacity per-endpoint ring and
//! ring a doorbell — they never touch the destination inbox directly. A
//! flusher (a background thread in live mode, or the caller via
//! [`RingFabric::pump`] in deterministic mode) drains each ring into the
//! stream-slicing [`Batcher`] and delivers whole MMS/WTL batches, so the
//! live path exercises the same batching policy the simulator models
//! (§4, Figs 11–12):
//!
//! - a post that would exceed the ring capacity fails with
//!   [`SendError::Full`] — the bounded transfer queue of the paper's M/D/1
//!   model, surfaced as backpressure instead of a deadlock;
//! - batches flush when buffered bytes reach MMS or the oldest descriptor
//!   has waited WTL (the flusher's monitor tick drives
//!   [`Batcher::deadline`]);
//! - per-sender FIFO order is preserved end to end: posts enter the ring
//!   in order, batches drain in order, deliveries retry in order when the
//!   destination inbox is bounded and momentarily full.
//!
//! Byte counters follow the same rule as [`LiveFabric`]: only bytes that
//! actually reach an inbox count; failed posts and failed deliveries
//! increment `send_errors`.

use crate::batch::{BatchConfig, Batcher};
use crate::fabric::{
    EndpointId, FabricPath, LiveFabric, LiveMessage, Payload, RegisterError, SendError,
};
use crate::topology::LinkTracker;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use whale_sim::{MetricsRegistry, SimTime};

/// Configuration of the ring transport.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingConfig {
    /// Per-endpoint descriptor-ring capacity: the maximum number of posted
    /// but not yet delivered descriptors. Posts beyond it fail with
    /// [`SendError::Full`].
    pub ring_capacity: usize,
    /// The MMS/WTL stream-slicing policy the flusher applies.
    pub batch: BatchConfig,
    /// Live drain workers. Endpoints map to shards by
    /// `EndpointId % flusher_shards`, so an endpoint's ring is always
    /// drained by the same worker and per-endpoint FIFO order holds.
    /// Deterministic [`RingFabric::pump`]/[`RingFabric::flush_at`] ignore
    /// sharding and stay single-threaded. `0` is treated as `1`.
    pub flusher_shards: usize,
    /// Idle heartbeat of each flusher shard: the longest a lost doorbell
    /// wakeup can stall a fully idle fabric.
    pub idle_heartbeat: Duration,
    /// Backoff while a bounded inbox stays full and a flusher pass makes
    /// no delivery progress.
    pub stall_backoff: Duration,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            ring_capacity: 64 * 1024,
            batch: BatchConfig::default(),
            flusher_shards: 1,
            idle_heartbeat: Duration::from_millis(5),
            stall_backoff: Duration::from_micros(100),
        }
    }
}

impl RingConfig {
    /// Effective shard count (`flusher_shards`, minimum 1).
    pub fn shard_count(&self) -> usize {
        self.flusher_shards.max(1)
    }

    /// Stable endpoint→shard assignment.
    pub fn shard_of(&self, id: EndpointId) -> usize {
        id.0 as usize % self.shard_count()
    }
}

/// One endpoint's send state: the descriptor ring, the transfer buffer,
/// and the inbox it drains into.
struct EndpointRing {
    /// The destination endpoint this ring feeds (for link attribution).
    id: EndpointId,
    /// Posted, not yet drained descriptors (the send ring proper).
    ring: VecDeque<LiveMessage>,
    /// The MMS/WTL transfer buffer the flusher drains the ring into.
    batcher: Batcher<LiveMessage>,
    /// Destination inbox.
    tx: Sender<LiveMessage>,
    /// Batch items a bounded inbox could not yet accept; retried first on
    /// the next pump so FIFO order holds.
    undelivered: VecDeque<LiveMessage>,
}

impl EndpointRing {
    /// Descriptors posted but not yet handed to the inbox.
    fn pending(&self) -> usize {
        self.ring.len() + self.batcher.len() + self.undelivered.len()
    }
}

/// Doorbell: posts set a pending flag and wake the flusher; the flusher
/// clears the flag before sleeping so a post between pump and wait can
/// never be missed. Shared with the one-sided fabric, whose fetcher waits
/// on the same post-side wakeup.
pub(crate) struct Doorbell {
    pending: StdMutex<bool>,
    bell: Condvar,
}

impl Doorbell {
    pub(crate) fn new() -> Self {
        Doorbell {
            pending: StdMutex::new(false),
            bell: Condvar::new(),
        }
    }

    // Doorbell locks tolerate poison: a panicking flusher shard must
    // degrade the run, not cascade panics into every sender that rings
    // the bell afterwards. The flag is a plain bool, so the inner value
    // is valid even if a holder died mid-critical-section.
    pub(crate) fn ring(&self) {
        *self
            .pending
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        self.bell.notify_all();
    }

    /// Sleep until rung or `timeout`, consuming the pending flag.
    pub(crate) fn wait(&self, timeout: Duration) {
        let guard = self
            .pending
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let (mut guard, _) = self
            .bell
            .wait_timeout_while(guard, timeout, |pending| !*pending)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *guard = false;
    }
}

/// The batched ring-buffer transport. See the module docs for semantics.
pub struct RingFabric {
    config: RingConfig,
    endpoints: RwLock<HashMap<EndpointId, Arc<Mutex<EndpointRing>>>>,
    /// One doorbell per flusher shard; posts ring only their endpoint's
    /// shard so drain workers never wake for another shard's traffic.
    doorbells: Vec<Doorbell>,
    copied_bytes: AtomicU64,
    shared_bytes: AtomicU64,
    messages: AtomicU64,
    send_errors: AtomicU64,
    /// Descriptors accepted into rings.
    posted: AtomicU64,
    flushed_batches: AtomicU64,
    flushed_items: AtomicU64,
    /// Live-mode clock origin for mapping wall time onto [`SimTime`].
    epoch: Instant,
    stopping: AtomicBool,
    /// Optional per-link attribution: posts raise a link's queue gauge,
    /// deliveries settle it and count the bytes.
    tracker: RwLock<Option<Arc<LinkTracker>>>,
}

impl Default for RingFabric {
    fn default() -> Self {
        Self::new(RingConfig::default())
    }
}

impl RingFabric {
    /// New ring fabric with no endpoints. Pair with [`spawn_flusher`] for
    /// live use, or drive [`RingFabric::pump`] manually with a virtual
    /// clock for deterministic benchmarks.
    pub fn new(config: RingConfig) -> Self {
        assert!(config.ring_capacity > 0, "ring capacity must be positive");
        RingFabric {
            config,
            endpoints: RwLock::new(HashMap::new()),
            doorbells: (0..config.shard_count()).map(|_| Doorbell::new()).collect(),
            copied_bytes: AtomicU64::new(0),
            shared_bytes: AtomicU64::new(0),
            messages: AtomicU64::new(0),
            send_errors: AtomicU64::new(0),
            posted: AtomicU64::new(0),
            flushed_batches: AtomicU64::new(0),
            flushed_items: AtomicU64::new(0),
            epoch: Instant::now(),
            stopping: AtomicBool::new(false),
            tracker: RwLock::new(None),
        }
    }

    /// Attribute subsequent posts and deliveries to physical links
    /// through `tracker`.
    pub fn install_link_tracker(&self, tracker: Arc<LinkTracker>) {
        *self.tracker.write() = Some(tracker);
    }

    /// The active configuration.
    pub fn config(&self) -> RingConfig {
        self.config
    }

    /// Wall time since this fabric was created, as a [`SimTime`] (live
    /// flusher mode only; deterministic callers pass their own clock).
    pub fn wall_now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    fn install(&self, id: EndpointId, tx: Sender<LiveMessage>) -> Result<(), RegisterError> {
        let mut map = self.endpoints.write();
        if map.contains_key(&id) {
            return Err(RegisterError::AlreadyRegistered(id));
        }
        map.insert(
            id,
            Arc::new(Mutex::new(EndpointRing {
                id,
                ring: VecDeque::new(),
                batcher: Batcher::new(self.config.batch),
                tx,
                undelivered: VecDeque::new(),
            })),
        );
        Ok(())
    }

    /// Register an endpoint with an unbounded inbox; returns its receiver.
    pub fn register(&self, id: EndpointId) -> Result<Receiver<LiveMessage>, RegisterError> {
        let (tx, rx) = unbounded();
        self.install(id, tx)?;
        Ok(rx)
    }

    /// Register an endpoint whose inbox holds at most `capacity` delivered
    /// messages; full inboxes park flushed batches for later retry rather
    /// than dropping them.
    pub fn register_bounded(
        &self,
        id: EndpointId,
        capacity: usize,
    ) -> Result<Receiver<LiveMessage>, RegisterError> {
        let (tx, rx) = bounded(capacity);
        self.install(id, tx)?;
        Ok(rx)
    }

    /// Remove an endpoint; pending descriptors are dropped. Flush first if
    /// they must arrive.
    pub fn deregister(&self, id: EndpointId) {
        self.endpoints.write().remove(&id);
    }

    /// Post a descriptor to `to`'s ring and ring the doorbell.
    fn post(&self, to: EndpointId, msg: LiveMessage) -> Result<(), SendError> {
        let slot = self.endpoints.read().get(&to).cloned();
        let Some(slot) = slot else {
            self.send_errors.fetch_add(1, Ordering::Relaxed);
            return Err(SendError::UnknownEndpoint);
        };
        {
            let mut ep = slot.lock();
            if ep.pending() >= self.config.ring_capacity {
                drop(ep);
                self.send_errors.fetch_add(1, Ordering::Relaxed);
                return Err(SendError::Full);
            }
            if let Some(tracker) = self.tracker.read().as_ref() {
                // Accepted into the ring: the frame now occupies its link's
                // queue until the flusher delivers (or drops) it.
                tracker.on_send(msg.from, to, msg.payload.len());
            }
            ep.ring.push_back(msg);
        }
        self.posted.fetch_add(1, Ordering::Relaxed);
        self.doorbells[self.config.shard_of(to)].ring();
        Ok(())
    }

    /// TCP-semantics post: the bytes are copied into the descriptor now
    /// (the copy tax is paid per destination), counted on delivery.
    pub fn send_copied(
        &self,
        from: EndpointId,
        to: EndpointId,
        bytes: &[u8],
    ) -> Result<(), SendError> {
        self.post(
            to,
            LiveMessage {
                from,
                payload: Payload::Copied(bytes.to_vec()),
            },
        )
    }

    /// RDMA-semantics post: the shared buffer rides the descriptor by
    /// reference, counted on delivery.
    pub fn send_shared(
        &self,
        from: EndpointId,
        to: EndpointId,
        buf: Arc<[u8]>,
    ) -> Result<(), SendError> {
        self.post(
            to,
            LiveMessage {
                from,
                payload: Payload::Shared(buf),
            },
        )
    }

    /// Snapshot endpoint slots in id order, so deterministic pumps visit
    /// rings in a stable order. `shard = None` selects every endpoint;
    /// `Some(s)` only those assigned to shard `s`.
    fn slots(&self, shard: Option<usize>) -> Vec<Arc<Mutex<EndpointRing>>> {
        let map = self.endpoints.read();
        let mut ids: Vec<(EndpointId, Arc<Mutex<EndpointRing>>)> = map
            .iter()
            .filter(|(id, _)| shard.is_none_or(|s| self.config.shard_of(**id) == s))
            .map(|(id, s)| (*id, Arc::clone(s)))
            .collect();
        ids.sort_by_key(|(id, _)| *id);
        ids.into_iter().map(|(_, s)| s).collect()
    }

    fn note_batch(&self, n_items: usize) {
        self.flushed_batches.fetch_add(1, Ordering::Relaxed);
        self.flushed_items.fetch_add(n_items as u64, Ordering::Relaxed);
    }

    /// Hand parked batch items to the inbox, preserving order. Stops at a
    /// full bounded inbox (retried next pump); drops and counts errors on
    /// a disconnected one.
    fn drain_undelivered(&self, ep: &mut EndpointRing) -> u64 {
        let mut delivered = 0;
        while let Some(msg) = ep.undelivered.pop_front() {
            let len = msg.payload.len() as u64;
            let shared = matches!(msg.payload, Payload::Shared(_));
            // Count before the hand-off: the channel's send→recv
            // synchronization then guarantees that a receiver which has
            // seen the message also sees the counters (counting after
            // would let a reader observe the delivery but a stale count).
            // Failed hand-offs undo the increment below.
            let bytes_ctr = if shared {
                &self.shared_bytes
            } else {
                &self.copied_bytes
            };
            self.messages.fetch_add(1, Ordering::Relaxed);
            bytes_ctr.fetch_add(len, Ordering::Relaxed);
            let from = msg.from;
            match ep.tx.try_send(msg) {
                Ok(()) => {
                    delivered += 1;
                    if let Some(tracker) = self.tracker.read().as_ref() {
                        tracker.on_delivered(from, ep.id, len as usize);
                    }
                }
                Err(TrySendError::Full(msg)) => {
                    self.messages.fetch_sub(1, Ordering::Relaxed);
                    bytes_ctr.fetch_sub(len, Ordering::Relaxed);
                    ep.undelivered.push_front(msg);
                    break;
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.messages.fetch_sub(1, Ordering::Relaxed);
                    bytes_ctr.fetch_sub(len, Ordering::Relaxed);
                    self.send_errors.fetch_add(1, Ordering::Relaxed);
                    if let Some(tracker) = self.tracker.read().as_ref() {
                        tracker.on_dropped(from, ep.id, len as usize);
                    }
                }
            }
        }
        delivered
    }

    /// One flusher pass at time `now`: drain every ring into its batcher
    /// (size-triggered batches flush immediately), fire expired WTL timers,
    /// and deliver flushed items. Returns the number delivered.
    ///
    /// Deterministic mode: single-threaded, visits every endpoint in id
    /// order regardless of `flusher_shards`, so virtual-clock delivery
    /// traces are identical across shard counts.
    pub fn pump(&self, now: SimTime) -> u64 {
        self.pump_slots(&self.slots(None), now)
    }

    /// [`RingFabric::pump`] restricted to the endpoints of one flusher
    /// shard — the live drain workers call this so two shards never
    /// contend on the same endpoint ring.
    pub fn pump_shard(&self, shard: usize, now: SimTime) -> u64 {
        self.pump_slots(&self.slots(Some(shard)), now)
    }

    fn pump_slots(&self, slots: &[Arc<Mutex<EndpointRing>>], now: SimTime) -> u64 {
        let mut delivered = 0;
        for slot in slots {
            let mut ep = slot.lock();
            while let Some(msg) = ep.ring.pop_front() {
                let bytes = msg.payload.len();
                if let Some(batch) = ep.batcher.offer(now, msg, bytes) {
                    self.note_batch(batch.items.len());
                    ep.undelivered.extend(batch.items);
                }
            }
            if let Some(batch) = ep.batcher.on_timer(now) {
                self.note_batch(batch.items.len());
                ep.undelivered.extend(batch.items);
            }
            delivered += self.drain_undelivered(&mut ep);
        }
        delivered
    }

    /// Force everything out at time `now`: pump, then force-flush every
    /// batcher regardless of MMS/WTL and deliver (shutdown / end of a
    /// deterministic run). Returns the number delivered.
    pub fn flush_at(&self, now: SimTime) -> u64 {
        self.flush_slots_at(None, now)
    }

    /// [`RingFabric::flush_at`] restricted to one flusher shard's
    /// endpoints (live shard shutdown).
    pub fn flush_shard_at(&self, shard: usize, now: SimTime) -> u64 {
        self.flush_slots_at(Some(shard), now)
    }

    fn flush_slots_at(&self, shard: Option<usize>, now: SimTime) -> u64 {
        let slots = self.slots(shard);
        let mut delivered = self.pump_slots(&slots, now);
        for slot in &slots {
            let mut ep = slot.lock();
            if let Some(batch) = ep.batcher.flush() {
                self.note_batch(batch.items.len());
                ep.undelivered.extend(batch.items);
            }
            delivered += self.drain_undelivered(&mut ep);
        }
        delivered
    }

    /// Earliest WTL deadline across endpoints; `SimTime::ZERO` if any ring
    /// or retry queue already holds work. `None` when fully idle.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.next_deadline_for(None)
    }

    /// [`RingFabric::next_deadline`] restricted to one flusher shard's
    /// endpoints.
    pub fn next_deadline_shard(&self, shard: usize) -> Option<SimTime> {
        self.next_deadline_for(Some(shard))
    }

    fn next_deadline_for(&self, shard: Option<usize>) -> Option<SimTime> {
        let map = self.endpoints.read();
        map.iter()
            .filter(|(id, _)| shard.is_none_or(|s| self.config.shard_of(**id) == s))
            .filter_map(|(_, slot)| {
                let ep = slot.lock();
                if !ep.ring.is_empty() || !ep.undelivered.is_empty() {
                    Some(SimTime::ZERO)
                } else {
                    ep.batcher.deadline()
                }
            })
            .min()
    }

    /// Descriptors accepted into rings so far.
    pub fn posted(&self) -> u64 {
        self.posted.load(Ordering::Relaxed)
    }

    /// Descriptors currently sitting in rings awaiting the flusher —
    /// the live transfer-queue length across every endpoint.
    pub fn queue_depth(&self) -> u64 {
        let map = self.endpoints.read();
        map.values().map(|slot| slot.lock().pending() as u64).sum()
    }

    /// Messages delivered so far.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Bytes delivered through the copied (TCP) path so far.
    pub fn copied_bytes(&self) -> u64 {
        self.copied_bytes.load(Ordering::Relaxed)
    }

    /// Bytes delivered through the shared (RDMA) path so far.
    pub fn shared_bytes(&self) -> u64 {
        self.shared_bytes.load(Ordering::Relaxed)
    }

    /// Failed posts plus failed deliveries so far.
    pub fn send_errors(&self) -> u64 {
        self.send_errors.load(Ordering::Relaxed)
    }

    /// Batches flushed so far.
    pub fn flushed_batches(&self) -> u64 {
        self.flushed_batches.load(Ordering::Relaxed)
    }

    /// Items delivered through flushed batches so far.
    pub fn flushed_items(&self) -> u64 {
        self.flushed_items.load(Ordering::Relaxed)
    }

    /// Mean items per flushed batch (0 if none flushed yet).
    pub fn mean_batch_size(&self) -> f64 {
        let batches = self.flushed_batches();
        if batches == 0 {
            0.0
        } else {
            self.flushed_items() as f64 / batches as f64
        }
    }

    /// Registered endpoint count.
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.read().len()
    }

    /// Export delivery and batching counters into `reg` under `prefix.*`.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.set_counter(&format!("{prefix}.posted"), self.posted());
        reg.set_counter(&format!("{prefix}.messages"), self.messages());
        reg.set_counter(&format!("{prefix}.copied_bytes"), self.copied_bytes());
        reg.set_counter(&format!("{prefix}.shared_bytes"), self.shared_bytes());
        reg.set_counter(&format!("{prefix}.send_errors"), self.send_errors());
        reg.set_counter(&format!("{prefix}.flushed_batches"), self.flushed_batches());
        reg.set_counter(&format!("{prefix}.flushed_items"), self.flushed_items());
        reg.set_gauge(&format!("{prefix}.mean_batch_size"), self.mean_batch_size());
        reg.set_gauge(
            &format!("{prefix}.endpoints"),
            self.endpoints.read().len() as f64,
        );
        reg.set_gauge(
            &format!("{prefix}.flusher_shards"),
            self.config.shard_count() as f64,
        );
    }
}

impl FabricPath for RingFabric {
    fn register(&self, id: EndpointId) -> Result<Receiver<LiveMessage>, RegisterError> {
        RingFabric::register(self, id)
    }

    fn register_bounded(
        &self,
        id: EndpointId,
        capacity: usize,
    ) -> Result<Receiver<LiveMessage>, RegisterError> {
        RingFabric::register_bounded(self, id, capacity)
    }

    fn deregister(&self, id: EndpointId) {
        RingFabric::deregister(self, id);
    }

    fn send_copied(
        &self,
        from: EndpointId,
        to: EndpointId,
        bytes: &[u8],
    ) -> Result<(), SendError> {
        RingFabric::send_copied(self, from, to, bytes)
    }

    fn send_shared(
        &self,
        from: EndpointId,
        to: EndpointId,
        buf: Arc<[u8]>,
    ) -> Result<(), SendError> {
        RingFabric::send_shared(self, from, to, buf)
    }

    fn flush(&self) {
        self.flush_at(self.wall_now());
    }

    fn messages(&self) -> u64 {
        RingFabric::messages(self)
    }

    fn copied_bytes(&self) -> u64 {
        RingFabric::copied_bytes(self)
    }

    fn shared_bytes(&self) -> u64 {
        RingFabric::shared_bytes(self)
    }

    fn send_errors(&self) -> u64 {
        RingFabric::send_errors(self)
    }

    fn flushed_batches(&self) -> u64 {
        RingFabric::flushed_batches(self)
    }

    fn flushed_items(&self) -> u64 {
        RingFabric::flushed_items(self)
    }

    fn queue_depth(&self) -> u64 {
        RingFabric::queue_depth(self)
    }

    fn endpoint_count(&self) -> usize {
        RingFabric::endpoint_count(self)
    }

    fn install_link_tracker(&self, tracker: Arc<LinkTracker>) {
        RingFabric::install_link_tracker(self, tracker);
    }

    fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        RingFabric::export_metrics(self, reg, prefix);
    }
}

/// Handle to the background flusher shards. Stop it (or drop it) to force
/// a final flush and join every drain worker.
pub struct RingFlusher {
    fabric: Arc<RingFabric>,
    handles: Vec<JoinHandle<()>>,
}

impl RingFlusher {
    /// Signal every flusher shard to drain everything and exit, then join
    /// them all.
    pub fn stop(mut self) {
        self.shutdown();
    }

    /// Number of drain workers this flusher runs.
    pub fn shard_count(&self) -> usize {
        self.handles.len().max(1)
    }

    fn shutdown(&mut self) {
        self.fabric.stopping.store(true, Ordering::SeqCst);
        for bell in &self.fabric.doorbells {
            bell.ring();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for RingFlusher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawn the background flusher: one drain worker per
/// [`RingConfig::flusher_shards`], each waiting on its shard's doorbell,
/// pumping its shard's rings on every post, honouring WTL deadlines
/// between posts, and force-flushing its shard on stop. An endpoint is
/// always drained by the same shard, so per-endpoint FIFO order holds.
pub fn spawn_flusher(fabric: Arc<RingFabric>) -> RingFlusher {
    let handles = (0..fabric.config.shard_count())
        .map(|shard| {
            let worker = Arc::clone(&fabric);
            std::thread::Builder::new()
                .name(format!("ring-flusher-{shard}"))
                .spawn(move || flusher_loop(&worker, shard))
                .expect("spawn ring flusher shard")
        })
        .collect();
    RingFlusher { fabric, handles }
}

fn flusher_loop(fabric: &RingFabric, shard: usize) {
    // Idle heartbeat so a lost wakeup can never stall the fabric for long.
    let idle = fabric.config.idle_heartbeat;
    // Backoff while a bounded inbox stays full (delivery made no progress).
    let stalled = fabric.config.stall_backoff;
    loop {
        let delivered = fabric.pump_shard(shard, fabric.wall_now());
        if fabric.stopping.load(Ordering::SeqCst) {
            fabric.flush_shard_at(shard, fabric.wall_now());
            return;
        }
        let wait = match fabric.next_deadline_shard(shard) {
            Some(deadline) => {
                let now = fabric.wall_now();
                if deadline <= now {
                    if delivered == 0 {
                        stalled
                    } else {
                        // More work is already due; pump again immediately.
                        continue;
                    }
                } else {
                    Duration::from_nanos(deadline.as_nanos() - now.as_nanos())
                }
            }
            None => idle,
        };
        fabric.doorbells[shard].wait(wait);
    }
}

/// Which live transport a runtime should instantiate.
#[derive(Clone, Copy, Debug, Default)]
pub enum FabricKind {
    /// The synchronous per-send channel map ([`LiveFabric`]).
    #[default]
    PerSend,
    /// The batched ring-buffer path ([`RingFabric`]) with a background
    /// flusher.
    Ring(RingConfig),
    /// The remote-fetch path ([`crate::OneSidedFabric`]) with a background
    /// fetcher: senders publish into per-link ring regions, receivers pull
    /// via modeled `RDMA READ`s.
    OneSided(crate::OneSidedConfig),
}

/// A built live transport plus, on the buffered paths, the background
/// drain thread (ring flusher or one-sided fetcher).
pub struct FabricInstance {
    /// The shared transport handle.
    pub fabric: Arc<dyn FabricPath>,
    flusher: Option<RingFlusher>,
    fetcher: Option<crate::OneSidedFetcher>,
}

impl FabricKind {
    /// Instantiate the transport (and its drain thread, for the buffered
    /// paths).
    pub fn build(self) -> FabricInstance {
        match self {
            FabricKind::PerSend => FabricInstance {
                fabric: Arc::new(LiveFabric::new()),
                flusher: None,
                fetcher: None,
            },
            FabricKind::Ring(config) => {
                let ring = Arc::new(RingFabric::new(config));
                let flusher = spawn_flusher(Arc::clone(&ring));
                FabricInstance {
                    fabric: ring,
                    flusher: Some(flusher),
                    fetcher: None,
                }
            }
            FabricKind::OneSided(config) => {
                let one_sided = Arc::new(crate::OneSidedFabric::new(config));
                let fetcher = crate::spawn_fetcher(Arc::clone(&one_sided));
                FabricInstance {
                    fabric: one_sided,
                    flusher: None,
                    fetcher: Some(fetcher),
                }
            }
        }
    }
}

impl FabricInstance {
    /// Flush buffered sends and stop the drain thread (if any). Call after
    /// all senders have finished but before deregistering receivers.
    pub fn shutdown(&mut self) {
        self.fabric.flush();
        if let Some(flusher) = self.flusher.take() {
            flusher.stop();
        }
        if let Some(fetcher) = self.fetcher.take() {
            fetcher.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_sim::SimDuration;

    fn cfg(ring_capacity: usize, mms: usize, wtl_ms: u64) -> RingConfig {
        RingConfig {
            ring_capacity,
            batch: BatchConfig {
                mms,
                wtl: SimDuration::from_millis(wtl_ms),
            },
            ..RingConfig::default()
        }
    }

    #[test]
    fn posts_sit_in_ring_until_pumped() {
        let fabric = RingFabric::new(cfg(16, 1_000_000, 1));
        let rx = fabric.register(EndpointId(1)).unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"hello")
            .unwrap();
        assert!(rx.try_recv().is_err(), "nothing delivered before a flush");
        assert_eq!(fabric.posted(), 1);
        assert_eq!(fabric.messages(), 0);
        assert_eq!(fabric.copied_bytes(), 0, "bytes count on delivery only");

        // Under MMS and before WTL: still buffered after a pump.
        fabric.pump(SimTime::ZERO);
        assert!(rx.try_recv().is_err());

        // Past WTL: the timer flushes the batch.
        let delivered = fabric.pump(SimTime::from_millis(1));
        assert_eq!(delivered, 1);
        assert_eq!(rx.recv().unwrap().payload.bytes(), b"hello");
        assert_eq!(fabric.copied_bytes(), 5);
        assert_eq!(fabric.flushed_batches(), 1);
    }

    #[test]
    fn mms_triggers_size_batches() {
        let fabric = RingFabric::new(cfg(1024, 100, 1_000));
        let rx = fabric.register(EndpointId(1)).unwrap();
        for _ in 0..10 {
            fabric
                .send_copied(EndpointId(0), EndpointId(1), &[0u8; 25])
                .unwrap();
        }
        // 10 × 25 B versus MMS 100 B: pumps flush by size alone, no WTL.
        let delivered = fabric.pump(SimTime::ZERO);
        assert_eq!(delivered, 8, "two full batches of four 25 B items");
        assert_eq!(fabric.flushed_batches(), 2);
        assert!((fabric.mean_batch_size() - 4.0).abs() < 1e-12);
        // The remainder needs a forced flush (or a WTL tick).
        assert_eq!(fabric.flush_at(SimTime::ZERO), 2);
        assert_eq!(std::iter::from_fn(|| rx.try_recv().ok()).count(), 10);
    }

    #[test]
    fn full_ring_backpressures_without_deadlock() {
        let fabric = RingFabric::new(cfg(2, 1_000_000, 1));
        let _rx = fabric.register(EndpointId(1)).unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"a")
            .unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"b")
            .unwrap();
        let err = fabric
            .send_copied(EndpointId(0), EndpointId(1), b"c")
            .unwrap_err();
        assert_eq!(err, SendError::Full);
        assert_eq!(fabric.send_errors(), 1);
        // Draining the ring frees capacity.
        fabric.flush_at(SimTime::ZERO);
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"c")
            .unwrap();
    }

    #[test]
    fn unknown_endpoint_and_disconnected_count_errors_not_bytes() {
        let fabric = RingFabric::new(cfg(16, 1_000_000, 1));
        assert_eq!(
            fabric
                .send_copied(EndpointId(0), EndpointId(9), b"x")
                .unwrap_err(),
            SendError::UnknownEndpoint
        );
        let rx = fabric.register(EndpointId(1)).unwrap();
        drop(rx);
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"xx")
            .unwrap();
        fabric.flush_at(SimTime::ZERO);
        assert_eq!(fabric.send_errors(), 2);
        assert_eq!(fabric.copied_bytes(), 0);
        assert_eq!(fabric.messages(), 0);
    }

    #[test]
    fn bounded_inbox_parks_and_retries_in_order() {
        let fabric = RingFabric::new(cfg(16, 1_000_000, 1));
        let rx = fabric.register_bounded(EndpointId(1), 2).unwrap();
        for b in [b"a", b"b", b"c", b"d"] {
            fabric.send_copied(EndpointId(0), EndpointId(1), b).unwrap();
        }
        // Only two fit the inbox; the rest park, nothing is lost.
        assert_eq!(fabric.flush_at(SimTime::ZERO), 2);
        assert_eq!(rx.try_recv().unwrap().payload.bytes(), b"a");
        assert_eq!(rx.try_recv().unwrap().payload.bytes(), b"b");
        assert_eq!(fabric.pump(SimTime::ZERO), 2);
        assert_eq!(rx.try_recv().unwrap().payload.bytes(), b"c");
        assert_eq!(rx.try_recv().unwrap().payload.bytes(), b"d");
        assert_eq!(fabric.send_errors(), 0);
    }

    #[test]
    fn reregister_errors_until_deregistered() {
        let fabric = RingFabric::new(RingConfig::default());
        let _rx = fabric.register(EndpointId(3)).unwrap();
        assert_eq!(
            fabric.register(EndpointId(3)).unwrap_err(),
            RegisterError::AlreadyRegistered(EndpointId(3))
        );
        fabric.deregister(EndpointId(3));
        assert!(fabric.register(EndpointId(3)).is_ok());
    }

    #[test]
    fn next_deadline_reflects_pending_work() {
        let fabric = RingFabric::new(cfg(16, 1_000_000, 2));
        let _rx = fabric.register(EndpointId(1)).unwrap();
        assert_eq!(fabric.next_deadline(), None, "idle fabric has no deadline");
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"x")
            .unwrap();
        assert_eq!(
            fabric.next_deadline(),
            Some(SimTime::ZERO),
            "undrained ring is immediately due"
        );
        fabric.pump(SimTime::from_millis(1));
        assert_eq!(
            fabric.next_deadline(),
            Some(SimTime::from_millis(3)),
            "buffered item is due at offer time + WTL"
        );
        fabric.pump(SimTime::from_millis(3));
        assert_eq!(fabric.next_deadline(), None);
    }

    #[test]
    fn live_flusher_delivers_without_manual_pumps() {
        let fabric = Arc::new(RingFabric::new(cfg(1024, 1_000_000, 1)));
        let flusher = spawn_flusher(Arc::clone(&fabric));
        let rx = fabric.register(EndpointId(1)).unwrap();
        for i in 0..50u8 {
            fabric
                .send_copied(EndpointId(0), EndpointId(1), &[i])
                .unwrap();
        }
        // WTL is 1 ms; the flusher must deliver well within the timeout.
        let got: Vec<u8> = (0..50)
            .map(|_| {
                rx.recv_timeout(Duration::from_secs(5))
                    .expect("flusher delivers")
                    .payload
                    .bytes()[0]
            })
            .collect();
        assert_eq!(got, (0..50).collect::<Vec<u8>>());
        flusher.stop();
    }

    #[test]
    fn flusher_stop_flushes_stragglers() {
        let fabric = Arc::new(RingFabric::new(cfg(1024, 1_000_000, 10_000)));
        let flusher = spawn_flusher(Arc::clone(&fabric));
        let rx = fabric.register(EndpointId(1)).unwrap();
        // WTL is 10 s: nothing would flush on its own within the test.
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"tail")
            .unwrap();
        flusher.stop();
        assert_eq!(rx.try_recv().unwrap().payload.bytes(), b"tail");
    }

    #[test]
    fn multi_producer_stress_keeps_per_sender_order() {
        const SENDERS: u32 = 8;
        const PER_SENDER: u32 = 2_000;
        let fabric = Arc::new(RingFabric::new(cfg(
            (SENDERS * PER_SENDER) as usize,
            4 * 1024,
            1,
        )));
        let flusher = spawn_flusher(Arc::clone(&fabric));
        let rx = fabric.register(EndpointId(0)).unwrap();

        let producers: Vec<_> = (1..=SENDERS)
            .map(|s| {
                let f = Arc::clone(&fabric);
                std::thread::spawn(move || {
                    for seq in 0..PER_SENDER {
                        let frame = [s.to_le_bytes(), seq.to_le_bytes()].concat();
                        // The ring is sized to hold everything, so Full
                        // can only mean lost capacity accounting.
                        f.send_copied(EndpointId(s), EndpointId(0), &frame)
                            .unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }

        let mut next_seq = vec![0u32; SENDERS as usize + 1];
        for _ in 0..SENDERS * PER_SENDER {
            let msg = rx
                .recv_timeout(Duration::from_secs(10))
                .expect("no descriptor lost");
            let bytes = msg.payload.bytes();
            let s = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
            let seq = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
            assert_eq!(msg.from, EndpointId(s));
            assert_eq!(seq, next_seq[s as usize], "per-sender FIFO order");
            next_seq[s as usize] = seq + 1;
        }
        assert!(rx.try_recv().is_err(), "no duplicated descriptors");
        assert_eq!(fabric.messages(), (SENDERS * PER_SENDER) as u64);
        assert_eq!(fabric.send_errors(), 0);
        assert!(fabric.mean_batch_size() >= 1.0);
        flusher.stop();
    }

    #[test]
    fn stress_with_tiny_ring_backpressures_cleanly() {
        const SENDERS: u32 = 4;
        const PER_SENDER: u32 = 500;
        let fabric = Arc::new(RingFabric::new(cfg(8, 64, 1)));
        let flusher = spawn_flusher(Arc::clone(&fabric));
        let rx = fabric.register(EndpointId(0)).unwrap();

        let producers: Vec<_> = (1..=SENDERS)
            .map(|s| {
                let f = Arc::clone(&fabric);
                std::thread::spawn(move || {
                    let mut retries = 0u64;
                    for seq in 0..PER_SENDER {
                        let frame = [s.to_le_bytes(), seq.to_le_bytes()].concat();
                        // Backpressure shows up as Full, never a deadlock:
                        // retry until the flusher frees ring capacity.
                        loop {
                            match f.send_copied(EndpointId(s), EndpointId(0), &frame) {
                                Ok(()) => break,
                                Err(SendError::Full) => {
                                    retries += 1;
                                    std::thread::yield_now();
                                }
                                Err(e) => panic!("unexpected send error: {e}"),
                            }
                        }
                    }
                    retries
                })
            })
            .collect();
        let _retries: u64 = producers.into_iter().map(|p| p.join().unwrap()).sum();

        let mut next_seq = vec![0u32; SENDERS as usize + 1];
        for _ in 0..SENDERS * PER_SENDER {
            let msg = rx
                .recv_timeout(Duration::from_secs(10))
                .expect("every accepted post is delivered");
            let bytes = msg.payload.bytes();
            let s = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
            let seq = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
            assert_eq!(seq, next_seq[s as usize], "per-sender FIFO order");
            next_seq[s as usize] = seq + 1;
        }
        assert!(rx.try_recv().is_err());
        assert_eq!(fabric.messages(), (SENDERS * PER_SENDER) as u64);
        flusher.stop();
    }

    #[test]
    fn fabric_kind_builds_interchangeable_paths() {
        for kind in [
            FabricKind::PerSend,
            FabricKind::Ring(RingConfig::default()),
            FabricKind::OneSided(crate::OneSidedConfig::default()),
        ] {
            let mut instance = kind.build();
            let rx = instance.fabric.register(EndpointId(1)).unwrap();
            instance
                .fabric
                .send_copied(EndpointId(0), EndpointId(1), b"hi")
                .unwrap();
            instance.fabric.flush();
            assert_eq!(
                rx.recv_timeout(Duration::from_secs(5))
                    .unwrap()
                    .payload
                    .bytes(),
                b"hi"
            );
            assert_eq!(instance.fabric.messages(), 1);
            instance.shutdown();
        }
    }

    #[test]
    fn config_round_trips_flusher_fields_with_current_defaults() {
        let d = RingConfig::default();
        assert_eq!(d.flusher_shards, 1);
        assert_eq!(d.idle_heartbeat, Duration::from_millis(5));
        assert_eq!(d.stall_backoff, Duration::from_micros(100));

        let custom = RingConfig {
            flusher_shards: 4,
            idle_heartbeat: Duration::from_millis(1),
            stall_backoff: Duration::from_micros(10),
            ..RingConfig::default()
        };
        // The config must survive the fabric and the flusher unchanged.
        let fabric = Arc::new(RingFabric::new(custom));
        assert_eq!(fabric.config(), custom);
        let flusher = spawn_flusher(Arc::clone(&fabric));
        assert_eq!(flusher.shard_count(), 4);
        flusher.stop();
        // Zero shards degrades to one worker, never zero.
        assert_eq!(
            RingConfig {
                flusher_shards: 0,
                ..RingConfig::default()
            }
            .shard_count(),
            1
        );
    }

    #[test]
    fn shard_assignment_is_stable_and_covers_all_shards() {
        let c = RingConfig {
            flusher_shards: 4,
            ..RingConfig::default()
        };
        for id in 0..64u32 {
            let shard = c.shard_of(EndpointId(id));
            assert!(shard < 4);
            assert_eq!(shard, c.shard_of(EndpointId(id)), "assignment is stable");
        }
        let hit: std::collections::HashSet<usize> =
            (0..8u32).map(|id| c.shard_of(EndpointId(id))).collect();
        assert_eq!(hit.len(), 4, "8 consecutive ids cover all 4 shards");
    }

    /// Deterministic-mode regression: the virtual-clock delivery trace
    /// must be identical before and after sharding, because `pump` /
    /// `flush_at` stay single-threaded over every endpoint.
    #[test]
    fn pump_trace_is_identical_across_shard_counts() {
        fn trace(shards: usize) -> Vec<Vec<(u32, u8)>> {
            let fabric = RingFabric::new(RingConfig {
                flusher_shards: shards,
                ring_capacity: 1024,
                batch: BatchConfig {
                    mms: 64,
                    wtl: SimDuration::from_millis(1),
                },
                ..RingConfig::default()
            });
            let rxs: Vec<_> = (0..5u32)
                .map(|d| fabric.register(EndpointId(d)).unwrap())
                .collect();
            let mut now = SimTime::ZERO;
            for seq in 0..40u8 {
                for d in 0..5u32 {
                    fabric
                        .send_copied(EndpointId(100), EndpointId(d), &[seq; 20])
                        .unwrap();
                }
                fabric.pump(now);
                now += SimDuration::from_micros(100);
            }
            fabric.flush_at(now);
            rxs.iter()
                .map(|rx| {
                    std::iter::from_fn(|| rx.try_recv().ok())
                        .map(|m| (m.from.0, m.payload.bytes()[0]))
                        .collect()
                })
                .collect()
        }
        let unsharded = trace(1);
        assert_eq!(unsharded, trace(2));
        assert_eq!(unsharded, trace(4));
        assert!(unsharded.iter().all(|per_ep| per_ep.len() == 40));
    }

    #[test]
    fn multi_shard_stress_keeps_per_endpoint_fifo() {
        const SENDERS: u32 = 4;
        const ENDPOINTS: u32 = 6;
        const PER_PAIR: u32 = 500;
        let fabric = Arc::new(RingFabric::new(RingConfig {
            ring_capacity: (SENDERS * PER_PAIR) as usize,
            batch: BatchConfig {
                mms: 2 * 1024,
                wtl: SimDuration::from_millis(1),
            },
            flusher_shards: 4,
            ..RingConfig::default()
        }));
        let flusher = spawn_flusher(Arc::clone(&fabric));
        assert_eq!(flusher.shard_count(), 4);
        let rxs: Vec<_> = (0..ENDPOINTS)
            .map(|d| fabric.register(EndpointId(d)).unwrap())
            .collect();

        let producers: Vec<_> = (1..=SENDERS)
            .map(|s| {
                let f = Arc::clone(&fabric);
                std::thread::spawn(move || {
                    for seq in 0..PER_PAIR {
                        for d in 0..ENDPOINTS {
                            let frame = [(100 + s).to_le_bytes(), seq.to_le_bytes()].concat();
                            loop {
                                match f.send_copied(EndpointId(100 + s), EndpointId(d), &frame) {
                                    Ok(()) => break,
                                    Err(SendError::Full) => std::thread::yield_now(),
                                    Err(e) => panic!("unexpected send error: {e}"),
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }

        for rx in &rxs {
            let mut next_seq = vec![0u32; SENDERS as usize + 1];
            for _ in 0..SENDERS * PER_PAIR {
                let msg = rx
                    .recv_timeout(Duration::from_secs(10))
                    .expect("every accepted post is delivered");
                let bytes = msg.payload.bytes();
                let s = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) - 100;
                let seq = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
                assert_eq!(
                    seq, next_seq[s as usize],
                    "per-(sender, endpoint) FIFO order under 4 shards"
                );
                next_seq[s as usize] = seq + 1;
            }
            assert!(rx.try_recv().is_err(), "no duplicated descriptors");
        }
        assert_eq!(
            fabric.messages(),
            (SENDERS * ENDPOINTS * PER_PAIR) as u64,
            "lossless across shards"
        );
        flusher.stop();
    }

    #[test]
    fn export_metrics_snapshot() {
        let fabric = RingFabric::new(cfg(16, 64, 1));
        let rx = fabric.register(EndpointId(1)).unwrap();
        for _ in 0..4 {
            fabric
                .send_copied(EndpointId(0), EndpointId(1), &[0u8; 32])
                .unwrap();
        }
        fabric.flush_at(SimTime::ZERO);
        drop(rx);
        let mut reg = MetricsRegistry::new();
        fabric.export_metrics(&mut reg, "ring");
        assert_eq!(reg.counter("ring.posted"), Some(4));
        assert_eq!(reg.counter("ring.messages"), Some(4));
        assert_eq!(reg.counter("ring.copied_bytes"), Some(128));
        assert_eq!(reg.counter("ring.flushed_batches"), Some(2));
        assert!(reg.gauge("ring.mean_batch_size").unwrap() > 1.0);
    }
}
