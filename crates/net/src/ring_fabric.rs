//! `RingFabric`: a bounded ring-buffer live transport with verbs-style
//! doorbell semantics.
//!
//! Sends *post a descriptor* into a fixed-capacity per-endpoint ring and
//! ring a doorbell — they never touch the destination inbox directly. A
//! flusher (a background thread in live mode, or the caller via
//! [`RingFabric::pump`] in deterministic mode) drains each ring into the
//! stream-slicing [`Batcher`] and delivers whole MMS/WTL batches, so the
//! live path exercises the same batching policy the simulator models
//! (§4, Figs 11–12):
//!
//! - a post that would exceed the ring capacity fails with
//!   [`SendError::Full`] — the bounded transfer queue of the paper's M/D/1
//!   model, surfaced as backpressure instead of a deadlock;
//! - batches flush when buffered bytes reach MMS or the oldest descriptor
//!   has waited WTL (the flusher's monitor tick drives
//!   [`Batcher::deadline`]);
//! - per-sender FIFO order is preserved end to end: posts enter the ring
//!   in order, batches drain in order, deliveries retry in order when the
//!   destination inbox is bounded and momentarily full.
//!
//! Byte counters follow the same rule as [`LiveFabric`]: only bytes that
//! actually reach an inbox count; failed posts and failed deliveries
//! increment `send_errors`.

use crate::batch::{BatchConfig, Batcher};
use crate::fabric::{
    EndpointId, FabricPath, LiveFabric, LiveMessage, Payload, RegisterError, SendError,
};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use whale_sim::{MetricsRegistry, SimTime};

/// Configuration of the ring transport.
#[derive(Clone, Copy, Debug)]
pub struct RingConfig {
    /// Per-endpoint descriptor-ring capacity: the maximum number of posted
    /// but not yet delivered descriptors. Posts beyond it fail with
    /// [`SendError::Full`].
    pub ring_capacity: usize,
    /// The MMS/WTL stream-slicing policy the flusher applies.
    pub batch: BatchConfig,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            ring_capacity: 64 * 1024,
            batch: BatchConfig::default(),
        }
    }
}

/// One endpoint's send state: the descriptor ring, the transfer buffer,
/// and the inbox it drains into.
struct EndpointRing {
    /// Posted, not yet drained descriptors (the send ring proper).
    ring: VecDeque<LiveMessage>,
    /// The MMS/WTL transfer buffer the flusher drains the ring into.
    batcher: Batcher<LiveMessage>,
    /// Destination inbox.
    tx: Sender<LiveMessage>,
    /// Batch items a bounded inbox could not yet accept; retried first on
    /// the next pump so FIFO order holds.
    undelivered: VecDeque<LiveMessage>,
}

impl EndpointRing {
    /// Descriptors posted but not yet handed to the inbox.
    fn pending(&self) -> usize {
        self.ring.len() + self.batcher.len() + self.undelivered.len()
    }
}

/// Doorbell: posts set a pending flag and wake the flusher; the flusher
/// clears the flag before sleeping so a post between pump and wait can
/// never be missed.
struct Doorbell {
    pending: StdMutex<bool>,
    bell: Condvar,
}

impl Doorbell {
    fn new() -> Self {
        Doorbell {
            pending: StdMutex::new(false),
            bell: Condvar::new(),
        }
    }

    fn ring(&self) {
        *self.pending.lock().expect("doorbell lock") = true;
        self.bell.notify_all();
    }

    /// Sleep until rung or `timeout`, consuming the pending flag.
    fn wait(&self, timeout: Duration) {
        let guard = self.pending.lock().expect("doorbell lock");
        let (mut guard, _) = self
            .bell
            .wait_timeout_while(guard, timeout, |pending| !*pending)
            .expect("doorbell wait");
        *guard = false;
    }
}

/// The batched ring-buffer transport. See the module docs for semantics.
pub struct RingFabric {
    config: RingConfig,
    endpoints: RwLock<HashMap<EndpointId, Arc<Mutex<EndpointRing>>>>,
    doorbell: Doorbell,
    copied_bytes: AtomicU64,
    shared_bytes: AtomicU64,
    messages: AtomicU64,
    send_errors: AtomicU64,
    /// Descriptors accepted into rings.
    posted: AtomicU64,
    flushed_batches: AtomicU64,
    flushed_items: AtomicU64,
    /// Live-mode clock origin for mapping wall time onto [`SimTime`].
    epoch: Instant,
    stopping: AtomicBool,
}

impl Default for RingFabric {
    fn default() -> Self {
        Self::new(RingConfig::default())
    }
}

impl RingFabric {
    /// New ring fabric with no endpoints. Pair with [`spawn_flusher`] for
    /// live use, or drive [`RingFabric::pump`] manually with a virtual
    /// clock for deterministic benchmarks.
    pub fn new(config: RingConfig) -> Self {
        assert!(config.ring_capacity > 0, "ring capacity must be positive");
        RingFabric {
            config,
            endpoints: RwLock::new(HashMap::new()),
            doorbell: Doorbell::new(),
            copied_bytes: AtomicU64::new(0),
            shared_bytes: AtomicU64::new(0),
            messages: AtomicU64::new(0),
            send_errors: AtomicU64::new(0),
            posted: AtomicU64::new(0),
            flushed_batches: AtomicU64::new(0),
            flushed_items: AtomicU64::new(0),
            epoch: Instant::now(),
            stopping: AtomicBool::new(false),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> RingConfig {
        self.config
    }

    /// Wall time since this fabric was created, as a [`SimTime`] (live
    /// flusher mode only; deterministic callers pass their own clock).
    pub fn wall_now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    fn install(&self, id: EndpointId, tx: Sender<LiveMessage>) -> Result<(), RegisterError> {
        let mut map = self.endpoints.write();
        if map.contains_key(&id) {
            return Err(RegisterError::AlreadyRegistered(id));
        }
        map.insert(
            id,
            Arc::new(Mutex::new(EndpointRing {
                ring: VecDeque::new(),
                batcher: Batcher::new(self.config.batch),
                tx,
                undelivered: VecDeque::new(),
            })),
        );
        Ok(())
    }

    /// Register an endpoint with an unbounded inbox; returns its receiver.
    pub fn register(&self, id: EndpointId) -> Result<Receiver<LiveMessage>, RegisterError> {
        let (tx, rx) = unbounded();
        self.install(id, tx)?;
        Ok(rx)
    }

    /// Register an endpoint whose inbox holds at most `capacity` delivered
    /// messages; full inboxes park flushed batches for later retry rather
    /// than dropping them.
    pub fn register_bounded(
        &self,
        id: EndpointId,
        capacity: usize,
    ) -> Result<Receiver<LiveMessage>, RegisterError> {
        let (tx, rx) = bounded(capacity);
        self.install(id, tx)?;
        Ok(rx)
    }

    /// Remove an endpoint; pending descriptors are dropped. Flush first if
    /// they must arrive.
    pub fn deregister(&self, id: EndpointId) {
        self.endpoints.write().remove(&id);
    }

    /// Post a descriptor to `to`'s ring and ring the doorbell.
    fn post(&self, to: EndpointId, msg: LiveMessage) -> Result<(), SendError> {
        let slot = self.endpoints.read().get(&to).cloned();
        let Some(slot) = slot else {
            self.send_errors.fetch_add(1, Ordering::Relaxed);
            return Err(SendError::UnknownEndpoint);
        };
        {
            let mut ep = slot.lock();
            if ep.pending() >= self.config.ring_capacity {
                drop(ep);
                self.send_errors.fetch_add(1, Ordering::Relaxed);
                return Err(SendError::Full);
            }
            ep.ring.push_back(msg);
        }
        self.posted.fetch_add(1, Ordering::Relaxed);
        self.doorbell.ring();
        Ok(())
    }

    /// TCP-semantics post: the bytes are copied into the descriptor now
    /// (the copy tax is paid per destination), counted on delivery.
    pub fn send_copied(
        &self,
        from: EndpointId,
        to: EndpointId,
        bytes: &[u8],
    ) -> Result<(), SendError> {
        self.post(
            to,
            LiveMessage {
                from,
                payload: Payload::Copied(bytes.to_vec()),
            },
        )
    }

    /// RDMA-semantics post: the shared buffer rides the descriptor by
    /// reference, counted on delivery.
    pub fn send_shared(
        &self,
        from: EndpointId,
        to: EndpointId,
        buf: Arc<[u8]>,
    ) -> Result<(), SendError> {
        self.post(
            to,
            LiveMessage {
                from,
                payload: Payload::Shared(buf),
            },
        )
    }

    /// Snapshot the endpoint slots in id order, so deterministic pumps
    /// visit rings in a stable order.
    fn slots(&self) -> Vec<Arc<Mutex<EndpointRing>>> {
        let map = self.endpoints.read();
        let mut ids: Vec<(EndpointId, Arc<Mutex<EndpointRing>>)> =
            map.iter().map(|(id, s)| (*id, Arc::clone(s))).collect();
        ids.sort_by_key(|(id, _)| *id);
        ids.into_iter().map(|(_, s)| s).collect()
    }

    fn note_batch(&self, n_items: usize) {
        self.flushed_batches.fetch_add(1, Ordering::Relaxed);
        self.flushed_items.fetch_add(n_items as u64, Ordering::Relaxed);
    }

    /// Hand parked batch items to the inbox, preserving order. Stops at a
    /// full bounded inbox (retried next pump); drops and counts errors on
    /// a disconnected one.
    fn drain_undelivered(&self, ep: &mut EndpointRing) -> u64 {
        let mut delivered = 0;
        while let Some(msg) = ep.undelivered.pop_front() {
            let len = msg.payload.len() as u64;
            let shared = matches!(msg.payload, Payload::Shared(_));
            // Count before the hand-off: the channel's send→recv
            // synchronization then guarantees that a receiver which has
            // seen the message also sees the counters (counting after
            // would let a reader observe the delivery but a stale count).
            // Failed hand-offs undo the increment below.
            let bytes_ctr = if shared {
                &self.shared_bytes
            } else {
                &self.copied_bytes
            };
            self.messages.fetch_add(1, Ordering::Relaxed);
            bytes_ctr.fetch_add(len, Ordering::Relaxed);
            match ep.tx.try_send(msg) {
                Ok(()) => delivered += 1,
                Err(TrySendError::Full(msg)) => {
                    self.messages.fetch_sub(1, Ordering::Relaxed);
                    bytes_ctr.fetch_sub(len, Ordering::Relaxed);
                    ep.undelivered.push_front(msg);
                    break;
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.messages.fetch_sub(1, Ordering::Relaxed);
                    bytes_ctr.fetch_sub(len, Ordering::Relaxed);
                    self.send_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        delivered
    }

    /// One flusher pass at time `now`: drain every ring into its batcher
    /// (size-triggered batches flush immediately), fire expired WTL timers,
    /// and deliver flushed items. Returns the number delivered.
    pub fn pump(&self, now: SimTime) -> u64 {
        let mut delivered = 0;
        for slot in self.slots() {
            let mut ep = slot.lock();
            while let Some(msg) = ep.ring.pop_front() {
                let bytes = msg.payload.len();
                if let Some(batch) = ep.batcher.offer(now, msg, bytes) {
                    self.note_batch(batch.items.len());
                    ep.undelivered.extend(batch.items);
                }
            }
            if let Some(batch) = ep.batcher.on_timer(now) {
                self.note_batch(batch.items.len());
                ep.undelivered.extend(batch.items);
            }
            delivered += self.drain_undelivered(&mut ep);
        }
        delivered
    }

    /// Force everything out at time `now`: pump, then force-flush every
    /// batcher regardless of MMS/WTL and deliver (shutdown / end of a
    /// deterministic run). Returns the number delivered.
    pub fn flush_at(&self, now: SimTime) -> u64 {
        let mut delivered = self.pump(now);
        for slot in self.slots() {
            let mut ep = slot.lock();
            if let Some(batch) = ep.batcher.flush() {
                self.note_batch(batch.items.len());
                ep.undelivered.extend(batch.items);
            }
            delivered += self.drain_undelivered(&mut ep);
        }
        delivered
    }

    /// Earliest WTL deadline across endpoints; `SimTime::ZERO` if any ring
    /// or retry queue already holds work. `None` when fully idle.
    pub fn next_deadline(&self) -> Option<SimTime> {
        let map = self.endpoints.read();
        map.values()
            .filter_map(|slot| {
                let ep = slot.lock();
                if !ep.ring.is_empty() || !ep.undelivered.is_empty() {
                    Some(SimTime::ZERO)
                } else {
                    ep.batcher.deadline()
                }
            })
            .min()
    }

    /// Descriptors accepted into rings so far.
    pub fn posted(&self) -> u64 {
        self.posted.load(Ordering::Relaxed)
    }

    /// Messages delivered so far.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Bytes delivered through the copied (TCP) path so far.
    pub fn copied_bytes(&self) -> u64 {
        self.copied_bytes.load(Ordering::Relaxed)
    }

    /// Bytes delivered through the shared (RDMA) path so far.
    pub fn shared_bytes(&self) -> u64 {
        self.shared_bytes.load(Ordering::Relaxed)
    }

    /// Failed posts plus failed deliveries so far.
    pub fn send_errors(&self) -> u64 {
        self.send_errors.load(Ordering::Relaxed)
    }

    /// Batches flushed so far.
    pub fn flushed_batches(&self) -> u64 {
        self.flushed_batches.load(Ordering::Relaxed)
    }

    /// Items delivered through flushed batches so far.
    pub fn flushed_items(&self) -> u64 {
        self.flushed_items.load(Ordering::Relaxed)
    }

    /// Mean items per flushed batch (0 if none flushed yet).
    pub fn mean_batch_size(&self) -> f64 {
        let batches = self.flushed_batches();
        if batches == 0 {
            0.0
        } else {
            self.flushed_items() as f64 / batches as f64
        }
    }

    /// Registered endpoint count.
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.read().len()
    }

    /// Export delivery and batching counters into `reg` under `prefix.*`.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.set_counter(&format!("{prefix}.posted"), self.posted());
        reg.set_counter(&format!("{prefix}.messages"), self.messages());
        reg.set_counter(&format!("{prefix}.copied_bytes"), self.copied_bytes());
        reg.set_counter(&format!("{prefix}.shared_bytes"), self.shared_bytes());
        reg.set_counter(&format!("{prefix}.send_errors"), self.send_errors());
        reg.set_counter(&format!("{prefix}.flushed_batches"), self.flushed_batches());
        reg.set_counter(&format!("{prefix}.flushed_items"), self.flushed_items());
        reg.set_gauge(&format!("{prefix}.mean_batch_size"), self.mean_batch_size());
        reg.set_gauge(
            &format!("{prefix}.endpoints"),
            self.endpoints.read().len() as f64,
        );
    }
}

impl FabricPath for RingFabric {
    fn register(&self, id: EndpointId) -> Result<Receiver<LiveMessage>, RegisterError> {
        RingFabric::register(self, id)
    }

    fn register_bounded(
        &self,
        id: EndpointId,
        capacity: usize,
    ) -> Result<Receiver<LiveMessage>, RegisterError> {
        RingFabric::register_bounded(self, id, capacity)
    }

    fn deregister(&self, id: EndpointId) {
        RingFabric::deregister(self, id);
    }

    fn send_copied(
        &self,
        from: EndpointId,
        to: EndpointId,
        bytes: &[u8],
    ) -> Result<(), SendError> {
        RingFabric::send_copied(self, from, to, bytes)
    }

    fn send_shared(
        &self,
        from: EndpointId,
        to: EndpointId,
        buf: Arc<[u8]>,
    ) -> Result<(), SendError> {
        RingFabric::send_shared(self, from, to, buf)
    }

    fn flush(&self) {
        self.flush_at(self.wall_now());
    }

    fn messages(&self) -> u64 {
        RingFabric::messages(self)
    }

    fn copied_bytes(&self) -> u64 {
        RingFabric::copied_bytes(self)
    }

    fn shared_bytes(&self) -> u64 {
        RingFabric::shared_bytes(self)
    }

    fn send_errors(&self) -> u64 {
        RingFabric::send_errors(self)
    }

    fn flushed_batches(&self) -> u64 {
        RingFabric::flushed_batches(self)
    }

    fn flushed_items(&self) -> u64 {
        RingFabric::flushed_items(self)
    }

    fn endpoint_count(&self) -> usize {
        RingFabric::endpoint_count(self)
    }

    fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        RingFabric::export_metrics(self, reg, prefix);
    }
}

/// Handle to a background flusher thread. Stop it (or drop it) to force a
/// final flush and join the thread.
pub struct RingFlusher {
    fabric: Arc<RingFabric>,
    handle: Option<JoinHandle<()>>,
}

impl RingFlusher {
    /// Signal the flusher to drain everything and exit, then join it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.fabric.stopping.store(true, Ordering::SeqCst);
        self.fabric.doorbell.ring();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RingFlusher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawn the background flusher: it waits on the doorbell, pumps on every
/// post, honours WTL deadlines between posts, and force-flushes on stop.
pub fn spawn_flusher(fabric: Arc<RingFabric>) -> RingFlusher {
    let worker = Arc::clone(&fabric);
    let handle = std::thread::Builder::new()
        .name("ring-flusher".into())
        .spawn(move || flusher_loop(&worker))
        .expect("spawn ring flusher");
    RingFlusher {
        fabric,
        handle: Some(handle),
    }
}

fn flusher_loop(fabric: &RingFabric) {
    // Idle heartbeat so a lost wakeup can never stall the fabric for long.
    const IDLE: Duration = Duration::from_millis(5);
    // Backoff while a bounded inbox stays full (delivery made no progress).
    const STALLED: Duration = Duration::from_micros(100);
    loop {
        let delivered = fabric.pump(fabric.wall_now());
        if fabric.stopping.load(Ordering::SeqCst) {
            fabric.flush_at(fabric.wall_now());
            return;
        }
        let wait = match fabric.next_deadline() {
            Some(deadline) => {
                let now = fabric.wall_now();
                if deadline <= now {
                    if delivered == 0 {
                        STALLED
                    } else {
                        // More work is already due; pump again immediately.
                        continue;
                    }
                } else {
                    Duration::from_nanos(deadline.as_nanos() - now.as_nanos())
                }
            }
            None => IDLE,
        };
        fabric.doorbell.wait(wait);
    }
}

/// Which live transport a runtime should instantiate.
#[derive(Clone, Copy, Debug, Default)]
pub enum FabricKind {
    /// The synchronous per-send channel map ([`LiveFabric`]).
    #[default]
    PerSend,
    /// The batched ring-buffer path ([`RingFabric`]) with a background
    /// flusher.
    Ring(RingConfig),
}

/// A built live transport plus, on the ring path, its flusher thread.
pub struct FabricInstance {
    /// The shared transport handle.
    pub fabric: Arc<dyn FabricPath>,
    flusher: Option<RingFlusher>,
}

impl FabricKind {
    /// Instantiate the transport (and its flusher, for the ring path).
    pub fn build(self) -> FabricInstance {
        match self {
            FabricKind::PerSend => FabricInstance {
                fabric: Arc::new(LiveFabric::new()),
                flusher: None,
            },
            FabricKind::Ring(config) => {
                let ring = Arc::new(RingFabric::new(config));
                let flusher = spawn_flusher(Arc::clone(&ring));
                FabricInstance {
                    fabric: ring,
                    flusher: Some(flusher),
                }
            }
        }
    }
}

impl FabricInstance {
    /// Flush buffered sends and stop the flusher (if any). Call after all
    /// senders have finished but before deregistering receivers.
    pub fn shutdown(&mut self) {
        self.fabric.flush();
        if let Some(flusher) = self.flusher.take() {
            flusher.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_sim::SimDuration;

    fn cfg(ring_capacity: usize, mms: usize, wtl_ms: u64) -> RingConfig {
        RingConfig {
            ring_capacity,
            batch: BatchConfig {
                mms,
                wtl: SimDuration::from_millis(wtl_ms),
            },
        }
    }

    #[test]
    fn posts_sit_in_ring_until_pumped() {
        let fabric = RingFabric::new(cfg(16, 1_000_000, 1));
        let rx = fabric.register(EndpointId(1)).unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"hello")
            .unwrap();
        assert!(rx.try_recv().is_err(), "nothing delivered before a flush");
        assert_eq!(fabric.posted(), 1);
        assert_eq!(fabric.messages(), 0);
        assert_eq!(fabric.copied_bytes(), 0, "bytes count on delivery only");

        // Under MMS and before WTL: still buffered after a pump.
        fabric.pump(SimTime::ZERO);
        assert!(rx.try_recv().is_err());

        // Past WTL: the timer flushes the batch.
        let delivered = fabric.pump(SimTime::from_millis(1));
        assert_eq!(delivered, 1);
        assert_eq!(rx.recv().unwrap().payload.bytes(), b"hello");
        assert_eq!(fabric.copied_bytes(), 5);
        assert_eq!(fabric.flushed_batches(), 1);
    }

    #[test]
    fn mms_triggers_size_batches() {
        let fabric = RingFabric::new(cfg(1024, 100, 1_000));
        let rx = fabric.register(EndpointId(1)).unwrap();
        for _ in 0..10 {
            fabric
                .send_copied(EndpointId(0), EndpointId(1), &[0u8; 25])
                .unwrap();
        }
        // 10 × 25 B versus MMS 100 B: pumps flush by size alone, no WTL.
        let delivered = fabric.pump(SimTime::ZERO);
        assert_eq!(delivered, 8, "two full batches of four 25 B items");
        assert_eq!(fabric.flushed_batches(), 2);
        assert!((fabric.mean_batch_size() - 4.0).abs() < 1e-12);
        // The remainder needs a forced flush (or a WTL tick).
        assert_eq!(fabric.flush_at(SimTime::ZERO), 2);
        assert_eq!(std::iter::from_fn(|| rx.try_recv().ok()).count(), 10);
    }

    #[test]
    fn full_ring_backpressures_without_deadlock() {
        let fabric = RingFabric::new(cfg(2, 1_000_000, 1));
        let _rx = fabric.register(EndpointId(1)).unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"a")
            .unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"b")
            .unwrap();
        let err = fabric
            .send_copied(EndpointId(0), EndpointId(1), b"c")
            .unwrap_err();
        assert_eq!(err, SendError::Full);
        assert_eq!(fabric.send_errors(), 1);
        // Draining the ring frees capacity.
        fabric.flush_at(SimTime::ZERO);
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"c")
            .unwrap();
    }

    #[test]
    fn unknown_endpoint_and_disconnected_count_errors_not_bytes() {
        let fabric = RingFabric::new(cfg(16, 1_000_000, 1));
        assert_eq!(
            fabric
                .send_copied(EndpointId(0), EndpointId(9), b"x")
                .unwrap_err(),
            SendError::UnknownEndpoint
        );
        let rx = fabric.register(EndpointId(1)).unwrap();
        drop(rx);
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"xx")
            .unwrap();
        fabric.flush_at(SimTime::ZERO);
        assert_eq!(fabric.send_errors(), 2);
        assert_eq!(fabric.copied_bytes(), 0);
        assert_eq!(fabric.messages(), 0);
    }

    #[test]
    fn bounded_inbox_parks_and_retries_in_order() {
        let fabric = RingFabric::new(cfg(16, 1_000_000, 1));
        let rx = fabric.register_bounded(EndpointId(1), 2).unwrap();
        for b in [b"a", b"b", b"c", b"d"] {
            fabric.send_copied(EndpointId(0), EndpointId(1), b).unwrap();
        }
        // Only two fit the inbox; the rest park, nothing is lost.
        assert_eq!(fabric.flush_at(SimTime::ZERO), 2);
        assert_eq!(rx.try_recv().unwrap().payload.bytes(), b"a");
        assert_eq!(rx.try_recv().unwrap().payload.bytes(), b"b");
        assert_eq!(fabric.pump(SimTime::ZERO), 2);
        assert_eq!(rx.try_recv().unwrap().payload.bytes(), b"c");
        assert_eq!(rx.try_recv().unwrap().payload.bytes(), b"d");
        assert_eq!(fabric.send_errors(), 0);
    }

    #[test]
    fn reregister_errors_until_deregistered() {
        let fabric = RingFabric::new(RingConfig::default());
        let _rx = fabric.register(EndpointId(3)).unwrap();
        assert_eq!(
            fabric.register(EndpointId(3)).unwrap_err(),
            RegisterError::AlreadyRegistered(EndpointId(3))
        );
        fabric.deregister(EndpointId(3));
        assert!(fabric.register(EndpointId(3)).is_ok());
    }

    #[test]
    fn next_deadline_reflects_pending_work() {
        let fabric = RingFabric::new(cfg(16, 1_000_000, 2));
        let _rx = fabric.register(EndpointId(1)).unwrap();
        assert_eq!(fabric.next_deadline(), None, "idle fabric has no deadline");
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"x")
            .unwrap();
        assert_eq!(
            fabric.next_deadline(),
            Some(SimTime::ZERO),
            "undrained ring is immediately due"
        );
        fabric.pump(SimTime::from_millis(1));
        assert_eq!(
            fabric.next_deadline(),
            Some(SimTime::from_millis(3)),
            "buffered item is due at offer time + WTL"
        );
        fabric.pump(SimTime::from_millis(3));
        assert_eq!(fabric.next_deadline(), None);
    }

    #[test]
    fn live_flusher_delivers_without_manual_pumps() {
        let fabric = Arc::new(RingFabric::new(cfg(1024, 1_000_000, 1)));
        let flusher = spawn_flusher(Arc::clone(&fabric));
        let rx = fabric.register(EndpointId(1)).unwrap();
        for i in 0..50u8 {
            fabric
                .send_copied(EndpointId(0), EndpointId(1), &[i])
                .unwrap();
        }
        // WTL is 1 ms; the flusher must deliver well within the timeout.
        let got: Vec<u8> = (0..50)
            .map(|_| {
                rx.recv_timeout(Duration::from_secs(5))
                    .expect("flusher delivers")
                    .payload
                    .bytes()[0]
            })
            .collect();
        assert_eq!(got, (0..50).collect::<Vec<u8>>());
        flusher.stop();
    }

    #[test]
    fn flusher_stop_flushes_stragglers() {
        let fabric = Arc::new(RingFabric::new(cfg(1024, 1_000_000, 10_000)));
        let flusher = spawn_flusher(Arc::clone(&fabric));
        let rx = fabric.register(EndpointId(1)).unwrap();
        // WTL is 10 s: nothing would flush on its own within the test.
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"tail")
            .unwrap();
        flusher.stop();
        assert_eq!(rx.try_recv().unwrap().payload.bytes(), b"tail");
    }

    #[test]
    fn multi_producer_stress_keeps_per_sender_order() {
        const SENDERS: u32 = 8;
        const PER_SENDER: u32 = 2_000;
        let fabric = Arc::new(RingFabric::new(cfg(
            (SENDERS * PER_SENDER) as usize,
            4 * 1024,
            1,
        )));
        let flusher = spawn_flusher(Arc::clone(&fabric));
        let rx = fabric.register(EndpointId(0)).unwrap();

        let producers: Vec<_> = (1..=SENDERS)
            .map(|s| {
                let f = Arc::clone(&fabric);
                std::thread::spawn(move || {
                    for seq in 0..PER_SENDER {
                        let frame = [s.to_le_bytes(), seq.to_le_bytes()].concat();
                        // The ring is sized to hold everything, so Full
                        // can only mean lost capacity accounting.
                        f.send_copied(EndpointId(s), EndpointId(0), &frame)
                            .unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }

        let mut next_seq = vec![0u32; SENDERS as usize + 1];
        for _ in 0..SENDERS * PER_SENDER {
            let msg = rx
                .recv_timeout(Duration::from_secs(10))
                .expect("no descriptor lost");
            let bytes = msg.payload.bytes();
            let s = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
            let seq = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
            assert_eq!(msg.from, EndpointId(s));
            assert_eq!(seq, next_seq[s as usize], "per-sender FIFO order");
            next_seq[s as usize] = seq + 1;
        }
        assert!(rx.try_recv().is_err(), "no duplicated descriptors");
        assert_eq!(fabric.messages(), (SENDERS * PER_SENDER) as u64);
        assert_eq!(fabric.send_errors(), 0);
        assert!(fabric.mean_batch_size() >= 1.0);
        flusher.stop();
    }

    #[test]
    fn stress_with_tiny_ring_backpressures_cleanly() {
        const SENDERS: u32 = 4;
        const PER_SENDER: u32 = 500;
        let fabric = Arc::new(RingFabric::new(cfg(8, 64, 1)));
        let flusher = spawn_flusher(Arc::clone(&fabric));
        let rx = fabric.register(EndpointId(0)).unwrap();

        let producers: Vec<_> = (1..=SENDERS)
            .map(|s| {
                let f = Arc::clone(&fabric);
                std::thread::spawn(move || {
                    let mut retries = 0u64;
                    for seq in 0..PER_SENDER {
                        let frame = [s.to_le_bytes(), seq.to_le_bytes()].concat();
                        // Backpressure shows up as Full, never a deadlock:
                        // retry until the flusher frees ring capacity.
                        loop {
                            match f.send_copied(EndpointId(s), EndpointId(0), &frame) {
                                Ok(()) => break,
                                Err(SendError::Full) => {
                                    retries += 1;
                                    std::thread::yield_now();
                                }
                                Err(e) => panic!("unexpected send error: {e}"),
                            }
                        }
                    }
                    retries
                })
            })
            .collect();
        let _retries: u64 = producers.into_iter().map(|p| p.join().unwrap()).sum();

        let mut next_seq = vec![0u32; SENDERS as usize + 1];
        for _ in 0..SENDERS * PER_SENDER {
            let msg = rx
                .recv_timeout(Duration::from_secs(10))
                .expect("every accepted post is delivered");
            let bytes = msg.payload.bytes();
            let s = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
            let seq = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
            assert_eq!(seq, next_seq[s as usize], "per-sender FIFO order");
            next_seq[s as usize] = seq + 1;
        }
        assert!(rx.try_recv().is_err());
        assert_eq!(fabric.messages(), (SENDERS * PER_SENDER) as u64);
        flusher.stop();
    }

    #[test]
    fn fabric_kind_builds_interchangeable_paths() {
        for kind in [FabricKind::PerSend, FabricKind::Ring(RingConfig::default())] {
            let mut instance = kind.build();
            let rx = instance.fabric.register(EndpointId(1)).unwrap();
            instance
                .fabric
                .send_copied(EndpointId(0), EndpointId(1), b"hi")
                .unwrap();
            instance.fabric.flush();
            assert_eq!(
                rx.recv_timeout(Duration::from_secs(5))
                    .unwrap()
                    .payload
                    .bytes(),
                b"hi"
            );
            assert_eq!(instance.fabric.messages(), 1);
            instance.shutdown();
        }
    }

    #[test]
    fn export_metrics_snapshot() {
        let fabric = RingFabric::new(cfg(16, 64, 1));
        let rx = fabric.register(EndpointId(1)).unwrap();
        for _ in 0..4 {
            fabric
                .send_copied(EndpointId(0), EndpointId(1), &[0u8; 32])
                .unwrap();
        }
        fabric.flush_at(SimTime::ZERO);
        drop(rx);
        let mut reg = MetricsRegistry::new();
        fabric.export_metrics(&mut reg, "ring");
        assert_eq!(reg.counter("ring.posted"), Some(4));
        assert_eq!(reg.counter("ring.messages"), Some(4));
        assert_eq!(reg.counter("ring.copied_bytes"), Some(128));
        assert_eq!(reg.counter("ring.flushed_batches"), Some(2));
        assert!(reg.gauge("ring.mean_batch_size").unwrap() > 1.0);
    }
}
