//! Verbs-style RDMA abstraction: queue pairs, work requests, completions.
//!
//! This mirrors the shape of the ibverbs API Whale programs against via
//! DiSNI, reduced to what the simulation needs: posting a work request has
//! a (verb-dependent) CPU cost, the transfer occupies the NIC for the wire
//! time, and a completion is delivered to the completion queue when the
//! transfer finishes. The cost numbers come from [`whale_sim::CostModel`].

use crate::topology::MachineId;
use std::collections::VecDeque;
use whale_sim::{CostModel, MetricsRegistry, SimDuration, SimTime, Transport, Verb};

/// Identifier of a queue pair (one reliable connection between two nodes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct QpId(pub u64);

/// Identifier the application attaches to a work request.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct WrId(pub u64);

/// A work request posted to a queue pair.
#[derive(Clone, Debug)]
pub struct WorkRequest {
    /// Application-chosen id, echoed in the completion.
    pub wr_id: WrId,
    /// Verb of this request.
    pub verb: Verb,
    /// Message size in bytes.
    pub bytes: usize,
}

/// Completion status.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WcStatus {
    /// Transfer finished successfully.
    Success,
    /// The remote end was disconnected mid-transfer.
    FlushError,
}

/// A work completion delivered to a completion queue.
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    /// The id of the completed work request.
    pub wr_id: WrId,
    /// Outcome.
    pub status: WcStatus,
    /// Virtual time the completion was generated.
    pub at: SimTime,
}

/// A completion queue: completions are polled in delivery order.
#[derive(Clone, Debug, Default)]
pub struct CompletionQueue {
    queue: VecDeque<Completion>,
    delivered: u64,
}

impl CompletionQueue {
    /// New empty CQ.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deliver a completion (called by the fabric).
    pub fn deliver(&mut self, c: Completion) {
        self.queue.push_back(c);
        self.delivered += 1;
    }

    /// Poll one completion, if any.
    pub fn poll(&mut self) -> Option<Completion> {
        self.queue.pop_front()
    }

    /// Poll up to `n` completions.
    pub fn poll_n(&mut self, n: usize) -> Vec<Completion> {
        let take = n.min(self.queue.len());
        self.queue.drain(..take).collect()
    }

    /// Completions waiting to be polled.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total completions ever delivered.
    pub fn total_delivered(&self) -> u64 {
        self.delivered
    }

    /// Export delivery counters into `reg` under `prefix.*`.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.set_counter(&format!("{prefix}.completions"), self.delivered);
        reg.set_gauge(&format!("{prefix}.pending"), self.queue.len() as f64);
    }
}

/// A queue pair: one end of a reliable connection, bound to a transport.
///
/// The QP itself is pure bookkeeping; timing comes from
/// [`QueuePair::post`] which returns the cost breakdown of the posted
/// request for the simulation to schedule.
#[derive(Clone, Debug)]
pub struct QueuePair {
    /// Id of this QP.
    pub id: QpId,
    /// Local machine.
    pub local: MachineId,
    /// Remote machine.
    pub remote: MachineId,
    /// Transport this QP runs over.
    pub transport: Transport,
    posted: u64,
    posted_bytes: u64,
}

/// Cost breakdown of a posted work request, for the caller to schedule.
#[derive(Clone, Copy, Debug)]
pub struct PostCosts {
    /// CPU time consumed on the posting side.
    pub post_cpu: SimDuration,
    /// NIC occupancy (wire serialization time).
    pub wire: SimDuration,
    /// One-way propagation latency to the remote side.
    pub latency: SimDuration,
    /// CPU time the remote side spends receiving/completing.
    pub remote_cpu: SimDuration,
}

impl PostCosts {
    /// Earliest time data can be visible remotely if posted at `now` on an
    /// idle NIC: post + wire + latency.
    pub fn arrival_after(&self) -> SimDuration {
        self.post_cpu + self.wire + self.latency
    }
}

impl QueuePair {
    /// Create a QP between two machines over `transport`.
    pub fn new(id: QpId, local: MachineId, remote: MachineId, transport: Transport) -> Self {
        QueuePair {
            id,
            local,
            remote,
            transport,
            posted: 0,
            posted_bytes: 0,
        }
    }

    /// Post a work request; returns its cost breakdown. `rack_hops` is the
    /// topology distance between the endpoints.
    pub fn post(&mut self, wr: &WorkRequest, cost: &CostModel, rack_hops: u32) -> PostCosts {
        self.posted += 1;
        self.posted_bytes += wr.bytes as u64;
        PostCosts {
            post_cpu: cost.send_cpu(self.transport, wr.verb, wr.bytes),
            wire: cost.wire_time(self.transport, wr.bytes),
            latency: cost.net_latency(self.transport, rack_hops),
            remote_cpu: cost.recv_cpu(self.transport, wr.verb),
        }
    }

    /// Work requests posted so far.
    pub fn posted(&self) -> u64 {
        self.posted
    }

    /// Bytes posted so far.
    pub fn posted_bytes(&self) -> u64 {
        self.posted_bytes
    }

    /// Export verb-post counters into `reg` under `prefix.*`.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.set_counter(&format!("{prefix}.posts"), self.posted);
        reg.set_counter(&format!("{prefix}.posted_bytes"), self.posted_bytes);
    }
}

/// Chooses the verb per message class, reproducing Whale's "DiffVerbs"
/// optimization (§4): bulk stream data goes through one-sided READ from a
/// ring region (receiver pulls, sender CPU untouched); control messages —
/// whose addresses the ring cannot predict — use two-sided SEND/RECV.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VerbPolicy {
    /// Always two-sided SEND/RECV.
    TwoSided,
    /// Always one-sided WRITE.
    OneSidedWrite,
    /// Always one-sided READ.
    OneSidedRead,
    /// Whale's choice: READ for data, SEND/RECV for control.
    DiffVerbs,
}

impl VerbPolicy {
    /// Verb used for stream data messages.
    pub fn data_verb(self) -> Verb {
        match self {
            VerbPolicy::TwoSided => Verb::SendRecv,
            VerbPolicy::OneSidedWrite => Verb::Write,
            VerbPolicy::OneSidedRead | VerbPolicy::DiffVerbs => Verb::Read,
        }
    }

    /// Verb used for control messages.
    pub fn control_verb(self) -> Verb {
        match self {
            VerbPolicy::TwoSided | VerbPolicy::DiffVerbs => Verb::SendRecv,
            VerbPolicy::OneSidedWrite => Verb::Write,
            VerbPolicy::OneSidedRead => Verb::Read,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qp(transport: Transport) -> QueuePair {
        QueuePair::new(QpId(1), MachineId(0), MachineId(1), transport)
    }

    #[test]
    fn post_counts_and_bytes() {
        let mut q = qp(Transport::Rdma);
        let cost = CostModel::default();
        let wr = WorkRequest {
            wr_id: WrId(1),
            verb: Verb::Write,
            bytes: 256,
        };
        q.post(&wr, &cost, 0);
        q.post(&wr, &cost, 0);
        assert_eq!(q.posted(), 2);
        assert_eq!(q.posted_bytes(), 512);
    }

    #[test]
    fn rdma_cheaper_than_tcp_on_cpu() {
        let cost = CostModel::default();
        let wr = WorkRequest {
            wr_id: WrId(1),
            verb: Verb::SendRecv,
            bytes: 150,
        };
        let rdma = qp(Transport::Rdma).post(&wr, &cost, 0);
        let tcp = qp(Transport::Tcp).post(&wr, &cost, 0);
        assert!(rdma.post_cpu < tcp.post_cpu);
        assert!(rdma.wire < tcp.wire);
        assert!(rdma.latency < tcp.latency);
    }

    #[test]
    fn rack_hops_add_latency() {
        let cost = CostModel::default();
        let wr = WorkRequest {
            wr_id: WrId(1),
            verb: Verb::Read,
            bytes: 64,
        };
        let near = qp(Transport::Rdma).post(&wr, &cost, 0);
        let far = qp(Transport::Rdma).post(&wr, &cost, 1);
        assert!(far.latency > near.latency);
        assert_eq!(far.post_cpu, near.post_cpu);
    }

    #[test]
    fn arrival_composition() {
        let cost = CostModel::default();
        let wr = WorkRequest {
            wr_id: WrId(7),
            verb: Verb::Write,
            bytes: 1024,
        };
        let c = qp(Transport::Rdma).post(&wr, &cost, 0);
        assert_eq!(c.arrival_after(), c.post_cpu + c.wire + c.latency);
    }

    #[test]
    fn cq_delivery_order() {
        let mut cq = CompletionQueue::new();
        for i in 0..3 {
            cq.deliver(Completion {
                wr_id: WrId(i),
                status: WcStatus::Success,
                at: SimTime::from_micros(i),
            });
        }
        assert_eq!(cq.pending(), 3);
        assert_eq!(cq.poll().unwrap().wr_id, WrId(0));
        let rest = cq.poll_n(10);
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[1].wr_id, WrId(2));
        assert_eq!(cq.total_delivered(), 3);
        assert!(cq.poll().is_none());
    }

    #[test]
    fn verb_policy_diffverbs() {
        assert_eq!(VerbPolicy::DiffVerbs.data_verb(), Verb::Read);
        assert_eq!(VerbPolicy::DiffVerbs.control_verb(), Verb::SendRecv);
        assert_eq!(VerbPolicy::TwoSided.data_verb(), Verb::SendRecv);
        assert_eq!(VerbPolicy::OneSidedWrite.data_verb(), Verb::Write);
        assert_eq!(VerbPolicy::OneSidedWrite.control_verb(), Verb::Write);
        assert_eq!(VerbPolicy::OneSidedRead.control_verb(), Verb::Read);
    }
}
