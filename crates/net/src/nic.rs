//! NIC transmit model: a serial wire clock per network interface.
//!
//! Outbound messages occupy the NIC for their wire time at the line rate;
//! concurrent sends queue behind each other. This is where bandwidth
//! saturation (1 Gbps Ethernet vs 56 Gbps InfiniBand) shows up in the
//! simulation.

use whale_sim::{CoreClock, CostModel, SimDuration, SimTime, Transport};

/// One machine's transmit path for one transport.
#[derive(Clone, Debug)]
pub struct Nic {
    transport: Transport,
    wire: CoreClock,
    sent_msgs: u64,
    sent_bytes: u64,
    busy: SimDuration,
}

impl Nic {
    /// A NIC of the given transport, idle at time zero.
    pub fn new(transport: Transport) -> Self {
        Nic {
            transport,
            wire: CoreClock::new(),
            sent_msgs: 0,
            sent_bytes: 0,
            busy: SimDuration::ZERO,
        }
    }

    /// The transport this NIC serves.
    pub fn transport(&self) -> Transport {
        self.transport
    }

    /// Enqueue a `bytes`-sized message for transmission at `now` (after the
    /// sender's CPU is done). Returns `(depart, arrive)`: when the last bit
    /// leaves the wire and when it lands `rack_hops` away.
    pub fn transmit(
        &mut self,
        now: SimTime,
        bytes: usize,
        rack_hops: u32,
        cost: &CostModel,
    ) -> (SimTime, SimTime) {
        let wire_time = cost.wire_time(self.transport, bytes);
        let (_, depart) = self.wire.begin_work(now, wire_time);
        let arrive = depart + cost.net_latency(self.transport, rack_hops);
        self.sent_msgs += 1;
        self.sent_bytes += bytes as u64;
        self.busy += wire_time;
        (depart, arrive)
    }

    /// When the transmit queue drains.
    pub fn free_at(&self) -> SimTime {
        self.wire.free_at()
    }

    /// Messages transmitted.
    pub fn sent_msgs(&self) -> u64 {
        self.sent_msgs
    }

    /// Bytes transmitted.
    pub fn sent_bytes(&self) -> u64 {
        self.sent_bytes
    }

    /// Wire utilization over a window.
    pub fn utilization(&self, window: SimDuration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        (self.busy.as_nanos() as f64 / window.as_nanos() as f64).min(1.0)
    }

    /// Export transmit counters into `reg` under `prefix.*`; `window` is
    /// the observation span used for the utilization gauge.
    pub fn export_metrics(
        &self,
        reg: &mut whale_sim::MetricsRegistry,
        prefix: &str,
        window: SimDuration,
    ) {
        reg.set_counter(&format!("{prefix}.sent_msgs"), self.sent_msgs);
        reg.set_counter(&format!("{prefix}.sent_bytes"), self.sent_bytes);
        reg.set_gauge(&format!("{prefix}.utilization"), self.utilization(window));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_serialize_on_the_wire() {
        let cost = CostModel::default();
        let mut nic = Nic::new(Transport::Tcp);
        // Two 125 kB messages at 1 Gbps: 1 ms wire time each.
        let (d1, _) = nic.transmit(SimTime::ZERO, 125_000, 0, &cost);
        let (d2, _) = nic.transmit(SimTime::ZERO, 125_000, 0, &cost);
        assert_eq!(d1, SimTime::from_millis(1));
        assert_eq!(
            d2,
            SimTime::from_millis(2),
            "second message queues behind first"
        );
    }

    #[test]
    fn arrival_adds_latency() {
        let cost = CostModel::default();
        let mut nic = Nic::new(Transport::Rdma);
        let (depart, arrive) = nic.transmit(SimTime::ZERO, 1_000, 0, &cost);
        assert_eq!(arrive - depart, cost.net_latency(Transport::Rdma, 0));
        let (_, far) = nic.transmit(SimTime::ZERO, 1_000, 2, &cost);
        assert!(far > arrive);
    }

    #[test]
    fn idle_gap_not_accumulated() {
        let cost = CostModel::default();
        let mut nic = Nic::new(Transport::Rdma);
        nic.transmit(SimTime::ZERO, 1_000, 0, &cost);
        // Much later send starts immediately.
        let (depart, _) = nic.transmit(SimTime::from_secs(1), 1_000, 0, &cost);
        assert_eq!(
            depart,
            SimTime::from_secs(1) + cost.wire_time(Transport::Rdma, 1_000)
        );
    }

    #[test]
    fn counters_and_utilization() {
        let cost = CostModel::default();
        let mut nic = Nic::new(Transport::Tcp);
        nic.transmit(SimTime::ZERO, 125_000, 0, &cost); // 1 ms busy
        assert_eq!(nic.sent_msgs(), 1);
        assert_eq!(nic.sent_bytes(), 125_000);
        let u = nic.utilization(SimDuration::from_millis(10));
        assert!((u - 0.1).abs() < 1e-9, "u={u}");
    }

    #[test]
    fn ib_much_faster_than_eth() {
        let cost = CostModel::default();
        let mut eth = Nic::new(Transport::Tcp);
        let mut ib = Nic::new(Transport::Rdma);
        let (d_eth, _) = eth.transmit(SimTime::ZERO, 1_000_000, 0, &cost);
        let (d_ib, _) = ib.transmit(SimTime::ZERO, 1_000_000, 0, &cost);
        assert!(d_eth.as_nanos() > 50 * d_ib.as_nanos());
    }
}
