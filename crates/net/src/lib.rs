//! # whale-net — RDMA/TCP fabric emulation
//!
//! Stand-in for the Mellanox InfiniBand FDR + DiSNI verbs stack the paper
//! runs on. Provides: the cluster topology (machines/racks), a verbs-style
//! API (queue pairs, work requests, completion queues, one-sided/two-sided
//! verbs with per-verb costs), registered memory with the ring memory
//! region multiplexing of §4, the MMS/WTL stream-slicing batcher, a NIC
//! transmit model for the discrete-event simulation, and a live in-process
//! fabric that preserves the copy-vs-zero-copy semantics for the runnable
//! examples.

#![warn(missing_docs)]

pub mod batch;
pub mod channel;
pub mod fabric;
pub mod fault;
pub mod log;
pub mod memory;
pub mod nic;
pub mod one_sided;
pub mod policy;
pub mod ring_fabric;
pub mod topology;
pub mod verbs;

pub use batch::{Batch, BatchConfig, Batcher, FlushReason};
pub use channel::{ChannelMsg, Departure, PushResult, RdmaChannel};
pub use fabric::{
    EndpointId, FabricPath, LiveFabric, LiveMessage, Payload, RegisterError, SendError,
};
pub use fault::{EndpointCrash, EndpointRestart, FaultFabric, FaultPlan, LinkFaults, Partition};
pub use log::{LogConfig, LogRead, PartitionLog, RECORD_HEADER};
pub use one_sided::{spawn_fetcher, OneSidedConfig, OneSidedFabric, OneSidedFetcher};
pub use policy::SendPolicy;
pub use ring_fabric::{
    spawn_flusher, FabricInstance, FabricKind, RingConfig, RingFabric, RingFlusher,
};
pub use memory::{MemoryRegionId, MemoryRegistry, RingFull, RingRegion, SlotAddr};
pub use nic::Nic;
pub use topology::{ClusterSpec, LinkId, LinkLoad, LinkTracker, MachineId, RackId, TopologyConfig};
pub use verbs::{
    Completion, CompletionQueue, PostCosts, QpId, QueuePair, VerbPolicy, WcStatus, WorkRequest,
    WrId,
};
