//! Deterministic fault injection over any [`FabricPath`].
//!
//! [`FaultFabric`] decorates an inner fabric and perturbs its delivery
//! according to a seeded [`FaultPlan`]: per-link frame drops, duplicates
//! and delays, transient [`SendError::Full`] bursts, endpoint
//! crash-at-frame-N, and link partitions over a frame-count window.
//! Every decision is a pure hash of `(seed, from, to, link-attempt-index,
//! fault-kind)`, so the *set* of faults a link experiences is identical
//! across runs and thread interleavings — chaos tests replay exactly.
//!
//! Faults are injected on the send side:
//!
//! - **drop** / **partition**: the send returns `Ok` but the frame never
//!   reaches the inner fabric (silent loss, as a lossy wire would show),
//! - **duplicate**: the frame is delivered twice,
//! - **delay**: the frame is parked on its link and released after
//!   `delay_frames` further sends on that link (or on [`flush`]);
//!   frames behind a parked frame queue behind it, so per-link FIFO is
//!   preserved for every frame that survives,
//! - **full burst**: the send fails [`SendError::Full`] for the next
//!   `full_burst_len` attempts (models a stalled transfer queue),
//! - **crash**: after `at_frame` sends have been addressed to an
//!   endpoint, every later send to it fails [`SendError::Disconnected`] —
//!   unless a matching [`EndpointRestart`] reopens it: once the endpoint
//!   has been addressed `EndpointRestart::at_frame` times in total, sends
//!   succeed again (deterministic crash-then-rejoin; the addressed
//!   counter keeps advancing through the outage so the restart point is
//!   always reached).
//!
//! Injected faults are counted under `{prefix}.fault.*` by
//! [`FaultFabric::export_metrics`], on top of the inner fabric's own
//! counters.
//!
//! [`flush`]: FabricPath::flush

use crate::fabric::{
    EndpointId, FabricPath, LiveMessage, Payload, RegisterError, SendError,
};
use crossbeam::channel::Receiver;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Per-link fault probabilities and shapes. All probabilities are in
/// `[0, 1]`; the zero default injects nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkFaults {
    /// Probability a frame is silently dropped.
    pub drop: f64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Probability a frame is parked for `delay_frames` link sends.
    pub delay: f64,
    /// How many further sends on the link release a parked frame.
    pub delay_frames: u32,
    /// Probability a send starts a transient backpressure burst.
    pub full_burst: f64,
    /// How many consecutive sends a burst rejects with `Full`.
    pub full_burst_len: u32,
}

impl LinkFaults {
    /// Faults that only drop frames, at probability `p`.
    pub fn drops(p: f64) -> Self {
        LinkFaults {
            drop: p,
            ..LinkFaults::default()
        }
    }
}

/// Crash an endpoint after it has been addressed `at_frame` times.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EndpointCrash {
    /// The endpoint that dies.
    pub endpoint: EndpointId,
    /// Sends addressed to it before the crash takes effect.
    pub at_frame: u64,
}

/// Restart a crashed endpoint once it has been addressed `at_frame`
/// times in total (counting the sends rejected during the outage). Only
/// meaningful paired with an [`EndpointCrash`] for the same endpoint and
/// an `at_frame` past the crash point; the crash window is then
/// `[crash.at_frame, restart.at_frame)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EndpointRestart {
    /// The endpoint that comes back.
    pub endpoint: EndpointId,
    /// Total sends addressed to it before it accepts traffic again.
    pub at_frame: u64,
}

/// Sever a link (both directions) for a window of link-attempt indices.
/// Frames sent inside the window are silently lost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Partition {
    /// One side of the severed link.
    pub a: EndpointId,
    /// The other side.
    pub b: EndpointId,
    /// First link-attempt index the partition covers.
    pub from_frame: u64,
    /// First link-attempt index past the partition (heal point).
    pub until_frame: u64,
}

/// A seeded, deterministic description of every fault to inject.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed for the per-frame fault rolls.
    pub seed: u64,
    /// Faults applied to links without an explicit entry in `links`.
    pub default_link: LinkFaults,
    /// Per-link overrides, keyed by `(from, to)`.
    pub links: Vec<((EndpointId, EndpointId), LinkFaults)>,
    /// Endpoints that crash after N addressed frames.
    pub crashes: Vec<EndpointCrash>,
    /// Crashed endpoints that rejoin after N total addressed frames.
    pub restarts: Vec<EndpointRestart>,
    /// Link partitions with heal times.
    pub partitions: Vec<Partition>,
}

impl FaultPlan {
    /// A plan that drops every link's frames at probability `p`.
    pub fn uniform_drops(seed: u64, p: f64) -> Self {
        FaultPlan {
            seed,
            default_link: LinkFaults::drops(p),
            ..FaultPlan::default()
        }
    }

    /// The `[crash, restart)` addressed-frame window during which sends
    /// to `endpoint` are rejected, if it has a crash scheduled. Without a
    /// restart (or with one at or before the crash point) the window is
    /// open-ended — the crash is permanent, as before.
    fn crash_window(&self, endpoint: EndpointId) -> Option<(u64, u64)> {
        let crash = self.crashes.iter().find(|c| c.endpoint == endpoint)?;
        let until = self
            .restarts
            .iter()
            .find(|r| r.endpoint == endpoint && r.at_frame > crash.at_frame)
            .map_or(u64::MAX, |r| r.at_frame);
        Some((crash.at_frame, until))
    }

    fn faults_for(&self, from: EndpointId, to: EndpointId) -> LinkFaults {
        self.links
            .iter()
            .find(|(link, _)| *link == (from, to))
            .map(|(_, f)| *f)
            .unwrap_or(self.default_link)
    }
}

/// Fault-decision salts: distinct per fault kind so one frame's rolls
/// are independent.
const SALT_DROP: u64 = 0x1;
const SALT_DUP: u64 = 0x2;
const SALT_DELAY: u64 = 0x3;
const SALT_FULL: u64 = 0x4;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Pure roll in `[0, 1)` for the `k`-th send on link `(from, to)`.
fn roll(seed: u64, from: EndpointId, to: EndpointId, k: u64, salt: u64) -> f64 {
    let link = ((from.0 as u64) << 32) | to.0 as u64;
    let h = splitmix64(seed ^ splitmix64(link) ^ splitmix64(k) ^ splitmix64(salt << 17));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A frame parked on its link, waiting for release.
struct Parked {
    release_at: u64,
    from: EndpointId,
    payload: Payload,
}

#[derive(Default)]
struct LinkState {
    /// Sends attempted on this link so far (the fault-roll index).
    attempts: u64,
    /// Remaining sends the active `Full` burst rejects.
    burst_left: u32,
    /// Frames parked by delay faults, FIFO.
    parked: VecDeque<Parked>,
}

#[derive(Default)]
struct FaultCounters {
    drops: AtomicU64,
    duplicates: AtomicU64,
    delayed: AtomicU64,
    full_injected: AtomicU64,
    partition_drops: AtomicU64,
    crashed_sends: AtomicU64,
}

/// A [`FabricPath`] decorator that injects the faults of a [`FaultPlan`]
/// into every send crossing it. See the module docs for the fault
/// semantics and determinism guarantees.
pub struct FaultFabric {
    inner: Arc<dyn FabricPath>,
    plan: FaultPlan,
    links: Mutex<HashMap<(EndpointId, EndpointId), LinkState>>,
    /// Sends addressed to each endpoint, for crash-at-frame-N.
    addressed: Mutex<HashMap<EndpointId, u64>>,
    counters: FaultCounters,
}

impl FaultFabric {
    /// Wrap `inner` with the faults of `plan`.
    pub fn new(inner: Arc<dyn FabricPath>, plan: FaultPlan) -> Self {
        FaultFabric {
            inner,
            plan,
            links: Mutex::new(HashMap::new()),
            addressed: Mutex::new(HashMap::new()),
            counters: FaultCounters::default(),
        }
    }

    /// The wrapped fabric.
    pub fn inner(&self) -> &Arc<dyn FabricPath> {
        &self.inner
    }

    /// Frames silently dropped by drop faults.
    pub fn drops(&self) -> u64 {
        self.counters.drops.load(Ordering::Relaxed)
    }

    /// Frames delivered twice by duplicate faults.
    pub fn duplicates(&self) -> u64 {
        self.counters.duplicates.load(Ordering::Relaxed)
    }

    /// Frames parked by delay faults.
    pub fn delayed(&self) -> u64 {
        self.counters.delayed.load(Ordering::Relaxed)
    }

    /// Sends rejected by injected `Full` bursts.
    pub fn full_injected(&self) -> u64 {
        self.counters.full_injected.load(Ordering::Relaxed)
    }

    /// Frames lost inside partition windows.
    pub fn partition_drops(&self) -> u64 {
        self.counters.partition_drops.load(Ordering::Relaxed)
    }

    /// Sends rejected because the destination crashed.
    pub fn crashed_sends(&self) -> u64 {
        self.counters.crashed_sends.load(Ordering::Relaxed)
    }

    /// Total sends rejected with an injected error (`Full` bursts plus
    /// crashed destinations).
    pub fn injected_errors(&self) -> u64 {
        self.full_injected() + self.crashed_sends()
    }

    /// Frames currently parked by delay faults across every link.
    pub fn parked_count(&self) -> u64 {
        let links = self.links.lock().unwrap_or_else(PoisonError::into_inner);
        links.values().map(|s| s.parked.len() as u64).sum()
    }

    /// True while `to` sits inside its crash window — frames still
    /// parked for it will be released into a dead destination. An
    /// endpoint past its restart point is alive again.
    fn destination_crashed(&self, to: EndpointId) -> bool {
        let Some((from_frame, until_frame)) = self.plan.crash_window(to) else {
            return false;
        };
        let addressed = self
            .addressed
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let count = addressed.get(&to).copied().unwrap_or(0);
        (from_frame..until_frame).contains(&count)
    }

    /// True once `to` has crossed its scheduled restart point (it
    /// crashed and came back). The recovery layer polls this to know
    /// when log replay toward `to` can begin.
    pub fn restarted(&self, to: EndpointId) -> bool {
        let Some((_, until_frame)) = self.plan.crash_window(to) else {
            return false;
        };
        if until_frame == u64::MAX {
            return false;
        }
        let addressed = self
            .addressed
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        addressed.get(&to).copied().unwrap_or(0) >= until_frame
    }

    /// Parked frames split by destination liveness: `(deliverable,
    /// doomed)`. Doomed frames are parked for an endpoint already past
    /// its crash point — they will never be usefully delivered, so they
    /// must not inflate the sampled λ-pressure.
    fn parked_split(&self) -> (u64, u64) {
        // Snapshot under the links lock, classify outside it: the crash
        // check takes the addressed lock and must not nest inside.
        let per_dest: Vec<(EndpointId, u64)> = {
            let links = self.links.lock().unwrap_or_else(PoisonError::into_inner);
            links
                .iter()
                .filter(|(_, s)| !s.parked.is_empty())
                .map(|((_, to), s)| (*to, s.parked.len() as u64))
                .collect()
        };
        let mut deliverable = 0;
        let mut doomed = 0;
        for (to, n) in per_dest {
            if self.destination_crashed(to) {
                doomed += n;
            } else {
                deliverable += n;
            }
        }
        (deliverable, doomed)
    }

    /// Parked frames whose destination is still alive — the only parked
    /// frames that contribute to [`FabricPath::queue_depth`].
    pub fn parked_deliverable(&self) -> u64 {
        self.parked_split().0
    }

    /// Parked frames addressed to an endpoint past its crash point.
    pub fn parked_doomed(&self) -> u64 {
        self.parked_split().1
    }

    fn deliver(&self, from: EndpointId, to: EndpointId, payload: &Payload) -> Result<(), SendError> {
        match payload {
            Payload::Copied(bytes) => self.inner.send_copied(from, to, bytes),
            Payload::Shared(buf) => self.inner.send_shared(from, to, Arc::clone(buf)),
        }
    }

    /// Release every parked frame on `state` whose release point has
    /// passed. Delivery failures of parked frames are absorbed (the
    /// original send already reported `Ok`).
    fn release_due(&self, to: EndpointId, state: &mut LinkState, now: u64) {
        while state
            .parked
            .front()
            .is_some_and(|p| p.release_at <= now)
        {
            let p = state.parked.pop_front().expect("checked front");
            let _ = self.deliver(p.from, to, &p.payload);
        }
    }

    fn send(&self, from: EndpointId, to: EndpointId, payload: Payload) -> Result<(), SendError> {
        let plan = &self.plan;
        let faults = plan.faults_for(from, to);

        // Crash check: is this destination inside its crash window? The
        // addressed counter advances on every send — including rejected
        // ones — so a scheduled restart point is always reached.
        if let Some((from_frame, until_frame)) = plan.crash_window(to) {
            let mut addressed = self
                .addressed
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let count = addressed.entry(to).or_insert(0);
            let k = *count;
            *count += 1;
            if (from_frame..until_frame).contains(&k) {
                self.counters.crashed_sends.fetch_add(1, Ordering::Relaxed);
                return Err(SendError::Disconnected);
            }
        }

        let mut links = self.links.lock().unwrap_or_else(PoisonError::into_inner);
        let state = links.entry((from, to)).or_default();
        let k = state.attempts;
        state.attempts += 1;
        self.release_due(to, state, k);

        // Partition window on this link (either direction)?
        let partitioned = plan.partitions.iter().any(|p| {
            ((p.a, p.b) == (from, to) || (p.b, p.a) == (from, to))
                && (p.from_frame..p.until_frame).contains(&k)
        });
        if partitioned {
            self.counters
                .partition_drops
                .fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }

        // Transient backpressure burst.
        if state.burst_left > 0 {
            state.burst_left -= 1;
            self.counters.full_injected.fetch_add(1, Ordering::Relaxed);
            return Err(SendError::Full);
        }
        if faults.full_burst > 0.0
            && faults.full_burst_len > 0
            && roll(plan.seed, from, to, k, SALT_FULL) < faults.full_burst
        {
            state.burst_left = faults.full_burst_len - 1;
            self.counters.full_injected.fetch_add(1, Ordering::Relaxed);
            return Err(SendError::Full);
        }

        // Silent drop.
        if faults.drop > 0.0 && roll(plan.seed, from, to, k, SALT_DROP) < faults.drop {
            self.counters.drops.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }

        let duplicate =
            faults.duplicate > 0.0 && roll(plan.seed, from, to, k, SALT_DUP) < faults.duplicate;
        if duplicate {
            self.counters.duplicates.fetch_add(1, Ordering::Relaxed);
        }
        let copies = if duplicate { 2 } else { 1 };

        // Delay: park this frame; later frames queue behind a parked one
        // so per-link FIFO holds for everything that survives.
        let delay_hit = faults.delay > 0.0
            && faults.delay_frames > 0
            && roll(plan.seed, from, to, k, SALT_DELAY) < faults.delay;
        if delay_hit || !state.parked.is_empty() {
            if delay_hit {
                self.counters.delayed.fetch_add(1, Ordering::Relaxed);
            }
            let release_at = if delay_hit {
                k + faults.delay_frames as u64
            } else {
                k
            };
            let release_at = state
                .parked
                .back()
                .map_or(release_at, |b| b.release_at.max(release_at));
            for _ in 0..copies {
                state.parked.push_back(Parked {
                    release_at,
                    from,
                    payload: payload.clone(),
                });
            }
            return Ok(());
        }

        let result = self.deliver(from, to, &payload);
        if copies > 1 {
            // The duplicate is best-effort, like a parked release: the
            // first copy already decided this send's outcome, and the
            // receiver may legitimately vanish between the two copies.
            let _ = self.deliver(from, to, &payload);
        }
        result
    }

    /// Release every parked frame regardless of its release point.
    fn release_all(&self) {
        let mut links = self.links.lock().unwrap_or_else(PoisonError::into_inner);
        for ((_, to), state) in links.iter_mut() {
            self.release_due(*to, state, u64::MAX);
        }
    }
}

impl FabricPath for FaultFabric {
    fn register(&self, id: EndpointId) -> Result<Receiver<LiveMessage>, RegisterError> {
        self.inner.register(id)
    }

    fn register_bounded(
        &self,
        id: EndpointId,
        capacity: usize,
    ) -> Result<Receiver<LiveMessage>, RegisterError> {
        self.inner.register_bounded(id, capacity)
    }

    fn deregister(&self, id: EndpointId) {
        self.inner.deregister(id);
    }

    fn send_copied(
        &self,
        from: EndpointId,
        to: EndpointId,
        bytes: &[u8],
    ) -> Result<(), SendError> {
        self.send(from, to, Payload::Copied(bytes.to_vec()))
    }

    fn send_shared(
        &self,
        from: EndpointId,
        to: EndpointId,
        buf: Arc<[u8]>,
    ) -> Result<(), SendError> {
        self.send(from, to, Payload::Shared(buf))
    }

    fn flush(&self) {
        self.release_all();
        self.inner.flush();
    }

    fn messages(&self) -> u64 {
        self.inner.messages()
    }

    fn copied_bytes(&self) -> u64 {
        self.inner.copied_bytes()
    }

    fn shared_bytes(&self) -> u64 {
        self.inner.shared_bytes()
    }

    fn send_errors(&self) -> u64 {
        self.inner.send_errors() + self.injected_errors()
    }

    fn flushed_batches(&self) -> u64 {
        self.inner.flushed_batches()
    }

    fn flushed_items(&self) -> u64 {
        self.inner.flushed_items()
    }

    fn queue_depth(&self) -> u64 {
        // Delayed frames parked inside the wrapper are also "in the
        // queue" from the sender's point of view — but only the ones a
        // live destination will eventually accept. Counting frames doomed
        // to a crashed endpoint would inflate the sampled λ-pressure and
        // skew the adaptive controller's d* upward.
        self.inner.queue_depth() + self.parked_deliverable()
    }

    fn endpoint_count(&self) -> usize {
        self.inner.endpoint_count()
    }

    fn install_link_tracker(&self, tracker: Arc<crate::topology::LinkTracker>) {
        // The wrapper injects faults *before* the wire: frames it drops
        // never occupy a link, so attribution belongs to the inner
        // transport, which charges links only for frames that actually
        // travel. Installing here as well would double-count.
        self.inner.install_link_tracker(tracker);
    }

    fn export_metrics(&self, reg: &mut whale_sim::MetricsRegistry, prefix: &str) {
        self.inner.export_metrics(reg, prefix);
        reg.set_counter(&format!("{prefix}.fault.drops"), self.drops());
        reg.set_counter(&format!("{prefix}.fault.duplicates"), self.duplicates());
        reg.set_counter(&format!("{prefix}.fault.delayed"), self.delayed());
        reg.set_counter(&format!("{prefix}.fault.full_injected"), self.full_injected());
        reg.set_counter(
            &format!("{prefix}.fault.partition_drops"),
            self.partition_drops(),
        );
        reg.set_counter(&format!("{prefix}.fault.crashed_sends"), self.crashed_sends());
        let (deliverable, doomed) = self.parked_split();
        reg.set_gauge(
            &format!("{prefix}.fault.parked_deliverable"),
            deliverable as f64,
        );
        reg.set_gauge(&format!("{prefix}.fault.parked_doomed"), doomed as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::LiveFabric;

    fn drain(rx: &Receiver<LiveMessage>) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Ok(m) = rx.try_recv() {
            out.push(m.payload.bytes().to_vec());
        }
        out
    }

    fn faulty(plan: FaultPlan) -> (Arc<FaultFabric>, Arc<LiveFabric>) {
        let inner = Arc::new(LiveFabric::new());
        let fabric = Arc::new(FaultFabric::new(
            Arc::clone(&inner) as Arc<dyn FabricPath>,
            plan,
        ));
        (fabric, inner)
    }

    #[test]
    fn zero_plan_is_transparent() {
        let (fabric, _) = faulty(FaultPlan::default());
        let rx = fabric.register(EndpointId(1)).unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"hello")
            .unwrap();
        assert_eq!(rx.recv().unwrap().payload.bytes(), b"hello");
        assert_eq!(fabric.drops(), 0);
        assert_eq!(fabric.messages(), 1);
    }

    #[test]
    fn certain_drop_loses_every_frame_silently() {
        let (fabric, _) = faulty(FaultPlan::uniform_drops(7, 1.0));
        let rx = fabric.register(EndpointId(1)).unwrap();
        for _ in 0..10 {
            fabric
                .send_copied(EndpointId(0), EndpointId(1), b"x")
                .unwrap();
        }
        assert!(rx.try_recv().is_err());
        assert_eq!(fabric.drops(), 10);
        assert_eq!(fabric.messages(), 0);
        // Silent loss is not a send error.
        assert_eq!(fabric.send_errors(), 0);
    }

    #[test]
    fn certain_duplicate_delivers_twice() {
        let plan = FaultPlan {
            seed: 3,
            default_link: LinkFaults {
                duplicate: 1.0,
                ..LinkFaults::default()
            },
            ..FaultPlan::default()
        };
        let (fabric, _) = faulty(plan);
        let rx = fabric.register(EndpointId(1)).unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"d")
            .unwrap();
        assert_eq!(rx.recv().unwrap().payload.bytes(), b"d");
        assert_eq!(rx.recv().unwrap().payload.bytes(), b"d");
        assert_eq!(fabric.duplicates(), 1);
    }

    #[test]
    fn full_burst_rejects_then_heals() {
        let plan = FaultPlan {
            seed: 11,
            default_link: LinkFaults {
                full_burst: 1.0,
                full_burst_len: 3,
                ..LinkFaults::default()
            },
            ..FaultPlan::default()
        };
        let (fabric, _) = faulty(plan);
        let _rx = fabric.register(EndpointId(1)).unwrap();
        // full_burst = 1.0 re-arms a burst on every non-burst send, so
        // every attempt is rejected — but each failure is *bounded*
        // injected backpressure, not a hang.
        for _ in 0..4 {
            assert_eq!(
                fabric.send_copied(EndpointId(0), EndpointId(1), b"x"),
                Err(SendError::Full)
            );
        }
        assert_eq!(fabric.full_injected(), 4);
        assert_eq!(fabric.send_errors(), 4);
    }

    #[test]
    fn crash_at_frame_cuts_off_an_endpoint() {
        let plan = FaultPlan {
            seed: 5,
            crashes: vec![EndpointCrash {
                endpoint: EndpointId(1),
                at_frame: 2,
            }],
            ..FaultPlan::default()
        };
        let (fabric, _) = faulty(plan);
        let rx = fabric.register(EndpointId(1)).unwrap();
        let rx2 = fabric.register(EndpointId(2)).unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"a")
            .unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"b")
            .unwrap();
        assert_eq!(
            fabric.send_copied(EndpointId(0), EndpointId(1), b"c"),
            Err(SendError::Disconnected)
        );
        // Other endpoints are unaffected.
        fabric
            .send_copied(EndpointId(0), EndpointId(2), b"ok")
            .unwrap();
        assert_eq!(fabric.crashed_sends(), 1);
        assert_eq!(drain(&rx).len(), 2);
        assert_eq!(drain(&rx2).len(), 1);
    }

    #[test]
    fn restart_heals_a_crashed_endpoint() {
        let plan = FaultPlan {
            seed: 5,
            crashes: vec![EndpointCrash {
                endpoint: EndpointId(1),
                at_frame: 2,
            }],
            restarts: vec![EndpointRestart {
                endpoint: EndpointId(1),
                at_frame: 4,
            }],
            ..FaultPlan::default()
        };
        let (fabric, _) = faulty(plan);
        let rx = fabric.register(EndpointId(1)).unwrap();
        // Frames 0 and 1 land before the crash...
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"a")
            .unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"b")
            .unwrap();
        assert!(!fabric.restarted(EndpointId(1)));
        // ...frames 2 and 3 hit the crash window...
        for _ in 0..2 {
            assert_eq!(
                fabric.send_copied(EndpointId(0), EndpointId(1), b"x"),
                Err(SendError::Disconnected)
            );
        }
        // ...and the endpoint is back for frame 4.
        assert!(fabric.restarted(EndpointId(1)));
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"c")
            .unwrap();
        assert_eq!(fabric.crashed_sends(), 2);
        assert_eq!(drain(&rx), vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn parked_doomed_reclassifies_to_deliverable_after_restart() {
        let plan = FaultPlan {
            seed: 8,
            default_link: LinkFaults {
                delay: 1.0,
                delay_frames: 100,
                ..LinkFaults::default()
            },
            crashes: vec![EndpointCrash {
                endpoint: EndpointId(1),
                at_frame: 2,
            }],
            restarts: vec![EndpointRestart {
                endpoint: EndpointId(1),
                at_frame: 4,
            }],
            ..FaultPlan::default()
        };
        let (fabric, _) = faulty(plan);
        let _rx = fabric.register(EndpointId(1)).unwrap();
        // Two frames park before the crash point.
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"a")
            .unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"b")
            .unwrap();
        // Frame 2 hits the crash window: parked frames are doomed while
        // the endpoint is down...
        assert_eq!(
            fabric.send_copied(EndpointId(0), EndpointId(1), b"x"),
            Err(SendError::Disconnected)
        );
        assert_eq!(fabric.parked_doomed(), 2);
        assert_eq!(fabric.parked_deliverable(), 0);
        // ...and frame 3, the last of the window, crosses the restart
        // point: the same parked frames reclassify to deliverable.
        assert_eq!(
            fabric.send_copied(EndpointId(0), EndpointId(1), b"x"),
            Err(SendError::Disconnected)
        );
        assert!(fabric.restarted(EndpointId(1)));
        assert_eq!(fabric.parked_doomed(), 0);
        assert_eq!(fabric.parked_deliverable(), 2);
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"c")
            .unwrap();
        assert_eq!(fabric.parked_deliverable(), 3);
    }

    #[test]
    fn partition_window_loses_frames_then_heals() {
        let plan = FaultPlan {
            seed: 9,
            partitions: vec![Partition {
                a: EndpointId(0),
                b: EndpointId(1),
                from_frame: 1,
                until_frame: 3,
            }],
            ..FaultPlan::default()
        };
        let (fabric, _) = faulty(plan);
        let rx = fabric.register(EndpointId(1)).unwrap();
        for b in [b"0", b"1", b"2", b"3"] {
            fabric.send_copied(EndpointId(0), EndpointId(1), b).unwrap();
        }
        let got = drain(&rx);
        assert_eq!(got, vec![b"0".to_vec(), b"3".to_vec()]);
        assert_eq!(fabric.partition_drops(), 2);
    }

    #[test]
    fn delay_parks_frames_and_preserves_link_fifo() {
        let plan = FaultPlan {
            seed: 2,
            default_link: LinkFaults {
                delay: 1.0,
                delay_frames: 2,
                ..LinkFaults::default()
            },
            ..FaultPlan::default()
        };
        let (fabric, _) = faulty(plan);
        let rx = fabric.register(EndpointId(1)).unwrap();
        for b in [b"0", b"1", b"2", b"3", b"4"] {
            fabric.send_copied(EndpointId(0), EndpointId(1), b).unwrap();
        }
        fabric.flush();
        let got = drain(&rx);
        // All delivered, in order — delayed, never reordered or lost.
        assert_eq!(
            got,
            vec![
                b"0".to_vec(),
                b"1".to_vec(),
                b"2".to_vec(),
                b"3".to_vec(),
                b"4".to_vec()
            ]
        );
        assert!(fabric.delayed() > 0);
    }

    #[test]
    fn queue_depth_excludes_frames_doomed_by_a_crash() {
        let plan = FaultPlan {
            seed: 8,
            default_link: LinkFaults {
                delay: 1.0,
                delay_frames: 100,
                ..LinkFaults::default()
            },
            crashes: vec![EndpointCrash {
                endpoint: EndpointId(1),
                at_frame: 2,
            }],
            ..FaultPlan::default()
        };
        let (fabric, _) = faulty(plan);
        let _rx1 = fabric.register(EndpointId(1)).unwrap();
        let _rx2 = fabric.register(EndpointId(2)).unwrap();

        // Two frames park on the doomed link before the crash point...
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"a")
            .unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"b")
            .unwrap();
        // ...and the crash takes effect.
        assert_eq!(
            fabric.send_copied(EndpointId(0), EndpointId(1), b"c"),
            Err(SendError::Disconnected)
        );
        // A healthy destination parks one deliverable frame.
        fabric
            .send_copied(EndpointId(0), EndpointId(2), b"d")
            .unwrap();

        assert_eq!(fabric.parked_count(), 3);
        assert_eq!(fabric.parked_doomed(), 2);
        assert_eq!(fabric.parked_deliverable(), 1);
        // Only the deliverable frame is λ-pressure.
        assert_eq!(FabricPath::queue_depth(&*fabric), 1);

        let mut reg = whale_sim::MetricsRegistry::new();
        fabric.export_metrics(&mut reg, "net");
        assert_eq!(reg.gauge("net.fault.parked_deliverable"), Some(1.0));
        assert_eq!(reg.gauge("net.fault.parked_doomed"), Some(2.0));
    }

    #[test]
    fn same_seed_same_faults() {
        let counts = |seed: u64| {
            let (fabric, _) = faulty(FaultPlan::uniform_drops(seed, 0.35));
            let _rx = fabric.register(EndpointId(1)).unwrap();
            for _ in 0..200 {
                fabric
                    .send_copied(EndpointId(0), EndpointId(1), b"x")
                    .unwrap();
            }
            fabric.drops()
        };
        let a = counts(42);
        assert_eq!(a, counts(42));
        assert_ne!(a, 0);
        assert_ne!(a, 200);
        // A different seed picks different victims.
        assert_ne!((a, counts(42)), (counts(43), counts(43)));
    }

    #[test]
    fn per_link_overrides_beat_the_default() {
        let plan = FaultPlan {
            seed: 1,
            default_link: LinkFaults::drops(1.0),
            links: vec![((EndpointId(0), EndpointId(2)), LinkFaults::default())],
            ..FaultPlan::default()
        };
        let (fabric, _) = faulty(plan);
        let rx1 = fabric.register(EndpointId(1)).unwrap();
        let rx2 = fabric.register(EndpointId(2)).unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"x")
            .unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(2), b"y")
            .unwrap();
        assert!(rx1.try_recv().is_err());
        assert_eq!(rx2.recv().unwrap().payload.bytes(), b"y");
    }

    #[test]
    fn export_metrics_counts_faults_on_top_of_inner() {
        let (fabric, _) = faulty(FaultPlan::uniform_drops(4, 1.0));
        let _rx = fabric.register(EndpointId(1)).unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"x")
            .unwrap();
        let mut reg = whale_sim::MetricsRegistry::new();
        fabric.export_metrics(&mut reg, "net");
        assert_eq!(reg.counter("net.fault.drops"), Some(1));
        assert_eq!(reg.counter("net.fault.duplicates"), Some(0));
        assert_eq!(reg.counter("net.messages"), Some(0));
    }
}
