//! The channel-oriented communication framework — the paper's companion
//! artifact (*WhaleRDMAChannel*): a higher-level, reusable channel that
//! composes the pieces of §4 into one object per peer:
//!
//! - a ring memory region on each side (registration paid once),
//! - the MMS/WTL stream-slicing batcher,
//! - a queue pair with a chosen verb policy (data via one-sided READ under
//!   DiffVerbs, control via two-sided SEND/RECV),
//! - completion accounting.
//!
//! The channel is simulation-native: callers pass the virtual time and get
//! back the cost/arrival schedule of each action; the live runtime uses
//! the same state machine with wall-clock instants.

use crate::batch::{Batch, BatchConfig, Batcher};
use crate::memory::{MemoryRegistry, RingRegion};
use crate::topology::MachineId;
use crate::verbs::{QpId, QueuePair, VerbPolicy, WorkRequest, WrId};
use whale_sim::{CostModel, SimDuration, SimTime, Transport};

/// One queued message inside the channel.
#[derive(Clone, Debug, PartialEq)]
pub struct ChannelMsg {
    /// Caller-assigned id (e.g. tuple sequence number).
    pub id: u64,
    /// Serialized size.
    pub bytes: usize,
    /// When the caller enqueued it.
    pub enqueued_at: SimTime,
}

/// Outcome of pushing a message into the channel.
#[derive(Clone, Debug, PartialEq)]
pub enum PushResult {
    /// Buffered; nothing on the wire yet.
    Buffered,
    /// The push filled the transfer buffer: a batch departed.
    Flushed(Departure),
    /// The ring memory region is out of slots; the caller must backpressure
    /// (this is the transfer-queue blocking the controller watches).
    RingFull,
}

/// A batch leaving the channel.
#[derive(Clone, Debug, PartialEq)]
pub struct Departure {
    /// Messages in the batch, oldest first.
    pub msgs: Vec<ChannelMsg>,
    /// Total payload bytes.
    pub bytes: usize,
    /// Sender CPU spent (post + per-message ring bookkeeping).
    pub send_cpu: SimDuration,
    /// When the data is visible at the receiver (excluding NIC queueing,
    /// which the caller's NIC model adds).
    pub wire_and_latency: SimDuration,
    /// Receiver CPU to consume the batch.
    pub recv_cpu: SimDuration,
}

/// A one-directional RDMA channel to one peer.
///
/// ```
/// use whale_net::{BatchConfig, MemoryRegistry, RdmaChannel, PushResult, QpId, MachineId, VerbPolicy};
/// use whale_sim::{CostModel, SimDuration, SimTime};
///
/// let mut registry = MemoryRegistry::new();
/// let mut ch = RdmaChannel::open(
///     QpId(1), MachineId(0), MachineId(1), VerbPolicy::DiffVerbs,
///     BatchConfig { mms: 300, wtl: SimDuration::from_millis(1) },
///     8, &mut registry, CostModel::default(), 0,
/// );
/// assert_eq!(ch.push(SimTime::ZERO, 1, 150), PushResult::Buffered);
/// match ch.push(SimTime::ZERO, 2, 150) {
///     PushResult::Flushed(batch) => assert_eq!(batch.msgs.len(), 2),
///     other => panic!("{other:?}"),
/// }
/// // The whole ring was registered once, up front.
/// assert_eq!(registry.registrations(), 1);
/// ```
#[derive(Debug)]
pub struct RdmaChannel {
    qp: QueuePair,
    policy: VerbPolicy,
    batcher: Batcher<ChannelMsg>,
    /// Sender-side ring: slots hold batch descriptors until the remote
    /// READ (or the RNIC) consumes them.
    ring: RingRegion<u64>,
    next_wr: u64,
    cost: CostModel,
    rack_hops: u32,
    sent_batches: u64,
    sent_msgs: u64,
    sent_bytes: u64,
}

impl RdmaChannel {
    /// Open a channel between two machines.
    ///
    /// `ring_slots` bounds the number of in-flight batches; `slot_bytes`
    /// is the per-slot registered size (≥ MMS).
    #[allow(clippy::too_many_arguments)]
    pub fn open(
        qp_id: QpId,
        local: MachineId,
        remote: MachineId,
        policy: VerbPolicy,
        batch: BatchConfig,
        ring_slots: usize,
        registry: &mut MemoryRegistry,
        cost: CostModel,
        rack_hops: u32,
    ) -> Self {
        let slot_bytes = batch.mms;
        RdmaChannel {
            qp: QueuePair::new(qp_id, local, remote, Transport::Rdma),
            policy,
            batcher: Batcher::new(batch),
            ring: RingRegion::new(ring_slots, slot_bytes, registry),
            next_wr: 0,
            cost,
            rack_hops,
            sent_batches: 0,
            sent_msgs: 0,
            sent_bytes: 0,
        }
    }

    /// The verb policy in force.
    pub fn policy(&self) -> VerbPolicy {
        self.policy
    }

    /// Messages currently buffered (not yet departed).
    pub fn buffered(&self) -> usize {
        self.batcher.len()
    }

    /// In-flight batches occupying ring slots.
    pub fn in_flight(&self) -> usize {
        self.ring.len()
    }

    /// When the WTL timer for the current buffer fires.
    pub fn deadline(&self) -> Option<SimTime> {
        self.batcher.deadline()
    }

    /// Enqueue a message at `now`.
    pub fn push(&mut self, now: SimTime, id: u64, bytes: usize) -> PushResult {
        if self.ring.is_full() {
            return PushResult::RingFull;
        }
        let msg = ChannelMsg {
            id,
            bytes,
            enqueued_at: now,
        };
        match self.batcher.offer(now, msg, bytes) {
            Some(batch) => PushResult::Flushed(self.depart(batch)),
            None => PushResult::Buffered,
        }
    }

    /// Fire the WTL timer at `now`; returns a departure if the buffer aged
    /// out.
    pub fn on_timer(&mut self, now: SimTime) -> Option<Departure> {
        if self.ring.is_full() {
            return None;
        }
        self.batcher.on_timer(now).map(|b| self.depart(b))
    }

    /// Force out whatever is buffered (stream end).
    pub fn flush(&mut self) -> Option<Departure> {
        if self.ring.is_full() {
            return None;
        }
        self.batcher.flush().map(|b| self.depart(b))
    }

    /// The remote consumed the oldest in-flight batch (its READ completed
    /// or its completion arrived): the ring slot is recycled.
    pub fn on_consumed(&mut self) -> bool {
        self.ring.consume().is_some()
    }

    fn depart(&mut self, batch: Batch<ChannelMsg>) -> Departure {
        let wr_id = WrId(self.next_wr);
        self.next_wr += 1;
        self.ring
            .produce(wr_id.0)
            .expect("checked not full before flushing");
        let verb = self.policy.data_verb();
        let wr = WorkRequest {
            wr_id,
            verb,
            bytes: batch.bytes,
        };
        let costs = self.qp.post(&wr, &self.cost, self.rack_hops);
        self.sent_batches += 1;
        self.sent_msgs += batch.items.len() as u64;
        self.sent_bytes += batch.bytes as u64;
        Departure {
            bytes: batch.bytes,
            send_cpu: costs.post_cpu + self.cost.ring_mr_op,
            wire_and_latency: costs.wire + costs.latency,
            recv_cpu: costs.remote_cpu,
            msgs: batch.items,
        }
    }

    /// Batches sent.
    pub fn sent_batches(&self) -> u64 {
        self.sent_batches
    }

    /// Messages sent.
    pub fn sent_msgs(&self) -> u64 {
        self.sent_msgs
    }

    /// Bytes sent.
    pub fn sent_bytes(&self) -> u64 {
        self.sent_bytes
    }

    /// Export the channel's full instrument set — verb posts from the QP,
    /// slot reuse from the ring, occupancy from the batcher, and the
    /// channel's own send counters — into `reg` under `prefix.*`.
    pub fn export_metrics(&self, reg: &mut whale_sim::MetricsRegistry, prefix: &str) {
        self.qp.export_metrics(reg, &format!("{prefix}.qp"));
        self.ring.export_metrics(reg, &format!("{prefix}.ring"));
        self.batcher.export_metrics(reg, &format!("{prefix}.batch"));
        reg.set_counter(&format!("{prefix}.sent_batches"), self.sent_batches);
        reg.set_counter(&format!("{prefix}.sent_msgs"), self.sent_msgs);
        reg.set_counter(&format!("{prefix}.sent_bytes"), self.sent_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel(mms: usize, wtl_ms: u64, slots: usize) -> (RdmaChannel, MemoryRegistry) {
        let mut registry = MemoryRegistry::new();
        let ch = RdmaChannel::open(
            QpId(1),
            MachineId(0),
            MachineId(1),
            VerbPolicy::DiffVerbs,
            BatchConfig {
                mms,
                wtl: SimDuration::from_millis(wtl_ms),
            },
            slots,
            &mut registry,
            CostModel::default(),
            0,
        );
        (ch, registry)
    }

    #[test]
    fn registration_once_for_whole_ring() {
        let (_ch, registry) = channel(1024, 1, 8);
        assert_eq!(registry.registrations(), 1);
        assert_eq!(registry.registered_bytes(), 8 * 1024);
    }

    #[test]
    fn buffers_until_mms() {
        let (mut ch, _) = channel(1_000, 10, 8);
        assert_eq!(ch.push(SimTime::ZERO, 1, 400), PushResult::Buffered);
        assert_eq!(ch.push(SimTime::ZERO, 2, 400), PushResult::Buffered);
        match ch.push(SimTime::ZERO, 3, 400) {
            PushResult::Flushed(dep) => {
                assert_eq!(dep.msgs.len(), 3);
                assert_eq!(dep.bytes, 1_200);
                assert!(!dep.send_cpu.is_zero());
            }
            other => panic!("expected flush, got {other:?}"),
        }
        assert_eq!(ch.buffered(), 0);
        assert_eq!(ch.in_flight(), 1);
    }

    #[test]
    fn wtl_timer_flushes() {
        let (mut ch, _) = channel(1_000_000, 1, 8);
        ch.push(SimTime::from_micros(100), 1, 50);
        let deadline = ch.deadline().unwrap();
        assert!(ch.on_timer(deadline - SimDuration::from_nanos(1)).is_none());
        let dep = ch.on_timer(deadline).unwrap();
        assert_eq!(dep.msgs[0].id, 1);
    }

    #[test]
    fn ring_full_backpressures() {
        let (mut ch, _) = channel(100, 1, 2);
        // Fill both slots with size-triggered batches.
        assert!(matches!(
            ch.push(SimTime::ZERO, 1, 100),
            PushResult::Flushed(_)
        ));
        assert!(matches!(
            ch.push(SimTime::ZERO, 2, 100),
            PushResult::Flushed(_)
        ));
        // Third batch cannot depart: ring full.
        assert_eq!(ch.push(SimTime::ZERO, 3, 100), PushResult::RingFull);
        // Consuming one slot unblocks.
        assert!(ch.on_consumed());
        assert!(matches!(
            ch.push(SimTime::ZERO, 3, 100),
            PushResult::Flushed(_)
        ));
    }

    #[test]
    fn diffverbs_data_path_is_cheap_for_sender() {
        let (mut ch, _) = channel(100, 1, 4);
        let PushResult::Flushed(dep) = ch.push(SimTime::ZERO, 1, 100) else {
            panic!("expected flush")
        };
        let cost = CostModel::default();
        // READ path: sender pays ring publish + bookkeeping, far below a
        // two-sided post.
        assert!(dep.send_cpu < cost.rdma_post_send);
        assert!(dep.recv_cpu >= cost.rdma_post_read);
    }

    #[test]
    fn counters_accumulate() {
        let (mut ch, _) = channel(100, 1, 16);
        for i in 0..5 {
            let _ = ch.push(SimTime::ZERO, i, 100);
        }
        assert_eq!(ch.sent_batches(), 5);
        assert_eq!(ch.sent_msgs(), 5);
        assert_eq!(ch.sent_bytes(), 500);
    }

    #[test]
    fn flush_drains_partial_buffer() {
        let (mut ch, _) = channel(1_000_000, 100, 4);
        ch.push(SimTime::ZERO, 1, 10);
        ch.push(SimTime::ZERO, 2, 10);
        let dep = ch.flush().unwrap();
        assert_eq!(dep.msgs.len(), 2);
        assert!(ch.flush().is_none());
    }

    #[test]
    fn consumed_on_empty_ring_is_false() {
        let (mut ch, _) = channel(100, 1, 2);
        assert!(!ch.on_consumed());
    }
}
