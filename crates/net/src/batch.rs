//! Stream Slicing: the MMS / WTL batching mechanism of §4.
//!
//! The sender maintains a transfer buffer. When buffered data reaches
//! *Max Memory Size* (MMS) it is assembled into one RDMA work request and
//! sent; a timer bounds the wait of the earliest buffered tuple by *Wait
//! Time Limit* (WTL) so a slow stream still flushes promptly. The paper
//! calibrates MMS = 256 KB and WTL = 1 ms (Figs 11–12).

use whale_sim::{MetricsRegistry, SimDuration, SimTime};

/// Configuration of the stream-slicing batcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchConfig {
    /// Max Memory Size: flush once this many bytes are buffered.
    pub mms: usize,
    /// Wait Time Limit: flush once the oldest buffered item is this old.
    pub wtl: SimDuration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        // The paper's chosen operating point.
        BatchConfig {
            mms: 256 * 1024,
            wtl: SimDuration::from_millis(1),
        }
    }
}

/// A flushed batch.
#[derive(Clone, Debug, PartialEq)]
pub struct Batch<T> {
    /// The buffered items, oldest first.
    pub items: Vec<T>,
    /// Total payload bytes.
    pub bytes: usize,
    /// Arrival time of the oldest item (for latency accounting).
    pub oldest_at: SimTime,
    /// Why the batch was emitted.
    pub reason: FlushReason,
}

/// What triggered a flush.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlushReason {
    /// Buffered bytes reached MMS.
    Size,
    /// The WTL timer expired.
    Timer,
    /// The caller forced a flush (e.g. shutdown).
    Forced,
}

/// The stream-slicing transfer buffer.
///
/// Deterministic and time-explicit: the caller passes `now` and asks for
/// the next timer [`Batcher::deadline`]. This is how both the DES world and
/// the live runtime drive it.
#[derive(Clone, Debug)]
pub struct Batcher<T> {
    config: BatchConfig,
    items: Vec<T>,
    bytes: usize,
    oldest_at: Option<SimTime>,
    flushed_batches: u64,
    flushed_items: u64,
}

impl<T> Batcher<T> {
    /// New empty batcher.
    pub fn new(config: BatchConfig) -> Self {
        assert!(config.mms > 0, "MMS must be positive");
        assert!(!config.wtl.is_zero(), "WTL must be positive");
        Batcher {
            config,
            items: Vec::new(),
            bytes: 0,
            oldest_at: None,
            flushed_batches: 0,
            flushed_items: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> BatchConfig {
        self.config
    }

    /// Buffered item count.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Buffered bytes.
    pub fn buffered_bytes(&self) -> usize {
        self.bytes
    }

    /// Offer an item of `bytes` at time `now`. Returns a batch if this
    /// offer filled the buffer to MMS.
    pub fn offer(&mut self, now: SimTime, item: T, bytes: usize) -> Option<Batch<T>> {
        if self.items.is_empty() {
            self.oldest_at = Some(now);
        }
        self.items.push(item);
        self.bytes += bytes;
        if self.bytes >= self.config.mms {
            Some(self.emit(FlushReason::Size))
        } else {
            None
        }
    }

    /// When the WTL timer for the current buffer fires (None if empty).
    /// The timer resets whenever a batch is emitted, matching the paper:
    /// "the timer will be reset when an RDMA work request is consumed".
    pub fn deadline(&self) -> Option<SimTime> {
        self.oldest_at.map(|t| t + self.config.wtl)
    }

    /// Handle a timer tick at `now`: flush if the deadline has passed.
    pub fn on_timer(&mut self, now: SimTime) -> Option<Batch<T>> {
        match self.deadline() {
            Some(d) if now >= d && !self.items.is_empty() => Some(self.emit(FlushReason::Timer)),
            _ => None,
        }
    }

    /// Force a flush regardless of size/time (e.g. end of stream).
    pub fn flush(&mut self) -> Option<Batch<T>> {
        if self.items.is_empty() {
            None
        } else {
            Some(self.emit(FlushReason::Forced))
        }
    }

    fn emit(&mut self, reason: FlushReason) -> Batch<T> {
        let items = std::mem::take(&mut self.items);
        let bytes = self.bytes;
        self.bytes = 0;
        let oldest_at = self.oldest_at.take().expect("non-empty buffer has oldest");
        self.flushed_batches += 1;
        self.flushed_items += items.len() as u64;
        Batch {
            items,
            bytes,
            oldest_at,
            reason,
        }
    }

    /// Batches emitted so far.
    pub fn flushed_batches(&self) -> u64 {
        self.flushed_batches
    }

    /// Items emitted so far.
    pub fn flushed_items(&self) -> u64 {
        self.flushed_items
    }

    /// Mean items per emitted batch (0 if none).
    pub fn mean_batch_size(&self) -> f64 {
        if self.flushed_batches == 0 {
            0.0
        } else {
            self.flushed_items as f64 / self.flushed_batches as f64
        }
    }

    /// Export batch counters and current occupancy into `reg` under
    /// `prefix.*`. `occupancy` is buffered bytes as a fraction of MMS.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.set_counter(&format!("{prefix}.flushed_batches"), self.flushed_batches);
        reg.set_counter(&format!("{prefix}.flushed_items"), self.flushed_items);
        reg.set_gauge(&format!("{prefix}.mean_batch_size"), self.mean_batch_size());
        reg.set_gauge(
            &format!("{prefix}.occupancy"),
            self.bytes as f64 / self.config.mms as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(mms: usize, wtl_ms: u64) -> BatchConfig {
        BatchConfig {
            mms,
            wtl: SimDuration::from_millis(wtl_ms),
        }
    }

    #[test]
    fn size_trigger_at_mms() {
        let mut b = Batcher::new(cfg(1000, 10));
        assert!(b.offer(SimTime::ZERO, 1, 400).is_none());
        assert!(b.offer(SimTime::ZERO, 2, 400).is_none());
        let batch = b
            .offer(SimTime::ZERO, 3, 400)
            .expect("third offer crosses MMS");
        assert_eq!(batch.reason, FlushReason::Size);
        assert_eq!(batch.items, vec![1, 2, 3]);
        assert_eq!(batch.bytes, 1200);
        assert!(b.is_empty());
    }

    #[test]
    fn timer_trigger_at_wtl() {
        let mut b = Batcher::new(cfg(1_000_000, 1));
        b.offer(SimTime::from_micros(100), 7, 50);
        let deadline = b.deadline().unwrap();
        assert_eq!(deadline, SimTime::from_micros(1_100));
        // Before the deadline: no flush.
        assert!(b.on_timer(SimTime::from_micros(1_099)).is_none());
        // At the deadline: flush.
        let batch = b.on_timer(deadline).unwrap();
        assert_eq!(batch.reason, FlushReason::Timer);
        assert_eq!(batch.oldest_at, SimTime::from_micros(100));
        assert!(b.deadline().is_none());
    }

    #[test]
    fn deadline_tracks_oldest_item() {
        let mut b = Batcher::new(cfg(1_000_000, 5));
        b.offer(SimTime::from_millis(1), 1, 10);
        b.offer(SimTime::from_millis(4), 2, 10);
        // Deadline is oldest + WTL, unaffected by the second item.
        assert_eq!(b.deadline(), Some(SimTime::from_millis(6)));
    }

    #[test]
    fn timer_resets_after_size_flush() {
        let mut b = Batcher::new(cfg(100, 5));
        b.offer(SimTime::from_millis(1), 1, 100).unwrap();
        assert!(b.deadline().is_none(), "buffer empty after size flush");
        b.offer(SimTime::from_millis(10), 2, 10);
        assert_eq!(b.deadline(), Some(SimTime::from_millis(15)));
    }

    #[test]
    fn forced_flush() {
        let mut b = Batcher::new(cfg(1_000, 10));
        assert!(b.flush().is_none());
        b.offer(SimTime::ZERO, 1, 10);
        let batch = b.flush().unwrap();
        assert_eq!(batch.reason, FlushReason::Forced);
        assert_eq!(batch.items.len(), 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut b = Batcher::new(cfg(100, 10));
        b.offer(SimTime::ZERO, 1, 60);
        b.offer(SimTime::ZERO, 2, 60).unwrap();
        b.offer(SimTime::ZERO, 3, 150).unwrap();
        assert_eq!(b.flushed_batches(), 2);
        assert_eq!(b.flushed_items(), 3);
        assert!((b.mean_batch_size() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn offer_exactly_on_wtl_deadline() {
        let mut b = Batcher::new(cfg(1_000_000, 1));
        b.offer(SimTime::from_micros(500), 1, 10);
        let deadline = b.deadline().unwrap();
        assert_eq!(deadline, SimTime::from_micros(1_500));

        // An offer landing exactly on the deadline joins the buffer (the
        // flusher drains posts before firing the timer) and must not move
        // the deadline — it still tracks the oldest item.
        assert!(b.offer(deadline, 2, 10).is_none());
        assert_eq!(b.deadline(), Some(deadline));

        // The timer tick at that same instant flushes both, and the flush
        // resets the window: an offer at the very same time starts a new
        // full WTL wait.
        let batch = b.on_timer(deadline).unwrap();
        assert_eq!(batch.reason, FlushReason::Timer);
        assert_eq!(batch.items, vec![1, 2]);
        assert_eq!(batch.oldest_at, SimTime::from_micros(500));
        b.offer(deadline, 3, 10);
        assert_eq!(b.deadline(), Some(deadline + SimDuration::from_millis(1)));
        assert!(b.on_timer(deadline).is_none());
    }

    #[test]
    fn default_is_paper_operating_point() {
        let c = BatchConfig::default();
        assert_eq!(c.mms, 256 * 1024);
        assert_eq!(c.wtl, SimDuration::from_millis(1));
    }

    #[test]
    fn single_oversized_item_flushes_alone() {
        let mut b = Batcher::new(cfg(100, 10));
        let batch = b.offer(SimTime::ZERO, 9, 500).unwrap();
        assert_eq!(batch.items, vec![9]);
        assert_eq!(batch.bytes, 500);
    }
}
