//! Persistent RDMA-readable partition log behind the outbox rings.
//!
//! The outbox rings ([`crate::memory::RingRegion`]) are transient: a slot
//! is reused as soon as the fetcher consumes it, so a crashed or late
//! consumer has nothing to read back. [`PartitionLog`] is the durable
//! sibling — a per-link, segment-based append log that sends write
//! through *before* the outbox. Every record keeps its sequence number,
//! and [`PartitionLog::read_from`] serves any retained suffix via modeled
//! one-sided RDMA READs through a real [`QueuePair`], so recovery and
//! late-subscriber backfill never touch the log owner's CPU (the same
//! server-bypass property the one-sided transport has on the hot path).
//!
//! Layout: records are framed `seq u64 LE | len u32 LE | payload` and
//! packed into fixed-size segments, each registered as one memory region
//! (registration is paid per segment, not per record — the same
//! amortization argument as the outbox rings). Retention is bounded two
//! ways: a segment-count cap evicts the oldest segment on roll-over, and
//! [`PartitionLog::truncate_to`] garbage-collects whole segments below an
//! acknowledgement watermark fed back by the caller (the dsps acker, in
//! the live runtime). GC only ever drops whole segments: a watermark in
//! the middle of a segment keeps it, so `first_seq` is always the head of
//! a readable record.
//!
//! Torn tails: [`PartitionLog::recover`] rebuilds a log from raw segment
//! bytes (as [`PartitionLog::snapshot`] emits them) and tolerates a tail
//! truncated at any byte — it keeps every complete record, counts one
//! `torn_tails`, and never panics.

use crate::memory::{MemoryRegionId, MemoryRegistry};
use crate::topology::MachineId;
use crate::verbs::{QpId, QueuePair, WorkRequest, WrId};
use std::collections::VecDeque;
use whale_sim::{CostModel, MetricsRegistry, Transport, Verb};

/// Bytes of record-framing overhead per appended record.
pub const RECORD_HEADER: usize = 12;

/// Configuration of a [`PartitionLog`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogConfig {
    /// Capacity of one segment's buffer. A record larger than this still
    /// fits: its segment is sized up to hold exactly that record.
    pub segment_bytes: usize,
    /// Retention cap: appending past this many segments evicts the
    /// oldest (counted as GC'd bytes, distinct from watermark GC).
    pub max_segments: usize,
    /// Topology distance priced into replay READs.
    pub rack_hops: u32,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            segment_bytes: 64 * 1024,
            max_segments: 64,
            rack_hops: 0,
        }
    }
}

/// One registered segment of packed records.
struct Segment {
    /// Sequence number of the first record in this segment.
    base_seq: u64,
    /// Byte offset of each record within `buf`.
    offsets: Vec<usize>,
    buf: Vec<u8>,
    region: MemoryRegionId,
}

/// Result of one [`PartitionLog::read_from`] pass.
#[derive(Debug, Default)]
pub struct LogRead {
    /// Recovered records, in sequence order: `(seq, payload)`.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Records below the requested start that were already GC'd (the
    /// caller asked for history the retention policy dropped).
    pub gc_skipped: u64,
}

/// A per-link, segment-based append log readable by sequence number via
/// modeled RDMA READs. See the module docs for layout and semantics.
pub struct PartitionLog {
    config: LogConfig,
    registry: MemoryRegistry,
    qp: QueuePair,
    cost: CostModel,
    segments: VecDeque<Segment>,
    /// Sequence number the next append receives.
    next_seq: u64,
    /// Oldest retained sequence number (== `next_seq` when empty).
    first_seq: u64,
    // Counters. Writer-side:
    appended_records: u64,
    appended_bytes: u64,
    sender_cpu_ns: u64,
    // GC:
    gcd_records: u64,
    gcd_bytes: u64,
    evicted_segments: u64,
    gc_watermark: u64,
    // Reader-side (replay / backfill):
    reads_posted: u64,
    read_bytes: u64,
    read_cpu_ns: u64,
    read_wire_ns: u64,
    torn_tails: u64,
}

impl PartitionLog {
    /// New empty log with a loopback queue pair (both ends on machine 0).
    pub fn new(config: LogConfig) -> Self {
        Self::for_link(config, QpId(0), MachineId(0), MachineId(0))
    }

    /// New empty log whose replay READs are priced on the given link.
    pub fn for_link(config: LogConfig, qp: QpId, local: MachineId, remote: MachineId) -> Self {
        assert!(config.segment_bytes > RECORD_HEADER, "segment too small");
        assert!(config.max_segments > 0, "need at least one segment");
        PartitionLog {
            config,
            registry: MemoryRegistry::new(),
            qp: QueuePair::new(qp, local, remote, Transport::Rdma),
            cost: CostModel::default(),
            segments: VecDeque::new(),
            next_seq: 0,
            first_seq: 0,
            appended_records: 0,
            appended_bytes: 0,
            sender_cpu_ns: 0,
            gcd_records: 0,
            gcd_bytes: 0,
            evicted_segments: 0,
            gc_watermark: 0,
            reads_posted: 0,
            read_bytes: 0,
            read_cpu_ns: 0,
            read_wire_ns: 0,
            torn_tails: 0,
        }
    }

    /// Append one record; returns its sequence number. The write is
    /// priced as the sender-side CPU of a one-sided WRITE (the log lives
    /// next to the outbox, on the sender).
    pub fn append(&mut self, payload: &[u8]) -> u64 {
        let need = RECORD_HEADER + payload.len();
        let roll = match self.segments.back() {
            None => true,
            Some(s) => s.buf.len() + need > s.buf.capacity(),
        };
        if roll {
            self.push_segment(need);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let seg = self.segments.back_mut().expect("push_segment left one");
        seg.offsets.push(seg.buf.len());
        seg.buf.extend_from_slice(&seq.to_le_bytes());
        seg.buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        seg.buf.extend_from_slice(payload);
        self.appended_records += 1;
        self.appended_bytes += payload.len() as u64;
        self.sender_cpu_ns += self
            .cost
            .send_cpu(Transport::Rdma, Verb::Write, need)
            .as_nanos();
        seq
    }

    fn push_segment(&mut self, need: usize) {
        let cap = self.config.segment_bytes.max(need);
        let region = self.registry.register(cap);
        self.segments.push_back(Segment {
            base_seq: self.next_seq,
            offsets: Vec::new(),
            buf: Vec::with_capacity(cap),
            region,
        });
        while self.segments.len() > self.config.max_segments {
            let seg = self.segments.pop_front().expect("len > cap >= 1");
            self.evicted_segments += 1;
            self.drop_segment(seg);
        }
    }

    /// Account one segment's removal and advance `first_seq` past it.
    fn drop_segment(&mut self, seg: Segment) {
        self.gcd_records += seg.offsets.len() as u64;
        self.gcd_bytes += seg.buf.len() as u64;
        self.first_seq = seg.base_seq + seg.offsets.len() as u64;
        self.registry.deregister(seg.region);
    }

    /// Read every retained record with sequence `>= seq`, pricing each as
    /// a one-sided READ on this log's queue pair. The log owner's CPU
    /// counter is untouched — the cost lands on the reader
    /// ([`PartitionLog::read_cpu_ns`]) and the wire.
    pub fn read_from(&mut self, seq: u64) -> LogRead {
        let start = seq.max(self.first_seq);
        let mut out = LogRead {
            records: Vec::new(),
            gc_skipped: start - seq,
        };
        for si in 0..self.segments.len() {
            let (base, n) = {
                let s = &self.segments[si];
                (s.base_seq, s.offsets.len() as u64)
            };
            if base + n <= start {
                continue;
            }
            let from = start.saturating_sub(base) as usize;
            for ri in from..n as usize {
                let (rec_seq, payload) = {
                    let s = &self.segments[si];
                    let off = s.offsets[ri];
                    let rec_seq = u64::from_le_bytes(s.buf[off..off + 8].try_into().unwrap());
                    let len =
                        u32::from_le_bytes(s.buf[off + 8..off + 12].try_into().unwrap()) as usize;
                    (rec_seq, s.buf[off + RECORD_HEADER..off + RECORD_HEADER + len].to_vec())
                };
                let wr = WorkRequest {
                    wr_id: WrId(rec_seq),
                    verb: Verb::Read,
                    bytes: RECORD_HEADER + payload.len(),
                };
                let costs = self.qp.post(&wr, &self.cost, self.config.rack_hops);
                self.reads_posted += 1;
                self.read_bytes += wr.bytes as u64;
                // Both the post and the completion are the reader's CPU:
                // one-sided READs bypass the log owner entirely.
                self.read_cpu_ns += costs.post_cpu.as_nanos() + costs.remote_cpu.as_nanos();
                self.read_wire_ns += costs.wire.as_nanos() + 2 * costs.latency.as_nanos();
                out.records.push((rec_seq, payload));
            }
        }
        out
    }

    /// Garbage-collect whole segments entirely below `watermark` (every
    /// record with `seq < watermark` is acknowledged and unneeded). The
    /// watermark is monotonic; stale values are ignored. Only whole
    /// segments go: a watermark inside a segment keeps it.
    pub fn truncate_to(&mut self, watermark: u64) {
        self.gc_watermark = self.gc_watermark.max(watermark);
        while let Some(front) = self.segments.front() {
            let end = front.base_seq + front.offsets.len() as u64;
            if end > watermark {
                break;
            }
            let seg = self.segments.pop_front().expect("front exists");
            self.drop_segment(seg);
        }
    }

    /// Raw retained bytes, segment by segment, oldest first — the exact
    /// input [`PartitionLog::recover`] accepts.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for s in &self.segments {
            out.extend_from_slice(&s.buf);
        }
        out
    }

    /// Rebuild a log from raw snapshot bytes. A tail truncated at any
    /// byte recovers to the last complete record, counting one torn
    /// tail; the recovered log continues appending after the last good
    /// sequence number.
    pub fn recover(config: LogConfig, bytes: &[u8]) -> Self {
        let mut log = PartitionLog::new(config);
        let mut pos = 0usize;
        let mut torn = false;
        while pos + RECORD_HEADER <= bytes.len() {
            let seq = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
            let len = u32::from_le_bytes(bytes[pos + 8..pos + 12].try_into().unwrap()) as usize;
            if pos + RECORD_HEADER + len > bytes.len() {
                torn = true;
                break;
            }
            if log.segments.is_empty() {
                log.next_seq = seq;
                log.first_seq = seq;
            }
            let appended = log.append(&bytes[pos + RECORD_HEADER..pos + RECORD_HEADER + len]);
            debug_assert_eq!(appended, seq, "snapshot records are contiguous");
            pos += RECORD_HEADER + len;
        }
        if torn || pos != bytes.len() {
            log.torn_tails += 1;
        }
        log
    }

    /// Sequence number the next append receives.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Oldest retained sequence number.
    pub fn first_seq(&self) -> u64 {
        self.first_seq
    }

    /// Records appended over the log's lifetime.
    pub fn appended_records(&self) -> u64 {
        self.appended_records
    }

    /// Payload bytes appended over the log's lifetime.
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes
    }

    /// Modeled sender-side CPU nanoseconds spent appending. Reads never
    /// move this — that is the server-bypass property recovery leans on.
    pub fn sender_cpu_ns(&self) -> u64 {
        self.sender_cpu_ns
    }

    /// Records dropped by watermark GC or the segment cap.
    pub fn gcd_records(&self) -> u64 {
        self.gcd_records
    }

    /// Bytes dropped by watermark GC or the segment cap.
    pub fn gcd_bytes(&self) -> u64 {
        self.gcd_bytes
    }

    /// Segments evicted by the retention cap (not the watermark).
    pub fn evicted_segments(&self) -> u64 {
        self.evicted_segments
    }

    /// Highest acknowledgement watermark fed to [`Self::truncate_to`].
    pub fn gc_watermark(&self) -> u64 {
        self.gc_watermark
    }

    /// Torn tails absorbed by [`Self::recover`].
    pub fn torn_tails(&self) -> u64 {
        self.torn_tails
    }

    /// One-sided READs posted serving [`Self::read_from`].
    pub fn reads_posted(&self) -> u64 {
        self.reads_posted
    }

    /// Bytes moved by replay READs (record framing included).
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes
    }

    /// Modeled reader-side CPU nanoseconds across all replay READs.
    pub fn read_cpu_ns(&self) -> u64 {
        self.read_cpu_ns
    }

    /// Modeled wire + propagation nanoseconds across all replay READs.
    pub fn read_wire_ns(&self) -> u64 {
        self.read_wire_ns
    }

    /// Bytes currently retained across all segments.
    pub fn retained_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.buf.len() as u64).sum()
    }

    /// Segments currently retained.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Memory registrations paid over the log's lifetime.
    pub fn registrations(&self) -> u64 {
        self.registry.registrations()
    }

    /// Memory deregistrations (segment evictions and watermark GC).
    pub fn deregistrations(&self) -> u64 {
        self.registry.deregistrations()
    }

    /// Export counters and gauges into `reg` under `prefix.*`.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.set_counter(&format!("{prefix}.appended_records"), self.appended_records);
        reg.set_counter(&format!("{prefix}.appended_bytes"), self.appended_bytes);
        reg.set_counter(&format!("{prefix}.sender_cpu_ns"), self.sender_cpu_ns);
        reg.set_counter(&format!("{prefix}.gcd_records"), self.gcd_records);
        reg.set_counter(&format!("{prefix}.gcd_bytes"), self.gcd_bytes);
        reg.set_counter(&format!("{prefix}.evicted_segments"), self.evicted_segments);
        reg.set_counter(&format!("{prefix}.reads_posted"), self.reads_posted);
        reg.set_counter(&format!("{prefix}.read_bytes"), self.read_bytes);
        reg.set_counter(&format!("{prefix}.read_cpu_ns"), self.read_cpu_ns);
        reg.set_counter(&format!("{prefix}.read_wire_ns"), self.read_wire_ns);
        reg.set_counter(&format!("{prefix}.torn_tails"), self.torn_tails);
        reg.set_gauge(&format!("{prefix}.gc_watermark"), self.gc_watermark as f64);
        reg.set_gauge(
            &format!("{prefix}.watermark_lag"),
            self.next_seq.saturating_sub(self.gc_watermark) as f64,
        );
        reg.set_gauge(
            &format!("{prefix}.retained_bytes"),
            self.retained_bytes() as f64,
        );
        reg.set_gauge(&format!("{prefix}.segments"), self.segments.len() as f64);
        self.registry.export_metrics(reg, prefix);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LogConfig {
        LogConfig {
            segment_bytes: 64,
            max_segments: 4,
            rack_hops: 0,
        }
    }

    /// Small segments, but a cap high enough that tests exercising the
    /// full history never trip eviction.
    fn roomy() -> LogConfig {
        LogConfig {
            segment_bytes: 64,
            max_segments: 1024,
            rack_hops: 0,
        }
    }

    fn payload(i: u64) -> Vec<u8> {
        format!("record-{i:04}").into_bytes()
    }

    #[test]
    fn appends_then_reads_back_everything_in_order() {
        let mut log = PartitionLog::new(roomy());
        for i in 0..20u64 {
            assert_eq!(log.append(&payload(i)), i);
        }
        let read = log.read_from(0);
        assert_eq!(read.records.len(), 20);
        for (i, (seq, bytes)) in read.records.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(bytes, &payload(i as u64));
        }
        assert_eq!(read.gc_skipped, 0);
    }

    #[test]
    fn read_from_arbitrary_seq_returns_the_suffix() {
        let mut log = PartitionLog::new(roomy());
        for i in 0..20u64 {
            log.append(&payload(i));
        }
        let read = log.read_from(13);
        assert_eq!(read.records.len(), 7);
        assert_eq!(read.records[0].0, 13);
        assert_eq!(read.records.last().unwrap().0, 19);
    }

    #[test]
    fn reads_are_priced_as_one_sided_reads_with_zero_sender_cpu() {
        let mut log = PartitionLog::new(roomy());
        for i in 0..8u64 {
            log.append(&payload(i));
        }
        let writer_cpu = log.sender_cpu_ns();
        assert!(writer_cpu > 0, "appends cost sender CPU");
        let before_reads = log.reads_posted();
        assert_eq!(before_reads, 0);
        let read = log.read_from(0);
        assert_eq!(read.records.len(), 8);
        assert_eq!(log.reads_posted(), 8);
        let cost = CostModel::default();
        let expect_bytes: u64 = (0..8u64)
            .map(|i| (RECORD_HEADER + payload(i).len()) as u64)
            .sum();
        assert_eq!(log.read_bytes(), expect_bytes);
        let per = cost.send_cpu(Transport::Rdma, Verb::Read, RECORD_HEADER + payload(0).len());
        assert!(log.read_cpu_ns() >= 8 * per.as_nanos());
        // The server-bypass property: reads moved zero sender CPU.
        assert_eq!(log.sender_cpu_ns(), writer_cpu);
        assert!(log.read_wire_ns() > 0);
    }

    #[test]
    fn watermark_gc_drops_whole_segments_and_refunds_registrations() {
        let mut log = PartitionLog::new(roomy());
        for i in 0..40u64 {
            log.append(&payload(i));
        }
        let segs = log.segment_count();
        assert!(segs > 2, "test needs multiple segments, got {segs}");
        let before = log.retained_bytes();
        log.truncate_to(20);
        assert!(log.segment_count() < segs);
        assert!(log.retained_bytes() < before);
        assert!(log.first_seq() <= 20, "GC only drops fully-acked segments");
        assert!(log.gcd_records() > 0);
        assert_eq!(log.deregistrations(), (segs - log.segment_count()) as u64);
        // Every record >= the watermark is still readable.
        let read = log.read_from(20);
        assert_eq!(read.records.len(), 20);
        assert_eq!(read.records[0].0, 20);
        // Stale watermarks are ignored.
        let wm = log.gc_watermark();
        log.truncate_to(5);
        assert_eq!(log.gc_watermark(), wm);
    }

    #[test]
    fn reading_below_the_gc_floor_clamps_and_counts() {
        let mut log = PartitionLog::new(roomy());
        for i in 0..40u64 {
            log.append(&payload(i));
        }
        log.truncate_to(20);
        let floor = log.first_seq();
        assert!(floor > 0);
        let read = log.read_from(0);
        assert_eq!(read.gc_skipped, floor);
        assert_eq!(read.records[0].0, floor);
    }

    #[test]
    fn segment_cap_bounds_retained_memory_under_sustained_load() {
        let cfg = small();
        let mut log = PartitionLog::new(cfg);
        for i in 0..10_000u64 {
            log.append(&payload(i));
        }
        assert!(log.segment_count() <= cfg.max_segments);
        assert!(log.retained_bytes() <= (cfg.max_segments * cfg.segment_bytes) as u64);
        assert!(log.evicted_segments() > 0);
        assert_eq!(
            log.first_seq() + log.read_from(0).records.len() as u64,
            log.next_seq()
        );
    }

    #[test]
    fn oversized_record_gets_its_own_segment_instead_of_panicking() {
        let mut log = PartitionLog::new(small());
        let big = vec![7u8; 500];
        let seq = log.append(&big);
        let read = log.read_from(seq);
        assert_eq!(read.records.len(), 1);
        assert_eq!(read.records[0].1, big);
    }

    #[test]
    fn snapshot_recover_roundtrips_exactly() {
        let mut log = PartitionLog::new(roomy());
        for i in 0..20u64 {
            log.append(&payload(i));
        }
        log.truncate_to(10);
        let snap = log.snapshot();
        let mut back = PartitionLog::recover(roomy(), &snap);
        assert_eq!(back.torn_tails(), 0);
        assert_eq!(back.first_seq(), log.first_seq());
        assert_eq!(back.next_seq(), log.next_seq());
        let a = log.read_from(0).records;
        let b = back.read_from(0).records;
        assert_eq!(a, b);
    }

    #[test]
    fn torn_tail_at_every_truncation_offset_recovers_without_panic() {
        let mut log = PartitionLog::new(roomy());
        for i in 0..12u64 {
            log.append(&payload(i));
        }
        let snap = log.snapshot();
        for cut in 0..snap.len() {
            let mut back = PartitionLog::recover(roomy(), &snap[..cut]);
            let n = back.read_from(0).records.len() as u64;
            // Whole records survive; the torn remainder is dropped.
            assert!(n <= 12);
            if cut < snap.len() {
                let full = cut == 0 || torn_free(&snap, cut);
                assert_eq!(
                    back.torn_tails(),
                    u64::from(!full),
                    "cut at {cut} of {}",
                    snap.len()
                );
            }
            for (i, (seq, bytes)) in back.read_from(0).records.iter().enumerate() {
                assert_eq!(*seq, i as u64);
                assert_eq!(bytes, &payload(i as u64));
            }
        }
        // The untruncated snapshot recovers torn-free.
        let back = PartitionLog::recover(roomy(), &snap);
        assert_eq!(back.torn_tails(), 0);
    }

    /// Whether a cut at `pos` lands exactly on a record boundary.
    fn torn_free(snap: &[u8], cut: usize) -> bool {
        let mut pos = 0usize;
        while pos < cut {
            if pos + RECORD_HEADER > snap.len() {
                return false;
            }
            let len =
                u32::from_le_bytes(snap[pos + 8..pos + 12].try_into().unwrap()) as usize;
            pos += RECORD_HEADER + len;
        }
        pos == cut
    }

    #[test]
    fn export_metrics_covers_counters_and_gauges() {
        let mut log = PartitionLog::new(roomy());
        for i in 0..20u64 {
            log.append(&payload(i));
        }
        log.truncate_to(8);
        log.read_from(8);
        let mut reg = MetricsRegistry::new();
        log.export_metrics(&mut reg, "log");
        assert_eq!(reg.counter("log.appended_records"), Some(20));
        assert!(reg.counter("log.appended_bytes").unwrap() > 0);
        assert!(reg.counter("log.reads_posted").unwrap() > 0);
        assert_eq!(reg.counter("log.torn_tails"), Some(0));
        assert_eq!(reg.gauge("log.gc_watermark"), Some(8.0));
        assert!(reg.gauge("log.retained_bytes").unwrap() > 0.0);
        assert!(reg.gauge("log.watermark_lag").unwrap() > 0.0);
        assert!(reg.counter("log.registrations").unwrap() > 0);
    }
}
