//! `OneSidedFabric`: the remote-fetch live transport (§4's one-sided
//! READ paradigm).
//!
//! Where [`crate::LiveFabric`] pushes into destination inboxes and
//! [`crate::RingFabric`] batches pushes through a flusher, this transport
//! inverts the data movement: each (sender, destination) link owns a
//! [`RingRegion`]-backed outbox registered once, the sender *publishes*
//! frames into it (server-bypass: no destination code runs on the send
//! path), and the receive side *fetches* — a modeled `RDMA READ` of the
//! tail slot, addressed purely by sequence number via
//! [`RingRegion::peek_at`], costed with [`Verb::Read`] through the
//! [`QueuePair`] cost model. A doorbell wakes the background fetcher
//! ([`spawn_fetcher`]) exactly like the ring flusher; deterministic
//! callers drive [`OneSidedFabric::fetch_all`] themselves.
//!
//! Semantics shared with the other transports:
//!
//! - a publish into a full outbox ring fails with [`SendError::Full`] —
//!   the bounded transfer queue of the M/D/1 model, surfaced as
//!   backpressure the `SendPolicy` retries;
//! - only bytes that actually reach an inbox count toward the byte
//!   totals; failed publishes and dead destinations increment
//!   `send_errors`;
//! - per-link FIFO order holds end to end: the ring is consumed strictly
//!   in sequence order, and a frame the (bounded) inbox cannot yet accept
//!   stays staged at the front of its link.

use crate::fabric::{
    EndpointId, FabricPath, LiveMessage, Payload, RegisterError, SendError,
};
use crate::log::{LogConfig, PartitionLog};
use crate::memory::{MemoryRegistry, RingRegion};
use crate::ring_fabric::Doorbell;
use crate::topology::{LinkTracker, MachineId};
use crate::verbs::{QpId, QueuePair, WorkRequest, WrId};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use whale_sim::{CostModel, MetricsRegistry, Transport, Verb};

/// Configuration of the one-sided (remote-fetch) transport.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OneSidedConfig {
    /// Per-link outbox capacity in slots: the maximum number of published
    /// but not yet fetched frames between one sender and one destination.
    /// Publishes beyond it fail with [`SendError::Full`].
    pub ring_slots: usize,
    /// Per-slot registration accounting (bytes of registered memory each
    /// slot reserves).
    pub slot_bytes: usize,
    /// Rack distance assumed for the modeled READ round trip.
    pub rack_hops: u32,
    /// Idle heartbeat of the fetcher: the longest a lost doorbell wakeup
    /// can stall a fully idle fabric.
    pub idle_heartbeat: Duration,
    /// Backoff while a bounded inbox stays full and a fetch pass makes no
    /// delivery progress.
    pub stall_backoff: Duration,
    /// When set, every publish also writes through a per-link
    /// [`PartitionLog`] before the frame reaches the outbox ring, making
    /// published history re-readable via [`OneSidedFabric::backfill`]
    /// after the ring slot is long recycled.
    pub log: Option<LogConfig>,
}

impl Default for OneSidedConfig {
    fn default() -> Self {
        OneSidedConfig {
            ring_slots: 16 * 1024,
            slot_bytes: 2 * 1024,
            rack_hops: 0,
            idle_heartbeat: Duration::from_millis(5),
            stall_backoff: Duration::from_micros(100),
            log: None,
        }
    }
}

/// One (sender → destination) link: the registered outbox ring, the frame
/// a full inbox bounced back (kept at the logical front so FIFO holds),
/// and the queue pair whose posts price the fetches.
struct LinkOutbox {
    ring: RingRegion<LiveMessage>,
    staged: Option<LiveMessage>,
    qp: QueuePair,
    /// Durable history of every frame published on this link, present
    /// when [`OneSidedConfig::log`] is set.
    log: Option<PartitionLog>,
}

impl LinkOutbox {
    fn pending(&self) -> usize {
        self.ring.len() + usize::from(self.staged.is_some())
    }
}

/// Link key: (destination, sender).
type LinkKey = (EndpointId, EndpointId);

/// Shared handle to one link's outbox state.
type LinkHandle = Arc<Mutex<LinkOutbox>>;

/// The remote-fetch transport. See the module docs for semantics.
pub struct OneSidedFabric {
    config: OneSidedConfig,
    cost: CostModel,
    inboxes: RwLock<HashMap<EndpointId, Sender<LiveMessage>>>,
    /// Keyed (destination, sender) so fetch passes group a destination's
    /// links together in the deterministic iteration order.
    links: RwLock<HashMap<LinkKey, LinkHandle>>,
    /// Registration ledger: one registration per link, paid lazily on the
    /// first publish, refunded on deregistration.
    registry: Mutex<MemoryRegistry>,
    doorbell: Doorbell,
    next_qp: AtomicU64,
    copied_bytes: AtomicU64,
    shared_bytes: AtomicU64,
    messages: AtomicU64,
    send_errors: AtomicU64,
    /// Frames published into outbox rings.
    posted: AtomicU64,
    /// Modeled `RDMA READ`s posted by the fetch side.
    reads_posted: AtomicU64,
    read_bytes: AtomicU64,
    /// Modeled sender-side publish CPU (`ring_publish` per fetched frame).
    publish_cpu_ns: AtomicU64,
    /// Modeled fetch-side CPU (`rdma_post_read` per fetched frame).
    fetch_cpu_ns: AtomicU64,
    /// Modeled wire occupancy plus the READ's request/response round trip.
    fetch_wire_ns: AtomicU64,
    stopping: AtomicBool,
    /// Optional per-link attribution: publishes raise a link's queue
    /// gauge, fetches settle it and count the bytes.
    tracker: RwLock<Option<Arc<LinkTracker>>>,
}

impl Default for OneSidedFabric {
    fn default() -> Self {
        Self::new(OneSidedConfig::default())
    }
}

impl OneSidedFabric {
    /// New fabric with no endpoints. Pair with [`spawn_fetcher`] for live
    /// use, or drive [`OneSidedFabric::fetch_all`] manually for
    /// deterministic runs.
    pub fn new(config: OneSidedConfig) -> Self {
        assert!(config.ring_slots > 0, "outbox needs at least one slot");
        OneSidedFabric {
            config,
            cost: CostModel::default(),
            inboxes: RwLock::new(HashMap::new()),
            links: RwLock::new(HashMap::new()),
            registry: Mutex::new(MemoryRegistry::new()),
            doorbell: Doorbell::new(),
            next_qp: AtomicU64::new(0),
            copied_bytes: AtomicU64::new(0),
            shared_bytes: AtomicU64::new(0),
            messages: AtomicU64::new(0),
            send_errors: AtomicU64::new(0),
            posted: AtomicU64::new(0),
            reads_posted: AtomicU64::new(0),
            read_bytes: AtomicU64::new(0),
            publish_cpu_ns: AtomicU64::new(0),
            fetch_cpu_ns: AtomicU64::new(0),
            fetch_wire_ns: AtomicU64::new(0),
            stopping: AtomicBool::new(false),
            tracker: RwLock::new(None),
        }
    }

    /// Attribute subsequent publishes and fetches to physical links
    /// through `tracker`.
    pub fn install_link_tracker(&self, tracker: Arc<LinkTracker>) {
        *self.tracker.write() = Some(tracker);
    }

    /// The active configuration.
    pub fn config(&self) -> OneSidedConfig {
        self.config
    }

    fn install(&self, id: EndpointId, tx: Sender<LiveMessage>) -> Result<(), RegisterError> {
        let mut map = self.inboxes.write();
        if map.contains_key(&id) {
            return Err(RegisterError::AlreadyRegistered(id));
        }
        map.insert(id, tx);
        Ok(())
    }

    /// Register an endpoint with an unbounded inbox; returns its receiver.
    pub fn register(&self, id: EndpointId) -> Result<Receiver<LiveMessage>, RegisterError> {
        let (tx, rx) = unbounded();
        self.install(id, tx)?;
        Ok(rx)
    }

    /// Register an endpoint whose inbox holds at most `capacity` fetched
    /// frames; full inboxes leave frames in the outbox ring (backpressure)
    /// rather than dropping them.
    pub fn register_bounded(
        &self,
        id: EndpointId,
        capacity: usize,
    ) -> Result<Receiver<LiveMessage>, RegisterError> {
        let (tx, rx) = bounded(capacity);
        self.install(id, tx)?;
        Ok(rx)
    }

    /// Remove an endpoint: subsequent sends fail, its outbox rings are
    /// deregistered, and unfetched frames addressed to it are dropped.
    pub fn deregister(&self, id: EndpointId) {
        self.inboxes.write().remove(&id);
        let mut links = self.links.write();
        let dead: Vec<(EndpointId, EndpointId)> = links
            .keys()
            .filter(|(to, _)| *to == id)
            .copied()
            .collect();
        let mut registry = self.registry.lock();
        for key in dead {
            if let Some(slot) = links.remove(&key) {
                registry.deregister(slot.lock().ring.region());
            }
        }
    }

    /// The outbox ring for `from → to`, registered lazily on first use so
    /// registration is paid once per link, never per message.
    fn link(&self, from: EndpointId, to: EndpointId) -> Arc<Mutex<LinkOutbox>> {
        if let Some(slot) = self.links.read().get(&(to, from)) {
            return Arc::clone(slot);
        }
        let mut links = self.links.write();
        Arc::clone(links.entry((to, from)).or_insert_with(|| {
            let ring = RingRegion::new(
                self.config.ring_slots,
                self.config.slot_bytes,
                &mut self.registry.lock(),
            );
            let qp = QueuePair::new(
                QpId(self.next_qp.fetch_add(1, Ordering::Relaxed)),
                MachineId(from.0),
                MachineId(to.0),
                Transport::Rdma,
            );
            let log = self.config.log.map(|cfg| {
                PartitionLog::for_link(
                    cfg,
                    QpId(self.next_qp.fetch_add(1, Ordering::Relaxed)),
                    MachineId(from.0),
                    MachineId(to.0),
                )
            });
            Arc::new(Mutex::new(LinkOutbox {
                ring,
                staged: None,
                qp,
                log,
            }))
        }))
    }

    /// Publish a frame into the `from → to` outbox and ring the doorbell.
    fn post(&self, from: EndpointId, to: EndpointId, msg: LiveMessage) -> Result<(), SendError> {
        if !self.inboxes.read().contains_key(&to) {
            self.send_errors.fetch_add(1, Ordering::Relaxed);
            return Err(SendError::UnknownEndpoint);
        }
        let slot = self.link(from, to);
        let published_bytes = msg.payload.len();
        {
            let mut link = slot.lock();
            // Write-through: the durable copy is taken as part of the
            // publish, so every frame the ring ever held is in the log.
            let logged = link.log.is_some().then(|| msg.payload.bytes().to_vec());
            if link.ring.produce(msg).is_err() {
                drop(link);
                self.send_errors.fetch_add(1, Ordering::Relaxed);
                return Err(SendError::Full);
            }
            if let (Some(log), Some(bytes)) = (link.log.as_mut(), logged) {
                log.append(&bytes);
            }
        }
        if let Some(tracker) = self.tracker.read().as_ref() {
            // Published into the outbox: the frame occupies its link's
            // queue until the fetcher pulls it across.
            tracker.on_send(from, to, published_bytes);
        }
        self.posted.fetch_add(1, Ordering::Relaxed);
        self.doorbell.ring();
        Ok(())
    }

    /// Late-subscriber backfill: replay the `from → to` link's logged
    /// history starting at sequence `seq` into `reader`'s inbox, as
    /// modeled one-sided READs against the sender's log — the sender's
    /// publish CPU counters never move. Returns the number of frames
    /// delivered. Fails with [`SendError::UnknownEndpoint`] if the
    /// reader is not registered, the link has never carried a frame, or
    /// the fabric runs without a log.
    pub fn backfill(
        &self,
        from: EndpointId,
        to: EndpointId,
        reader: EndpointId,
        seq: u64,
    ) -> Result<u64, SendError> {
        let Some(tx) = self.inboxes.read().get(&reader).cloned() else {
            return Err(SendError::UnknownEndpoint);
        };
        let Some(slot) = self.links.read().get(&(to, from)).map(Arc::clone) else {
            return Err(SendError::UnknownEndpoint);
        };
        let mut link = slot.lock();
        let Some(log) = link.log.as_mut() else {
            return Err(SendError::UnknownEndpoint);
        };
        let read = log.read_from(seq);
        drop(link);
        let mut delivered = 0;
        for (_seq, bytes) in read.records {
            let len = bytes.len() as u64;
            let msg = LiveMessage {
                from,
                payload: Payload::Copied(bytes),
            };
            match tx.try_send(msg) {
                Ok(()) => {
                    self.messages.fetch_add(1, Ordering::Relaxed);
                    self.copied_bytes.fetch_add(len, Ordering::Relaxed);
                    if let Some(tracker) = self.tracker.read().as_ref() {
                        // Backfill READs land synchronously in the
                        // reader's inbox.
                        tracker.on_send(from, reader, len as usize);
                        tracker.on_delivered(from, reader, len as usize);
                    }
                    delivered += 1;
                }
                Err(TrySendError::Full(_)) => {
                    self.send_errors.fetch_add(1, Ordering::Relaxed);
                    return Err(SendError::Full);
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.send_errors.fetch_add(1, Ordering::Relaxed);
                    return Err(SendError::Disconnected);
                }
            }
        }
        Ok(delivered)
    }

    /// Fold `f` over every link's partition log (no-op without a log).
    fn fold_logs(&self, f: impl Fn(&PartitionLog) -> u64) -> u64 {
        let links: Vec<LinkHandle> = self.links.read().values().map(Arc::clone).collect();
        links
            .iter()
            .map(|slot| slot.lock().log.as_ref().map_or(0, &f))
            .sum()
    }

    /// Records appended across every link's partition log.
    pub fn log_appended(&self) -> u64 {
        self.fold_logs(|l| l.appended_records())
    }

    /// Payload bytes appended across every link's partition log.
    pub fn log_appended_bytes(&self) -> u64 {
        self.fold_logs(|l| l.appended_bytes())
    }

    /// Modeled sender-side CPU spent writing the logs. Backfills never
    /// move this — that is the acceptance criterion E26 checks.
    pub fn log_sender_cpu_ns(&self) -> u64 {
        self.fold_logs(|l| l.sender_cpu_ns())
    }

    /// One-sided READs posted by log backfills.
    pub fn log_reads_posted(&self) -> u64 {
        self.fold_logs(|l| l.reads_posted())
    }

    /// Bytes moved by log backfill READs.
    pub fn log_read_bytes(&self) -> u64 {
        self.fold_logs(|l| l.read_bytes())
    }

    /// Bytes currently retained across every link's partition log.
    pub fn log_retained_bytes(&self) -> u64 {
        self.fold_logs(|l| l.retained_bytes())
    }

    /// TCP-semantics publish: the bytes are copied into the outbox slot,
    /// counted on delivery.
    pub fn send_copied(
        &self,
        from: EndpointId,
        to: EndpointId,
        bytes: &[u8],
    ) -> Result<(), SendError> {
        self.post(
            from,
            to,
            LiveMessage {
                from,
                payload: Payload::Copied(bytes.to_vec()),
            },
        )
    }

    /// RDMA-semantics publish: the shared buffer rides the slot by
    /// reference (one serialization, n slot pointers), counted on delivery.
    pub fn send_shared(
        &self,
        from: EndpointId,
        to: EndpointId,
        buf: Arc<[u8]>,
    ) -> Result<(), SendError> {
        self.post(
            from,
            to,
            LiveMessage {
                from,
                payload: Payload::Shared(buf),
            },
        )
    }

    /// Snapshot links in (destination, sender) order so fetch passes are
    /// deterministic.
    fn link_snapshot(&self) -> Vec<(EndpointId, LinkHandle)> {
        let map = self.links.read();
        let mut all: Vec<(LinkKey, LinkHandle)> =
            map.iter().map(|(k, s)| (*k, Arc::clone(s))).collect();
        all.sort_by_key(|(k, _)| *k);
        all.into_iter().map(|((to, _), s)| (to, s)).collect()
    }

    /// One fetch pass over every link: model the `RDMA READ` of each tail
    /// slot (addressed by seq), consume it, and hand the frame to the
    /// destination inbox. Stops at a full bounded inbox — the frame stays
    /// staged, the ring backs up, and publishes eventually see
    /// [`SendError::Full`]. Returns the number of frames delivered.
    pub fn fetch_all(&self) -> u64 {
        let mut delivered = 0;
        for (to, slot) in self.link_snapshot() {
            let tx = self.inboxes.read().get(&to).cloned();
            let mut link = slot.lock();
            loop {
                if link.staged.is_none() {
                    // The remote reader locates the next frame by sequence
                    // number alone — no control message (§4).
                    let seq = link.ring.tail_seq();
                    let Some(frame) = link.ring.peek_at(seq) else {
                        break;
                    };
                    let bytes = frame.payload.len();
                    let wr = WorkRequest {
                        wr_id: WrId(seq),
                        verb: Verb::Read,
                        bytes,
                    };
                    let costs = link.qp.post(&wr, &self.cost, self.config.rack_hops);
                    self.reads_posted.fetch_add(1, Ordering::Relaxed);
                    self.read_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
                    self.publish_cpu_ns
                        .fetch_add(costs.post_cpu.as_nanos(), Ordering::Relaxed);
                    self.fetch_cpu_ns
                        .fetch_add(costs.remote_cpu.as_nanos(), Ordering::Relaxed);
                    // A READ is a request/response round trip: two
                    // propagation legs plus the wire serialization.
                    self.fetch_wire_ns.fetch_add(
                        costs.wire.as_nanos() + 2 * costs.latency.as_nanos(),
                        Ordering::Relaxed,
                    );
                    let (addr, msg) = link.ring.consume().expect("peeked tail slot");
                    debug_assert_eq!(addr.seq, seq);
                    link.staged = Some(msg);
                }
                let Some(tx) = tx.as_ref() else {
                    // Destination deregistered with frames still published.
                    if let Some(dead) = link.staged.take() {
                        if let Some(tracker) = self.tracker.read().as_ref() {
                            tracker.on_dropped(dead.from, to, dead.payload.len());
                        }
                    }
                    self.send_errors.fetch_add(1, Ordering::Relaxed);
                    continue;
                };
                let msg = link.staged.take().expect("staged frame");
                let len = msg.payload.len() as u64;
                let from = msg.from;
                let bytes_ctr = if matches!(msg.payload, Payload::Shared(_)) {
                    &self.shared_bytes
                } else {
                    &self.copied_bytes
                };
                // Count before the hand-off (same rule as the ring
                // transport); failed hand-offs undo the increment.
                self.messages.fetch_add(1, Ordering::Relaxed);
                bytes_ctr.fetch_add(len, Ordering::Relaxed);
                match tx.try_send(msg) {
                    Ok(()) => {
                        delivered += 1;
                        if let Some(tracker) = self.tracker.read().as_ref() {
                            tracker.on_delivered(from, to, len as usize);
                        }
                    }
                    Err(TrySendError::Full(msg)) => {
                        self.messages.fetch_sub(1, Ordering::Relaxed);
                        bytes_ctr.fetch_sub(len, Ordering::Relaxed);
                        link.staged = Some(msg);
                        break;
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        self.messages.fetch_sub(1, Ordering::Relaxed);
                        bytes_ctr.fetch_sub(len, Ordering::Relaxed);
                        self.send_errors.fetch_add(1, Ordering::Relaxed);
                        if let Some(tracker) = self.tracker.read().as_ref() {
                            tracker.on_dropped(from, to, len as usize);
                        }
                    }
                }
            }
        }
        delivered
    }

    /// Frames published but not yet fetched into an inbox — real ring
    /// occupancy across every link, the λ-pressure signal the adaptive
    /// controller samples.
    pub fn queue_depth(&self) -> u64 {
        let map = self.links.read();
        map.values().map(|slot| slot.lock().pending() as u64).sum()
    }

    /// Frames published into outbox rings so far.
    pub fn posted(&self) -> u64 {
        self.posted.load(Ordering::Relaxed)
    }

    /// Modeled `RDMA READ`s the fetch side has posted so far.
    pub fn reads_posted(&self) -> u64 {
        self.reads_posted.load(Ordering::Relaxed)
    }

    /// Bytes moved by modeled READs so far.
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes.load(Ordering::Relaxed)
    }

    /// Messages delivered so far.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Bytes delivered through the copied (TCP) path so far.
    pub fn copied_bytes(&self) -> u64 {
        self.copied_bytes.load(Ordering::Relaxed)
    }

    /// Bytes delivered through the shared (RDMA) path so far.
    pub fn shared_bytes(&self) -> u64 {
        self.shared_bytes.load(Ordering::Relaxed)
    }

    /// Failed publishes plus dead-destination drops so far.
    pub fn send_errors(&self) -> u64 {
        self.send_errors.load(Ordering::Relaxed)
    }

    /// Registered endpoint count.
    pub fn endpoint_count(&self) -> usize {
        self.inboxes.read().len()
    }

    /// Live (sender, destination) link count.
    pub fn link_count(&self) -> usize {
        self.links.read().len()
    }

    /// Export delivery, fetch, and registration counters into `reg` under
    /// `prefix.*`.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.set_counter(&format!("{prefix}.posted"), self.posted());
        reg.set_counter(&format!("{prefix}.messages"), self.messages());
        reg.set_counter(&format!("{prefix}.copied_bytes"), self.copied_bytes());
        reg.set_counter(&format!("{prefix}.shared_bytes"), self.shared_bytes());
        reg.set_counter(&format!("{prefix}.send_errors"), self.send_errors());
        reg.set_counter(&format!("{prefix}.reads_posted"), self.reads_posted());
        reg.set_counter(&format!("{prefix}.read_bytes"), self.read_bytes());
        reg.set_counter(
            &format!("{prefix}.publish_cpu_ns"),
            self.publish_cpu_ns.load(Ordering::Relaxed),
        );
        reg.set_counter(
            &format!("{prefix}.fetch_cpu_ns"),
            self.fetch_cpu_ns.load(Ordering::Relaxed),
        );
        reg.set_counter(
            &format!("{prefix}.fetch_wire_ns"),
            self.fetch_wire_ns.load(Ordering::Relaxed),
        );
        reg.set_gauge(&format!("{prefix}.endpoints"), self.endpoint_count() as f64);
        reg.set_gauge(&format!("{prefix}.links"), self.link_count() as f64);
        reg.set_gauge(&format!("{prefix}.queue_depth"), self.queue_depth() as f64);
        if self.config.log.is_some() {
            reg.set_counter(&format!("{prefix}.log.appended_records"), self.log_appended());
            reg.set_counter(
                &format!("{prefix}.log.appended_bytes"),
                self.log_appended_bytes(),
            );
            reg.set_counter(
                &format!("{prefix}.log.sender_cpu_ns"),
                self.log_sender_cpu_ns(),
            );
            reg.set_counter(&format!("{prefix}.log.reads_posted"), self.log_reads_posted());
            reg.set_counter(&format!("{prefix}.log.read_bytes"), self.log_read_bytes());
            reg.set_gauge(
                &format!("{prefix}.log.retained_bytes"),
                self.log_retained_bytes() as f64,
            );
        }
        self.registry.lock().export_metrics(reg, prefix);
    }
}

impl FabricPath for OneSidedFabric {
    fn register(&self, id: EndpointId) -> Result<Receiver<LiveMessage>, RegisterError> {
        OneSidedFabric::register(self, id)
    }

    fn register_bounded(
        &self,
        id: EndpointId,
        capacity: usize,
    ) -> Result<Receiver<LiveMessage>, RegisterError> {
        OneSidedFabric::register_bounded(self, id, capacity)
    }

    fn deregister(&self, id: EndpointId) {
        OneSidedFabric::deregister(self, id);
    }

    fn send_copied(
        &self,
        from: EndpointId,
        to: EndpointId,
        bytes: &[u8],
    ) -> Result<(), SendError> {
        OneSidedFabric::send_copied(self, from, to, bytes)
    }

    fn send_shared(
        &self,
        from: EndpointId,
        to: EndpointId,
        buf: Arc<[u8]>,
    ) -> Result<(), SendError> {
        OneSidedFabric::send_shared(self, from, to, buf)
    }

    fn flush(&self) {
        self.fetch_all();
    }

    fn messages(&self) -> u64 {
        OneSidedFabric::messages(self)
    }

    fn copied_bytes(&self) -> u64 {
        OneSidedFabric::copied_bytes(self)
    }

    fn shared_bytes(&self) -> u64 {
        OneSidedFabric::shared_bytes(self)
    }

    fn send_errors(&self) -> u64 {
        OneSidedFabric::send_errors(self)
    }

    fn queue_depth(&self) -> u64 {
        OneSidedFabric::queue_depth(self)
    }

    fn endpoint_count(&self) -> usize {
        OneSidedFabric::endpoint_count(self)
    }

    fn install_link_tracker(&self, tracker: Arc<LinkTracker>) {
        OneSidedFabric::install_link_tracker(self, tracker);
    }

    fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        OneSidedFabric::export_metrics(self, reg, prefix);
    }
}

/// Handle to the background fetcher. Stop it (or drop it) to force a
/// final fetch pass and join the poll thread.
pub struct OneSidedFetcher {
    fabric: Arc<OneSidedFabric>,
    handle: Option<JoinHandle<()>>,
}

impl OneSidedFetcher {
    /// Signal the fetcher to drain everything it can and exit, then join.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.fabric.stopping.store(true, Ordering::SeqCst);
        self.fabric.doorbell.ring();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for OneSidedFetcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawn the background fetcher: the receive side's poll loop, woken by
/// the publish doorbell, backing off while a bounded inbox stalls, and
/// running a final fetch pass on stop.
pub fn spawn_fetcher(fabric: Arc<OneSidedFabric>) -> OneSidedFetcher {
    let worker = Arc::clone(&fabric);
    let handle = std::thread::Builder::new()
        .name("one-sided-fetcher".into())
        .spawn(move || fetcher_loop(&worker))
        .expect("spawn one-sided fetcher");
    OneSidedFetcher {
        fabric,
        handle: Some(handle),
    }
}

fn fetcher_loop(fabric: &OneSidedFabric) {
    let idle = fabric.config.idle_heartbeat;
    let stalled = fabric.config.stall_backoff;
    loop {
        let delivered = fabric.fetch_all();
        if fabric.stopping.load(Ordering::SeqCst) {
            fabric.fetch_all();
            return;
        }
        let wait = if fabric.queue_depth() > 0 {
            if delivered == 0 {
                stalled
            } else {
                // More frames are already published; fetch again now.
                continue;
            }
        } else {
            idle
        };
        fabric.doorbell.wait(wait);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(ring_slots: usize) -> OneSidedConfig {
        OneSidedConfig {
            ring_slots,
            ..OneSidedConfig::default()
        }
    }

    #[test]
    fn frames_sit_in_outbox_until_fetched() {
        let fabric = OneSidedFabric::new(cfg(16));
        let rx = fabric.register(EndpointId(1)).unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"hello")
            .unwrap();
        assert!(rx.try_recv().is_err(), "nothing delivered before a fetch");
        assert_eq!(fabric.posted(), 1);
        assert_eq!(fabric.messages(), 0);
        assert_eq!(fabric.queue_depth(), 1);
        assert_eq!(fabric.fetch_all(), 1);
        assert_eq!(rx.recv().unwrap().payload.bytes(), b"hello");
        assert_eq!(fabric.copied_bytes(), 5);
        assert_eq!(fabric.queue_depth(), 0);
    }

    #[test]
    fn fetches_are_priced_as_reads() {
        let fabric = OneSidedFabric::new(cfg(16));
        let _rx = fabric.register(EndpointId(1)).unwrap();
        for _ in 0..3 {
            fabric
                .send_copied(EndpointId(0), EndpointId(1), &[0u8; 100])
                .unwrap();
        }
        fabric.fetch_all();
        assert_eq!(fabric.reads_posted(), 3);
        assert_eq!(fabric.read_bytes(), 300);
        let mut reg = MetricsRegistry::new();
        fabric.export_metrics(&mut reg, "os");
        let cost = CostModel::default();
        assert_eq!(
            reg.counter("os.publish_cpu_ns"),
            Some(3 * cost.send_cpu(Transport::Rdma, Verb::Read, 100).as_nanos())
        );
        assert_eq!(
            reg.counter("os.fetch_cpu_ns"),
            Some(3 * cost.recv_cpu(Transport::Rdma, Verb::Read).as_nanos())
        );
        assert!(reg.counter("os.fetch_wire_ns").unwrap() > 0);
    }

    #[test]
    fn registration_paid_once_per_link() {
        let fabric = OneSidedFabric::new(cfg(8));
        let _rx1 = fabric.register(EndpointId(1)).unwrap();
        let _rx2 = fabric.register(EndpointId(2)).unwrap();
        for _ in 0..5 {
            fabric
                .send_copied(EndpointId(0), EndpointId(1), b"x")
                .unwrap();
            fabric
                .send_copied(EndpointId(0), EndpointId(2), b"x")
                .unwrap();
        }
        fabric.fetch_all();
        let mut reg = MetricsRegistry::new();
        fabric.export_metrics(&mut reg, "os");
        assert_eq!(reg.counter("os.registrations"), Some(2), "one per link");
        assert_eq!(fabric.link_count(), 2);
    }

    #[test]
    fn shared_fanout_is_zero_copy() {
        let fabric = OneSidedFabric::new(cfg(8));
        let rx1 = fabric.register(EndpointId(1)).unwrap();
        let rx2 = fabric.register(EndpointId(2)).unwrap();
        let buf: Arc<[u8]> = Arc::from(&b"payload"[..]);
        fabric
            .send_shared(EndpointId(0), EndpointId(1), Arc::clone(&buf))
            .unwrap();
        fabric
            .send_shared(EndpointId(0), EndpointId(2), Arc::clone(&buf))
            .unwrap();
        fabric.fetch_all();
        match (&rx1.recv().unwrap().payload, &rx2.recv().unwrap().payload) {
            (Payload::Shared(a), Payload::Shared(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => panic!("expected shared payloads"),
        }
        assert_eq!(fabric.shared_bytes(), 14);
    }

    #[test]
    fn full_outbox_backpressures_without_deadlock() {
        let fabric = OneSidedFabric::new(cfg(2));
        let _rx = fabric.register(EndpointId(1)).unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"a")
            .unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"b")
            .unwrap();
        assert_eq!(
            fabric
                .send_copied(EndpointId(0), EndpointId(1), b"c")
                .unwrap_err(),
            SendError::Full
        );
        assert_eq!(fabric.send_errors(), 1);
        // Fetching frees ring capacity.
        fabric.fetch_all();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"c")
            .unwrap();
    }

    #[test]
    fn bounded_inbox_stalls_fetch_and_retries_in_order() {
        let fabric = OneSidedFabric::new(cfg(16));
        let rx = fabric.register_bounded(EndpointId(1), 2).unwrap();
        for b in [b"a", b"b", b"c", b"d"] {
            fabric.send_copied(EndpointId(0), EndpointId(1), b).unwrap();
        }
        assert_eq!(fabric.fetch_all(), 2, "inbox capacity bounds the pass");
        assert_eq!(fabric.queue_depth(), 2, "rest stays published");
        assert_eq!(rx.try_recv().unwrap().payload.bytes(), b"a");
        assert_eq!(rx.try_recv().unwrap().payload.bytes(), b"b");
        assert_eq!(fabric.fetch_all(), 2);
        assert_eq!(rx.try_recv().unwrap().payload.bytes(), b"c");
        assert_eq!(rx.try_recv().unwrap().payload.bytes(), b"d");
        assert_eq!(fabric.send_errors(), 0);
        assert_eq!(fabric.messages(), 4);
    }

    #[test]
    fn unknown_endpoint_and_dropped_receiver_count_errors_not_bytes() {
        let fabric = OneSidedFabric::new(cfg(8));
        assert_eq!(
            fabric
                .send_copied(EndpointId(0), EndpointId(9), b"x")
                .unwrap_err(),
            SendError::UnknownEndpoint
        );
        let rx = fabric.register(EndpointId(1)).unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"xx")
            .unwrap();
        drop(rx);
        fabric.fetch_all();
        assert_eq!(fabric.send_errors(), 2);
        assert_eq!(fabric.copied_bytes(), 0);
        assert_eq!(fabric.messages(), 0);
    }

    #[test]
    fn deregister_refunds_registrations_and_drops_frames() {
        let fabric = OneSidedFabric::new(cfg(8));
        let _rx = fabric.register(EndpointId(1)).unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"stranded")
            .unwrap();
        fabric.deregister(EndpointId(1));
        assert_eq!(fabric.link_count(), 0);
        assert_eq!(fabric.queue_depth(), 0);
        assert_eq!(
            fabric
                .send_copied(EndpointId(0), EndpointId(1), b"x")
                .unwrap_err(),
            SendError::UnknownEndpoint
        );
        let mut reg = MetricsRegistry::new();
        fabric.export_metrics(&mut reg, "os");
        assert_eq!(reg.counter("os.deregistrations"), Some(1));
    }

    #[test]
    fn per_link_fifo_holds_across_wraparound() {
        let fabric = OneSidedFabric::new(cfg(4));
        let rx = fabric.register(EndpointId(1)).unwrap();
        let mut expected = Vec::new();
        for round in 0..10u8 {
            for i in 0..3u8 {
                let v = round * 3 + i;
                fabric
                    .send_copied(EndpointId(0), EndpointId(1), &[v])
                    .unwrap();
                expected.push(v);
            }
            fabric.fetch_all();
        }
        let got: Vec<u8> = std::iter::from_fn(|| rx.try_recv().ok())
            .map(|m| m.payload.bytes()[0])
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn live_fetcher_delivers_without_manual_passes() {
        let fabric = Arc::new(OneSidedFabric::new(cfg(1024)));
        let fetcher = spawn_fetcher(Arc::clone(&fabric));
        let rx = fabric.register(EndpointId(1)).unwrap();
        for i in 0..50u8 {
            fabric
                .send_copied(EndpointId(0), EndpointId(1), &[i])
                .unwrap();
        }
        let got: Vec<u8> = (0..50)
            .map(|_| {
                rx.recv_timeout(Duration::from_secs(5))
                    .expect("fetcher delivers")
                    .payload
                    .bytes()[0]
            })
            .collect();
        assert_eq!(got, (0..50).collect::<Vec<u8>>());
        fetcher.stop();
        assert_eq!(fabric.reads_posted(), 50);
    }

    #[test]
    fn fetcher_stop_drains_stragglers() {
        let fabric = Arc::new(OneSidedFabric::new(cfg(1024)));
        let fetcher = spawn_fetcher(Arc::clone(&fabric));
        let rx = fabric.register(EndpointId(1)).unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"tail")
            .unwrap();
        fetcher.stop();
        assert_eq!(rx.try_recv().unwrap().payload.bytes(), b"tail");
    }

    #[test]
    fn multi_producer_stress_keeps_per_sender_order() {
        const SENDERS: u32 = 8;
        const PER_SENDER: u32 = 2_000;
        let fabric = Arc::new(OneSidedFabric::new(cfg(64)));
        let fetcher = spawn_fetcher(Arc::clone(&fabric));
        let rx = fabric.register(EndpointId(0)).unwrap();

        let producers: Vec<_> = (1..=SENDERS)
            .map(|s| {
                let f = Arc::clone(&fabric);
                std::thread::spawn(move || {
                    for seq in 0..PER_SENDER {
                        let frame = [s.to_le_bytes(), seq.to_le_bytes()].concat();
                        loop {
                            match f.send_copied(EndpointId(s), EndpointId(0), &frame) {
                                Ok(()) => break,
                                Err(SendError::Full) => std::thread::yield_now(),
                                Err(e) => panic!("unexpected send error: {e}"),
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }

        let mut next_seq = vec![0u32; SENDERS as usize + 1];
        for _ in 0..SENDERS * PER_SENDER {
            let msg = rx
                .recv_timeout(Duration::from_secs(10))
                .expect("no frame lost");
            let bytes = msg.payload.bytes();
            let s = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
            let seq = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
            assert_eq!(msg.from, EndpointId(s));
            assert_eq!(seq, next_seq[s as usize], "per-sender FIFO order");
            next_seq[s as usize] = seq + 1;
        }
        assert!(rx.try_recv().is_err(), "no duplicated frames");
        assert_eq!(fabric.messages(), (SENDERS * PER_SENDER) as u64);
        // Every accepted publish was delivered; send_errors only counts
        // the Full rejections the producers retried (backpressure, not
        // loss).
        assert_eq!(fabric.posted(), fabric.messages());
        fetcher.stop();
    }

    fn drain(rx: &Receiver<LiveMessage>) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Ok(msg) = rx.try_recv() {
            out.push(msg.payload.bytes().to_vec());
        }
        out
    }

    fn logged_config() -> OneSidedConfig {
        OneSidedConfig {
            ring_slots: 64,
            log: Some(LogConfig {
                segment_bytes: 256,
                max_segments: 1024,
                rack_hops: 0,
            }),
            ..OneSidedConfig::default()
        }
    }

    #[test]
    fn publishes_write_through_the_link_log() {
        let fabric = OneSidedFabric::new(logged_config());
        let _rx = fabric.register(EndpointId(1)).unwrap();
        for i in 0..10u64 {
            fabric
                .send_copied(EndpointId(0), EndpointId(1), &i.to_le_bytes())
                .unwrap();
        }
        fabric.fetch_all();
        // The ring slots are consumed, but the log kept everything.
        assert_eq!(fabric.log_appended(), 10);
        assert_eq!(fabric.log_appended_bytes(), 80);
        assert!(fabric.log_retained_bytes() > 0);
    }

    #[test]
    fn backfill_replays_history_into_a_late_reader_with_zero_sender_cpu() {
        let fabric = OneSidedFabric::new(logged_config());
        let rx = fabric.register(EndpointId(1)).unwrap();
        for i in 0..20u64 {
            fabric
                .send_copied(EndpointId(0), EndpointId(1), &i.to_le_bytes())
                .unwrap();
        }
        // The live consumer drains everything; the ring is empty now.
        fabric.fetch_all();
        assert_eq!(drain(&rx).len(), 20);

        // A late subscriber attaches mid-run and backfills from seq 5.
        let late = fabric.register(EndpointId(9)).unwrap();
        let sender_cpu_before = fabric.log_sender_cpu_ns();
        let reads_before = fabric.log_reads_posted();
        let delivered = fabric
            .backfill(EndpointId(0), EndpointId(1), EndpointId(9), 5)
            .unwrap();
        assert_eq!(delivered, 15);
        let got = drain(&late);
        assert_eq!(got.len(), 15);
        assert_eq!(got[0], 5u64.to_le_bytes().to_vec());
        assert_eq!(got[14], 19u64.to_le_bytes().to_vec());
        // Server bypass: the backfill posted READs and moved zero
        // sender-side CPU.
        assert!(fabric.log_reads_posted() > reads_before);
        assert_eq!(fabric.log_sender_cpu_ns(), sender_cpu_before);
    }

    #[test]
    fn backfill_without_a_log_or_link_is_an_unknown_endpoint() {
        let plain = OneSidedFabric::new(OneSidedConfig {
            ring_slots: 64,
            ..OneSidedConfig::default()
        });
        let _rx = plain.register(EndpointId(1)).unwrap();
        plain
            .send_copied(EndpointId(0), EndpointId(1), b"x")
            .unwrap();
        assert_eq!(
            plain.backfill(EndpointId(0), EndpointId(1), EndpointId(1), 0),
            Err(SendError::UnknownEndpoint)
        );
        let logged = OneSidedFabric::new(logged_config());
        let _rx = logged.register(EndpointId(1)).unwrap();
        assert_eq!(
            logged.backfill(EndpointId(0), EndpointId(1), EndpointId(1), 0),
            Err(SendError::UnknownEndpoint)
        );
    }

    #[test]
    fn log_metrics_export_under_the_log_prefix() {
        let fabric = OneSidedFabric::new(logged_config());
        let _rx = fabric.register(EndpointId(1)).unwrap();
        for i in 0..5u64 {
            fabric
                .send_copied(EndpointId(0), EndpointId(1), &i.to_le_bytes())
                .unwrap();
        }
        let mut reg = MetricsRegistry::new();
        fabric.export_metrics(&mut reg, "os");
        assert_eq!(reg.counter("os.log.appended_records"), Some(5));
        assert_eq!(reg.counter("os.log.appended_bytes"), Some(40));
        assert!(reg.counter("os.log.sender_cpu_ns").unwrap() > 0);
        assert_eq!(reg.counter("os.log.reads_posted"), Some(0));
        assert!(reg.gauge("os.log.retained_bytes").unwrap() > 0.0);
    }
}
