//! Physical cluster topology: machines, racks, NIC placement, and
//! per-link load accounting.
//!
//! The paper's testbed is 30 machines (16 cores each), optionally
//! partitioned into 1–5 racks (Figs 33–34). Topology answers two questions
//! for the fabric: how many rack hops separate two machines, and which
//! machine hosts which worker. [`LinkTracker`] extends that static view
//! with live per-link gauges (queue depth, bytes in flight, delivered
//! bytes) so tree construction and the adaptive controller can see *which
//! link* is congested, not just which endpoint.

use crate::fabric::EndpointId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Identifier of a physical machine in the cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MachineId(pub u32);

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Identifier of a rack.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RackId(pub u32);

/// Static description of the simulated cluster.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    machines: u32,
    racks: u32,
    cores_per_machine: u32,
    /// Explicit machine → rack assignment for skewed placements; `None`
    /// keeps the round-robin default.
    rack_map: Option<Arc<[u32]>>,
}

impl ClusterSpec {
    /// The paper's testbed: 30 machines, 16 cores, one rack.
    pub fn paper_testbed() -> Self {
        ClusterSpec::new(30, 1, 16)
    }

    /// Build a cluster of `machines` machines spread round-robin over
    /// `racks` racks, each with `cores_per_machine` cores.
    pub fn new(machines: u32, racks: u32, cores_per_machine: u32) -> Self {
        assert!(machines > 0, "need at least one machine");
        assert!(
            racks > 0 && racks <= machines,
            "racks must be in 1..=machines"
        );
        assert!(cores_per_machine > 0);
        ClusterSpec {
            machines,
            racks,
            cores_per_machine,
            rack_map: None,
        }
    }

    /// Build a cluster with an explicit (possibly skewed) machine → rack
    /// assignment: `rack_map[m]` is the rack of machine `m`. Every rack
    /// index must be `< racks`; racks may be empty (a skewed placement
    /// can pile every machine into one rack).
    pub fn with_rack_map(
        machines: u32,
        racks: u32,
        cores_per_machine: u32,
        rack_map: Vec<u32>,
    ) -> Self {
        let mut spec = ClusterSpec::new(machines, racks, cores_per_machine);
        assert_eq!(
            rack_map.len(),
            machines as usize,
            "rack_map needs one entry per machine"
        );
        assert!(
            rack_map.iter().all(|&r| r < racks),
            "rack_map entries must be < racks"
        );
        spec.rack_map = Some(rack_map.into());
        spec
    }

    /// Number of machines.
    pub fn machines(&self) -> u32 {
        self.machines
    }

    /// Number of racks.
    pub fn racks(&self) -> u32 {
        self.racks
    }

    /// Cores per machine.
    pub fn cores_per_machine(&self) -> u32 {
        self.cores_per_machine
    }

    /// Total cores in the cluster.
    pub fn total_cores(&self) -> u32 {
        self.machines * self.cores_per_machine
    }

    /// Iterate over all machine ids.
    pub fn machine_ids(&self) -> impl Iterator<Item = MachineId> {
        (0..self.machines).map(MachineId)
    }

    /// The rack a machine belongs to: the explicit [`rack map`] when one
    /// was given, round-robin otherwise.
    ///
    /// [`rack map`]: ClusterSpec::with_rack_map
    pub fn rack_of(&self, m: MachineId) -> RackId {
        assert!(m.0 < self.machines, "machine {m} out of range");
        match &self.rack_map {
            Some(map) => RackId(map[m.0 as usize]),
            None => RackId(m.0 % self.racks),
        }
    }

    /// Number of rack hops between two machines: 0 within a rack,
    /// 1 across racks (single ToR-to-ToR hop in a leaf-spine fabric).
    pub fn rack_hops(&self, a: MachineId, b: MachineId) -> u32 {
        if a == b {
            return 0;
        }
        if self.rack_of(a) == self.rack_of(b) {
            0
        } else {
            1
        }
    }

    /// True if both machines are the same physical host (loopback traffic
    /// does not cross the NIC).
    pub fn is_local(&self, a: MachineId, b: MachineId) -> bool {
        a == b
    }

    /// The single link a `from → to` transfer occupies in the modeled
    /// leaf-spine fabric: loopback on the same host, the rack's switch
    /// fabric within a rack, and the *sender's* rack uplink across racks
    /// (egress attribution — every send maps to exactly one link, so
    /// per-link byte sums always equal total wire bytes).
    pub fn link_between(&self, from: MachineId, to: MachineId) -> LinkId {
        if from == to {
            LinkId::Loopback(from)
        } else {
            let (fr, tr) = (self.rack_of(from), self.rack_of(to));
            if fr == tr {
                LinkId::IntraRack(fr)
            } else {
                LinkId::Uplink(fr)
            }
        }
    }
}

/// A physical link in the modeled leaf-spine fabric. Every transfer
/// occupies exactly one link (see [`ClusterSpec::link_between`]): the
/// oversubscribed resource the rack experiments contend on is the
/// per-rack uplink, so cross-rack transfers are charged to the sending
/// rack's uplink.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum LinkId {
    /// Same-host delivery; never crosses the NIC.
    Loopback(MachineId),
    /// The rack-local (ToR) switch fabric of one rack.
    IntraRack(RackId),
    /// The rack's uplink toward the spine — the oversubscribed link.
    Uplink(RackId),
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkId::Loopback(m) => write!(f, "loopback({m})"),
            LinkId::IntraRack(r) => write!(f, "intra(r{})", r.0),
            LinkId::Uplink(r) => write!(f, "uplink(r{})", r.0),
        }
    }
}

/// One link's load snapshot: cumulative delivered traffic plus the live
/// occupancy gauges.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LinkLoad {
    /// Which link.
    pub link: LinkId,
    /// Bytes delivered over the link so far.
    pub bytes: u64,
    /// Frames delivered over the link so far.
    pub frames: u64,
    /// Frames accepted for the link but not yet delivered (queue depth).
    pub queued_frames: u64,
    /// Bytes accepted for the link but not yet delivered (in flight).
    pub queued_bytes: u64,
}

/// Live per-link load accounting for one cluster.
///
/// Fabrics attribute each send to its link via the endpoint → machine
/// placement map ([`LinkTracker::map_endpoint`]); unmapped endpoints
/// (e.g. control-protocol endpoints outside the worker plane) stay
/// unattributed. `on_send` raises the link's queue gauges when a frame is
/// accepted, `on_delivered` moves it into the cumulative counters, and
/// `on_dropped` releases the gauges for frames that die in the queue —
/// so `queued_*` is real occupancy and `bytes` is real delivered wire
/// traffic, per link.
pub struct LinkTracker {
    spec: ClusterSpec,
    endpoints: RwLock<HashMap<EndpointId, MachineId>>,
    /// Flat per-link slots: loopback per machine, then intra per rack,
    /// then uplink per rack.
    bytes: Vec<AtomicU64>,
    frames: Vec<AtomicU64>,
    queued_frames: Vec<AtomicI64>,
    queued_bytes: Vec<AtomicI64>,
}

impl LinkTracker {
    /// New tracker over a cluster; all gauges zero, no endpoints mapped.
    pub fn new(spec: ClusterSpec) -> Self {
        let slots = (spec.machines() + 2 * spec.racks()) as usize;
        LinkTracker {
            spec,
            endpoints: RwLock::new(HashMap::new()),
            bytes: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            frames: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            queued_frames: (0..slots).map(|_| AtomicI64::new(0)).collect(),
            queued_bytes: (0..slots).map(|_| AtomicI64::new(0)).collect(),
        }
    }

    /// The cluster this tracker accounts for.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Map a fabric endpoint onto the machine hosting it.
    pub fn map_endpoint(&self, ep: EndpointId, machine: MachineId) {
        assert!(machine.0 < self.spec.machines(), "machine out of range");
        self.endpoints.write().insert(ep, machine);
    }

    /// The link a `from → to` send occupies, if both endpoints are mapped.
    pub fn link_for(&self, from: EndpointId, to: EndpointId) -> Option<LinkId> {
        let map = self.endpoints.read();
        Some(self.spec.link_between(*map.get(&from)?, *map.get(&to)?))
    }

    fn slot(&self, link: LinkId) -> usize {
        let machines = self.spec.machines() as usize;
        let racks = self.spec.racks() as usize;
        match link {
            LinkId::Loopback(m) => m.0 as usize,
            LinkId::IntraRack(r) => machines + r.0 as usize,
            LinkId::Uplink(r) => machines + racks + r.0 as usize,
        }
    }

    fn link_of_slot(&self, i: usize) -> LinkId {
        let machines = self.spec.machines() as usize;
        let racks = self.spec.racks() as usize;
        if i < machines {
            LinkId::Loopback(MachineId(i as u32))
        } else if i < machines + racks {
            LinkId::IntraRack(RackId((i - machines) as u32))
        } else {
            LinkId::Uplink(RackId((i - machines - racks) as u32))
        }
    }

    /// A frame was accepted for the `from → to` link: raise its queue
    /// gauges. No-op for unmapped endpoints.
    pub fn on_send(&self, from: EndpointId, to: EndpointId, bytes: usize) {
        if let Some(link) = self.link_for(from, to) {
            let i = self.slot(link);
            self.queued_frames[i].fetch_add(1, Ordering::Relaxed);
            self.queued_bytes[i].fetch_add(bytes as i64, Ordering::Relaxed);
        }
    }

    /// A previously accepted frame reached its destination: release the
    /// queue gauges and count the delivered traffic.
    pub fn on_delivered(&self, from: EndpointId, to: EndpointId, bytes: usize) {
        if let Some(link) = self.link_for(from, to) {
            let i = self.slot(link);
            self.queued_frames[i].fetch_sub(1, Ordering::Relaxed);
            self.queued_bytes[i].fetch_sub(bytes as i64, Ordering::Relaxed);
            self.frames[i].fetch_add(1, Ordering::Relaxed);
            self.bytes[i].fetch_add(bytes as u64, Ordering::Relaxed);
        }
    }

    /// A previously accepted frame died in the queue (dead destination,
    /// injected drop): release the gauges without counting delivery.
    pub fn on_dropped(&self, from: EndpointId, to: EndpointId, bytes: usize) {
        if let Some(link) = self.link_for(from, to) {
            let i = self.slot(link);
            self.queued_frames[i].fetch_sub(1, Ordering::Relaxed);
            self.queued_bytes[i].fetch_sub(bytes as i64, Ordering::Relaxed);
        }
    }

    /// Snapshot every link's load, in flat slot order (loopbacks, then
    /// intra-rack fabrics, then uplinks).
    pub fn snapshot(&self) -> Vec<LinkLoad> {
        (0..self.bytes.len())
            .map(|i| LinkLoad {
                link: self.link_of_slot(i),
                bytes: self.bytes[i].load(Ordering::Relaxed),
                frames: self.frames[i].load(Ordering::Relaxed),
                queued_frames: self.queued_frames[i].load(Ordering::Relaxed).max(0) as u64,
                queued_bytes: self.queued_bytes[i].load(Ordering::Relaxed).max(0) as u64,
            })
            .collect()
    }

    /// Bytes delivered across every link (loopback + intra + uplink) —
    /// equals the fabric's total delivered wire bytes when every worker
    /// endpoint is mapped.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Bytes delivered across rack uplinks only — the oversubscribed
    /// traffic the topo-aware tree minimizes.
    pub fn uplink_bytes(&self) -> u64 {
        let base = (self.spec.machines() + self.spec.racks()) as usize;
        self.bytes[base..]
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Deepest uplink queue right now (frames accepted but undelivered).
    pub fn max_uplink_queue(&self) -> u64 {
        let base = (self.spec.machines() + self.spec.racks()) as usize;
        self.queued_frames[base..]
            .iter()
            .map(|q| q.load(Ordering::Relaxed).max(0) as u64)
            .max()
            .unwrap_or(0)
    }

    /// Uplinks whose queue depth is at or above `threshold`.
    pub fn hot_uplinks(&self, threshold: u64) -> u32 {
        if threshold == 0 {
            return 0;
        }
        let base = (self.spec.machines() + self.spec.racks()) as usize;
        self.queued_frames[base..]
            .iter()
            .filter(|q| q.load(Ordering::Relaxed).max(0) as u64 >= threshold)
            .count() as u32
    }

    /// Per-rack uplink load figure for the tree builder: queued bytes
    /// (live congestion) plus delivered bytes (history), per rack uplink.
    pub fn uplink_loads(&self) -> Vec<u64> {
        let base = (self.spec.machines() + self.spec.racks()) as usize;
        (0..self.spec.racks() as usize)
            .map(|r| {
                let i = base + r;
                self.bytes[i].load(Ordering::Relaxed)
                    + self.queued_bytes[i].load(Ordering::Relaxed).max(0) as u64
            })
            .collect()
    }
}

/// Topology description threaded through the live runtime's adaptive
/// config: how the worker machines split into racks, the modeled per-edge
/// latencies, and whether relay epochs should be built topology-aware.
#[derive(Clone, Debug, PartialEq)]
pub struct TopologyConfig {
    /// Number of racks the worker machines split into.
    pub racks: u32,
    /// Explicit machine → rack assignment (skewed placement); `None`
    /// spreads machines round-robin.
    pub rack_of_machine: Option<Vec<u32>>,
    /// Modeled one-hop latency within a rack.
    pub t_intra: Duration,
    /// Modeled one-hop latency across the rack uplink.
    pub t_uplink: Duration,
    /// Build relay epochs with the rack-aware [`TopoTreeBuilder`]; when
    /// false the runtime keeps Whale's placement-oblivious trees but
    /// still accounts per-link load (the comparison baseline).
    ///
    /// [`TopoTreeBuilder`]: https://docs.rs/whale-multicast
    pub topo_trees: bool,
    /// Uplink queue depth at which the link counts as hot for the
    /// controller's congestion signal.
    pub hot_uplink_queue: u64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            racks: 1,
            rack_of_machine: None,
            t_intra: Duration::from_micros(5),
            t_uplink: Duration::from_micros(40),
            topo_trees: true,
            hot_uplink_queue: 256,
        }
    }
}

impl TopologyConfig {
    /// The [`ClusterSpec`] this topology describes for `machines` worker
    /// machines.
    pub fn cluster_spec(&self, machines: u32, cores_per_machine: u32) -> ClusterSpec {
        match &self.rack_of_machine {
            Some(map) => {
                ClusterSpec::with_rack_map(machines, self.racks, cores_per_machine, map.clone())
            }
            None => ClusterSpec::new(machines, self.racks, cores_per_machine),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let c = ClusterSpec::paper_testbed();
        assert_eq!(c.machines(), 30);
        assert_eq!(c.racks(), 1);
        assert_eq!(c.cores_per_machine(), 16);
        assert_eq!(c.total_cores(), 480);
    }

    #[test]
    fn round_robin_rack_placement() {
        let c = ClusterSpec::new(10, 3, 4);
        assert_eq!(c.rack_of(MachineId(0)), RackId(0));
        assert_eq!(c.rack_of(MachineId(1)), RackId(1));
        assert_eq!(c.rack_of(MachineId(2)), RackId(2));
        assert_eq!(c.rack_of(MachineId(3)), RackId(0));
        assert_eq!(c.rack_of(MachineId(9)), RackId(0));
    }

    #[test]
    fn rack_hops_zero_within_rack() {
        let c = ClusterSpec::new(10, 2, 4);
        // 0 and 2 both land in rack 0.
        assert_eq!(c.rack_hops(MachineId(0), MachineId(2)), 0);
        assert_eq!(c.rack_hops(MachineId(0), MachineId(1)), 1);
        assert_eq!(c.rack_hops(MachineId(5), MachineId(5)), 0);
    }

    #[test]
    fn single_rack_never_hops() {
        let c = ClusterSpec::new(30, 1, 16);
        for a in c.machine_ids() {
            assert_eq!(c.rack_hops(a, MachineId(0)), 0);
        }
    }

    #[test]
    fn locality() {
        let c = ClusterSpec::new(4, 2, 2);
        assert!(c.is_local(MachineId(1), MachineId(1)));
        assert!(!c.is_local(MachineId(1), MachineId(3)));
    }

    #[test]
    fn machine_ids_enumerates_all() {
        let c = ClusterSpec::new(5, 1, 1);
        let ids: Vec<_> = c.machine_ids().collect();
        assert_eq!(ids.len(), 5);
        assert_eq!(ids[4], MachineId(4));
    }

    #[test]
    #[should_panic(expected = "racks must be in 1..=machines")]
    fn too_many_racks_rejected() {
        let _ = ClusterSpec::new(2, 3, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rack_of_bounds_checked() {
        let c = ClusterSpec::new(2, 1, 1);
        let _ = c.rack_of(MachineId(7));
    }

    #[test]
    fn explicit_rack_map_overrides_round_robin() {
        let c = ClusterSpec::with_rack_map(5, 3, 1, vec![0, 0, 0, 1, 2]);
        assert_eq!(c.rack_of(MachineId(0)), RackId(0));
        assert_eq!(c.rack_of(MachineId(2)), RackId(0));
        assert_eq!(c.rack_of(MachineId(3)), RackId(1));
        assert_eq!(c.rack_of(MachineId(4)), RackId(2));
        assert_eq!(c.rack_hops(MachineId(0), MachineId(2)), 0);
        assert_eq!(c.rack_hops(MachineId(0), MachineId(3)), 1);
    }

    #[test]
    #[should_panic(expected = "one entry per machine")]
    fn rack_map_length_checked() {
        let _ = ClusterSpec::with_rack_map(3, 2, 1, vec![0, 1]);
    }

    #[test]
    fn link_between_classifies_all_three_links() {
        let c = ClusterSpec::with_rack_map(4, 2, 1, vec![0, 0, 1, 1]);
        assert_eq!(
            c.link_between(MachineId(1), MachineId(1)),
            LinkId::Loopback(MachineId(1))
        );
        assert_eq!(
            c.link_between(MachineId(0), MachineId(1)),
            LinkId::IntraRack(RackId(0))
        );
        // Egress attribution: the sender's rack uplink carries the frame.
        assert_eq!(
            c.link_between(MachineId(0), MachineId(3)),
            LinkId::Uplink(RackId(0))
        );
        assert_eq!(
            c.link_between(MachineId(3), MachineId(0)),
            LinkId::Uplink(RackId(1))
        );
    }

    fn mapped_tracker() -> LinkTracker {
        let spec = ClusterSpec::with_rack_map(4, 2, 1, vec![0, 0, 1, 1]);
        let t = LinkTracker::new(spec);
        for m in 0..4 {
            t.map_endpoint(EndpointId(m), MachineId(m as u32));
        }
        t
    }

    #[test]
    fn tracker_attributes_each_send_to_exactly_one_link() {
        let t = mapped_tracker();
        t.on_send(EndpointId(0), EndpointId(1), 100); // intra r0
        t.on_send(EndpointId(0), EndpointId(2), 200); // uplink r0
        t.on_send(EndpointId(3), EndpointId(3), 50); // loopback m3
        assert_eq!(t.max_uplink_queue(), 1);
        t.on_delivered(EndpointId(0), EndpointId(1), 100);
        t.on_delivered(EndpointId(0), EndpointId(2), 200);
        t.on_delivered(EndpointId(3), EndpointId(3), 50);
        assert_eq!(t.total_bytes(), 350);
        assert_eq!(t.uplink_bytes(), 200);
        assert_eq!(t.max_uplink_queue(), 0);
        let loads: Vec<_> = t
            .snapshot()
            .into_iter()
            .filter(|l| l.bytes > 0)
            .map(|l| (l.link, l.bytes))
            .collect();
        assert_eq!(
            loads,
            vec![
                (LinkId::Loopback(MachineId(3)), 50),
                (LinkId::IntraRack(RackId(0)), 100),
                (LinkId::Uplink(RackId(0)), 200),
            ]
        );
    }

    #[test]
    fn tracker_drops_release_gauges_without_counting_delivery() {
        let t = mapped_tracker();
        t.on_send(EndpointId(0), EndpointId(2), 300);
        assert_eq!(t.max_uplink_queue(), 1);
        assert_eq!(t.hot_uplinks(1), 1);
        t.on_dropped(EndpointId(0), EndpointId(2), 300);
        assert_eq!(t.max_uplink_queue(), 0);
        assert_eq!(t.uplink_bytes(), 0);
        assert_eq!(t.total_bytes(), 0);
    }

    #[test]
    fn tracker_ignores_unmapped_endpoints() {
        let t = mapped_tracker();
        t.on_send(EndpointId(0), EndpointId(99), 100);
        t.on_delivered(EndpointId(0), EndpointId(99), 100);
        assert_eq!(t.total_bytes(), 0);
        assert!(t.link_for(EndpointId(99), EndpointId(0)).is_none());
    }

    #[test]
    fn uplink_loads_blend_history_and_occupancy() {
        let t = mapped_tracker();
        t.on_send(EndpointId(0), EndpointId(2), 100);
        t.on_delivered(EndpointId(0), EndpointId(2), 100);
        t.on_send(EndpointId(2), EndpointId(0), 40); // still queued on r1
        assert_eq!(t.uplink_loads(), vec![100, 40]);
    }

    #[test]
    fn topology_config_builds_the_cluster_spec() {
        let tc = TopologyConfig {
            racks: 2,
            rack_of_machine: Some(vec![0, 0, 0, 1]),
            ..TopologyConfig::default()
        };
        let spec = tc.cluster_spec(4, 1);
        assert_eq!(spec.racks(), 2);
        assert_eq!(spec.rack_of(MachineId(2)), RackId(0));
        assert_eq!(spec.rack_of(MachineId(3)), RackId(1));
        let rr = TopologyConfig {
            racks: 2,
            ..TopologyConfig::default()
        };
        assert_eq!(rr.cluster_spec(4, 1).rack_of(MachineId(3)), RackId(1));
    }
}
