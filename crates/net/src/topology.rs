//! Physical cluster topology: machines, racks, and NIC placement.
//!
//! The paper's testbed is 30 machines (16 cores each), optionally
//! partitioned into 1–5 racks (Figs 33–34). Topology answers two questions
//! for the fabric: how many rack hops separate two machines, and which
//! machine hosts which worker.

use std::fmt;

/// Identifier of a physical machine in the cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MachineId(pub u32);

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Identifier of a rack.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RackId(pub u32);

/// Static description of the simulated cluster.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    machines: u32,
    racks: u32,
    cores_per_machine: u32,
}

impl ClusterSpec {
    /// The paper's testbed: 30 machines, 16 cores, one rack.
    pub fn paper_testbed() -> Self {
        ClusterSpec::new(30, 1, 16)
    }

    /// Build a cluster of `machines` machines spread round-robin over
    /// `racks` racks, each with `cores_per_machine` cores.
    pub fn new(machines: u32, racks: u32, cores_per_machine: u32) -> Self {
        assert!(machines > 0, "need at least one machine");
        assert!(
            racks > 0 && racks <= machines,
            "racks must be in 1..=machines"
        );
        assert!(cores_per_machine > 0);
        ClusterSpec {
            machines,
            racks,
            cores_per_machine,
        }
    }

    /// Number of machines.
    pub fn machines(&self) -> u32 {
        self.machines
    }

    /// Number of racks.
    pub fn racks(&self) -> u32 {
        self.racks
    }

    /// Cores per machine.
    pub fn cores_per_machine(&self) -> u32 {
        self.cores_per_machine
    }

    /// Total cores in the cluster.
    pub fn total_cores(&self) -> u32 {
        self.machines * self.cores_per_machine
    }

    /// Iterate over all machine ids.
    pub fn machine_ids(&self) -> impl Iterator<Item = MachineId> {
        (0..self.machines).map(MachineId)
    }

    /// The rack a machine belongs to (round-robin placement).
    pub fn rack_of(&self, m: MachineId) -> RackId {
        assert!(m.0 < self.machines, "machine {m} out of range");
        RackId(m.0 % self.racks)
    }

    /// Number of rack hops between two machines: 0 within a rack,
    /// 1 across racks (single ToR-to-ToR hop in a leaf-spine fabric).
    pub fn rack_hops(&self, a: MachineId, b: MachineId) -> u32 {
        if a == b {
            return 0;
        }
        if self.rack_of(a) == self.rack_of(b) {
            0
        } else {
            1
        }
    }

    /// True if both machines are the same physical host (loopback traffic
    /// does not cross the NIC).
    pub fn is_local(&self, a: MachineId, b: MachineId) -> bool {
        a == b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let c = ClusterSpec::paper_testbed();
        assert_eq!(c.machines(), 30);
        assert_eq!(c.racks(), 1);
        assert_eq!(c.cores_per_machine(), 16);
        assert_eq!(c.total_cores(), 480);
    }

    #[test]
    fn round_robin_rack_placement() {
        let c = ClusterSpec::new(10, 3, 4);
        assert_eq!(c.rack_of(MachineId(0)), RackId(0));
        assert_eq!(c.rack_of(MachineId(1)), RackId(1));
        assert_eq!(c.rack_of(MachineId(2)), RackId(2));
        assert_eq!(c.rack_of(MachineId(3)), RackId(0));
        assert_eq!(c.rack_of(MachineId(9)), RackId(0));
    }

    #[test]
    fn rack_hops_zero_within_rack() {
        let c = ClusterSpec::new(10, 2, 4);
        // 0 and 2 both land in rack 0.
        assert_eq!(c.rack_hops(MachineId(0), MachineId(2)), 0);
        assert_eq!(c.rack_hops(MachineId(0), MachineId(1)), 1);
        assert_eq!(c.rack_hops(MachineId(5), MachineId(5)), 0);
    }

    #[test]
    fn single_rack_never_hops() {
        let c = ClusterSpec::new(30, 1, 16);
        for a in c.machine_ids() {
            assert_eq!(c.rack_hops(a, MachineId(0)), 0);
        }
    }

    #[test]
    fn locality() {
        let c = ClusterSpec::new(4, 2, 2);
        assert!(c.is_local(MachineId(1), MachineId(1)));
        assert!(!c.is_local(MachineId(1), MachineId(3)));
    }

    #[test]
    fn machine_ids_enumerates_all() {
        let c = ClusterSpec::new(5, 1, 1);
        let ids: Vec<_> = c.machine_ids().collect();
        assert_eq!(ids.len(), 5);
        assert_eq!(ids[4], MachineId(4));
    }

    #[test]
    #[should_panic(expected = "racks must be in 1..=machines")]
    fn too_many_racks_rejected() {
        let _ = ClusterSpec::new(2, 3, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rack_of_bounds_checked() {
        let c = ClusterSpec::new(2, 1, 1);
        let _ = c.rack_of(MachineId(7));
    }
}
