//! The live in-process fabric: real threads, real bytes.
//!
//! The discrete-event simulator reproduces the *cluster-scale* numbers;
//! this fabric lets the examples and the live runtime actually move data
//! between worker threads on one host, preserving the semantic difference
//! the paper exploits:
//!
//! - the **TCP path** copies serialized bytes into every message (one copy
//!   per destination — the instance-oriented tax), and
//! - the **RDMA path** shares one immutable buffer by reference
//!   (`Arc<[u8]>`), the in-process analogue of zero-copy: `n` destinations
//!   cost one serialization and `n` pointer bumps.
//!
//! Two transports implement the common [`FabricPath`] trait:
//! [`LiveFabric`] (synchronous per-send delivery) and
//! [`crate::RingFabric`] (descriptors posted to per-endpoint rings,
//! drained in MMS/WTL batches by a flusher — the paper's stream slicing
//! on the live path).

use crate::topology::LinkTracker;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of a fabric endpoint (a worker process in the live runtime).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct EndpointId(pub u32);

/// Message payload: copied (TCP semantics) or shared (RDMA semantics).
#[derive(Clone, Debug)]
pub enum Payload {
    /// An owned copy of the serialized bytes (each destination pays a copy).
    Copied(Vec<u8>),
    /// A shared reference to one serialized buffer (zero-copy fan-out).
    Shared(Arc<[u8]>),
}

impl Payload {
    /// Access the bytes regardless of representation.
    pub fn bytes(&self) -> &[u8] {
        match self {
            Payload::Copied(v) => v,
            Payload::Shared(a) => a,
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.bytes().is_empty()
    }
}

/// A message delivered through the live fabric.
#[derive(Clone, Debug)]
pub struct LiveMessage {
    /// Sending endpoint.
    pub from: EndpointId,
    /// Bytes, copied or shared.
    pub payload: Payload,
}

/// Errors from live sends.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SendError {
    /// Destination endpoint is not registered.
    UnknownEndpoint,
    /// Destination queue is full (bounded endpoint or full ring,
    /// backpressure).
    Full,
    /// Destination was dropped.
    Disconnected,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::UnknownEndpoint => write!(f, "destination endpoint is not registered"),
            SendError::Full => write!(f, "destination queue is full"),
            SendError::Disconnected => write!(f, "destination was dropped"),
        }
    }
}

impl std::error::Error for SendError {}

/// Errors from endpoint registration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegisterError {
    /// The id already has a live inbox; replacing it would orphan any
    /// queued messages. Call `deregister` first to reuse an id.
    AlreadyRegistered(EndpointId),
}

impl std::fmt::Display for RegisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegisterError::AlreadyRegistered(id) => {
                write!(f, "endpoint {} is already registered", id.0)
            }
        }
    }
}

impl std::error::Error for RegisterError {}

/// Common interface of the live transports, so callers can swap the
/// synchronous per-send path and the batched ring path freely.
pub trait FabricPath: Send + Sync {
    /// Register an endpoint with an unbounded inbox; returns its receiver.
    fn register(&self, id: EndpointId) -> Result<Receiver<LiveMessage>, RegisterError>;

    /// Register an endpoint with a bounded inbox of `capacity` (models the
    /// destination's transfer queue; deliveries fail with
    /// [`SendError::Full`]).
    fn register_bounded(
        &self,
        id: EndpointId,
        capacity: usize,
    ) -> Result<Receiver<LiveMessage>, RegisterError>;

    /// Remove an endpoint; subsequent sends fail.
    fn deregister(&self, id: EndpointId);

    /// TCP-semantics send: the bytes are copied into the message.
    fn send_copied(&self, from: EndpointId, to: EndpointId, bytes: &[u8])
        -> Result<(), SendError>;

    /// RDMA-semantics send: the shared buffer is passed by reference.
    fn send_shared(&self, from: EndpointId, to: EndpointId, buf: Arc<[u8]>)
        -> Result<(), SendError>;

    /// Force out anything the transport has buffered (no-op when the
    /// transport delivers synchronously).
    fn flush(&self);

    /// Messages delivered so far.
    fn messages(&self) -> u64;

    /// Bytes delivered through the TCP (copied) path so far.
    fn copied_bytes(&self) -> u64;

    /// Bytes delivered through the RDMA (shared) path so far.
    fn shared_bytes(&self) -> u64;

    /// Sends that failed (unknown endpoint, backpressure, or a dropped
    /// receiver). Failed sends never count toward the byte totals.
    fn send_errors(&self) -> u64;

    /// Batches flushed so far (0 for unbatched transports).
    fn flushed_batches(&self) -> u64 {
        0
    }

    /// Messages delivered through flushed batches (0 for unbatched
    /// transports).
    fn flushed_items(&self) -> u64 {
        0
    }

    /// Frames accepted but not yet delivered to (or drained from) a
    /// destination inbox — the transfer-queue length of the paper's M/D/1
    /// model, sampled live by the adaptive multicast controller. Every
    /// transport must report a real estimate; a silent 0 here starves the
    /// controller's λ-pressure signal and understates d*.
    fn queue_depth(&self) -> u64;

    /// Registered endpoint count.
    fn endpoint_count(&self) -> usize;

    /// Install a [`LinkTracker`] so sends are attributed to physical
    /// links via the cluster placement map. Transports that support
    /// per-link accounting override this; the default ignores the
    /// tracker (no per-link visibility). Install on the *outermost*
    /// fabric only — a decorator that both tracked itself and delegated
    /// to a tracked inner transport would double-count every frame.
    fn install_link_tracker(&self, _tracker: Arc<LinkTracker>) {}

    /// Export delivery counters into `reg` under `prefix.*`.
    fn export_metrics(&self, reg: &mut whale_sim::MetricsRegistry, prefix: &str);
}

struct EndpointSlot {
    tx: Sender<LiveMessage>,
}

/// An in-process message fabric connecting registered endpoints, with
/// synchronous per-send delivery.
pub struct LiveFabric {
    endpoints: RwLock<HashMap<EndpointId, EndpointSlot>>,
    /// Total bytes physically copied (TCP semantics accounting).
    copied_bytes: AtomicU64,
    /// Total bytes shared by reference (RDMA semantics accounting).
    shared_bytes: AtomicU64,
    messages: AtomicU64,
    send_errors: AtomicU64,
    /// Optional per-link attribution; delivery is synchronous here, so a
    /// successful send is charged to its link immediately.
    tracker: RwLock<Option<Arc<LinkTracker>>>,
}

impl Default for LiveFabric {
    fn default() -> Self {
        Self::new()
    }
}

impl LiveFabric {
    /// New fabric with no endpoints.
    pub fn new() -> Self {
        LiveFabric {
            endpoints: RwLock::new(HashMap::new()),
            copied_bytes: AtomicU64::new(0),
            shared_bytes: AtomicU64::new(0),
            messages: AtomicU64::new(0),
            send_errors: AtomicU64::new(0),
            tracker: RwLock::new(None),
        }
    }

    /// Attribute subsequent sends to physical links through `tracker`.
    pub fn install_link_tracker(&self, tracker: Arc<LinkTracker>) {
        *self.tracker.write() = Some(tracker);
    }

    /// Register an endpoint with an unbounded inbox; returns its receiver.
    pub fn register(&self, id: EndpointId) -> Result<Receiver<LiveMessage>, RegisterError> {
        let (tx, rx) = unbounded();
        self.install(id, tx)?;
        Ok(rx)
    }

    /// Register an endpoint with a bounded inbox of `capacity` (models the
    /// destination's transfer queue; sends fail with [`SendError::Full`]).
    pub fn register_bounded(
        &self,
        id: EndpointId,
        capacity: usize,
    ) -> Result<Receiver<LiveMessage>, RegisterError> {
        let (tx, rx) = bounded(capacity);
        self.install(id, tx)?;
        Ok(rx)
    }

    fn install(&self, id: EndpointId, tx: Sender<LiveMessage>) -> Result<(), RegisterError> {
        let mut map = self.endpoints.write();
        if map.contains_key(&id) {
            return Err(RegisterError::AlreadyRegistered(id));
        }
        map.insert(id, EndpointSlot { tx });
        Ok(())
    }

    /// Remove an endpoint; subsequent sends fail.
    pub fn deregister(&self, id: EndpointId) {
        self.endpoints.write().remove(&id);
    }

    fn send(&self, to: EndpointId, msg: LiveMessage) -> Result<(), SendError> {
        let from = msg.from;
        let len = msg.payload.len();
        let result = {
            let map = self.endpoints.read();
            match map.get(&to) {
                None => Err(SendError::UnknownEndpoint),
                Some(slot) => match slot.tx.try_send(msg) {
                    Ok(()) => Ok(()),
                    Err(TrySendError::Full(_)) => Err(SendError::Full),
                    Err(TrySendError::Disconnected(_)) => Err(SendError::Disconnected),
                },
            }
        };
        match result {
            Ok(()) => {
                self.messages.fetch_add(1, Ordering::Relaxed);
                if let Some(tracker) = self.tracker.read().as_ref() {
                    // Synchronous delivery: the frame is in the
                    // destination inbox, so charge the link directly.
                    tracker.on_send(from, to, len);
                    tracker.on_delivered(from, to, len);
                }
                Ok(())
            }
            Err(e) => {
                self.send_errors.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// TCP-semantics send: the bytes are copied into the message. Bytes
    /// count toward `copied_bytes` only when delivery succeeds.
    pub fn send_copied(
        &self,
        from: EndpointId,
        to: EndpointId,
        bytes: &[u8],
    ) -> Result<(), SendError> {
        let len = bytes.len() as u64;
        self.send(
            to,
            LiveMessage {
                from,
                payload: Payload::Copied(bytes.to_vec()),
            },
        )?;
        self.copied_bytes.fetch_add(len, Ordering::Relaxed);
        Ok(())
    }

    /// RDMA-semantics send: the shared buffer is passed by reference.
    /// Bytes count toward `shared_bytes` only when delivery succeeds.
    pub fn send_shared(
        &self,
        from: EndpointId,
        to: EndpointId,
        buf: Arc<[u8]>,
    ) -> Result<(), SendError> {
        let len = buf.len() as u64;
        self.send(
            to,
            LiveMessage {
                from,
                payload: Payload::Shared(buf),
            },
        )?;
        self.shared_bytes.fetch_add(len, Ordering::Relaxed);
        Ok(())
    }

    /// Bytes copied through the TCP path so far.
    pub fn copied_bytes(&self) -> u64 {
        self.copied_bytes.load(Ordering::Relaxed)
    }

    /// Bytes shared through the RDMA path so far.
    pub fn shared_bytes(&self) -> u64 {
        self.shared_bytes.load(Ordering::Relaxed)
    }

    /// Messages delivered so far.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Sends that failed so far.
    pub fn send_errors(&self) -> u64 {
        self.send_errors.load(Ordering::Relaxed)
    }

    /// Export delivery counters into `reg` under `prefix.*`.
    pub fn export_metrics(&self, reg: &mut whale_sim::MetricsRegistry, prefix: &str) {
        reg.set_counter(&format!("{prefix}.messages"), self.messages());
        reg.set_counter(&format!("{prefix}.copied_bytes"), self.copied_bytes());
        reg.set_counter(&format!("{prefix}.shared_bytes"), self.shared_bytes());
        reg.set_counter(&format!("{prefix}.send_errors"), self.send_errors());
        reg.set_gauge(
            &format!("{prefix}.endpoints"),
            self.endpoints.read().len() as f64,
        );
        reg.set_gauge(&format!("{prefix}.queue_depth"), self.queue_depth() as f64);
    }

    /// Registered endpoint count.
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.read().len()
    }

    /// Messages accepted into endpoint inboxes but not yet received by
    /// their workers. The per-send path delivers synchronously into the
    /// destination channel, so the channel lengths *are* the transfer
    /// queue the adaptive controller samples.
    pub fn queue_depth(&self) -> u64 {
        self.endpoints
            .read()
            .values()
            .map(|slot| slot.tx.len() as u64)
            .sum()
    }
}

impl FabricPath for LiveFabric {
    fn register(&self, id: EndpointId) -> Result<Receiver<LiveMessage>, RegisterError> {
        LiveFabric::register(self, id)
    }

    fn register_bounded(
        &self,
        id: EndpointId,
        capacity: usize,
    ) -> Result<Receiver<LiveMessage>, RegisterError> {
        LiveFabric::register_bounded(self, id, capacity)
    }

    fn deregister(&self, id: EndpointId) {
        LiveFabric::deregister(self, id);
    }

    fn send_copied(
        &self,
        from: EndpointId,
        to: EndpointId,
        bytes: &[u8],
    ) -> Result<(), SendError> {
        LiveFabric::send_copied(self, from, to, bytes)
    }

    fn send_shared(
        &self,
        from: EndpointId,
        to: EndpointId,
        buf: Arc<[u8]>,
    ) -> Result<(), SendError> {
        LiveFabric::send_shared(self, from, to, buf)
    }

    fn flush(&self) {}

    fn messages(&self) -> u64 {
        LiveFabric::messages(self)
    }

    fn copied_bytes(&self) -> u64 {
        LiveFabric::copied_bytes(self)
    }

    fn shared_bytes(&self) -> u64 {
        LiveFabric::shared_bytes(self)
    }

    fn send_errors(&self) -> u64 {
        LiveFabric::send_errors(self)
    }

    fn queue_depth(&self) -> u64 {
        LiveFabric::queue_depth(self)
    }

    fn endpoint_count(&self) -> usize {
        LiveFabric::endpoint_count(self)
    }

    fn install_link_tracker(&self, tracker: Arc<LinkTracker>) {
        LiveFabric::install_link_tracker(self, tracker);
    }

    fn export_metrics(&self, reg: &mut whale_sim::MetricsRegistry, prefix: &str) {
        LiveFabric::export_metrics(self, reg, prefix);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copied_send_roundtrip() {
        let fabric = LiveFabric::new();
        let rx = fabric.register(EndpointId(1)).unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"hello")
            .unwrap();
        let msg = rx.recv().unwrap();
        assert_eq!(msg.from, EndpointId(0));
        assert_eq!(msg.payload.bytes(), b"hello");
        assert_eq!(fabric.copied_bytes(), 5);
    }

    #[test]
    fn shared_send_is_zero_copy() {
        let fabric = LiveFabric::new();
        let rx1 = fabric.register(EndpointId(1)).unwrap();
        let rx2 = fabric.register(EndpointId(2)).unwrap();
        let buf: Arc<[u8]> = Arc::from(&b"payload"[..]);
        fabric
            .send_shared(EndpointId(0), EndpointId(1), buf.clone())
            .unwrap();
        fabric
            .send_shared(EndpointId(0), EndpointId(2), buf.clone())
            .unwrap();
        let m1 = rx1.recv().unwrap();
        let m2 = rx2.recv().unwrap();
        // Both receivers observe the same physical buffer.
        match (&m1.payload, &m2.payload) {
            (Payload::Shared(a), Payload::Shared(b)) => {
                assert!(Arc::ptr_eq(a, b));
            }
            _ => panic!("expected shared payloads"),
        }
        assert_eq!(fabric.messages(), 2);
    }

    #[test]
    fn unknown_endpoint_errors() {
        let fabric = LiveFabric::new();
        let err = fabric
            .send_copied(EndpointId(0), EndpointId(9), b"x")
            .unwrap_err();
        assert_eq!(err, SendError::UnknownEndpoint);
    }

    #[test]
    fn bounded_endpoint_backpressures() {
        let fabric = LiveFabric::new();
        let _rx = fabric.register_bounded(EndpointId(1), 2).unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"a")
            .unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"b")
            .unwrap();
        let err = fabric
            .send_copied(EndpointId(0), EndpointId(1), b"c")
            .unwrap_err();
        assert_eq!(err, SendError::Full);
    }

    #[test]
    fn deregister_disconnects() {
        let fabric = LiveFabric::new();
        let _rx = fabric.register(EndpointId(1)).unwrap();
        fabric.deregister(EndpointId(1));
        let err = fabric
            .send_copied(EndpointId(0), EndpointId(1), b"x")
            .unwrap_err();
        assert_eq!(err, SendError::UnknownEndpoint);
        assert_eq!(fabric.endpoint_count(), 0);
    }

    #[test]
    fn dropped_receiver_reports_disconnected() {
        let fabric = LiveFabric::new();
        let rx = fabric.register(EndpointId(1)).unwrap();
        drop(rx);
        let err = fabric
            .send_copied(EndpointId(0), EndpointId(1), b"x")
            .unwrap_err();
        assert_eq!(err, SendError::Disconnected);
    }

    #[test]
    fn failed_sends_do_not_count_bytes() {
        let fabric = LiveFabric::new();

        // Unknown endpoint.
        assert!(fabric
            .send_copied(EndpointId(0), EndpointId(9), b"xxxx")
            .is_err());
        let buf: Arc<[u8]> = Arc::from(&b"yyyy"[..]);
        assert!(fabric
            .send_shared(EndpointId(0), EndpointId(9), buf.clone())
            .is_err());

        // Backpressured bounded endpoint.
        let _rx = fabric.register_bounded(EndpointId(1), 1).unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"a")
            .unwrap();
        assert_eq!(
            fabric
                .send_copied(EndpointId(0), EndpointId(1), b"bb")
                .unwrap_err(),
            SendError::Full
        );

        // Dropped receiver.
        let rx2 = fabric.register(EndpointId(2)).unwrap();
        drop(rx2);
        assert_eq!(
            fabric
                .send_shared(EndpointId(0), EndpointId(2), buf)
                .unwrap_err(),
            SendError::Disconnected
        );

        // Only the one successful 1-byte copied send counted.
        assert_eq!(fabric.copied_bytes(), 1);
        assert_eq!(fabric.shared_bytes(), 0);
        assert_eq!(fabric.messages(), 1);
        assert_eq!(fabric.send_errors(), 4);
    }

    #[test]
    fn reregister_errors_and_preserves_original_inbox() {
        let fabric = LiveFabric::new();
        let rx = fabric.register(EndpointId(1)).unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"queued")
            .unwrap();

        // Re-registration must not displace the live inbox.
        assert_eq!(
            fabric.register(EndpointId(1)).unwrap_err(),
            RegisterError::AlreadyRegistered(EndpointId(1))
        );
        assert_eq!(
            fabric.register_bounded(EndpointId(1), 4).unwrap_err(),
            RegisterError::AlreadyRegistered(EndpointId(1))
        );

        // The queued message is still there and new sends still land.
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"after")
            .unwrap();
        assert_eq!(rx.recv().unwrap().payload.bytes(), b"queued");
        assert_eq!(rx.recv().unwrap().payload.bytes(), b"after");

        // Deregister frees the id for reuse.
        fabric.deregister(EndpointId(1));
        let _rx2 = fabric.register(EndpointId(1)).unwrap();
    }

    #[test]
    fn queue_depth_tracks_undrained_inboxes() {
        let fabric = LiveFabric::new();
        let rx1 = fabric.register(EndpointId(1)).unwrap();
        let _rx2 = fabric.register(EndpointId(2)).unwrap();
        assert_eq!(FabricPath::queue_depth(&fabric), 0);
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"a")
            .unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"b")
            .unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(2), b"c")
            .unwrap();
        assert_eq!(FabricPath::queue_depth(&fabric), 3);
        rx1.recv().unwrap();
        assert_eq!(FabricPath::queue_depth(&fabric), 2);
        rx1.recv().unwrap();
        assert_eq!(FabricPath::queue_depth(&fabric), 1);
    }

    #[test]
    fn export_metrics_includes_send_errors() {
        let fabric = LiveFabric::new();
        let _ = fabric.send_copied(EndpointId(0), EndpointId(9), b"x");
        let mut reg = whale_sim::MetricsRegistry::new();
        fabric.export_metrics(&mut reg, "fabric");
        assert_eq!(reg.counter("fabric.send_errors"), Some(1));
        assert_eq!(reg.counter("fabric.messages"), Some(0));
    }

    #[test]
    fn link_tracker_attributes_per_send_traffic() {
        use crate::topology::{ClusterSpec, MachineId};
        let fabric = LiveFabric::new();
        let tracker = Arc::new(LinkTracker::new(ClusterSpec::with_rack_map(
            4,
            2,
            1,
            vec![0, 0, 1, 1],
        )));
        for m in 0..4u32 {
            tracker.map_endpoint(EndpointId(m), MachineId(m));
        }
        FabricPath::install_link_tracker(&fabric, tracker.clone());
        let _rx1 = fabric.register(EndpointId(1)).unwrap();
        let _rx2 = fabric.register(EndpointId(2)).unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"aaaa") // intra r0
            .unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(2), b"bbbbbb") // uplink r0
            .unwrap();
        // Failed sends never reach a link.
        let _ = fabric.send_copied(EndpointId(0), EndpointId(9), b"cc");
        assert_eq!(tracker.total_bytes(), 10);
        assert_eq!(tracker.uplink_bytes(), 6);
        assert_eq!(tracker.total_bytes(), fabric.copied_bytes());
    }

    #[test]
    fn cross_thread_delivery() {
        let fabric = Arc::new(LiveFabric::new());
        let rx = fabric.register(EndpointId(1)).unwrap();
        let f2 = fabric.clone();
        let handle = std::thread::spawn(move || {
            for i in 0..100u8 {
                f2.send_copied(EndpointId(0), EndpointId(1), &[i]).unwrap();
            }
        });
        handle.join().unwrap();
        let got: Vec<u8> = (0..100)
            .map(|_| rx.recv().unwrap().payload.bytes()[0])
            .collect();
        assert_eq!(got, (0..100).collect::<Vec<u8>>());
    }
}
