//! The live in-process fabric: real threads, real bytes.
//!
//! The discrete-event simulator reproduces the *cluster-scale* numbers;
//! this fabric lets the examples and the live runtime actually move data
//! between worker threads on one host, preserving the semantic difference
//! the paper exploits:
//!
//! - the **TCP path** copies serialized bytes into every message (one copy
//!   per destination — the instance-oriented tax), and
//! - the **RDMA path** shares one immutable buffer by reference
//!   (`Arc<[u8]>`), the in-process analogue of zero-copy: `n` destinations
//!   cost one serialization and `n` pointer bumps.

use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of a fabric endpoint (a worker process in the live runtime).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct EndpointId(pub u32);

/// Message payload: copied (TCP semantics) or shared (RDMA semantics).
#[derive(Clone, Debug)]
pub enum Payload {
    /// An owned copy of the serialized bytes (each destination pays a copy).
    Copied(Vec<u8>),
    /// A shared reference to one serialized buffer (zero-copy fan-out).
    Shared(Arc<[u8]>),
}

impl Payload {
    /// Access the bytes regardless of representation.
    pub fn bytes(&self) -> &[u8] {
        match self {
            Payload::Copied(v) => v,
            Payload::Shared(a) => a,
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.bytes().is_empty()
    }
}

/// A message delivered through the live fabric.
#[derive(Clone, Debug)]
pub struct LiveMessage {
    /// Sending endpoint.
    pub from: EndpointId,
    /// Bytes, copied or shared.
    pub payload: Payload,
}

/// Errors from live sends.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SendError {
    /// Destination endpoint is not registered.
    UnknownEndpoint,
    /// Destination queue is full (bounded endpoint, backpressure).
    Full,
    /// Destination was dropped.
    Disconnected,
}

struct EndpointSlot {
    tx: Sender<LiveMessage>,
}

/// An in-process message fabric connecting registered endpoints.
pub struct LiveFabric {
    endpoints: RwLock<HashMap<EndpointId, EndpointSlot>>,
    /// Total bytes physically copied (TCP semantics accounting).
    copied_bytes: AtomicU64,
    /// Total bytes shared by reference (RDMA semantics accounting).
    shared_bytes: AtomicU64,
    messages: AtomicU64,
}

impl Default for LiveFabric {
    fn default() -> Self {
        Self::new()
    }
}

impl LiveFabric {
    /// New fabric with no endpoints.
    pub fn new() -> Self {
        LiveFabric {
            endpoints: RwLock::new(HashMap::new()),
            copied_bytes: AtomicU64::new(0),
            shared_bytes: AtomicU64::new(0),
            messages: AtomicU64::new(0),
        }
    }

    /// Register an endpoint with an unbounded inbox; returns its receiver.
    /// Re-registering an id replaces the previous inbox.
    pub fn register(&self, id: EndpointId) -> Receiver<LiveMessage> {
        let (tx, rx) = unbounded();
        self.endpoints.write().insert(id, EndpointSlot { tx });
        rx
    }

    /// Register an endpoint with a bounded inbox of `capacity` (models the
    /// destination's transfer queue; sends fail with [`SendError::Full`]).
    pub fn register_bounded(&self, id: EndpointId, capacity: usize) -> Receiver<LiveMessage> {
        let (tx, rx) = bounded(capacity);
        self.endpoints.write().insert(id, EndpointSlot { tx });
        rx
    }

    /// Remove an endpoint; subsequent sends fail.
    pub fn deregister(&self, id: EndpointId) {
        self.endpoints.write().remove(&id);
    }

    fn send(&self, to: EndpointId, msg: LiveMessage) -> Result<(), SendError> {
        let map = self.endpoints.read();
        let slot = map.get(&to).ok_or(SendError::UnknownEndpoint)?;
        match slot.tx.try_send(msg) {
            Ok(()) => {
                self.messages.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(TrySendError::Full(_)) => Err(SendError::Full),
            Err(TrySendError::Disconnected(_)) => Err(SendError::Disconnected),
        }
    }

    /// TCP-semantics send: the bytes are copied into the message.
    pub fn send_copied(
        &self,
        from: EndpointId,
        to: EndpointId,
        bytes: &[u8],
    ) -> Result<(), SendError> {
        self.copied_bytes
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.send(
            to,
            LiveMessage {
                from,
                payload: Payload::Copied(bytes.to_vec()),
            },
        )
    }

    /// RDMA-semantics send: the shared buffer is passed by reference.
    pub fn send_shared(
        &self,
        from: EndpointId,
        to: EndpointId,
        buf: Arc<[u8]>,
    ) -> Result<(), SendError> {
        self.shared_bytes
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        self.send(
            to,
            LiveMessage {
                from,
                payload: Payload::Shared(buf),
            },
        )
    }

    /// Bytes copied through the TCP path so far.
    pub fn copied_bytes(&self) -> u64 {
        self.copied_bytes.load(Ordering::Relaxed)
    }

    /// Bytes shared through the RDMA path so far.
    pub fn shared_bytes(&self) -> u64 {
        self.shared_bytes.load(Ordering::Relaxed)
    }

    /// Messages delivered so far.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Export delivery counters into `reg` under `prefix.*`.
    pub fn export_metrics(&self, reg: &mut whale_sim::MetricsRegistry, prefix: &str) {
        reg.set_counter(&format!("{prefix}.messages"), self.messages());
        reg.set_counter(&format!("{prefix}.copied_bytes"), self.copied_bytes());
        reg.set_counter(&format!("{prefix}.shared_bytes"), self.shared_bytes());
        reg.set_gauge(
            &format!("{prefix}.endpoints"),
            self.endpoints.read().len() as f64,
        );
    }

    /// Registered endpoint count.
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copied_send_roundtrip() {
        let fabric = LiveFabric::new();
        let rx = fabric.register(EndpointId(1));
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"hello")
            .unwrap();
        let msg = rx.recv().unwrap();
        assert_eq!(msg.from, EndpointId(0));
        assert_eq!(msg.payload.bytes(), b"hello");
        assert_eq!(fabric.copied_bytes(), 5);
    }

    #[test]
    fn shared_send_is_zero_copy() {
        let fabric = LiveFabric::new();
        let rx1 = fabric.register(EndpointId(1));
        let rx2 = fabric.register(EndpointId(2));
        let buf: Arc<[u8]> = Arc::from(&b"payload"[..]);
        fabric
            .send_shared(EndpointId(0), EndpointId(1), buf.clone())
            .unwrap();
        fabric
            .send_shared(EndpointId(0), EndpointId(2), buf.clone())
            .unwrap();
        let m1 = rx1.recv().unwrap();
        let m2 = rx2.recv().unwrap();
        // Both receivers observe the same physical buffer.
        match (&m1.payload, &m2.payload) {
            (Payload::Shared(a), Payload::Shared(b)) => {
                assert!(Arc::ptr_eq(a, b));
            }
            _ => panic!("expected shared payloads"),
        }
        assert_eq!(fabric.messages(), 2);
    }

    #[test]
    fn unknown_endpoint_errors() {
        let fabric = LiveFabric::new();
        let err = fabric
            .send_copied(EndpointId(0), EndpointId(9), b"x")
            .unwrap_err();
        assert_eq!(err, SendError::UnknownEndpoint);
    }

    #[test]
    fn bounded_endpoint_backpressures() {
        let fabric = LiveFabric::new();
        let _rx = fabric.register_bounded(EndpointId(1), 2);
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"a")
            .unwrap();
        fabric
            .send_copied(EndpointId(0), EndpointId(1), b"b")
            .unwrap();
        let err = fabric
            .send_copied(EndpointId(0), EndpointId(1), b"c")
            .unwrap_err();
        assert_eq!(err, SendError::Full);
    }

    #[test]
    fn deregister_disconnects() {
        let fabric = LiveFabric::new();
        let _rx = fabric.register(EndpointId(1));
        fabric.deregister(EndpointId(1));
        let err = fabric
            .send_copied(EndpointId(0), EndpointId(1), b"x")
            .unwrap_err();
        assert_eq!(err, SendError::UnknownEndpoint);
        assert_eq!(fabric.endpoint_count(), 0);
    }

    #[test]
    fn dropped_receiver_reports_disconnected() {
        let fabric = LiveFabric::new();
        let rx = fabric.register(EndpointId(1));
        drop(rx);
        let err = fabric
            .send_copied(EndpointId(0), EndpointId(1), b"x")
            .unwrap_err();
        assert_eq!(err, SendError::Disconnected);
    }

    #[test]
    fn cross_thread_delivery() {
        let fabric = Arc::new(LiveFabric::new());
        let rx = fabric.register(EndpointId(1));
        let f2 = fabric.clone();
        let handle = std::thread::spawn(move || {
            for i in 0..100u8 {
                f2.send_copied(EndpointId(0), EndpointId(1), &[i]).unwrap();
            }
        });
        handle.join().unwrap();
        let got: Vec<u8> = (0..100)
            .map(|_| rx.recv().unwrap().payload.bytes()[0])
            .collect();
        assert_eq!(got, (0..100).collect::<Vec<u8>>());
    }
}
