//! Registered memory regions and the ring memory region multiplexing of §4.
//!
//! RNICs require message buffers to live in registered memory; registration
//! is expensive. Whale registers one continuous address space per channel
//! and models it as a ring: head/tail pointers jointly delimit the region
//! holding in-flight data, and each slot is reused after the RNIC (or the
//! remote reader) consumes it. This module reproduces that structure and
//! its accounting — slot reuse means registration is paid once, not per
//! message.

use whale_sim::MetricsRegistry;

/// A registered memory region handle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemoryRegionId(pub u64);

/// Bookkeeping for memory registration against an RNIC.
///
/// Tracks how many registrations were performed — the cost the ring design
/// exists to avoid.
#[derive(Clone, Debug, Default)]
pub struct MemoryRegistry {
    next_id: u64,
    registrations: u64,
    registered_bytes: u64,
    deregistrations: u64,
}

impl MemoryRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a region of `bytes`; returns its handle.
    pub fn register(&mut self, bytes: usize) -> MemoryRegionId {
        let id = MemoryRegionId(self.next_id);
        self.next_id += 1;
        self.registrations += 1;
        self.registered_bytes += bytes as u64;
        id
    }

    /// Deregister (recycle) a region.
    pub fn deregister(&mut self, _id: MemoryRegionId) {
        self.deregistrations += 1;
    }

    /// Total registrations performed.
    pub fn registrations(&self) -> u64 {
        self.registrations
    }

    /// Total bytes ever registered.
    pub fn registered_bytes(&self) -> u64 {
        self.registered_bytes
    }

    /// Total deregistrations performed.
    pub fn deregistrations(&self) -> u64 {
        self.deregistrations
    }

    /// Export registration counters into `reg` under `prefix.*`.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.set_counter(&format!("{prefix}.registrations"), self.registrations);
        reg.set_counter(&format!("{prefix}.registered_bytes"), self.registered_bytes);
        reg.set_counter(&format!("{prefix}.deregistrations"), self.deregistrations);
    }
}

/// A slot address within a ring memory region.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SlotAddr {
    /// Index of the slot within the ring.
    pub index: usize,
    /// Monotonic sequence number of the value stored there.
    pub seq: u64,
}

/// Error returned when the ring has no free slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RingFull;

/// The ring memory region: a fixed set of slots reused in FIFO order.
///
/// The producer writes at the head; the consumer (RNIC coordinator or a
/// remote `RDMA READ`) frees slots at the tail. A slot is never overwritten
/// before it is consumed, and consumption is strictly sequential — the two
/// invariants the paper relies on for destination nodes to locate data
/// without extra control messages.
#[derive(Clone, Debug)]
pub struct RingRegion<T> {
    slots: Vec<Option<T>>,
    head: usize,
    tail: usize,
    len: usize,
    next_seq: u64,
    consumed: u64,
    /// Registration handle for the whole ring (paid once).
    region: MemoryRegionId,
}

impl<T> RingRegion<T> {
    /// Allocate a ring with `slots` slots, registering its backing space
    /// once in `registry`. `slot_bytes` is the per-slot capacity used for
    /// registration accounting.
    pub fn new(slots: usize, slot_bytes: usize, registry: &mut MemoryRegistry) -> Self {
        assert!(slots > 0, "ring needs at least one slot");
        let region = registry.register(slots * slot_bytes);
        RingRegion {
            slots: (0..slots).map(|_| None).collect(),
            head: 0,
            tail: 0,
            len: 0,
            next_seq: 0,
            consumed: 0,
            region,
        }
    }

    /// The registration handle of the backing space.
    pub fn region(&self) -> MemoryRegionId {
        self.region
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no slots are occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if every slot is occupied.
    pub fn is_full(&self) -> bool {
        self.len == self.slots.len()
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total values consumed since creation (reuse = consumed beyond
    /// capacity implies slots were recycled).
    pub fn total_consumed(&self) -> u64 {
        self.consumed
    }

    /// Produce a value at the head. Fails if the ring is full (the caller
    /// must backpressure — this is the transfer-queue blocking the paper's
    /// controller reacts to).
    pub fn produce(&mut self, value: T) -> Result<SlotAddr, RingFull> {
        if self.is_full() {
            return Err(RingFull);
        }
        let index = self.head;
        debug_assert!(self.slots[index].is_none(), "overwriting unconsumed slot");
        self.slots[index] = Some(value);
        self.head = (self.head + 1) % self.slots.len();
        self.len += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        Ok(SlotAddr { index, seq })
    }

    /// Consume the oldest value (tail), freeing its slot for reuse.
    pub fn consume(&mut self) -> Option<(SlotAddr, T)> {
        if self.is_empty() {
            return None;
        }
        let index = self.tail;
        let value = self.slots[index]
            .take()
            .expect("tail slot must be occupied");
        self.tail = (self.tail + 1) % self.slots.len();
        self.len -= 1;
        let seq = self.consumed;
        self.consumed += 1;
        Some((SlotAddr { index, seq }, value))
    }

    /// Export ring occupancy and slot-reuse counters into `reg` under
    /// `prefix.*`. `slot_reuses` counts consumptions beyond the first pass
    /// over the ring — the registrations the ring design avoided.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.set_gauge(&format!("{prefix}.capacity"), self.capacity() as f64);
        reg.set_gauge(&format!("{prefix}.occupied"), self.len() as f64);
        reg.set_counter(&format!("{prefix}.consumed"), self.consumed);
        reg.set_counter(
            &format!("{prefix}.slot_reuses"),
            self.consumed.saturating_sub(self.capacity() as u64),
        );
    }

    /// Read the value at the tail without consuming (models a remote
    /// `RDMA READ` of the next message before acknowledging it).
    pub fn peek(&self) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.slots[self.tail].as_ref()
        }
    }

    /// Sequence number of the oldest unconsumed value — the seq a remote
    /// reader fetches next. Equals `next_seq()` when the ring is empty.
    pub fn tail_seq(&self) -> u64 {
        self.consumed
    }

    /// Sequence number the next `produce` will be assigned. The readable
    /// window is `tail_seq()..next_seq()`.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Address of the slot holding sequence number `seq`, if it is still
    /// in the readable window. Remote readers use this to locate data by
    /// seq alone — no control message needed (§4 of the paper).
    pub fn addr_of(&self, seq: u64) -> Option<SlotAddr> {
        if seq < self.consumed || seq >= self.next_seq {
            return None;
        }
        let offset = (seq - self.consumed) as usize;
        let index = (self.tail + offset) % self.slots.len();
        Some(SlotAddr { index, seq })
    }

    /// Read the value holding sequence number `seq` without consuming —
    /// the fetch-by-seq form of [`RingRegion::peek`] a remote `RDMA READ`
    /// addresses slots with. Returns `None` when `seq` is outside the
    /// readable window `tail_seq()..next_seq()`.
    pub fn peek_at(&self, seq: u64) -> Option<&T> {
        let addr = self.addr_of(seq)?;
        self.slots[addr.index].as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(slots: usize) -> (RingRegion<u32>, MemoryRegistry) {
        let mut reg = MemoryRegistry::new();
        let r = RingRegion::new(slots, 256, &mut reg);
        (r, reg)
    }

    #[test]
    fn registration_paid_once() {
        let (_r, reg) = ring(64);
        assert_eq!(reg.registrations(), 1);
        assert_eq!(reg.registered_bytes(), 64 * 256);
    }

    #[test]
    fn fifo_produce_consume() {
        let (mut r, _) = ring(4);
        for v in 0..4u32 {
            r.produce(v).unwrap();
        }
        for v in 0..4u32 {
            let (_, got) = r.consume().unwrap();
            assert_eq!(got, v);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn full_ring_rejects_produce() {
        let (mut r, _) = ring(2);
        r.produce(1).unwrap();
        r.produce(2).unwrap();
        assert_eq!(r.produce(3), Err(RingFull));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn slots_are_reused_after_consumption() {
        let (mut r, _) = ring(2);
        // Push 10 values through a 2-slot ring.
        let mut indices = Vec::new();
        for v in 0..10u32 {
            let addr = r.produce(v).unwrap();
            indices.push(addr.index);
            let (_, got) = r.consume().unwrap();
            assert_eq!(got, v);
        }
        // Only 2 distinct physical slots are ever used.
        let mut distinct = indices.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 2);
        assert_eq!(r.total_consumed(), 10);
    }

    #[test]
    fn sequence_numbers_monotonic() {
        let (mut r, _) = ring(8);
        let a = r.produce(1).unwrap();
        let b = r.produce(2).unwrap();
        assert_eq!(b.seq, a.seq + 1);
        let (ca, _) = r.consume().unwrap();
        let (cb, _) = r.consume().unwrap();
        assert_eq!(ca.seq, 0);
        assert_eq!(cb.seq, 1);
    }

    #[test]
    fn peek_does_not_consume() {
        let (mut r, _) = ring(2);
        r.produce(42).unwrap();
        assert_eq!(r.peek(), Some(&42));
        assert_eq!(r.len(), 1);
        assert_eq!(r.consume().unwrap().1, 42);
        assert_eq!(r.peek(), None);
    }

    #[test]
    fn wraparound_preserves_order() {
        let (mut r, _) = ring(3);
        r.produce(1).unwrap();
        r.produce(2).unwrap();
        r.consume().unwrap();
        r.produce(3).unwrap();
        r.produce(4).unwrap(); // wraps to slot 0
        assert!(r.is_full());
        assert_eq!(r.consume().unwrap().1, 2);
        assert_eq!(r.consume().unwrap().1, 3);
        assert_eq!(r.consume().unwrap().1, 4);
    }

    #[test]
    fn fetch_by_seq_window() {
        let (mut r, _) = ring(3);
        assert_eq!(r.tail_seq(), 0);
        assert_eq!(r.next_seq(), 0);
        assert_eq!(r.peek_at(0), None);
        r.produce(10).unwrap();
        r.produce(11).unwrap();
        assert_eq!(r.peek_at(0), Some(&10));
        assert_eq!(r.peek_at(1), Some(&11));
        assert_eq!(r.peek_at(2), None);
        r.consume().unwrap();
        assert_eq!(r.tail_seq(), 1);
        assert_eq!(r.peek_at(0), None, "consumed seqs leave the window");
        assert_eq!(r.peek_at(1), Some(&11));
    }

    #[test]
    fn fetch_by_seq_survives_wraparound() {
        let (mut r, _) = ring(2);
        for v in 0..9u32 {
            let addr = r.produce(v).unwrap();
            assert_eq!(r.addr_of(addr.seq), Some(addr));
            assert_eq!(r.peek_at(addr.seq), Some(&v));
            assert_eq!(r.peek_at(r.tail_seq()), r.peek());
            r.consume().unwrap();
        }
        assert_eq!(r.tail_seq(), r.next_seq());
    }

    #[test]
    fn deregistration_counted() {
        let mut reg = MemoryRegistry::new();
        let id = reg.register(128);
        reg.deregister(id);
        assert_eq!(reg.deregistrations(), 1);
    }
}
