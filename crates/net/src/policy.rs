//! Bounded retry policy for backpressured sends.
//!
//! The live runtime used to spin forever on [`SendError::Full`] — a
//! livelock if a flusher shard dies and the ring never drains. A
//! [`SendPolicy`] bounds that wait: a short spin phase for the common
//! transient case, a yield phase to let the flusher run, then parked
//! exponential backoff under a hard deadline. On exhaustion the send
//! fails with [`SendError::Full`] and the caller decides what "failed"
//! means (the dsps runtime counts the frame and degrades the run).

use crate::fabric::SendError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A spin → yield → parked-backoff schedule with a hard deadline.
///
/// Retries apply only to [`SendError::Full`]; every other outcome is
/// returned to the caller immediately. The deadline clock starts at the
/// first *parked* retry, so the cheap spin/yield phases never pay for a
/// syscall to read the time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SendPolicy {
    /// Busy-spin retries before yielding (cheapest, for sub-µs stalls).
    pub spin: u32,
    /// `yield_now` retries before parking (lets a same-core flusher run).
    pub yields: u32,
    /// First parked sleep; doubles on each subsequent park.
    pub park_initial: Duration,
    /// Ceiling for the parked sleep.
    pub park_max: Duration,
    /// Total parked time budget; once exceeded the send fails `Full`.
    pub deadline: Duration,
}

impl Default for SendPolicy {
    fn default() -> Self {
        SendPolicy {
            spin: 64,
            yields: 256,
            park_initial: Duration::from_micros(10),
            park_max: Duration::from_millis(1),
            deadline: Duration::from_secs(5),
        }
    }
}

impl SendPolicy {
    /// A policy that never parks and gives up after the spin/yield
    /// phases — useful in tests that must not sleep.
    pub fn immediate() -> Self {
        SendPolicy {
            spin: 0,
            yields: 0,
            park_initial: Duration::ZERO,
            park_max: Duration::ZERO,
            deadline: Duration::ZERO,
        }
    }

    /// Run `attempt` under this policy. Retries [`SendError::Full`]
    /// per the schedule, incrementing `retries` once per re-attempt;
    /// any other result is returned as-is. Returns `Err(Full)` when
    /// the deadline is exhausted.
    pub fn run<T>(
        &self,
        retries: &AtomicU64,
        mut attempt: impl FnMut() -> Result<T, SendError>,
    ) -> Result<T, SendError> {
        match attempt() {
            Err(SendError::Full) => {}
            other => return other,
        }
        let mut spins = 0u32;
        let mut yields = 0u32;
        let mut park = self.park_initial.max(Duration::from_micros(1));
        let mut deadline: Option<Instant> = None;
        loop {
            if spins < self.spin {
                spins += 1;
                std::hint::spin_loop();
            } else if yields < self.yields {
                yields += 1;
                std::thread::yield_now();
            } else {
                let now = Instant::now();
                let limit = *deadline.get_or_insert_with(|| now + self.deadline);
                if now >= limit {
                    return Err(SendError::Full);
                }
                std::thread::sleep(park.min(limit - now));
                park = (park * 2).min(self.park_max.max(park));
            }
            retries.fetch_add(1, Ordering::Relaxed);
            match attempt() {
                Err(SendError::Full) => {}
                other => return other,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_passes_through_without_retry() {
        let retries = AtomicU64::new(0);
        let r: Result<u32, SendError> = SendPolicy::default().run(&retries, || Ok(7));
        assert_eq!(r, Ok(7));
        assert_eq!(retries.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn terminal_errors_are_not_retried() {
        let retries = AtomicU64::new(0);
        let mut calls = 0u32;
        let r: Result<(), SendError> = SendPolicy::default().run(&retries, || {
            calls += 1;
            Err(SendError::Disconnected)
        });
        assert_eq!(r, Err(SendError::Disconnected));
        assert_eq!(calls, 1);
        assert_eq!(retries.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn full_is_retried_until_success() {
        let retries = AtomicU64::new(0);
        let mut left = 5u32;
        let r = SendPolicy::default().run(&retries, || {
            if left > 0 {
                left -= 1;
                Err(SendError::Full)
            } else {
                Ok(())
            }
        });
        assert_eq!(r, Ok(()));
        assert_eq!(retries.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn deadline_bounds_a_stuck_full() {
        let policy = SendPolicy {
            spin: 2,
            yields: 2,
            park_initial: Duration::from_micros(50),
            park_max: Duration::from_micros(200),
            deadline: Duration::from_millis(20),
        };
        let retries = AtomicU64::new(0);
        let started = Instant::now();
        let r: Result<(), SendError> = policy.run(&retries, || Err(SendError::Full));
        assert_eq!(r, Err(SendError::Full));
        // Terminated promptly — the whole point of the policy.
        assert!(started.elapsed() < Duration::from_secs(5));
        assert!(retries.load(Ordering::Relaxed) >= 4);
    }

    #[test]
    fn immediate_policy_never_sleeps() {
        let retries = AtomicU64::new(0);
        let started = Instant::now();
        let r: Result<(), SendError> =
            SendPolicy::immediate().run(&retries, || Err(SendError::Full));
        assert_eq!(r, Err(SendError::Full));
        assert!(started.elapsed() < Duration::from_secs(1));
    }
}
