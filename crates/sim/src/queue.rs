//! Bounded FIFO queues with occupancy statistics.
//!
//! The transfer queue of an upstream instance is the central object of the
//! paper's analysis (M/D/1, warning waterline, overflow = tuple loss).
//! [`BoundedQueue`] implements that queue with the bookkeeping the
//! self-adjusting controller and the experiments need: current length,
//! high-water mark, drop counts, and enqueue/dequeue tallies.

use crate::time::SimTime;
use std::collections::VecDeque;

/// Outcome of a push attempt on a bounded queue.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PushOutcome {
    /// The item was enqueued.
    Enqueued,
    /// The queue was full; the item was dropped (stream input loss, Def. 4).
    Dropped,
}

/// A bounded FIFO queue with occupancy statistics.
#[derive(Clone, Debug)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    /// Largest length ever observed.
    high_water: usize,
    /// Items rejected because the queue was full.
    dropped: u64,
    /// Total successful enqueues.
    enqueued: u64,
    /// Total dequeues.
    dequeued: u64,
}

impl<T> BoundedQueue<T> {
    /// Create a queue with the given maximum capacity `Q` (> 0).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            items: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            high_water: 0,
            dropped: 0,
            enqueued: 0,
            dequeued: 0,
        }
    }

    /// Attempt to enqueue; drops the item if full.
    pub fn push(&mut self, item: T) -> PushOutcome {
        if self.items.len() >= self.capacity {
            self.dropped += 1;
            return PushOutcome::Dropped;
        }
        self.items.push_back(item);
        self.enqueued += 1;
        if self.items.len() > self.high_water {
            self.high_water = self.items.len();
        }
        PushOutcome::Enqueued
    }

    /// Dequeue the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.items.pop_front();
        if item.is_some() {
            self.dequeued += 1;
        }
        item
    }

    /// Peek at the oldest item without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True if at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// The configured capacity `Q`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Occupancy as a fraction of capacity in `[0, 1]` (the "waterline").
    pub fn load_factor(&self) -> f64 {
        self.items.len() as f64 / self.capacity as f64
    }

    /// Largest occupancy ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Number of items dropped due to overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total successful enqueues.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Total dequeues.
    pub fn total_dequeued(&self) -> u64 {
        self.dequeued
    }

    /// Reset statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.high_water = self.items.len();
        self.dropped = 0;
        self.enqueued = 0;
        self.dequeued = 0;
    }
}

/// A periodic sample of queue occupancy, used by the workload monitor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueueSample {
    /// When the sample was taken.
    pub at: SimTime,
    /// Queue length at that time.
    pub len: usize,
    /// Load factor at that time.
    pub load: f64,
}

/// A rolling window of queue samples with the deltas the controller rules
/// (negative scale-down / active scale-up) are expressed over.
#[derive(Clone, Debug, Default)]
pub struct QueueWatch {
    last: Option<QueueSample>,
    samples: Vec<QueueSample>,
    keep_history: bool,
}

impl QueueWatch {
    /// Create a watch; `keep_history` retains every sample for plotting.
    pub fn new(keep_history: bool) -> Self {
        QueueWatch {
            last: None,
            samples: Vec::new(),
            keep_history,
        }
    }

    /// Record a sample; returns the previous one, if any.
    pub fn observe(&mut self, at: SimTime, len: usize, capacity: usize) -> Option<QueueSample> {
        let sample = QueueSample {
            at,
            len,
            load: len as f64 / capacity as f64,
        };
        let prev = self.last.replace(sample);
        if self.keep_history {
            self.samples.push(sample);
        }
        prev
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<QueueSample> {
        self.last
    }

    /// Full history (empty unless `keep_history`).
    pub fn history(&self) -> &[QueueSample] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedQueue::new(10);
        for i in 0..5 {
            assert_eq!(q.push(i), PushOutcome::Enqueued);
        }
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let mut q = BoundedQueue::new(2);
        assert_eq!(q.push(1), PushOutcome::Enqueued);
        assert_eq!(q.push(2), PushOutcome::Enqueued);
        assert_eq!(q.push(3), PushOutcome::Dropped);
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.len(), 2);
        assert!(q.is_full());
        // Contents are unaffected by the drop.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut q = BoundedQueue::new(10);
        q.push(1);
        q.push(2);
        q.push(3);
        q.pop();
        q.pop();
        assert_eq!(q.high_water(), 3);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn load_factor_and_waterline() {
        let mut q = BoundedQueue::new(4);
        assert_eq!(q.load_factor(), 0.0);
        q.push(1);
        q.push(2);
        assert!((q.load_factor() - 0.5).abs() < 1e-12);
        q.push(3);
        q.push(4);
        assert!((q.load_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counters_balance() {
        let mut q = BoundedQueue::new(8);
        for i in 0..6 {
            q.push(i);
        }
        for _ in 0..4 {
            q.pop();
        }
        assert_eq!(q.total_enqueued(), 6);
        assert_eq!(q.total_dequeued(), 4);
        assert_eq!(q.total_enqueued() - q.total_dequeued(), q.len() as u64);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut q = BoundedQueue::new(4);
        q.push(1);
        q.push(2);
        q.push(3);
        q.push(4);
        q.push(5); // dropped
        q.reset_stats();
        assert_eq!(q.dropped(), 0);
        assert_eq!(q.total_enqueued(), 0);
        assert_eq!(q.len(), 4);
        assert_eq!(q.high_water(), 4);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = BoundedQueue::<u8>::new(0);
    }

    #[test]
    fn front_peeks_without_removing() {
        let mut q = BoundedQueue::new(2);
        q.push(7);
        assert_eq!(q.front(), Some(&7));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn watch_returns_previous_sample() {
        let mut w = QueueWatch::new(true);
        assert!(w.observe(SimTime::from_millis(1), 2, 10).is_none());
        let prev = w.observe(SimTime::from_millis(2), 5, 10).unwrap();
        assert_eq!(prev.len, 2);
        assert_eq!(w.last().unwrap().len, 5);
        assert_eq!(w.history().len(), 2);
    }

    #[test]
    fn watch_without_history() {
        let mut w = QueueWatch::new(false);
        w.observe(SimTime::ZERO, 1, 10);
        w.observe(SimTime::from_millis(1), 2, 10);
        assert!(w.history().is_empty());
        assert_eq!(w.last().unwrap().len, 2);
    }
}
