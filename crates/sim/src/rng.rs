//! Deterministic random number generation and distribution sampling.
//!
//! The simulator needs reproducible randomness: the same seed must produce
//! the same event trace on every run and platform. We implement
//! xoshiro256** (Blackman & Vigna) seeded through SplitMix64, plus the
//! distribution samplers the workload generators need: uniform, exponential
//! (Poisson inter-arrivals), Poisson counts, Zipf, normal, and log-normal.

/// A deterministic pseudo-random number generator (xoshiro256**).
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed. Seeds are expanded with
    /// SplitMix64 so that similar seeds give unrelated streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SimRng { s }
    }

    /// Derive an independent child generator; used to give each simulated
    /// component its own stream so adding components does not perturb others.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    #[inline]
    pub fn gen_range(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire's multiply-shift rejection method for unbiased bounded ints.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform usize in `[lo, hi)`.
    #[inline]
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(hi > lo);
        lo + self.gen_range((hi - lo) as u64) as usize
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed value with the given rate (mean `1/rate`).
    /// This is the inter-arrival time of a Poisson process.
    #[inline]
    pub fn exp(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        // Avoid ln(0) by flipping to (0, 1].
        let u = 1.0 - self.next_f64();
        -u.ln() / rate
    }

    /// Poisson-distributed count with the given mean.
    ///
    /// Uses Knuth's product method for small means and a normal
    /// approximation for large ones (mean > 64), which is accurate to well
    /// under the noise floor of any experiment here.
    pub fn poisson(&mut self, mean: f64) -> u64 {
        debug_assert!(mean >= 0.0);
        if mean == 0.0 {
            return 0;
        }
        if mean > 64.0 {
            let x = self.normal(mean, mean.sqrt());
            return x.max(0.0).round() as u64;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.next_f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Standard-normal variate via Box–Muller.
    pub fn std_normal(&mut self) -> f64 {
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal variate with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.std_normal()
    }

    /// Log-normal variate: `exp(N(mu, sigma))`.
    #[inline]
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range((i + 1) as u64) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose from empty slice");
        &xs[self.gen_range(xs.len() as u64) as usize]
    }
}

/// Zipf-distributed sampler over `{0, 1, ..., n-1}` with exponent `s`.
///
/// Rank 0 is the hottest item. Uses the rejection-inversion method of
/// Hörmann & Derflinger, which is O(1) per sample and exact.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    s: f64,
    h_x1: f64,
    h_n: f64,
    dd: f64,
}

impl Zipf {
    /// Create a sampler over `n` items with skew exponent `s >= 0`.
    /// `s = 0` degenerates to uniform; typical skewed workloads use ~1.0.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one item");
        assert!(
            s >= 0.0 && s.is_finite(),
            "Zipf exponent must be finite and non-negative"
        );
        let h = |x: f64| -> f64 {
            if (s - 1.0).abs() < 1e-12 {
                (1.0 + x).ln()
            } else {
                ((1.0 + x).powf(1.0 - s) - 1.0) / (1.0 - s)
            }
        };
        let h_x1 = h(1.5) - 1.0;
        let h_n = h(n as f64 + 0.5);
        let dd = 1.0 - (h(1.5) - (2.0f64).powf(-s) - h_x1);
        Zipf {
            n,
            s,
            h_x1,
            h_n,
            dd: dd.max(0.0),
        }
    }

    fn h_inv(&self, x: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-12 {
            x.exp() - 1.0
        } else {
            (1.0 + x * (1.0 - self.s)).powf(1.0 / (1.0 - self.s)) - 1.0
        }
    }

    /// Draw a rank in `[0, n)`; rank 0 is most popular.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        if self.n == 1 {
            return 0;
        }
        loop {
            let u = self.h_x1 + rng.next_f64() * (self.h_n - self.h_x1);
            let x = self.h_inv(u);
            let k = (x + 0.5).floor().max(1.0).min(self.n as f64);
            let h_k = {
                let s = self.s;
                if (s - 1.0).abs() < 1e-12 {
                    (k + 0.5).ln()
                } else {
                    ((k + 0.5).powf(1.0 - s) - 1.0) / (1.0 - s)
                }
            };
            if k - x <= self.dd || u >= h_k - k.powf(-self.s) {
                return k as u64 - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SimRng::new(7);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = SimRng::new(4);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.gen_range(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all values in range should occur");
    }

    #[test]
    fn exp_mean_matches_rate() {
        let mut rng = SimRng::new(5);
        let rate = 2_000.0;
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exp(rate)).sum::<f64>() / n as f64;
        let expected = 1.0 / rate;
        assert!(
            (mean - expected).abs() / expected < 0.02,
            "mean={mean} expected={expected}"
        );
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut rng = SimRng::new(6);
        for &mean in &[0.5, 4.0, 30.0, 500.0] {
            let n = 20_000;
            let avg: f64 = (0..n).map(|_| rng.poisson(mean) as f64).sum::<f64>() / n as f64;
            assert!((avg - mean).abs() / mean < 0.05, "mean={mean} avg={avg}");
        }
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(8);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05);
        assert!((var.sqrt() - 3.0).abs() < 0.05);
    }

    #[test]
    fn log_normal_positive() {
        let mut rng = SimRng::new(9);
        for _ in 0..1_000 {
            assert!(rng.log_normal(0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn zipf_rank_zero_hottest() {
        let mut rng = SimRng::new(10);
        let z = Zipf::new(1_000, 1.0);
        let mut counts = vec![0u64; 1_000];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[500]);
        // Zipf(1): count(0)/count(9) ≈ 10.
        let ratio = counts[0] as f64 / counts[9].max(1) as f64;
        assert!(ratio > 5.0 && ratio < 20.0, "ratio={ratio}");
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let mut rng = SimRng::new(11);
        let z = Zipf::new(100, 0.0);
        let mut counts = vec![0u64; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(
            max / min < 1.5,
            "uniform-ish spread expected, min={min} max={max}"
        );
    }

    #[test]
    fn zipf_single_item() {
        let mut rng = SimRng::new(12);
        let z = Zipf::new(1, 1.2);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(13);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = SimRng::new(14);
        let xs = [1, 2, 3];
        for _ in 0..100 {
            assert!(xs.contains(rng.choose(&xs)));
        }
    }
}
