//! Small numeric helpers shared by monitors and reports.

/// Exponentially weighted moving average, the α-weighted smoothing of §4:
/// `λ(t) = α·λ(t-1) + (1-α)·N(t)`.
#[derive(Clone, Copy, Debug)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create with smoothing factor `alpha` in `[0, 1)`; larger alpha gives
    /// more weight to history (slower, smoother).
    pub fn new(alpha: f64) -> Self {
        assert!((0.0..1.0).contains(&alpha), "alpha must be in [0,1)");
        Ewma { alpha, value: None }
    }

    /// Feed an observation; returns the smoothed value.
    pub fn observe(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => self.alpha * prev + (1.0 - self.alpha) * x,
        };
        self.value = Some(v);
        v
    }

    /// Current smoothed value, if any observation has been made.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Drop all history.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// Running mean/variance (Welford) without storing samples.
#[derive(Clone, Copy, Debug, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Running {
    /// New empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Mean of a slice (0 when empty). For report code.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Exact percentile of a slice by sorting a copy (p in [0, 100]).
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = (p / 100.0 * (v.len() - 1) as f64).round() as usize;
    v[rank.min(v.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_first_observation_passthrough() {
        let mut e = Ewma::new(0.9);
        assert_eq!(e.observe(10.0), 10.0);
    }

    #[test]
    fn ewma_smooths_toward_input() {
        let mut e = Ewma::new(0.5);
        e.observe(0.0);
        let v = e.observe(10.0);
        assert!((v - 5.0).abs() < 1e-12);
        let v = e.observe(10.0);
        assert!((v - 7.5).abs() < 1e-12);
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.8);
        for _ in 0..200 {
            e.observe(42.0);
        }
        assert!((e.value().unwrap() - 42.0).abs() < 1e-6);
    }

    #[test]
    fn ewma_reset() {
        let mut e = Ewma::new(0.5);
        e.observe(5.0);
        e.reset();
        assert!(e.value().is_none());
        assert_eq!(e.observe(1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0,1)")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(1.0);
    }

    #[test]
    fn running_moments() {
        let mut r = Running::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.push(x);
        }
        assert_eq!(r.count(), 8);
        assert!((r.mean() - 5.0).abs() < 1e-12);
        assert!((r.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn running_empty_and_single() {
        let mut r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        r.push(3.0);
        assert_eq!(r.mean(), 3.0);
        assert_eq!(r.variance(), 0.0);
    }

    #[test]
    fn slice_helpers() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!((mean(&xs) - 3.0).abs() < 1e-12);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}
