//! The discrete-event simulation engine.
//!
//! A simulation is a [`SimWorld`]: a state machine that reacts to typed
//! events. The engine owns the virtual clock and the future event list; the
//! world schedules follow-up events through the [`Scheduler`] handle it is
//! given on every dispatch. This split sidesteps the usual Rust borrow
//! tangle of closure-based DES designs while staying fully deterministic.

use crate::event::{EventId, EventQueue};
use crate::time::{SimDuration, SimTime};

/// A simulated system: reacts to its own event type.
pub trait SimWorld {
    /// The event payload type dispatched by the engine.
    type Event;

    /// Handle one event at virtual time `now`, scheduling any follow-ups.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Scheduling handle passed to the world on every dispatch.
pub struct Scheduler<E> {
    now: SimTime,
    queue: EventQueue<E>,
    dispatched: u64,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            dispatched: 0,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule an event at an absolute time. Times in the past are clamped
    /// to `now` (they fire next, preserving causality).
    pub fn at(&mut self, time: SimTime, event: E) -> EventId {
        self.queue.schedule(time.max(self.now), event)
    }

    /// Schedule an event `delay` after the current time.
    pub fn after(&mut self, delay: SimDuration, event: E) -> EventId {
        self.queue.schedule(self.now + delay, event)
    }

    /// Schedule an event at the current time (fires after already-queued
    /// events with the same timestamp).
    pub fn immediately(&mut self, event: E) -> EventId {
        self.queue.schedule(self.now, event)
    }

    /// Cancel a pending event. Returns true if it had not yet fired.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }
}

/// The simulation driver: owns the world and the scheduler.
///
/// ```
/// use whale_sim::{Engine, Scheduler, SimDuration, SimTime, SimWorld};
///
/// struct Pinger(u32);
/// impl SimWorld for Pinger {
///     type Event = ();
///     fn handle(&mut self, _now: SimTime, _ev: (), sched: &mut Scheduler<()>) {
///         if self.0 > 0 {
///             self.0 -= 1;
///             sched.after(SimDuration::from_micros(10), ());
///         }
///     }
/// }
///
/// let mut engine = Engine::new(Pinger(3));
/// engine.scheduler().at(SimTime::ZERO, ());
/// engine.run_until(SimTime::from_secs(1));
/// assert_eq!(engine.world().0, 0);
/// assert_eq!(engine.scheduler().dispatched(), 4);
/// ```
pub struct Engine<W: SimWorld> {
    world: W,
    sched: Scheduler<W::Event>,
}

/// Why a run loop stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// No events remain.
    Drained,
    /// The requested horizon was reached with events still pending.
    Horizon,
    /// The event budget was exhausted.
    Budget,
}

impl<W: SimWorld> Engine<W> {
    /// Create an engine around an initial world state.
    pub fn new(world: W) -> Self {
        Engine {
            world,
            sched: Scheduler::new(),
        }
    }

    /// Access the world (for inspection between runs).
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (for reconfiguration between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Access the scheduler (e.g. to seed initial events).
    pub fn scheduler(&mut self) -> &mut Scheduler<W::Event> {
        &mut self.sched
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Dispatch a single event. Returns false if none remain.
    pub fn step(&mut self) -> bool {
        match self.sched.queue.pop() {
            Some((time, ev)) => {
                debug_assert!(time >= self.sched.now, "time must not move backwards");
                self.sched.now = time;
                self.sched.dispatched += 1;
                self.world.handle(time, ev, &mut self.sched);
                true
            }
            None => false,
        }
    }

    /// Run until the queue drains or virtual time would pass `until`.
    /// Events at exactly `until` are dispatched. The clock is left at
    /// `until` when stopping at the horizon with events pending.
    pub fn run_until(&mut self, until: SimTime) -> StopReason {
        loop {
            let Some(next) = self.sched.queue.peek_time() else {
                // Advance the clock to the horizon so repeated runs compose.
                self.sched.now = self.sched.now.max(until);
                return StopReason::Drained;
            };
            if next > until {
                self.sched.now = until;
                return StopReason::Horizon;
            }
            self.step();
        }
    }

    /// Run until the queue drains, with an event-count budget as a guard
    /// against runaway self-scheduling worlds.
    pub fn run_to_completion(&mut self, max_events: u64) -> StopReason {
        let start = self.sched.dispatched;
        while self.sched.dispatched - start < max_events {
            if !self.step() {
                return StopReason::Drained;
            }
        }
        StopReason::Budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that counts down, scheduling the next tick 1us later.
    struct Countdown {
        remaining: u32,
        fired_at: Vec<SimTime>,
    }

    enum Tick {
        Tick,
    }

    impl SimWorld for Countdown {
        type Event = Tick;
        fn handle(&mut self, now: SimTime, _ev: Tick, sched: &mut Scheduler<Tick>) {
            self.fired_at.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                sched.after(SimDuration::from_micros(1), Tick::Tick);
            }
        }
    }

    #[test]
    fn chain_of_events_advances_clock() {
        let mut eng = Engine::new(Countdown {
            remaining: 3,
            fired_at: vec![],
        });
        eng.scheduler().at(SimTime::from_micros(10), Tick::Tick);
        let reason = eng.run_until(SimTime::from_secs(1));
        assert_eq!(reason, StopReason::Drained);
        assert_eq!(
            eng.world().fired_at,
            vec![
                SimTime::from_micros(10),
                SimTime::from_micros(11),
                SimTime::from_micros(12),
                SimTime::from_micros(13),
            ]
        );
        assert_eq!(eng.now(), SimTime::from_secs(1));
    }

    #[test]
    fn horizon_stops_midway() {
        let mut eng = Engine::new(Countdown {
            remaining: 1000,
            fired_at: vec![],
        });
        eng.scheduler().at(SimTime::ZERO, Tick::Tick);
        let reason = eng.run_until(SimTime::from_micros(5));
        assert_eq!(reason, StopReason::Horizon);
        // Events at t=0..=5us fire: 6 events.
        assert_eq!(eng.world().fired_at.len(), 6);
        assert_eq!(eng.now(), SimTime::from_micros(5));
        // Resuming continues where we left off.
        let reason = eng.run_until(SimTime::from_micros(7));
        assert_eq!(reason, StopReason::Horizon);
        assert_eq!(eng.world().fired_at.len(), 8);
    }

    #[test]
    fn budget_guard_stops_runaway() {
        /// A world that reschedules itself forever.
        struct Forever;
        impl SimWorld for Forever {
            type Event = ();
            fn handle(&mut self, _now: SimTime, _ev: (), sched: &mut Scheduler<()>) {
                sched.after(SimDuration::from_nanos(1), ());
            }
        }
        let mut eng = Engine::new(Forever);
        eng.scheduler().immediately(());
        assert_eq!(eng.run_to_completion(100), StopReason::Budget);
        assert_eq!(eng.scheduler().dispatched(), 100);
    }

    #[test]
    fn past_times_clamp_to_now() {
        struct Recorder(Vec<SimTime>);
        enum Ev {
            SchedulePast,
            Fired,
        }
        impl SimWorld for Recorder {
            type Event = Ev;
            fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
                match ev {
                    Ev::SchedulePast => {
                        sched.at(SimTime::ZERO, Ev::Fired);
                    }
                    Ev::Fired => self.0.push(now),
                }
            }
        }
        let mut eng = Engine::new(Recorder(vec![]));
        eng.scheduler()
            .at(SimTime::from_micros(9), Ev::SchedulePast);
        eng.run_until(SimTime::from_secs(1));
        assert_eq!(eng.world().0, vec![SimTime::from_micros(9)]);
    }

    #[test]
    fn step_returns_false_when_empty() {
        let mut eng = Engine::new(Countdown {
            remaining: 0,
            fired_at: vec![],
        });
        assert!(!eng.step());
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut eng = Engine::new(Countdown {
            remaining: 0,
            fired_at: vec![],
        });
        let id = eng.scheduler().at(SimTime::from_micros(1), Tick::Tick);
        eng.scheduler().cancel(id);
        eng.run_until(SimTime::from_secs(1));
        assert!(eng.world().fired_at.is_empty());
    }
}
