//! # whale-sim — deterministic discrete-event simulation substrate
//!
//! The Whale paper evaluates on a 30-node InfiniBand cluster; this crate is
//! the laptop-scale stand-in. It provides a nanosecond-resolution virtual
//! clock, a cancellable future-event list, a `World`/`Scheduler` engine,
//! seeded RNG with the distributions the workloads need, bounded queues
//! with the occupancy statistics the paper's self-adjusting controller is
//! defined over, per-category CPU accounting (for the Fig 2 breakdowns),
//! measurement instruments, and the single calibrated [`cost::CostModel`]
//! every simulated cost comes from.
//!
//! Everything is deterministic: the same seed yields the same event trace.

#![warn(missing_docs)]

pub mod cost;
pub mod engine;
pub mod event;
pub mod metrics;
pub mod queue;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use cost::{CostModel, Transport, Verb};
pub use engine::{Engine, Scheduler, SimWorld, StopReason};
pub use event::{EventId, EventQueue};
pub use metrics::{
    Counter, Histogram, JsonValue, MetricValue, MetricsRegistry, RateMeter, Summary, TimeSeries,
};
pub use queue::{BoundedQueue, PushOutcome, QueueSample, QueueWatch};
pub use resource::{CoreClock, CpuAccount, CpuCategory};
pub use rng::{SimRng, Zipf};
pub use stats::{Ewma, Running};
pub use time::{SimDuration, SimTime};
