//! Measurement primitives: counters, histograms, and time series.
//!
//! Experiments report throughput (tuples/s), latency distributions
//! (mean/percentiles), and over-time traces (Figs 23–24). These are the
//! minimal, allocation-conscious instruments for that.

use crate::time::{SimDuration, SimTime};

/// A monotonically increasing event counter with rate computation.
#[derive(Clone, Copy, Debug, Default)]
pub struct Counter {
    count: u64,
}

impl Counter {
    /// New zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn incr(&mut self) {
        self.count += 1;
    }

    /// Add `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.count
    }

    /// Events per second over a window.
    pub fn rate(&self, window: SimDuration) -> f64 {
        let secs = window.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.count as f64 / secs
    }

    /// Reset to zero.
    pub fn reset(&mut self) {
        self.count = 0;
    }
}

/// A latency/size histogram with exact mean and approximate percentiles.
///
/// Values are bucketed logarithmically (≈4.6% relative bucket width), so
/// p50/p99 are accurate to a few percent at any scale — plenty for
/// reproducing the shapes of the paper's latency figures.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// log-scale buckets: value v goes to floor(ln(v+1) * SCALE).
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: u64,
    max: u64,
}

const HIST_SCALE: f64 = 22.18; // ≈ 1 / ln(1.046)
const HIST_BUCKETS: usize = 1024;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0.0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        let b = ((v as f64 + 1.0).ln() * HIST_SCALE) as usize;
        b.min(HIST_BUCKETS - 1)
    }

    fn bucket_mid(b: usize) -> f64 {
        ((b as f64 + 0.5) / HIST_SCALE).exp() - 1.0
    }

    /// Record a raw value (e.g. nanoseconds).
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as f64;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record a duration in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate percentile in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (p / 100.0 * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_mid(b)
                    .max(self.min as f64)
                    .min(self.max as f64);
            }
        }
        self.max as f64
    }

    /// Mean as a `SimDuration` (interpreting values as nanoseconds).
    pub fn mean_duration(&self) -> SimDuration {
        SimDuration::from_nanos(self.mean().round() as u64)
    }

    /// One-line summary: `(mean, p50, p99, max)` in raw units.
    pub fn summary(&self) -> (f64, f64, f64, u64) {
        (
            self.mean(),
            self.percentile(50.0),
            self.percentile(99.0),
            self.max(),
        )
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

/// An append-only `(time, value)` trace for over-time plots.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// New empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a point. Times should be non-decreasing.
    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(pt, _)| pt <= t),
            "time series must be appended in order"
        );
        self.points.push((t, v));
    }

    /// All points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Maximum value (None when empty).
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.max(v))))
    }

    /// Mean of values over a time range `[from, to)`.
    pub fn mean_in(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

/// Windowed rate meter: counts events and emits a rate sample per window.
///
/// Used to build throughput-over-time traces (Fig 23).
#[derive(Clone, Debug)]
pub struct RateMeter {
    window: SimDuration,
    window_start: SimTime,
    in_window: u64,
    series: TimeSeries,
}

impl RateMeter {
    /// New meter with the given sampling window.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero());
        RateMeter {
            window,
            window_start: SimTime::ZERO,
            in_window: 0,
            series: TimeSeries::new(),
        }
    }

    /// Record `n` events at time `t`, closing any windows that have elapsed.
    pub fn record(&mut self, t: SimTime, n: u64) {
        self.roll_to(t);
        self.in_window += n;
    }

    /// Close windows up to time `t` (emitting zero-rate samples for empty
    /// windows so the trace has no gaps).
    pub fn roll_to(&mut self, t: SimTime) {
        while t >= self.window_start + self.window {
            let rate = self.in_window as f64 / self.window.as_secs_f64();
            self.series.push(self.window_start + self.window, rate);
            self.window_start += self.window;
            self.in_window = 0;
        }
    }

    /// Rate samples so far: `(window_end_time, events_per_sec)`.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Finish at time `t`, flushing the partial window if non-empty.
    pub fn finish(mut self, t: SimTime) -> TimeSeries {
        self.roll_to(t);
        let partial = t.since(self.window_start);
        if self.in_window > 0 && !partial.is_zero() {
            let rate = self.in_window as f64 / partial.as_secs_f64();
            self.series.push(t, rate);
        }
        self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_rate() {
        let mut c = Counter::new();
        c.add(500);
        c.incr();
        assert_eq!(c.get(), 501);
        assert!((c.rate(SimDuration::from_secs(2)) - 250.5).abs() < 1e-9);
        assert_eq!(c.rate(SimDuration::ZERO), 0.0);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_mean_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 25.0).abs() < 1e-9);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 40);
    }

    #[test]
    fn histogram_percentiles_approximate() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.08, "p50={p50}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.08, "p99={p99}");
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0.0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn histogram_summary() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let (mean, p50, p99, max) = h.summary();
        assert!((mean - 50.5).abs() < 1e-9);
        assert!((p50 - 50.0).abs() / 50.0 < 0.1);
        assert!((p99 - 99.0).abs() / 99.0 < 0.1);
        assert_eq!(max, 100);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(100);
        b.record(300);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 200.0).abs() < 1e-9);
        assert_eq!(a.min(), 100);
        assert_eq!(a.max(), 300);
    }

    #[test]
    fn histogram_wide_range() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(1_000_000_000); // 1s in ns
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 1_000_000_000);
    }

    #[test]
    fn timeseries_basic() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(1), 10.0);
        ts.push(SimTime::from_secs(2), 30.0);
        ts.push(SimTime::from_secs(3), 20.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.max_value(), Some(30.0));
        assert_eq!(
            ts.mean_in(SimTime::from_secs(1), SimTime::from_secs(3)),
            Some(20.0)
        );
        assert_eq!(
            ts.mean_in(SimTime::from_secs(9), SimTime::from_secs(10)),
            None
        );
    }

    #[test]
    fn rate_meter_windows() {
        let mut m = RateMeter::new(SimDuration::from_secs(1));
        // 100 events in window [0,1), 200 in [1,2), none in [2,3).
        for i in 0..100 {
            m.record(SimTime::from_millis(i * 10), 1);
        }
        for i in 0..200 {
            m.record(SimTime::from_millis(1000 + i * 5), 1);
        }
        let series = m.finish(SimTime::from_secs(3));
        let pts = series.points();
        assert_eq!(pts.len(), 3);
        assert!((pts[0].1 - 100.0).abs() < 1e-9);
        assert!((pts[1].1 - 200.0).abs() < 1e-9);
        assert!((pts[2].1 - 0.0).abs() < 1e-9);
    }

    #[test]
    fn rate_meter_partial_final_window() {
        let mut m = RateMeter::new(SimDuration::from_secs(1));
        m.record(SimTime::from_millis(1_200), 50);
        let series = m.finish(SimTime::from_millis(1_500));
        let pts = series.points();
        // First window [0,1) empty, then partial [1, 1.5) with 50 events → 100/s.
        assert_eq!(pts.len(), 2);
        assert!((pts[1].1 - 100.0).abs() < 1e-9);
    }
}
