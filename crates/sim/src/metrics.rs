//! Measurement primitives: counters, histograms, and time series —
//! plus the [`MetricsRegistry`] snapshot type that unifies them.
//!
//! Experiments report throughput (tuples/s), latency distributions
//! (mean/percentiles), and over-time traces (Figs 23–24). These are the
//! minimal, allocation-conscious instruments for that. Every layer
//! (engine, live runtime, fabric, multicast controller) exports its
//! counters into a [`MetricsRegistry`], which renders to deterministic
//! JSON for the machine-readable bench reports under `results/`.

use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// A monotonically increasing event counter with rate computation.
#[derive(Clone, Copy, Debug, Default)]
pub struct Counter {
    count: u64,
}

impl Counter {
    /// New zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn incr(&mut self) {
        self.count += 1;
    }

    /// Add `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.count
    }

    /// Events per second over a window.
    pub fn rate(&self, window: SimDuration) -> f64 {
        let secs = window.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.count as f64 / secs
    }

    /// Reset to zero.
    pub fn reset(&mut self) {
        self.count = 0;
    }
}

/// A latency/size histogram with exact mean and approximate percentiles.
///
/// Values are bucketed logarithmically (≈4.6% relative bucket width), so
/// p50/p99 are accurate to a few percent at any scale — plenty for
/// reproducing the shapes of the paper's latency figures.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// log-scale buckets: value v goes to floor(ln(v+1) * SCALE).
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: u64,
    max: u64,
}

const HIST_SCALE: f64 = 22.18; // ≈ 1 / ln(1.046)
const HIST_BUCKETS: usize = 1024;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0.0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        let b = ((v as f64 + 1.0).ln() * HIST_SCALE) as usize;
        b.min(HIST_BUCKETS - 1)
    }

    fn bucket_mid(b: usize) -> f64 {
        ((b as f64 + 0.5) / HIST_SCALE).exp() - 1.0
    }

    /// Record a raw value (e.g. nanoseconds).
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as f64;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record a duration in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate percentile in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (p / 100.0 * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_mid(b)
                    .max(self.min as f64)
                    .min(self.max as f64);
            }
        }
        self.max as f64
    }

    /// Mean as a `SimDuration` (interpreting values as nanoseconds).
    pub fn mean_duration(&self) -> SimDuration {
        SimDuration::from_nanos(self.mean().round() as u64)
    }

    /// One-line summary: `(mean, p50, p99, max)` in raw units.
    pub fn summary(&self) -> (f64, f64, f64, u64) {
        (
            self.mean(),
            self.percentile(50.0),
            self.percentile(99.0),
            self.max(),
        )
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

/// An append-only `(time, value)` trace for over-time plots.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// New empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a point. Times should be non-decreasing.
    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(pt, _)| pt <= t),
            "time series must be appended in order"
        );
        self.points.push((t, v));
    }

    /// All points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Maximum value (None when empty).
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.max(v))))
    }

    /// Mean of values over a time range `[from, to)`.
    pub fn mean_in(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

/// Windowed rate meter: counts events and emits a rate sample per window.
///
/// Used to build throughput-over-time traces (Fig 23).
#[derive(Clone, Debug)]
pub struct RateMeter {
    window: SimDuration,
    window_start: SimTime,
    in_window: u64,
    series: TimeSeries,
}

impl RateMeter {
    /// New meter with the given sampling window.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero());
        RateMeter {
            window,
            window_start: SimTime::ZERO,
            in_window: 0,
            series: TimeSeries::new(),
        }
    }

    /// Record `n` events at time `t`, closing any windows that have elapsed.
    pub fn record(&mut self, t: SimTime, n: u64) {
        self.roll_to(t);
        self.in_window += n;
    }

    /// Close windows up to time `t` (emitting zero-rate samples for empty
    /// windows so the trace has no gaps).
    pub fn roll_to(&mut self, t: SimTime) {
        while t >= self.window_start + self.window {
            let rate = self.in_window as f64 / self.window.as_secs_f64();
            self.series.push(self.window_start + self.window, rate);
            self.window_start += self.window;
            self.in_window = 0;
        }
    }

    /// Rate samples so far: `(window_end_time, events_per_sec)`.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Finish at time `t`, flushing the partial window if non-empty.
    pub fn finish(mut self, t: SimTime) -> TimeSeries {
        self.roll_to(t);
        let partial = t.since(self.window_start);
        if self.in_window > 0 && !partial.is_zero() {
            let rate = self.in_window as f64 / partial.as_secs_f64();
            self.series.push(t, rate);
        }
        self.series
    }
}

/// Distribution summary captured from a [`Histogram`]: count, mean, and
/// the p50/p95/p99 tail in the histogram's raw units.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of recorded values.
    pub count: u64,
    /// Exact mean.
    pub mean: f64,
    /// Median (approximate, log-bucketed).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl Summary {
    /// Capture the current state of a histogram.
    pub fn from_histogram(h: &Histogram) -> Self {
        Summary {
            count: h.count(),
            mean: h.mean(),
            p50: h.percentile(50.0),
            p95: h.percentile(95.0),
            p99: h.percentile(99.0),
            min: h.min(),
            max: h.max(),
        }
    }
}

/// One labeled measurement inside a [`MetricsRegistry`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Point-in-time level (queue depth, CPU share, λ estimate, ...).
    Gauge(f64),
    /// Distribution summary with percentiles.
    Summary(Summary),
    /// `(seconds, value)` trace sampled over the run.
    Series(Vec<(f64, f64)>),
}

/// A labeled snapshot of every instrument a layer exports.
///
/// Keys are dotted paths (`engine.latency`, `net.verb_posts`,
/// `multicast.lambda`); iteration and JSON rendering are in sorted key
/// order, so two snapshots of the same deterministic run serialize to
/// byte-identical JSON.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    entries: BTreeMap<String, MetricValue>,
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a monotonic counter value.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.entries
            .insert(name.to_string(), MetricValue::Counter(value));
    }

    /// Record a point-in-time gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.entries
            .insert(name.to_string(), MetricValue::Gauge(value));
    }

    /// Capture a histogram as a percentile summary.
    pub fn set_summary(&mut self, name: &str, histogram: &Histogram) {
        self.entries.insert(
            name.to_string(),
            MetricValue::Summary(Summary::from_histogram(histogram)),
        );
    }

    /// Capture a time series as `(seconds, value)` pairs.
    pub fn set_series(&mut self, name: &str, series: &TimeSeries) {
        let pts = series
            .points()
            .iter()
            .map(|&(t, v)| (t.as_secs_f64(), v))
            .collect();
        self.entries
            .insert(name.to_string(), MetricValue::Series(pts));
    }

    /// Merge `other` under `prefix.` (e.g. `absorb("net", fabric_metrics)`
    /// files everything as `net.*`).
    pub fn absorb(&mut self, prefix: &str, other: MetricsRegistry) {
        for (k, v) in other.entries {
            self.entries.insert(format!("{prefix}.{k}"), v);
        }
    }

    /// Look up one metric.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.get(name)
    }

    /// Counter value, if `name` is a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.entries.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value, if `name` is a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.entries.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Summary value, if `name` is a summary.
    pub fn summary(&self, name: &str) -> Option<Summary> {
        match self.entries.get(name) {
            Some(MetricValue::Summary(s)) => Some(*s),
            _ => None,
        }
    }

    /// Number of labeled metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate metrics in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Render as a [`JsonValue`] object keyed by metric name.
    pub fn to_json(&self) -> JsonValue {
        let fields = self
            .entries
            .iter()
            .map(|(k, v)| {
                let jv = match v {
                    MetricValue::Counter(c) => JsonValue::UInt(*c),
                    MetricValue::Gauge(g) => JsonValue::Float(*g),
                    MetricValue::Summary(s) => JsonValue::Object(vec![
                        ("count".into(), JsonValue::UInt(s.count)),
                        ("mean".into(), JsonValue::Float(s.mean)),
                        ("p50".into(), JsonValue::Float(s.p50)),
                        ("p95".into(), JsonValue::Float(s.p95)),
                        ("p99".into(), JsonValue::Float(s.p99)),
                        ("min".into(), JsonValue::UInt(s.min)),
                        ("max".into(), JsonValue::UInt(s.max)),
                    ]),
                    MetricValue::Series(pts) => JsonValue::Array(
                        pts.iter()
                            .map(|&(t, v)| {
                                JsonValue::Array(vec![
                                    JsonValue::Float(t),
                                    JsonValue::Float(v),
                                ])
                            })
                            .collect(),
                    ),
                };
                (k.clone(), jv)
            })
            .collect();
        JsonValue::Object(fields)
    }
}

/// A JSON document tree with deterministic rendering.
///
/// Hand-rolled because the workspace has no serde: object fields render
/// in insertion order, floats through rust's shortest-roundtrip `Display`
/// (never scientific notation), and non-finite floats as `null` — so the
/// bytes of a rendered report depend only on the values, never on the
/// environment.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Finite float (non-finite renders as `null`).
    Float(f64),
    /// String (escaped on render).
    Str(String),
    /// Ordered array.
    Array(Vec<JsonValue>),
    /// Object with fields rendered in insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        JsonValue::Str(s.into())
    }

    /// Render compactly (no whitespace) into `out`.
    pub fn render(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(v) => out.push_str(&v.to_string()),
            JsonValue::Int(v) => out.push_str(&v.to_string()),
            JsonValue::Float(v) => {
                if v.is_finite() {
                    // Display for f64 is shortest-roundtrip decimal,
                    // which always parses as a JSON number.
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32))
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    JsonValue::Str(k.clone()).render(out);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
        }
    }

    /// Render to an owned compact string.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.render(&mut out);
        out
    }

    /// Render with two-space indentation (stable, human-diffable — the
    /// format written to `results/*.json`).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.render_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_pretty(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    item.render_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            JsonValue::Object(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    JsonValue::Str(k.clone()).render(out);
                    out.push_str(": ");
                    v.render_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => other.render(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_rate() {
        let mut c = Counter::new();
        c.add(500);
        c.incr();
        assert_eq!(c.get(), 501);
        assert!((c.rate(SimDuration::from_secs(2)) - 250.5).abs() < 1e-9);
        assert_eq!(c.rate(SimDuration::ZERO), 0.0);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_mean_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 25.0).abs() < 1e-9);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 40);
    }

    #[test]
    fn histogram_percentiles_approximate() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.08, "p50={p50}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.08, "p99={p99}");
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0.0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn histogram_summary() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let (mean, p50, p99, max) = h.summary();
        assert!((mean - 50.5).abs() < 1e-9);
        assert!((p50 - 50.0).abs() / 50.0 < 0.1);
        assert!((p99 - 99.0).abs() / 99.0 < 0.1);
        assert_eq!(max, 100);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(100);
        b.record(300);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 200.0).abs() < 1e-9);
        assert_eq!(a.min(), 100);
        assert_eq!(a.max(), 300);
    }

    #[test]
    fn histogram_wide_range() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(1_000_000_000); // 1s in ns
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 1_000_000_000);
    }

    #[test]
    fn timeseries_basic() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(1), 10.0);
        ts.push(SimTime::from_secs(2), 30.0);
        ts.push(SimTime::from_secs(3), 20.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.max_value(), Some(30.0));
        assert_eq!(
            ts.mean_in(SimTime::from_secs(1), SimTime::from_secs(3)),
            Some(20.0)
        );
        assert_eq!(
            ts.mean_in(SimTime::from_secs(9), SimTime::from_secs(10)),
            None
        );
    }

    #[test]
    fn rate_meter_windows() {
        let mut m = RateMeter::new(SimDuration::from_secs(1));
        // 100 events in window [0,1), 200 in [1,2), none in [2,3).
        for i in 0..100 {
            m.record(SimTime::from_millis(i * 10), 1);
        }
        for i in 0..200 {
            m.record(SimTime::from_millis(1000 + i * 5), 1);
        }
        let series = m.finish(SimTime::from_secs(3));
        let pts = series.points();
        assert_eq!(pts.len(), 3);
        assert!((pts[0].1 - 100.0).abs() < 1e-9);
        assert!((pts[1].1 - 200.0).abs() < 1e-9);
        assert!((pts[2].1 - 0.0).abs() < 1e-9);
    }

    #[test]
    fn summary_captures_percentiles() {
        let mut h = Histogram::new();
        for v in 1..=1_000u64 {
            h.record(v);
        }
        let s = Summary::from_histogram(&h);
        assert_eq!(s.count, 1_000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1_000);
        assert!((s.p50 - 500.0).abs() / 500.0 < 0.08, "p50={}", s.p50);
        assert!((s.p95 - 950.0).abs() / 950.0 < 0.08, "p95={}", s.p95);
        assert!((s.p99 - 990.0).abs() / 990.0 < 0.08, "p99={}", s.p99);
    }

    #[test]
    fn registry_roundtrip_and_ordering() {
        let mut r = MetricsRegistry::new();
        r.set_gauge("z.last", 1.5);
        r.set_counter("a.first", 7);
        let mut h = Histogram::new();
        h.record(10);
        r.set_summary("m.lat", &h);
        assert_eq!(r.counter("a.first"), Some(7));
        assert_eq!(r.gauge("z.last"), Some(1.5));
        assert_eq!(r.summary("m.lat").unwrap().count, 1);
        // Sorted iteration regardless of insertion order.
        let keys: Vec<&str> = r.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a.first", "m.lat", "z.last"]);
    }

    #[test]
    fn registry_absorb_prefixes() {
        let mut inner = MetricsRegistry::new();
        inner.set_counter("posts", 3);
        let mut outer = MetricsRegistry::new();
        outer.absorb("net", inner);
        assert_eq!(outer.counter("net.posts"), Some(3));
    }

    #[test]
    fn json_rendering_is_compact_and_escaped() {
        let v = JsonValue::Object(vec![
            ("a".into(), JsonValue::UInt(1)),
            ("b".into(), JsonValue::Float(2.5)),
            ("nan".into(), JsonValue::Float(f64::NAN)),
            ("s".into(), JsonValue::str("x\"y\n")),
            (
                "arr".into(),
                JsonValue::Array(vec![JsonValue::Bool(true), JsonValue::Null]),
            ),
        ]);
        assert_eq!(
            v.to_json_string(),
            r#"{"a":1,"b":2.5,"nan":null,"s":"x\"y\n","arr":[true,null]}"#
        );
    }

    #[test]
    fn json_rendering_is_deterministic() {
        let build = || {
            let mut r = MetricsRegistry::new();
            r.set_gauge("g", 0.1 + 0.2);
            r.set_counter("c", u64::MAX);
            let mut ts = TimeSeries::new();
            ts.push(SimTime::from_millis(1500), 42.0);
            r.set_series("s", &ts);
            r.to_json().to_json_pretty()
        };
        assert_eq!(build(), build());
        assert!(build().contains("\"c\": 18446744073709551615"));
    }

    #[test]
    fn rate_meter_partial_final_window() {
        let mut m = RateMeter::new(SimDuration::from_secs(1));
        m.record(SimTime::from_millis(1_200), 50);
        let series = m.finish(SimTime::from_millis(1_500));
        let pts = series.points();
        // First window [0,1) empty, then partial [1, 1.5) with 50 events → 100/s.
        assert_eq!(pts.len(), 2);
        assert!((pts[1].1 - 100.0).abs() < 1e-9);
    }
}
