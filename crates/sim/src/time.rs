//! Simulated time.
//!
//! The simulator uses a nanosecond-resolution virtual clock. [`SimTime`] is a
//! point on that clock and [`SimDuration`] a distance between two points.
//! Both are thin wrappers over `u64` nanoseconds, so all arithmetic is exact
//! and the simulation is fully deterministic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant. Saturates at zero if `earlier`
    /// is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    /// Negative and non-finite inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds, truncated.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds, truncated.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds (for rate computations and reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale by a non-negative float, rounding to the nearest nanosecond.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0, "durations cannot be negative");
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_nanos(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

/// Render nanoseconds with a human-readable unit.
fn format_nanos(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(
            SimDuration::from_secs(2),
            SimDuration::from_nanos(2_000_000_000)
        );
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_millis(5);
        let d = SimDuration::from_millis(3);
        assert_eq!(t + d, SimTime::from_millis(8));
        assert_eq!(t - d, SimTime::from_millis(2));
        assert_eq!((t + d) - t, d);
        assert_eq!(
            t.since(SimTime::from_millis(2)),
            SimDuration::from_millis(3)
        );
    }

    #[test]
    fn saturating_behaviour() {
        let t = SimTime::from_nanos(10);
        assert_eq!(t - SimDuration::from_nanos(20), SimTime::ZERO);
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO);
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d * 3, SimDuration::from_micros(30));
        assert_eq!(d / 2, SimDuration::from_micros(5));
        assert_eq!(d.mul_f64(2.5), SimDuration::from_micros(25));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(1.0), SimDuration::from_secs(1));
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e-9), SimDuration::from_nanos(1));
    }

    #[test]
    fn as_secs_roundtrip() {
        let d = SimDuration::from_millis(1_500);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        let t = SimTime::from_millis(250);
        assert!((t.as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_nanos(1);
        let y = SimDuration::from_nanos(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", SimDuration::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(5)), "5.000s");
    }
}
