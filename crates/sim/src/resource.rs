//! CPU time accounting.
//!
//! Figure 2c/2d of the paper hinge on *where* the upstream instance's CPU
//! time goes (serialization vs multi-layer packet processing) and how
//! utilized each instance's core is. [`CpuAccount`] accumulates busy time by
//! [`CpuCategory`]; [`CoreClock`] serializes work on a single simulated core
//! so that a task cannot process two tuples at once — which is exactly the
//! serial-server assumption of the paper's M/D/1 model.

use crate::time::{SimDuration, SimTime};

/// What a simulated CPU was doing.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CpuCategory {
    /// Serializing a tuple into wire format.
    Serialization,
    /// Deserializing a received message.
    Deserialization,
    /// Kernel network-stack / packet processing (TCP path).
    PacketProcessing,
    /// Posting an RDMA work request (kernel-bypass path).
    WorkRequestPost,
    /// Local dispatch of a received tuple to hosted instances.
    Dispatch,
    /// Application operator logic (matching, aggregation, ...).
    AppLogic,
    /// Anything else (control messages, monitoring, ...).
    Other,
}

impl CpuCategory {
    /// All categories, for iteration in reports.
    pub const ALL: [CpuCategory; 7] = [
        CpuCategory::Serialization,
        CpuCategory::Deserialization,
        CpuCategory::PacketProcessing,
        CpuCategory::WorkRequestPost,
        CpuCategory::Dispatch,
        CpuCategory::AppLogic,
        CpuCategory::Other,
    ];

    fn index(self) -> usize {
        match self {
            CpuCategory::Serialization => 0,
            CpuCategory::Deserialization => 1,
            CpuCategory::PacketProcessing => 2,
            CpuCategory::WorkRequestPost => 3,
            CpuCategory::Dispatch => 4,
            CpuCategory::AppLogic => 5,
            CpuCategory::Other => 6,
        }
    }

    /// Short label for report rows.
    pub fn label(self) -> &'static str {
        match self {
            CpuCategory::Serialization => "serialization",
            CpuCategory::Deserialization => "deserialization",
            CpuCategory::PacketProcessing => "packet_processing",
            CpuCategory::WorkRequestPost => "wr_post",
            CpuCategory::Dispatch => "dispatch",
            CpuCategory::AppLogic => "app_logic",
            CpuCategory::Other => "other",
        }
    }
}

/// Accumulated busy time by category.
#[derive(Clone, Debug, Default)]
pub struct CpuAccount {
    busy: [SimDuration; 7],
}

impl CpuAccount {
    /// New empty account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `d` of busy time to `cat`.
    #[inline]
    pub fn charge(&mut self, cat: CpuCategory, d: SimDuration) {
        self.busy[cat.index()] += d;
    }

    /// Busy time in one category.
    pub fn busy_in(&self, cat: CpuCategory) -> SimDuration {
        self.busy[cat.index()]
    }

    /// Total busy time across categories.
    pub fn total_busy(&self) -> SimDuration {
        self.busy.iter().copied().sum()
    }

    /// Utilization over a wall-clock window: `busy / window`, capped at 1.
    pub fn utilization(&self, window: SimDuration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        (self.total_busy().as_nanos() as f64 / window.as_nanos() as f64).min(1.0)
    }

    /// Fraction of busy time spent in `cat` (0 if idle).
    pub fn share(&self, cat: CpuCategory) -> f64 {
        let total = self.total_busy().as_nanos();
        if total == 0 {
            return 0.0;
        }
        self.busy_in(cat).as_nanos() as f64 / total as f64
    }

    /// Merge another account into this one.
    pub fn merge(&mut self, other: &CpuAccount) {
        for (a, b) in self.busy.iter_mut().zip(other.busy.iter()) {
            *a += *b;
        }
    }

    /// Clear all counters.
    pub fn reset(&mut self) {
        self.busy = Default::default();
    }
}

/// A single simulated core: work items execute serially.
///
/// `begin_work(now, d)` returns the interval `[start, end)` during which the
/// work runs: it starts at `max(now, prev_end)` and occupies the core for
/// `d`. This models a busy executor thread whose next tuple must wait until
/// the previous one finishes — the serial server of the M/D/1 analysis.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoreClock {
    free_at: SimTime,
}

impl CoreClock {
    /// A core that is free immediately.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time at which the core becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// True if the core is idle at `now`.
    pub fn is_idle(&self, now: SimTime) -> bool {
        self.free_at <= now
    }

    /// Occupy the core for `d` starting no earlier than `now`.
    /// Returns `(start, end)` of the work interval.
    pub fn begin_work(&mut self, now: SimTime, d: SimDuration) -> (SimTime, SimTime) {
        let start = self.free_at.max(now);
        let end = start + d;
        self.free_at = end;
        (start, end)
    }

    /// Forget queued work (e.g. when a component restarts).
    pub fn reset(&mut self, now: SimTime) {
        self.free_at = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_total() {
        let mut acc = CpuAccount::new();
        acc.charge(CpuCategory::Serialization, SimDuration::from_micros(10));
        acc.charge(CpuCategory::PacketProcessing, SimDuration::from_micros(30));
        acc.charge(CpuCategory::Serialization, SimDuration::from_micros(5));
        assert_eq!(
            acc.busy_in(CpuCategory::Serialization),
            SimDuration::from_micros(15)
        );
        assert_eq!(acc.total_busy(), SimDuration::from_micros(45));
    }

    #[test]
    fn utilization_caps_at_one() {
        let mut acc = CpuAccount::new();
        acc.charge(CpuCategory::AppLogic, SimDuration::from_secs(2));
        assert_eq!(acc.utilization(SimDuration::from_secs(1)), 1.0);
        assert!((acc.utilization(SimDuration::from_secs(4)) - 0.5).abs() < 1e-12);
        assert_eq!(acc.utilization(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn shares_sum_to_one_when_busy() {
        let mut acc = CpuAccount::new();
        acc.charge(CpuCategory::Serialization, SimDuration::from_micros(25));
        acc.charge(CpuCategory::PacketProcessing, SimDuration::from_micros(75));
        assert!((acc.share(CpuCategory::Serialization) - 0.25).abs() < 1e-12);
        assert!((acc.share(CpuCategory::PacketProcessing) - 0.75).abs() < 1e-12);
        let total: f64 = CpuCategory::ALL.iter().map(|&c| acc.share(c)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn share_zero_when_idle() {
        let acc = CpuAccount::new();
        assert_eq!(acc.share(CpuCategory::AppLogic), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CpuAccount::new();
        let mut b = CpuAccount::new();
        a.charge(CpuCategory::Dispatch, SimDuration::from_micros(1));
        b.charge(CpuCategory::Dispatch, SimDuration::from_micros(2));
        b.charge(CpuCategory::Other, SimDuration::from_micros(3));
        a.merge(&b);
        assert_eq!(
            a.busy_in(CpuCategory::Dispatch),
            SimDuration::from_micros(3)
        );
        assert_eq!(a.busy_in(CpuCategory::Other), SimDuration::from_micros(3));
    }

    #[test]
    fn core_serializes_work() {
        let mut core = CoreClock::new();
        let (s1, e1) = core.begin_work(SimTime::from_micros(10), SimDuration::from_micros(5));
        assert_eq!(s1, SimTime::from_micros(10));
        assert_eq!(e1, SimTime::from_micros(15));
        // Submitted while busy: starts when the core frees up.
        let (s2, e2) = core.begin_work(SimTime::from_micros(12), SimDuration::from_micros(5));
        assert_eq!(s2, SimTime::from_micros(15));
        assert_eq!(e2, SimTime::from_micros(20));
        // Submitted after idle gap: starts immediately.
        let (s3, _) = core.begin_work(SimTime::from_micros(100), SimDuration::from_micros(1));
        assert_eq!(s3, SimTime::from_micros(100));
    }

    #[test]
    fn core_idle_checks() {
        let mut core = CoreClock::new();
        assert!(core.is_idle(SimTime::ZERO));
        core.begin_work(SimTime::ZERO, SimDuration::from_micros(10));
        assert!(!core.is_idle(SimTime::from_micros(5)));
        assert!(core.is_idle(SimTime::from_micros(10)));
        core.reset(SimTime::from_micros(3));
        assert!(core.is_idle(SimTime::from_micros(3)));
    }
}
