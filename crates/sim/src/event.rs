//! The future event list: a cancellable, deterministic priority queue of
//! timestamped events.
//!
//! Events with equal timestamps fire in insertion order (FIFO), which keeps
//! simulations deterministic regardless of heap internals. Cancellation is
//! implemented with tombstones so it is O(1); dead entries are skipped on pop.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Identifier of a scheduled event, usable to cancel it before it fires.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future event list.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Ids still in the heap and not cancelled.
    pending: HashSet<EventId>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedule `payload` to fire at `time`. Returns an id for cancellation.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let id = EventId(self.next_seq);
        self.heap.push(Entry {
            time,
            seq: self.next_seq,
            id,
            payload,
        });
        self.next_seq += 1;
        self.pending.insert(id);
        id
    }

    /// Cancel a previously scheduled event. Returns true if the event was
    /// still pending (and is now guaranteed not to fire); false if it has
    /// already fired, was already cancelled, or never existed.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.pending.remove(&id)
    }

    /// Time of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_dead();
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the next live event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_dead();
        self.heap.pop().map(|e| {
            self.pending.remove(&e.id);
            (e.time, e.payload)
        })
    }

    fn skip_dead(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.pending.contains(&top.id) {
                break;
            }
            self.heap.pop();
        }
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> EventQueue<&'static str> {
        EventQueue::new()
    }

    #[test]
    fn pops_in_time_order() {
        let mut eq = q();
        eq.schedule(SimTime::from_nanos(30), "c");
        eq.schedule(SimTime::from_nanos(10), "a");
        eq.schedule(SimTime::from_nanos(20), "b");
        assert_eq!(eq.pop().unwrap().1, "a");
        assert_eq!(eq.pop().unwrap().1, "b");
        assert_eq!(eq.pop().unwrap().1, "c");
        assert!(eq.pop().is_none());
    }

    #[test]
    fn equal_times_fire_fifo() {
        let mut eq = q();
        let t = SimTime::from_nanos(5);
        for name in ["first", "second", "third"] {
            eq.schedule(t, name);
        }
        assert_eq!(eq.pop().unwrap().1, "first");
        assert_eq!(eq.pop().unwrap().1, "second");
        assert_eq!(eq.pop().unwrap().1, "third");
    }

    #[test]
    fn cancellation_prevents_firing() {
        let mut eq = q();
        let id = eq.schedule(SimTime::from_nanos(10), "dead");
        eq.schedule(SimTime::from_nanos(20), "alive");
        assert!(eq.cancel(id));
        assert_eq!(eq.pop().unwrap().1, "alive");
        assert!(eq.pop().is_none());
    }

    #[test]
    fn double_cancel_is_noop() {
        let mut eq = q();
        let id = eq.schedule(SimTime::from_nanos(1), "x");
        assert!(eq.cancel(id));
        assert!(!eq.cancel(id));
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut eq = q();
        let id = eq.schedule(SimTime::from_nanos(1), "x");
        assert!(eq.pop().is_some());
        assert!(!eq.cancel(id));
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut eq = q();
        assert!(!eq.cancel(EventId(99)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut eq = q();
        let id = eq.schedule(SimTime::from_nanos(1), "dead");
        eq.schedule(SimTime::from_nanos(5), "alive");
        eq.cancel(id);
        assert_eq!(eq.peek_time(), Some(SimTime::from_nanos(5)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut eq = q();
        assert!(eq.is_empty());
        let a = eq.schedule(SimTime::from_nanos(1), "a");
        eq.schedule(SimTime::from_nanos(2), "b");
        assert_eq!(eq.len(), 2);
        eq.cancel(a);
        assert_eq!(eq.len(), 1);
        eq.pop();
        assert!(eq.is_empty());
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut eq = q();
        eq.schedule(SimTime::from_nanos(10), "t10");
        assert_eq!(eq.pop().unwrap().0, SimTime::from_nanos(10));
        eq.schedule(SimTime::from_nanos(5), "t5");
        assert_eq!(eq.pop().unwrap().0, SimTime::from_nanos(5));
    }
}
