//! The calibrated cost model.
//!
//! Every simulated CPU or wire cost in the reproduction comes from this one
//! struct, so calibration is auditable in one place. The defaults were tuned
//! so the *shapes* of the paper's evaluation hold on the simulated 30-node
//! cluster (see DESIGN.md §5); absolute tuples/s are not expected to match
//! the authors' Xeon/InfiniBand testbed.
//!
//! Calibration targets, in priority order (they cannot all hold at once
//! with a single-threaded upstream instance — see EXPERIMENTS.md for the
//! measured-vs-paper reconciliation):
//! 1. Storm and RDMA-Storm throughput collapse ∝ 1/parallelism while
//!    Whale's rises (Figs 2a, 13, 15); the ablation chain
//!    Storm < RDMA-Storm < WOC < WOC-RDMA < full Whale is monotone.
//! 2. Whale beats the baselines by well over an order of magnitude at
//!    parallelism 480 (paper: 56.6× vs Storm, 15× vs RDMA-Storm).
//! 3. One-sided read < write < two-sided send < TCP in per-message sender
//!    CPU (Figs 29–30), with the unoptimized two-sided path carrying
//!    per-message buffer-management cost that the ring memory region
//!    removes.
//! 4. 1 Gbps Ethernet vs 56 Gbps InfiniBand FDR link rates (§5.1).

use crate::time::SimDuration;

/// Which transport a message crosses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Transport {
    /// Kernel TCP/IP over 1 Gbps Ethernet.
    Tcp,
    /// Kernel-bypass RDMA over 56 Gbps InfiniBand FDR.
    Rdma,
}

/// RDMA verb used for a transfer (Figs 29–32 compare these).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verb {
    /// Two-sided SEND/RECV: both sides post work requests.
    SendRecv,
    /// One-sided WRITE: sender posts; receiver CPU uninvolved.
    Write,
    /// One-sided READ: receiver pulls; sender CPU uninvolved after setup.
    Read,
}

/// All calibrated constants. Construct with [`CostModel::default`] and
/// override fields for ablations.
#[derive(Clone, Debug)]
pub struct CostModel {
    // ---- serialization (upstream CPU) ----
    /// Fixed CPU cost to serialize one tuple for one destination
    /// (instance-oriented path; reflects Storm/Kryo per-call overhead).
    pub ser_fixed: SimDuration,
    /// Additional serialization CPU per payload byte.
    pub ser_per_byte_ns: u64,
    /// CPU cost to append one destination task id to a `BatchTuple` header
    /// (worker-oriented path serializes the data item once, then packs ids).
    pub id_pack: SimDuration,

    // ---- deserialization (downstream CPU) ----
    /// Fixed CPU cost to deserialize one received message.
    pub deser_fixed: SimDuration,
    /// Additional deserialization CPU per payload byte.
    pub deser_per_byte_ns: u64,

    // ---- kernel TCP path (per message, each side) ----
    /// Sender-side kernel/packet-processing CPU per TCP send (syscalls,
    /// copies, segmentation, protocol layers).
    pub tcp_send_cpu: SimDuration,
    /// Extra sender-side kernel CPU per byte (copy cost).
    pub tcp_send_cpu_per_byte_ns: u64,
    /// Receiver-side kernel CPU per TCP receive.
    pub tcp_recv_cpu: SimDuration,
    /// One-way software + propagation latency of the TCP path.
    pub tcp_latency: SimDuration,

    // ---- RDMA path ----
    /// CPU to post a two-sided SEND work request (unoptimized path:
    /// includes per-message registered-buffer management).
    pub rdma_post_send: SimDuration,
    /// CPU to post a one-sided WRITE work request.
    pub rdma_post_write: SimDuration,
    /// CPU to post a one-sided READ work request (receiver side).
    pub rdma_post_read: SimDuration,
    /// Sender CPU to publish a message into the ring memory region for
    /// remote READ (the optimized DiffVerbs data path).
    pub ring_publish: SimDuration,
    /// Receiver CPU per two-sided completion (polling the CQ + recv WR).
    pub rdma_recv_cpu: SimDuration,
    /// One-way hardware latency of the RDMA path.
    pub rdma_latency: SimDuration,

    // ---- links ----
    /// Ethernet NIC line rate, bits per second (1 Gbps).
    pub eth_bandwidth_bps: u64,
    /// InfiniBand NIC line rate, bits per second (56 Gbps FDR).
    pub ib_bandwidth_bps: u64,
    /// Extra one-way latency per inter-rack hop (top-of-rack switch).
    pub inter_rack_hop: SimDuration,

    // ---- local work ----
    /// Worker dispatcher CPU to route one tuple to a hosted instance.
    pub dispatch: SimDuration,
    /// Downstream operator logic CPU per tuple (join probe / aggregate).
    pub app_logic: SimDuration,
    /// Ring-memory-region bookkeeping per message (head/tail updates).
    pub ring_mr_op: SimDuration,
    /// Memory-region registration cost (paid only without ring reuse).
    pub mr_register: SimDuration,

    // ---- queues ----
    /// Transfer queue capacity `Q` of an instance.
    pub transfer_queue_capacity: usize,
    /// Executor incoming-queue capacity.
    pub incoming_queue_capacity: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            // serialize(150 B) ≈ 12 µs per destination (Kryo-style cost).
            ser_fixed: SimDuration::from_nanos(5_000),
            ser_per_byte_ns: 47,
            id_pack: SimDuration::from_nanos(50),

            deser_fixed: SimDuration::from_nanos(15_000),
            deser_per_byte_ns: 67,

            // Kernel TCP path: syscalls, copies, segmentation.
            tcp_send_cpu: SimDuration::from_nanos(60_000),
            tcp_send_cpu_per_byte_ns: 40,
            tcp_recv_cpu: SimDuration::from_nanos(25_000),
            tcp_latency: SimDuration::from_micros(80),

            // Kernel-bypass ordering (Figs 29/30): ring-published READ
            // beats WRITE beats two-sided SEND beats TCP. The two-sided
            // path pays per-message recv-buffer management that the ring
            // memory region eliminates.
            rdma_post_send: SimDuration::from_nanos(15_000),
            rdma_post_write: SimDuration::from_nanos(10_000),
            rdma_post_read: SimDuration::from_nanos(6_000),
            ring_publish: SimDuration::from_nanos(8_000),
            rdma_recv_cpu: SimDuration::from_nanos(5_000),
            rdma_latency: SimDuration::from_micros(2),

            eth_bandwidth_bps: 1_000_000_000,
            ib_bandwidth_bps: 56_000_000_000,
            inter_rack_hop: SimDuration::from_micros(1),

            dispatch: SimDuration::from_nanos(2_000),
            app_logic: SimDuration::from_nanos(15_000),
            ring_mr_op: SimDuration::from_nanos(400),
            mr_register: SimDuration::from_micros(50),

            transfer_queue_capacity: 2_048,
            incoming_queue_capacity: 65_536,
        }
    }
}

impl CostModel {
    /// CPU time to serialize a tuple of `bytes` payload for one destination
    /// (instance-oriented path).
    pub fn serialize(&self, bytes: usize) -> SimDuration {
        self.ser_fixed + SimDuration::from_nanos(self.ser_per_byte_ns * bytes as u64)
    }

    /// CPU time to build a worker-oriented `BatchTuple`: one data-item
    /// serialization plus packing `n_ids` destination ids.
    pub fn serialize_batch(&self, bytes: usize, n_ids: usize) -> SimDuration {
        self.serialize(bytes) + self.id_pack * n_ids as u64
    }

    /// CPU time to deserialize a message of `bytes` payload.
    pub fn deserialize(&self, bytes: usize) -> SimDuration {
        self.deser_fixed + SimDuration::from_nanos(self.deser_per_byte_ns * bytes as u64)
    }

    /// Sender-side CPU for one send of `bytes` on `transport` using `verb`
    /// (verb is ignored on TCP).
    pub fn send_cpu(&self, transport: Transport, verb: Verb, bytes: usize) -> SimDuration {
        match transport {
            Transport::Tcp => {
                self.tcp_send_cpu
                    + SimDuration::from_nanos(self.tcp_send_cpu_per_byte_ns * bytes as u64)
            }
            Transport::Rdma => match verb {
                Verb::SendRecv => self.rdma_post_send,
                Verb::Write => self.rdma_post_write,
                // With READ, the *receiver* pulls; the sender publishes
                // into the ring region and rings the doorbell.
                Verb::Read => self.ring_publish,
            },
        }
    }

    /// Receiver-side CPU for one receive on `transport` using `verb`.
    pub fn recv_cpu(&self, transport: Transport, verb: Verb) -> SimDuration {
        match transport {
            Transport::Tcp => self.tcp_recv_cpu,
            Transport::Rdma => match verb {
                Verb::SendRecv => self.rdma_recv_cpu,
                Verb::Write => SimDuration::from_nanos(1_000), // poll completion flag
                Verb::Read => self.rdma_post_read,
            },
        }
    }

    /// Wire transmission time of `bytes` on `transport` (serialization
    /// delay at the NIC line rate).
    pub fn wire_time(&self, transport: Transport, bytes: usize) -> SimDuration {
        let bps = match transport {
            Transport::Tcp => self.eth_bandwidth_bps,
            Transport::Rdma => self.ib_bandwidth_bps,
        };
        // bits / (bits per ns) = bytes*8 * 1e9 / bps nanoseconds.
        SimDuration::from_nanos((bytes as u64 * 8).saturating_mul(1_000_000_000) / bps)
    }

    /// One-way network latency between two machines `rack_hops` racks apart
    /// (0 = same rack).
    pub fn net_latency(&self, transport: Transport, rack_hops: u32) -> SimDuration {
        let base = match transport {
            Transport::Tcp => self.tcp_latency,
            Transport::Rdma => self.rdma_latency,
        };
        base + self.inter_rack_hop * (rack_hops as u64)
    }

    /// Per-hop tuple processing time `t_e` of the paper's multicast model:
    /// the CPU a relay spends to forward one (already serialized) tuple to
    /// one cascading instance, plus ring bookkeeping.
    pub fn t_e(&self, verb: Verb) -> SimDuration {
        self.send_cpu(Transport::Rdma, verb, 0) + self.ring_mr_op
    }
}

/// M/D/1 queue formulas from §3.2.1 of the paper.
///
/// Note on Eq. (3): the published inequality
/// `d0 <= 2Q / (λ·t_e·(Q+1-sqrt(Q²+1)))` contains a sign typo — with the
/// minus sign it simplifies to `(Q+1+sqrt(Q²+1))/(λ·t_e)`, which exceeds the
/// M/D/1 stability bound `1/(λ·t_e)` and contradicts the paper's own Eqs.
/// (4)–(5). Using the identity `(Q+1-sqrt(Q²+1))·(Q+1+sqrt(Q²+1)) = 2Q`,
/// the consistent bound is `d0 <= (Q+1-sqrt(Q²+1))/(λ·t_e)`, equivalently
/// `2Q/(λ·t_e·(Q+1+sqrt(Q²+1)))`, which is what we implement. It agrees
/// with Eq. (5): `M = (Q+1-sqrt(Q²+1))/(d0·t_e)`.
pub mod mdone {
    /// Service rate `µ = 1/(d0 · t_e)` (Eq. 1). `t_e` in seconds.
    pub fn service_rate(d0: u32, t_e_secs: f64) -> f64 {
        assert!(d0 > 0 && t_e_secs > 0.0);
        1.0 / (d0 as f64 * t_e_secs)
    }

    /// Average M/D/1 queue length `E(L)` (Eq. 2). Returns `f64::INFINITY`
    /// when `λ >= µ` (unstable queue).
    pub fn avg_queue_len(lambda: f64, mu: f64) -> f64 {
        assert!(lambda >= 0.0 && mu > 0.0);
        if lambda >= mu {
            return f64::INFINITY;
        }
        lambda * lambda / (2.0 * mu * (mu - lambda)) + lambda / mu
    }

    /// The queue-capacity factor `Q + 1 - sqrt(Q² + 1)` ∈ (0, 1].
    pub fn capacity_factor(q: usize) -> f64 {
        let qf = q as f64;
        // Numerically stable form: 2Q / (Q + 1 + sqrt(Q² + 1)).
        2.0 * qf / (qf + 1.0 + (qf * qf + 1.0).sqrt())
    }

    /// Maximum out-degree `d*` such that `E(L) <= Q` (corrected Eq. 3).
    /// Returns at least 1 (the tree degenerates to a chain but the source
    /// still needs one cascading instance).
    ///
    /// ```
    /// use whale_sim::cost::mdone::d_star;
    /// // Faster streams force smaller out-degrees (Theorem 1).
    /// assert!(d_star(10_000.0, 8e-6, 2_048) > d_star(80_000.0, 8e-6, 2_048));
    /// assert_eq!(d_star(80_000.0, 8e-6, 2_048), 1);
    /// ```
    pub fn d_star(lambda: f64, t_e_secs: f64, q: usize) -> u32 {
        assert!(t_e_secs > 0.0 && q > 0);
        if lambda <= 0.0 {
            return u32::MAX; // no load: any out-degree is affordable
        }
        let bound = capacity_factor(q) / (lambda * t_e_secs);
        bound.floor().max(1.0).min(u32::MAX as f64) as u32
    }

    /// Maximum affordable input rate `M` for out-degree `d0` (Eq. 5).
    pub fn max_affordable_rate(d0: u32, t_e_secs: f64, q: usize) -> f64 {
        assert!(d0 > 0 && t_e_secs > 0.0 && q > 0);
        capacity_factor(q) / (d0 as f64 * t_e_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_serialization_scale() {
        let m = CostModel::default();
        // ~150 B tuple → ≈12 µs per destination (see module docs on the
        // calibration priorities).
        let t = m.serialize(150);
        let us = t.as_nanos() as f64 / 1e3;
        assert!((us - 12.0).abs() < 2.0, "per-destination ser = {us}us");
    }

    #[test]
    fn batch_serialization_amortizes() {
        let m = CostModel::default();
        let instance_oriented = m.serialize(150) * 480;
        let worker_oriented = m.serialize_batch(150, 480);
        // Worker-oriented must be orders of magnitude cheaper at 480 dests.
        assert!(instance_oriented.as_nanos() > 100 * worker_oriented.as_nanos());
    }

    #[test]
    fn send_cpu_ordering_matches_fig_29_30() {
        let m = CostModel::default();
        let tcp = m.send_cpu(Transport::Tcp, Verb::SendRecv, 150);
        let two_sided = m.send_cpu(Transport::Rdma, Verb::SendRecv, 150);
        let write = m.send_cpu(Transport::Rdma, Verb::Write, 150);
        let read = m.send_cpu(Transport::Rdma, Verb::Read, 150);
        assert!(tcp > two_sided, "TCP costs more CPU than any RDMA verb");
        assert!(two_sided > write, "one-sided write beats two-sided");
        assert!(write > read, "read offloads sender entirely");
    }

    #[test]
    fn wire_time_scales_with_bandwidth() {
        let m = CostModel::default();
        let eth = m.wire_time(Transport::Tcp, 1_000_000);
        let ib = m.wire_time(Transport::Rdma, 1_000_000);
        // 56 Gbps is 56x faster than 1 Gbps.
        let ratio = eth.as_nanos() as f64 / ib.as_nanos() as f64;
        assert!((ratio - 56.0).abs() < 1.0, "ratio={ratio}");
        // 1 MB over 1 Gbps ≈ 8 ms.
        assert!((eth.as_millis() as i64 - 8).abs() <= 1);
    }

    #[test]
    fn latency_includes_rack_hops() {
        let m = CostModel::default();
        let same = m.net_latency(Transport::Rdma, 0);
        let far = m.net_latency(Transport::Rdma, 3);
        assert_eq!(far - same, m.inter_rack_hop * 3);
        assert!(m.net_latency(Transport::Tcp, 0) > m.net_latency(Transport::Rdma, 0));
    }

    #[test]
    fn t_e_is_microseconds_scale() {
        let m = CostModel::default();
        let te = m.t_e(Verb::Read);
        assert!(
            te.as_nanos() < 10_000,
            "relay hop must be µs-scale, got {te}"
        );
        assert!(te.as_nanos() > 0);
    }

    mod mdone_tests {
        use super::super::mdone::*;

        #[test]
        fn service_rate_eq1() {
            // d0=4, t_e=5µs → µ = 50k/s.
            let mu = service_rate(4, 5e-6);
            assert!((mu - 50_000.0).abs() < 1e-6);
        }

        #[test]
        fn queue_len_grows_toward_instability() {
            let mu = 10_000.0;
            let l1 = avg_queue_len(5_000.0, mu);
            let l2 = avg_queue_len(9_000.0, mu);
            let l3 = avg_queue_len(9_900.0, mu);
            assert!(l1 < l2 && l2 < l3);
            assert_eq!(avg_queue_len(10_000.0, mu), f64::INFINITY);
            assert_eq!(avg_queue_len(20_000.0, mu), f64::INFINITY);
        }

        #[test]
        fn capacity_factor_bounds() {
            // Q=1: 2 - sqrt(2) ≈ 0.586.
            assert!((capacity_factor(1) - (2.0 - 2f64.sqrt())).abs() < 1e-12);
            // Large Q → factor → 1 from below.
            let f = capacity_factor(1_000_000);
            assert!(f < 1.0 && f > 0.999_99);
            // Monotone in Q.
            assert!(capacity_factor(10) < capacity_factor(100));
        }

        #[test]
        fn d_star_inverse_in_lambda() {
            let te = 5e-6;
            let q = 2_048;
            let d_slow = d_star(10_000.0, te, q);
            let d_fast = d_star(100_000.0, te, q);
            assert!(d_slow > d_fast, "higher rate must force smaller out-degree");
            // λ=100k/s, t_e=5µs: 1/(λ·t_e) = 2; capacity factor is just
            // below 1, so the bound is just below 2 and d* floors to 1.
            assert_eq!(d_fast, 1);
            // λ=10k/s: bound ≈ 20 → d* = 19 or 20 depending on the factor.
            assert!((19..=20).contains(&d_slow), "d_slow={d_slow}");
        }

        #[test]
        fn d_star_at_least_one() {
            assert_eq!(d_star(1e9, 5e-6, 16), 1);
        }

        #[test]
        fn d_star_unbounded_when_idle() {
            assert_eq!(d_star(0.0, 5e-6, 16), u32::MAX);
        }

        #[test]
        fn theorem1_m_inversely_proportional_to_d0() {
            let te = 5e-6;
            let q = 1_024;
            let m1 = max_affordable_rate(1, te, q);
            let m2 = max_affordable_rate(2, te, q);
            let m4 = max_affordable_rate(4, te, q);
            assert!((m1 / m2 - 2.0).abs() < 1e-9);
            assert!((m1 / m4 - 4.0).abs() < 1e-9);
        }

        #[test]
        fn d_star_consistent_with_max_rate() {
            // If d* affords λ, then M(d*) >= λ and M(d*+1) < λ.
            let (lambda, te, q) = (40_000.0, 5e-6, 2_048);
            let d = d_star(lambda, te, q);
            assert!(max_affordable_rate(d, te, q) >= lambda);
            assert!(max_affordable_rate(d + 1, te, q) < lambda);
        }

        #[test]
        fn queue_stays_bounded_at_d_star() {
            // At d = d*, E(L) <= Q must hold.
            let (lambda, te, q) = (25_000.0, 5e-6, 512);
            let d = d_star(lambda, te, q);
            let mu = service_rate(d, te);
            let el = avg_queue_len(lambda, mu);
            assert!(el <= q as f64, "E(L)={el} exceeds Q={q}");
        }
    }
}
