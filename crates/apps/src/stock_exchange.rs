//! The stock exchange application (§5.1).
//!
//! A source reads exchange records; a split operator filters out records
//! violating trading rules and divides the stream by side. Sell orders
//! are partitioned to the matching operator by **key grouping** on the
//! symbol; buy orders are **all-grouped** (broadcast) so any instance
//! holding the symbol's book can match them — the one-to-many pattern
//! under evaluation. The matching operator joins the two streams into
//! executed trades and an aggregation operator computes real-time trading
//! volume.

use std::collections::HashMap;
use whale_dsps::{
    Bolt, Emitter, Grouping, Operators, Schema, Spout, Topology, TopologyBuilder, Tuple, Value,
};
use whale_workloads::{NasdaqConfig, NasdaqGenerator, Side, StockRecord};

/// Schema of raw and split exchange records.
pub fn record_schema() -> Schema {
    whale_workloads::nasdaq::stock_schema()
}

/// Schema of executed trades: `(symbol, price, volume)`.
pub fn trade_schema() -> Schema {
    Schema::new(vec!["symbol", "price", "volume"])
}

/// Build the stock exchange topology:
/// `source → split_sell --Fields(symbol)--> matching`,
/// `source → split_buy --All--> matching`, `matching → aggregation`.
///
/// The split operator is realized as two filter bolts (one per side)
/// because an edge carries exactly one grouping; together they are the
/// paper's "split" stage.
pub fn topology(matching_parallelism: u32) -> Topology {
    let mut b = TopologyBuilder::new();
    b.spout("source", 1, record_schema())
        .bolt("split_sell", 2, record_schema())
        .bolt("split_buy", 2, record_schema())
        .bolt("matching", matching_parallelism, trade_schema())
        .bolt("aggregation", 1, trade_schema())
        .connect("source", "split_sell", Grouping::Shuffle)
        .connect("source", "split_buy", Grouping::Shuffle)
        .connect("split_sell", "matching", Grouping::Fields(0))
        .connect("split_buy", "matching", Grouping::All)
        .connect("matching", "aggregation", Grouping::Shuffle);
    b.build().expect("stock exchange topology is valid")
}

/// Spout reading exchange records from the generator.
pub struct ExchangeSpout {
    gen: NasdaqGenerator,
    remaining: u64,
    next_id: u64,
}

impl ExchangeSpout {
    /// Emit `count` records from the seeded generator.
    pub fn new(seed: u64, config: NasdaqConfig, count: u64) -> Self {
        ExchangeSpout {
            gen: NasdaqGenerator::new(seed, config),
            remaining: count,
            next_id: 1,
        }
    }
}

impl Spout for ExchangeSpout {
    fn next_tuple(&mut self) -> Option<Tuple> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let r = self.gen.next_record();
        let id = self.next_id;
        self.next_id += 1;
        Some(r.to_tuple(id))
    }
}

/// Filter bolt keeping only valid records of one side.
pub struct SplitBolt {
    side: Side,
    passed: u64,
    filtered: u64,
}

impl SplitBolt {
    /// Keep only `side` records that comply with trading rules.
    pub fn new(side: Side) -> Self {
        SplitBolt {
            side,
            passed: 0,
            filtered: 0,
        }
    }
}

impl Bolt for SplitBolt {
    fn execute(&mut self, input: &Tuple, out: &mut dyn Emitter) {
        let r = StockRecord::from_tuple(input).expect("well-formed record");
        if !r.valid || r.side != self.side {
            self.filtered += 1;
            return;
        }
        self.passed += 1;
        out.emit(input.clone());
    }
}

/// The matching bolt: keeps per-symbol books of resting sell orders and
/// matches broadcast buys against them, emitting executed trades.
///
/// Sells arrive key-grouped (each symbol's book lives on one instance);
/// buys arrive broadcast, and only the instance owning the symbol's book
/// produces trades for them.
#[derive(Default)]
pub struct MatchingBolt {
    books: HashMap<String, Vec<(f64, i64)>>,
    trades: u64,
}

impl MatchingBolt {
    /// New empty instance.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Bolt for MatchingBolt {
    fn execute(&mut self, input: &Tuple, out: &mut dyn Emitter) {
        let r = StockRecord::from_tuple(input).expect("well-formed record");
        match r.side {
            Side::Sell => {
                self.books
                    .entry(r.symbol)
                    .or_default()
                    .push((r.price, r.volume));
            }
            Side::Buy => {
                let Some(book) = self.books.get_mut(&r.symbol) else {
                    return; // this instance does not own the symbol's book
                };
                // Match against the cheapest resting sell the buy can pay.
                let mut remaining = r.volume;
                while remaining > 0 {
                    let Some((best_idx, _)) = book
                        .iter()
                        .enumerate()
                        .filter(|(_, &(p, _))| p <= r.price)
                        .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap())
                    else {
                        break;
                    };
                    let (price, avail) = book[best_idx];
                    let qty = remaining.min(avail);
                    remaining -= qty;
                    if qty == avail {
                        book.swap_remove(best_idx);
                    } else {
                        book[best_idx].1 -= qty;
                    }
                    self.trades += 1;
                    out.emit(Tuple::with_id(
                        input.id,
                        vec![
                            Value::str(r.symbol.as_str()),
                            Value::F64(price),
                            Value::I64(qty),
                        ],
                    ));
                }
            }
        }
    }
}

/// The aggregation bolt: real-time trading volume per symbol.
#[derive(Default)]
pub struct VolumeBolt {
    volume: HashMap<String, i64>,
    total: i64,
}

impl VolumeBolt {
    /// New empty instance.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Bolt for VolumeBolt {
    fn execute(&mut self, input: &Tuple, _out: &mut dyn Emitter) {
        let sym = input.get(0).and_then(Value::as_str).expect("symbol");
        let vol = input.get(2).and_then(Value::as_i64).expect("volume");
        *self.volume.entry(sym.to_string()).or_insert(0) += vol;
        self.total += vol;
    }

    fn finish(&mut self, out: &mut dyn Emitter) {
        let mut rows: Vec<_> = self.volume.iter().collect();
        rows.sort_by(|a, b| a.0.cmp(b.0));
        for (sym, &vol) in rows {
            out.emit(Tuple::new(vec![
                Value::str(sym.as_str()),
                Value::F64(0.0),
                Value::I64(vol),
            ]));
        }
    }
}

/// Operator factories for the live runtime.
pub fn operators(seed: u64, config: NasdaqConfig, records: u64) -> Operators {
    Operators::new()
        .spout("source", move |task_idx| {
            Box::new(ExchangeSpout::new(seed + task_idx as u64, config, records))
        })
        .bolt("split_sell", |_| Box::new(SplitBolt::new(Side::Sell)))
        .bolt("split_buy", |_| Box::new(SplitBolt::new(Side::Buy)))
        .bolt("matching", |_| Box::new(MatchingBolt::new()))
        .bolt("aggregation", |_| Box::new(VolumeBolt::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_dsps::VecEmitter;

    fn record(symbol: &str, side: Side, price: f64, volume: i64, valid: bool) -> Tuple {
        StockRecord {
            symbol: symbol.to_string(),
            side,
            price,
            volume,
            ts: 0,
            valid,
        }
        .to_tuple(1)
    }

    #[test]
    fn topology_shape() {
        let t = topology(32);
        assert_eq!(t.tasks_of("matching").len(), 32);
        let matching = t.component("matching").unwrap().id;
        let ups = t.upstream_edges(matching);
        assert_eq!(ups.len(), 2);
        assert!(ups.iter().any(|e| e.grouping == Grouping::All));
        assert!(ups.iter().any(|e| e.grouping == Grouping::Fields(0)));
    }

    #[test]
    fn split_filters_side_and_validity() {
        let mut sell = SplitBolt::new(Side::Sell);
        let mut out = VecEmitter::default();
        sell.execute(&record("A", Side::Sell, 10.0, 5, true), &mut out);
        sell.execute(&record("A", Side::Buy, 10.0, 5, true), &mut out);
        sell.execute(&record("A", Side::Sell, 10.0, 5, false), &mut out);
        assert_eq!(out.emitted.len(), 1);
    }

    #[test]
    fn matching_executes_trade_when_prices_cross() {
        let mut m = MatchingBolt::new();
        let mut out = VecEmitter::default();
        m.execute(&record("A", Side::Sell, 10.0, 100, true), &mut out);
        assert!(out.emitted.is_empty());
        m.execute(&record("A", Side::Buy, 10.5, 40, true), &mut out);
        assert_eq!(out.emitted.len(), 1);
        let trade = &out.emitted[0];
        assert_eq!(trade.get(0).unwrap().as_str(), Some("A"));
        assert_eq!(trade.get(1).unwrap().as_f64(), Some(10.0));
        assert_eq!(trade.get(2).unwrap().as_i64(), Some(40));
    }

    #[test]
    fn matching_rejects_price_below_ask() {
        let mut m = MatchingBolt::new();
        let mut out = VecEmitter::default();
        m.execute(&record("A", Side::Sell, 10.0, 100, true), &mut out);
        m.execute(&record("A", Side::Buy, 9.5, 40, true), &mut out);
        assert!(out.emitted.is_empty());
    }

    #[test]
    fn buy_sweeps_multiple_sells_cheapest_first() {
        let mut m = MatchingBolt::new();
        let mut out = VecEmitter::default();
        m.execute(&record("A", Side::Sell, 10.0, 30, true), &mut out);
        m.execute(&record("A", Side::Sell, 9.0, 30, true), &mut out);
        m.execute(&record("A", Side::Buy, 10.0, 50, true), &mut out);
        assert_eq!(out.emitted.len(), 2);
        // Cheapest (9.0) filled first, then 20 shares at 10.0.
        assert_eq!(out.emitted[0].get(1).unwrap().as_f64(), Some(9.0));
        assert_eq!(out.emitted[0].get(2).unwrap().as_i64(), Some(30));
        assert_eq!(out.emitted[1].get(2).unwrap().as_i64(), Some(20));
    }

    #[test]
    fn unknown_symbol_buy_is_ignored() {
        let mut m = MatchingBolt::new();
        let mut out = VecEmitter::default();
        m.execute(&record("GHOST", Side::Buy, 99.0, 10, true), &mut out);
        assert!(out.emitted.is_empty());
    }

    #[test]
    fn volume_aggregates_per_symbol() {
        let mut v = VolumeBolt::new();
        let mut out = VecEmitter::default();
        let trade =
            |s: &str, q: i64| Tuple::new(vec![Value::str(s), Value::F64(1.0), Value::I64(q)]);
        v.execute(&trade("A", 10), &mut out);
        v.execute(&trade("B", 5), &mut out);
        v.execute(&trade("A", 7), &mut out);
        v.finish(&mut out);
        assert_eq!(out.emitted.len(), 2);
        assert_eq!(out.emitted[0].get(2).unwrap().as_i64(), Some(17));
        assert_eq!(out.emitted[1].get(2).unwrap().as_i64(), Some(5));
    }

    #[test]
    fn end_to_end_live_run() {
        let t = topology(8);
        let ops = operators(21, NasdaqConfig::default(), 2_000);
        let report = whale_dsps::run_topology(
            t,
            ops,
            whale_dsps::LiveConfig {
                machines: 4,
                comm_mode: whale_dsps::CommMode::WorkerOriented,
                zero_copy: true,
                multicast_d_star: None,
                dedicated_senders: false,
                fabric: whale_dsps::FabricKind::PerSend,
                ..whale_dsps::LiveConfig::default()
            },
        );
        // Source emitted everything; splits each saw all 2000.
        assert_eq!(report.spout_emitted, 2_000);
        assert_eq!(report.executed[1] + report.executed[2], 4_000);
        // Matching: sells key-grouped once each; buys broadcast ×8.
        // With ~49% valid per side, expect roughly 980 + 980*8.
        let matched = report.executed[3];
        assert!(
            (7_000..10_500).contains(&matched),
            "matching executions = {matched}"
        );
        // Trades happened and were aggregated.
        assert!(report.executed[4] > 100, "trades = {}", report.executed[4]);
    }
}
