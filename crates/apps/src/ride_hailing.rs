//! The on-demand ride-hailing application (Fig 4).
//!
//! Two source streams feed a matching operator: driver locations are
//! partitioned by **key grouping** on `driver_id`, while passenger
//! requests are **all-grouped** (broadcast) to every matching instance —
//! the one-to-many partitioning the paper is about. Each matching
//! instance joins a request against its locally stored driver locations
//! and emits its best local candidate; an aggregation operator picks the
//! overall closest driver per order.

use std::collections::HashMap;
use whale_dsps::{
    Bolt, Emitter, Grouping, Operators, Schema, Spout, Topology, TopologyBuilder, Tuple, Value,
};
use whale_workloads::{DidiConfig, DidiGenerator};

/// Stream tag values distinguishing the two inputs of the matching bolt.
const TAG_LOCATION: i64 = 0;
const TAG_REQUEST: i64 = 1;

/// Unified input schema for the matching operator:
/// `(tag, key, lat, lng, ts)` where `key` is `driver_id` or `order_id`.
pub fn event_schema() -> Schema {
    Schema::new(vec!["tag", "key", "lat", "lng", "ts"])
}

/// Output of matching: `(order_id, driver_id, distance)`.
pub fn candidate_schema() -> Schema {
    Schema::new(vec!["order_id", "driver_id", "distance"])
}

/// Build the ride-hailing topology:
/// `locations --Fields(key)--> matching <--All-- requests`,
/// `matching --Fields(order)--> aggregation`.
pub fn topology(matching_parallelism: u32) -> Topology {
    let mut b = TopologyBuilder::new();
    b.spout("locations", 1, event_schema())
        .spout("requests", 1, event_schema())
        .bolt("matching", matching_parallelism, candidate_schema())
        .bolt("aggregation", 1, candidate_schema())
        .connect("locations", "matching", Grouping::Fields(1))
        .connect("requests", "matching", Grouping::All)
        .connect("matching", "aggregation", Grouping::Fields(0));
    b.build().expect("ride-hailing topology is valid")
}

/// Squared-degree distance between two points (monotone in true distance,
/// cheap, and all we need to rank candidates).
fn dist2(a_lat: f64, a_lng: f64, b_lat: f64, b_lng: f64) -> f64 {
    let dl = a_lat - b_lat;
    let dg = a_lng - b_lng;
    dl * dl + dg * dg
}

/// Spout emitting driver location events from the Didi generator.
pub struct LocationSpout {
    gen: DidiGenerator,
    remaining: u64,
    next_id: u64,
}

impl LocationSpout {
    /// Emit `count` locations from the seeded generator.
    pub fn new(seed: u64, config: DidiConfig, count: u64) -> Self {
        LocationSpout {
            gen: DidiGenerator::new(seed, config),
            remaining: count,
            next_id: 1,
        }
    }
}

impl Spout for LocationSpout {
    fn next_tuple(&mut self) -> Option<Tuple> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let l = self.gen.next_location();
        let id = self.next_id;
        self.next_id += 1;
        Some(Tuple::with_id(
            id,
            vec![
                Value::I64(TAG_LOCATION),
                Value::I64(l.driver_id as i64),
                Value::F64(l.lat),
                Value::F64(l.lng),
                Value::I64(l.ts),
            ],
        ))
    }
}

/// Spout emitting passenger requests from the Didi generator.
pub struct RequestSpout {
    gen: DidiGenerator,
    remaining: u64,
    next_id: u64,
}

impl RequestSpout {
    /// Emit `count` requests from the seeded generator.
    pub fn new(seed: u64, config: DidiConfig, count: u64) -> Self {
        RequestSpout {
            gen: DidiGenerator::new(seed, config),
            remaining: count,
            next_id: 1_000_000_000, // disjoint tuple-id space from locations
        }
    }
}

impl Spout for RequestSpout {
    fn next_tuple(&mut self) -> Option<Tuple> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let o = self.gen.next_order();
        let id = self.next_id;
        self.next_id += 1;
        Some(Tuple::with_id(
            id,
            vec![
                Value::I64(TAG_REQUEST),
                Value::I64(o.order_id as i64),
                Value::F64(o.lat),
                Value::F64(o.lng),
                Value::I64(o.ts),
            ],
        ))
    }
}

/// The matching bolt: stores driver locations, joins requests against
/// them, and emits the best local candidate per request.
#[derive(Default)]
pub struct MatchingBolt {
    drivers: HashMap<i64, (f64, f64)>,
    requests_handled: u64,
}

impl MatchingBolt {
    /// New empty instance.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Bolt for MatchingBolt {
    fn execute(&mut self, input: &Tuple, out: &mut dyn Emitter) {
        let tag = input.get(0).and_then(Value::as_i64).expect("tag field");
        let key = input.get(1).and_then(Value::as_i64).expect("key field");
        let lat = input.get(2).and_then(Value::as_f64).expect("lat field");
        let lng = input.get(3).and_then(Value::as_f64).expect("lng field");
        match tag {
            TAG_LOCATION => {
                self.drivers.insert(key, (lat, lng));
            }
            TAG_REQUEST => {
                self.requests_handled += 1;
                // Best locally-known driver for this request.
                let best = self
                    .drivers
                    .iter()
                    .map(|(&d, &(dlat, dlng))| (d, dist2(lat, lng, dlat, dlng)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
                if let Some((driver, d2)) = best {
                    out.emit(Tuple::with_id(
                        input.id,
                        vec![Value::I64(key), Value::I64(driver), Value::F64(d2)],
                    ));
                }
            }
            other => panic!("unknown event tag {other}"),
        }
    }
}

/// The aggregation bolt: keeps the closest candidate per order and emits
/// final assignments on stream end.
#[derive(Default)]
pub struct AggregationBolt {
    best: HashMap<i64, (i64, f64)>,
}

impl AggregationBolt {
    /// New empty instance.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Bolt for AggregationBolt {
    fn execute(&mut self, input: &Tuple, _out: &mut dyn Emitter) {
        let order = input.get(0).and_then(Value::as_i64).expect("order field");
        let driver = input.get(1).and_then(Value::as_i64).expect("driver field");
        let d2 = input
            .get(2)
            .and_then(Value::as_f64)
            .expect("distance field");
        match self.best.get(&order) {
            Some(&(_, best_d2)) if best_d2 <= d2 => {}
            _ => {
                self.best.insert(order, (driver, d2));
            }
        }
    }

    fn finish(&mut self, out: &mut dyn Emitter) {
        let mut orders: Vec<_> = self.best.iter().collect();
        orders.sort_by_key(|(&o, _)| o);
        for (&order, &(driver, d2)) in orders {
            out.emit(Tuple::new(vec![
                Value::I64(order),
                Value::I64(driver),
                Value::F64(d2),
            ]));
        }
    }
}

/// Operator factories for the live runtime.
///
/// `locations`/`requests` control stream lengths; generators are seeded so
/// runs are reproducible.
pub fn operators(seed: u64, config: DidiConfig, locations: u64, requests: u64) -> Operators {
    Operators::new()
        .spout("locations", move |task_idx| {
            Box::new(LocationSpout::new(
                seed + task_idx as u64,
                config,
                locations,
            ))
        })
        .spout("requests", move |task_idx| {
            Box::new(RequestSpout::new(
                seed + 5_000 + task_idx as u64,
                config,
                requests,
            ))
        })
        .bolt("matching", |_| Box::new(MatchingBolt::new()))
        .bolt("aggregation", |_| Box::new(AggregationBolt::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_dsps::VecEmitter;

    fn loc(driver: i64, lat: f64, lng: f64) -> Tuple {
        Tuple::new(vec![
            Value::I64(TAG_LOCATION),
            Value::I64(driver),
            Value::F64(lat),
            Value::F64(lng),
            Value::I64(0),
        ])
    }

    fn req(order: i64, lat: f64, lng: f64) -> Tuple {
        Tuple::with_id(
            order as u64,
            vec![
                Value::I64(TAG_REQUEST),
                Value::I64(order),
                Value::F64(lat),
                Value::F64(lng),
                Value::I64(0),
            ],
        )
    }

    #[test]
    fn topology_shape() {
        let t = topology(16);
        assert_eq!(t.tasks_of("matching").len(), 16);
        let matching = t.component("matching").unwrap().id;
        let ups = t.upstream_edges(matching);
        assert_eq!(ups.len(), 2);
        assert!(ups.iter().any(|e| e.grouping == Grouping::All));
        assert!(ups.iter().any(|e| e.grouping == Grouping::Fields(1)));
    }

    #[test]
    fn matching_joins_request_to_nearest_driver() {
        let mut m = MatchingBolt::new();
        let mut out = VecEmitter::default();
        m.execute(&loc(1, 39.9, 116.3), &mut out);
        m.execute(&loc(2, 40.1, 116.7), &mut out);
        assert!(out.emitted.is_empty(), "locations emit nothing");
        m.execute(&req(500, 39.91, 116.31), &mut out);
        assert_eq!(out.emitted.len(), 1);
        let cand = &out.emitted[0];
        assert_eq!(cand.get(0).unwrap().as_i64(), Some(500));
        assert_eq!(cand.get(1).unwrap().as_i64(), Some(1), "driver 1 is closer");
    }

    #[test]
    fn matching_with_no_drivers_emits_nothing() {
        let mut m = MatchingBolt::new();
        let mut out = VecEmitter::default();
        m.execute(&req(1, 39.9, 116.3), &mut out);
        assert!(out.emitted.is_empty());
    }

    #[test]
    fn location_updates_overwrite() {
        let mut m = MatchingBolt::new();
        let mut out = VecEmitter::default();
        m.execute(&loc(1, 39.6, 116.0), &mut out);
        m.execute(&loc(1, 40.2, 116.8), &mut out); // driver moved far away
        m.execute(&loc(2, 39.9, 116.3), &mut out);
        m.execute(&req(7, 39.9, 116.3), &mut out);
        assert_eq!(out.emitted[0].get(1).unwrap().as_i64(), Some(2));
    }

    #[test]
    fn aggregation_keeps_minimum() {
        let mut a = AggregationBolt::new();
        let mut out = VecEmitter::default();
        let cand = |order: i64, driver: i64, d: f64| {
            Tuple::new(vec![Value::I64(order), Value::I64(driver), Value::F64(d)])
        };
        a.execute(&cand(1, 10, 0.5), &mut out);
        a.execute(&cand(1, 11, 0.2), &mut out);
        a.execute(&cand(1, 12, 0.9), &mut out);
        a.execute(&cand(2, 20, 0.1), &mut out);
        a.finish(&mut out);
        assert_eq!(out.emitted.len(), 2);
        assert_eq!(out.emitted[0].get(1).unwrap().as_i64(), Some(11));
        assert_eq!(out.emitted[1].get(1).unwrap().as_i64(), Some(20));
    }

    #[test]
    fn spouts_emit_requested_counts() {
        let mut s = LocationSpout::new(1, DidiConfig::default(), 5);
        let mut n = 0;
        while s.next_tuple().is_some() {
            n += 1;
        }
        assert_eq!(n, 5);
        let mut s = RequestSpout::new(1, DidiConfig::default(), 3);
        let first = s.next_tuple().unwrap();
        assert_eq!(first.get(0).unwrap().as_i64(), Some(TAG_REQUEST));
        assert_eq!(first.arity(), event_schema().arity());
    }

    #[test]
    fn end_to_end_live_run() {
        // Full pipeline on the live runtime: every request must reach all
        // matching instances and produce exactly one aggregated match.
        let t = topology(8);
        let ops = operators(11, DidiConfig::default(), 200, 50);
        let report = whale_dsps::run_topology(
            t,
            ops,
            whale_dsps::LiveConfig {
                machines: 4,
                comm_mode: whale_dsps::CommMode::WorkerOriented,
                zero_copy: true,
                multicast_d_star: None,
                dedicated_senders: false,
                fabric: whale_dsps::FabricKind::PerSend,
                ..whale_dsps::LiveConfig::default()
            },
        );
        // matching executes 200 locations (key-grouped once each) +
        // 50 requests × 8 instances.
        assert_eq!(report.executed[2], 200 + 50 * 8);
        // Each request produces one candidate per instance (drivers are
        // spread over instances, every instance holds some by then —
        // statistically certain with 200 locations over 8 instances).
        assert_eq!(report.executed[3], 50 * 8);
    }
}
