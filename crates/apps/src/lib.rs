//! # whale-apps — the paper's two evaluation applications
//!
//! Complete implementations of the topologies of §5.1: on-demand
//! ride-hailing (key-grouped driver locations joined with all-grouped
//! passenger requests, Fig 4) and stock exchange (split → key-grouped
//! sells / broadcast buys → matching → trading-volume aggregation), with
//! operator logic runnable on the live runtime and topology definitions
//! consumed by the cluster simulation.

#![warn(missing_docs)]

pub mod ride_hailing;
pub mod stock_exchange;
