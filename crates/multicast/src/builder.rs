//! Multicast structure construction: Algorithm 1 (non-blocking tree), the
//! RDMC-style binomial tree, and Storm's sequential star.

use crate::tree::{MulticastTree, Node};

/// The out-degree of the source in a binomial tree over `n` destinations:
/// `ceil(log2(n + 1))` (§3.2.2).
pub fn binomial_source_degree(n: u32) -> u32 {
    if n == 0 {
        return 0;
    }
    // ceil(log2(n+1)) = bits needed to represent n.
    32 - n.leading_zeros()
}

/// Algorithm 1: build the non-blocking multicast tree over `n`
/// destinations with maximum out-degree `d_star`.
///
/// ```
/// use whale_multicast::{build_nonblocking, Node};
///
/// // The paper's Fig 6: 7 destinations, d* = 2.
/// let tree = build_nonblocking(7, 2);
/// tree.validate(2).unwrap();
/// assert_eq!(tree.out_degree(Node::Source), 2);
/// println!("{}", tree.render_ascii());
/// ```
///
/// Layer by layer, every already-attached node with out-degree below
/// `d_star` adopts one new destination per round (one round = one relay
/// time unit), in node-attachment order. With `d_star >= ceil(log2(n+1))`
/// this degenerates to the binomial tree.
pub fn build_nonblocking(n: u32, d_star: u32) -> MulticastTree {
    assert!(d_star >= 1, "d* must be at least 1");
    let mut tree = MulticastTree::empty(n);
    // `list` holds nodes in attachment order; the source is first.
    let mut list: Vec<Node> = Vec::with_capacity(1 + n as usize);
    list.push(Node::Source);
    let mut next_dest: u32 = 0;
    while next_dest < n {
        let size = list.len();
        for i in 0..size {
            let t = list[i];
            if tree.out_degree(t) < d_star {
                tree.attach(t, next_dest);
                list.push(Node::Dest(next_dest));
                next_dest += 1;
                if next_dest == n {
                    return tree;
                }
            }
        }
    }
    tree
}

/// The RDMC-style static binomial multicast tree over `n` destinations.
///
/// Equivalent to the non-blocking tree with an unbounded degree cap: each
/// completed node adopts one new destination every round, so the reached
/// set doubles per time unit and the source ends with out-degree
/// `ceil(log2(n+1))`.
pub fn build_binomial(n: u32) -> MulticastTree {
    build_nonblocking(n, u32::MAX)
}

/// Storm's sequential multicast: the source connects to every destination
/// directly and sends to them one after another (a star with out-degree
/// `n`).
pub fn build_sequential(n: u32) -> MulticastTree {
    let mut tree = MulticastTree::empty(n);
    for i in 0..n {
        tree.attach(Node::Source, i);
    }
    tree
}

/// The structures compared in the paper's evaluation (Figs 17–22).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Structure {
    /// Storm's sequential star.
    Sequential,
    /// RDMC's static binomial tree.
    Binomial,
    /// Whale's degree-capped non-blocking tree.
    NonBlocking {
        /// Maximum out-degree `d*`.
        d_star: u32,
    },
}

impl Structure {
    /// Build the structure over `n` destinations.
    pub fn build(self, n: u32) -> MulticastTree {
        match self {
            Structure::Sequential => build_sequential(n),
            Structure::Binomial => build_binomial(n),
            Structure::NonBlocking { d_star } => build_nonblocking(n, d_star),
        }
    }

    /// The source's out-degree in this structure over `n` destinations:
    /// `n` (sequential), `ceil(log2(n+1))` (binomial), or
    /// `min(d*, ceil(log2(n+1)))` (non-blocking, §3.2.2).
    pub fn source_degree(self, n: u32) -> u32 {
        match self {
            Structure::Sequential => n,
            Structure::Binomial => binomial_source_degree(n),
            Structure::NonBlocking { d_star } => d_star.min(binomial_source_degree(n)),
        }
    }

    /// Display label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Structure::Sequential => "sequential",
            Structure::Binomial => "binomial",
            Structure::NonBlocking { .. } => "nonblocking",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Node;

    #[test]
    fn nonblocking_valid_over_many_shapes() {
        for n in [1u32, 2, 3, 7, 8, 15, 16, 100, 480] {
            for d in [1u32, 2, 3, 4, 8] {
                let t = build_nonblocking(n, d);
                t.validate(d).unwrap_or_else(|e| panic!("n={n} d={d}: {e}"));
                assert_eq!(t.reachable_count(), n);
            }
        }
    }

    #[test]
    fn fig6_shape_reproduced() {
        // |T| = 7, d* = 2 must give the paper's Fig 6 structure.
        let t = build_nonblocking(7, 2);
        t.validate(2).unwrap();
        assert_eq!(t.out_degree(Node::Source), 2);
        // S's children: T0 (layer 1), T1 (layer 2).
        assert_eq!(t.children(Node::Source), &[Node::Dest(0), Node::Dest(1)]);
        // T0's children: T2 (layer 2), T3 (layer 3).
        assert_eq!(t.children(Node::Dest(0)), &[Node::Dest(2), Node::Dest(3)]);
        // T1: T4 (layer 3), T6 (layer 4). T2: T5 (layer 3).
        assert_eq!(t.children(Node::Dest(1)), &[Node::Dest(4), Node::Dest(6)]);
        assert_eq!(t.children(Node::Dest(2)), &[Node::Dest(5)]);
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn binomial_source_degree_formula() {
        assert_eq!(binomial_source_degree(0), 0);
        assert_eq!(binomial_source_degree(1), 1);
        assert_eq!(binomial_source_degree(3), 2);
        assert_eq!(binomial_source_degree(7), 3);
        assert_eq!(binomial_source_degree(8), 4);
        assert_eq!(binomial_source_degree(15), 4);
        assert_eq!(binomial_source_degree(480), 9);
    }

    #[test]
    fn binomial_doubles_each_round() {
        // After t rounds a binomial multicast reaches 2^t - 1 destinations,
        // so with n = 2^k - 1 the height is k and source degree k.
        let t = build_binomial(15);
        t.validate(u32::MAX).unwrap();
        assert_eq!(t.out_degree(Node::Source), 4);
        assert_eq!(t.height(), 4);
    }

    #[test]
    fn binomial_equals_uncapped_nonblocking() {
        for n in [1u32, 5, 31, 100] {
            assert_eq!(build_binomial(n), build_nonblocking(n, u32::MAX));
        }
    }

    #[test]
    fn nonblocking_with_large_dstar_is_binomial() {
        let n = 100;
        let cap = binomial_source_degree(n);
        assert_eq!(build_nonblocking(n, cap), build_binomial(n));
    }

    #[test]
    fn sequential_is_a_star() {
        let t = build_sequential(10);
        t.validate(10).unwrap();
        assert_eq!(t.out_degree(Node::Source), 10);
        assert_eq!(t.height(), 1);
        for i in 0..10 {
            assert_eq!(t.parent(i), Some(Node::Source));
        }
    }

    #[test]
    fn dstar_one_is_a_chain() {
        let t = build_nonblocking(5, 1);
        t.validate(1).unwrap();
        assert_eq!(t.height(), 5);
        assert_eq!(t.children(Node::Source), &[Node::Dest(0)]);
        assert_eq!(t.children(Node::Dest(0)), &[Node::Dest(1)]);
    }

    #[test]
    fn source_degree_caps() {
        assert_eq!(Structure::Sequential.source_degree(480), 480);
        assert_eq!(Structure::Binomial.source_degree(480), 9);
        assert_eq!(Structure::NonBlocking { d_star: 3 }.source_degree(480), 3);
        assert_eq!(Structure::NonBlocking { d_star: 99 }.source_degree(480), 9);
        // And the built trees agree with the formula.
        for s in [
            Structure::Sequential,
            Structure::Binomial,
            Structure::NonBlocking { d_star: 3 },
        ] {
            let t = s.build(480);
            assert_eq!(t.out_degree(Node::Source), s.source_degree(480), "{s:?}");
        }
    }

    #[test]
    fn zero_destinations() {
        let t = build_nonblocking(0, 3);
        t.validate(3).unwrap();
        assert_eq!(t.reachable_count(), 0);
        let t = build_sequential(0);
        t.validate(0).unwrap();
    }

    #[test]
    fn structure_labels() {
        assert_eq!(Structure::Sequential.label(), "sequential");
        assert_eq!(Structure::Binomial.label(), "binomial");
        assert_eq!(Structure::NonBlocking { d_star: 3 }.label(), "nonblocking");
    }
}
