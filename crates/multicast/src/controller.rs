//! The queue-based self-adjusting mechanism (§3.3).
//!
//! The controller watches the transfer queue through [`MonitorReport`]s
//! and decides when to reorganize the multicast structure:
//!
//! - **Negative scale-down**: the queue grew by ΔL and
//!   `ΔL / (l_w − l) ≥ T_down` (or the waterline `l_w` is already
//!   breached) → decrease the source's out-degree to raise its service
//!   rate before the queue blocks.
//! - **Active scale-up**: the queue shrank by ΔL and `ΔL / l' ≥ T_up`, or
//!   the queue is empty in consecutive samples → increase the out-degree
//!   to cut multicast latency.
//!
//! The new target degree is `d*` from the corrected Eq. (3) (see
//! `whale_sim::cost::mdone`). Theorems 3–5 are provided as checkable
//! predicates and are exercised by tests and benches.

use crate::monitor::MonitorReport;
use whale_sim::cost::mdone;

/// Controller parameters.
#[derive(Clone, Copy, Debug)]
pub struct ControllerConfig {
    /// Transfer-queue capacity `Q`.
    pub queue_capacity: usize,
    /// Warning waterline `l_w` (absolute length, < Q).
    pub waterline: usize,
    /// Negative scale-down threshold `T_down`.
    pub t_down: f64,
    /// Active scale-up threshold `T_up`.
    pub t_up: f64,
    /// Hard ceiling on the out-degree (e.g. `ceil(log2(n+1))`).
    pub max_degree: u32,
    /// `true`: the paper's proactive rules (Δ-ratio thresholds).
    /// `false`: the *baseline dynamic switch* of Definition 3 — only act
    /// once the queue has actually reached the waterline. Theorem 3 says
    /// the proactive strategy's peak queue is never worse; the ablation
    /// bench measures it.
    pub proactive: bool,
}

impl ControllerConfig {
    /// Reasonable defaults for a queue of capacity `q` and `n`
    /// destinations: waterline at 60% of Q, thresholds 0.5 / 0.5.
    pub fn for_queue(q: usize, n: u32) -> Self {
        ControllerConfig {
            queue_capacity: q,
            waterline: (q * 6) / 10,
            t_down: 0.5,
            t_up: 0.5,
            max_degree: crate::builder::binomial_source_degree(n).max(1),
            proactive: true,
        }
    }

    /// The baseline dynamic switch (Definition 3) for ablation.
    pub fn baseline(q: usize, n: u32) -> Self {
        ControllerConfig {
            proactive: false,
            ..Self::for_queue(q, n)
        }
    }
}

/// What the controller decided for this interval.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Decision {
    /// Keep the current structure.
    Hold,
    /// Reorganize to a smaller out-degree (negative scale-down).
    ScaleDown {
        /// The new maximum out-degree.
        d_star: u32,
    },
    /// Reorganize to a larger out-degree (active scale-up).
    ScaleUp {
        /// The new maximum out-degree.
        d_star: u32,
    },
}

/// The self-adjusting controller.
#[derive(Clone, Debug)]
pub struct AdjustController {
    config: ControllerConfig,
    current_d: u32,
    /// Consecutive empty-queue samples (for the `l = l' = 0` rule).
    empty_streak: u32,
    decisions: u64,
    scale_downs: u64,
    scale_ups: u64,
}

impl AdjustController {
    /// Create with an initial out-degree.
    pub fn new(config: ControllerConfig, initial_d: u32) -> Self {
        assert!(initial_d >= 1);
        AdjustController {
            config,
            current_d: initial_d.min(config.max_degree),
            empty_streak: 0,
            decisions: 0,
            scale_downs: 0,
            scale_ups: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> ControllerConfig {
        self.config
    }

    /// The currently applied out-degree.
    pub fn current_degree(&self) -> u32 {
        self.current_d
    }

    /// Target `d*` for the report's λ and t_e, clamped to
    /// `[1, max_degree]`.
    pub fn target_degree(&self, report: &MonitorReport) -> u32 {
        if report.lambda <= 0.0 {
            return self.config.max_degree;
        }
        mdone::d_star(report.lambda, report.t_e_secs, self.config.queue_capacity)
            .clamp(1, self.config.max_degree)
    }

    /// Consume one report and decide. Applies the decision internally
    /// (callers then execute the corresponding switch).
    pub fn decide(&mut self, report: &MonitorReport) -> Decision {
        self.decisions += 1;
        let l_prev = report.prev_queue_len as f64;
        let l_cur = report.queue_len as f64;
        let waterline = self.config.waterline as f64;
        let target = self.target_degree(report);

        if report.queue_len == 0 && report.prev_queue_len == 0 {
            self.empty_streak += 1;
        } else {
            self.empty_streak = 0;
        }

        // A queue pinned at or above the waterline must scale down even
        // when it cannot grow further (it may already be full and
        // dropping tuples — ΔL = 0 but the system is overloaded). If the
        // M/D/1 target equals the current degree yet the queue sits above
        // the waterline, the model is underestimating the marginal load:
        // step down one further degree anyway (converging to 1, the
        // maximum service rate). Hot rack uplinks count as the same kind
        // of overload: the λ-only M/D/1 model can't see inter-rack
        // oversubscription, so congested uplinks force the step-down too
        // (a lower d* means fewer concurrent cross-rack edges).
        if (l_cur >= waterline || report.links.hot_uplinks > 0) && self.current_d > 1 {
            let new_d = target.min(self.current_d - 1).max(1);
            self.current_d = new_d;
            self.scale_downs += 1;
            return Decision::ScaleDown { d_star: new_d };
        }

        // Negative scale-down: queue grew toward the waterline.
        if l_cur > l_prev {
            let delta = l_cur - l_prev;
            let headroom = waterline - l_cur;
            // Proactive: react to the growth *rate* before the waterline.
            // Baseline (Definition 3): only react at the waterline itself
            // (that case returned above).
            let triggered = self.config.proactive
                && (headroom <= 0.0 || delta / headroom >= self.config.t_down);
            if triggered && target < self.current_d {
                self.current_d = target;
                self.scale_downs += 1;
                return Decision::ScaleDown { d_star: target };
            }
            return Decision::Hold;
        }

        // Active scale-up: queue drained fast, or stayed empty.
        let drained_fast =
            l_cur < l_prev && l_prev > 0.0 && (l_prev - l_cur) / l_prev >= self.config.t_up;
        let idle = self.empty_streak >= 1;
        if (drained_fast || idle) && target > self.current_d {
            self.current_d = target;
            self.scale_ups += 1;
            return Decision::ScaleUp { d_star: target };
        }
        Decision::Hold
    }

    /// Decisions made so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Scale-downs performed.
    pub fn scale_downs(&self) -> u64 {
        self.scale_downs
    }

    /// Scale-ups performed.
    pub fn scale_ups(&self) -> u64 {
        self.scale_ups
    }

    /// Export the applied degree and decision counters into `reg` under
    /// `prefix.*`.
    pub fn export_metrics(&self, reg: &mut whale_sim::MetricsRegistry, prefix: &str) {
        reg.set_gauge(&format!("{prefix}.degree"), self.current_d as f64);
        reg.set_counter(&format!("{prefix}.decisions"), self.decisions);
        reg.set_counter(&format!("{prefix}.scale_downs"), self.scale_downs);
        reg.set_counter(&format!("{prefix}.scale_ups"), self.scale_ups);
    }
}

/// Theorem 4: dynamic switching for negative scale-down loses no tuples iff
/// the switching delay satisfies `T_switch < (Q − q(t*)) / v_in(t*)`.
///
/// All arguments in consistent units (lengths in tuples, rate in tuples/s,
/// delay in seconds).
pub fn switch_without_loss(
    queue_capacity: usize,
    queue_len_at_trigger: usize,
    input_rate: f64,
    switch_delay_secs: f64,
) -> bool {
    assert!(input_rate >= 0.0 && switch_delay_secs >= 0.0);
    if input_rate == 0.0 {
        return true;
    }
    let headroom = queue_capacity.saturating_sub(queue_len_at_trigger) as f64;
    switch_delay_secs < headroom / input_rate
}

/// Theorem 5: active scale-up improves multicast performance iff the number
/// of tuples still to multicast exceeds `γ·γ'·T_switch / (γ − γ')`, where
/// γ' and γ are the multicast rates before/after switching.
pub fn scale_up_worthwhile(
    tuples_remaining: f64,
    rate_after: f64,
    rate_before: f64,
    switch_delay_secs: f64,
) -> bool {
    assert!(rate_after > 0.0 && rate_before > 0.0);
    if rate_after <= rate_before {
        return false;
    }
    tuples_remaining > rate_after * rate_before * switch_delay_secs / (rate_after - rate_before)
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_sim::SimTime;

    fn report(lambda: f64, prev: usize, cur: usize) -> MonitorReport {
        MonitorReport {
            at: SimTime::from_millis(100),
            lambda,
            t_e_secs: 5e-6,
            queue_len: cur,
            prev_queue_len: prev,
            links: Default::default(),
        }
    }

    fn controller(d0: u32) -> AdjustController {
        AdjustController::new(ControllerConfig::for_queue(2_048, 480), d0)
    }

    #[test]
    fn holds_when_stable() {
        let mut c = controller(4);
        // Mild growth far from the waterline: Δ=10, headroom big.
        let d = c.decide(&report(20_000.0, 100, 110));
        assert_eq!(d, Decision::Hold);
        assert_eq!(c.current_degree(), 4);
    }

    #[test]
    fn scales_down_on_rapid_growth() {
        let mut c = controller(9);
        // λ=100k/s with t_e=5µs: d* ≈ 1. Queue grows hard near waterline
        // (l_w = 1228): Δ=400, headroom=1228-1100=128 → ratio >> T_down.
        let d = c.decide(&report(100_000.0, 700, 1_100));
        assert_eq!(d, Decision::ScaleDown { d_star: 1 });
        assert_eq!(c.current_degree(), 1);
        assert_eq!(c.scale_downs(), 1);
    }

    #[test]
    fn scales_down_when_waterline_breached() {
        let mut c = controller(6);
        // Already past the waterline: any growth triggers.
        let d = c.decide(&report(60_000.0, 1_300, 1_320));
        match d {
            Decision::ScaleDown { d_star } => assert!(d_star < 6),
            other => panic!("expected scale-down, got {other:?}"),
        }
    }

    #[test]
    fn no_scale_down_if_target_not_smaller() {
        let mut c = controller(1);
        // Even with triggering growth, d* can't go below 1.
        let d = c.decide(&report(200_000.0, 1_000, 1_200));
        assert_eq!(d, Decision::Hold);
    }

    #[test]
    fn scales_up_on_fast_drain() {
        let mut c = controller(1);
        // λ=10k/s, t_e=5µs → d* ≈ 19, capped at max_degree=9.
        // Queue drained 80%: 500 → 100.
        let d = c.decide(&report(10_000.0, 500, 100));
        assert_eq!(d, Decision::ScaleUp { d_star: 9 });
        assert_eq!(c.current_degree(), 9);
    }

    #[test]
    fn scales_up_when_idle() {
        let mut c = controller(2);
        let d = c.decide(&report(5_000.0, 0, 0));
        match d {
            Decision::ScaleUp { d_star } => assert!(d_star > 2),
            other => panic!("expected scale-up, got {other:?}"),
        }
    }

    #[test]
    fn slow_drain_holds() {
        let mut c = controller(3);
        // Drained only 10% — below T_up = 0.5.
        let d = c.decide(&report(10_000.0, 1_000, 900));
        assert_eq!(d, Decision::Hold);
    }

    #[test]
    fn target_degree_clamped() {
        let c = controller(3);
        // Idle stream: unbounded d* clamps to max_degree.
        let r = report(0.0, 0, 0);
        assert_eq!(c.target_degree(&r), c.config().max_degree);
        // Overload clamps to 1.
        let r = report(1e9, 0, 0);
        assert_eq!(c.target_degree(&r), 1);
    }

    #[test]
    fn decision_counters() {
        let mut c = controller(5);
        c.decide(&report(100_000.0, 700, 1_100)); // down
        c.decide(&report(10_000.0, 500, 100)); // up
        c.decide(&report(20_000.0, 100, 105)); // hold
        assert_eq!(c.decisions(), 3);
        assert_eq!(c.scale_downs(), 1);
        assert_eq!(c.scale_ups(), 1);
    }

    #[test]
    fn baseline_waits_for_the_waterline() {
        let mut c = AdjustController::new(ControllerConfig::baseline(2_048, 480), 9);
        // Fast growth well below the waterline: baseline holds...
        assert_eq!(c.decide(&report(100_000.0, 200, 700)), Decision::Hold);
        // ...the proactive controller would have fired here.
        let mut p = controller(9);
        assert!(matches!(
            p.decide(&report(100_000.0, 200, 700)),
            Decision::ScaleDown { .. }
        ));
        // Baseline acts once the waterline (1228) is reached.
        assert!(matches!(
            c.decide(&report(100_000.0, 1_200, 1_250)),
            Decision::ScaleDown { .. }
        ));
    }

    #[test]
    fn hot_uplinks_force_a_scale_down() {
        use crate::monitor::LinkPressure;
        let mut c = controller(5);
        // Queue looks healthy but an uplink is congested: the λ-only
        // model would hold; link pressure steps the degree down.
        let mut r = report(20_000.0, 100, 100);
        r.links = LinkPressure {
            max_uplink_queue: 700,
            uplink_bytes: 1 << 20,
            hot_uplinks: 2,
        };
        match c.decide(&r) {
            Decision::ScaleDown { d_star } => assert!(d_star < 5),
            other => panic!("expected scale-down, got {other:?}"),
        }
        // Pressure gone, queue idle → free to scale back up.
        let d = c.decide(&report(5_000.0, 0, 0));
        assert!(matches!(d, Decision::ScaleUp { .. }));
    }

    #[test]
    fn pinned_full_queue_scales_down_without_growth() {
        let mut c = controller(5);
        // Queue saturated at capacity: no growth, but overloaded.
        let d = c.decide(&report(100_000.0, 2_048, 2_048));
        assert_eq!(d, Decision::ScaleDown { d_star: 1 });
    }

    #[test]
    fn theorem4_no_loss_condition() {
        // Q=1000, q(t*)=400, v_in=60k/s → headroom time = 10ms.
        assert!(switch_without_loss(1_000, 400, 60_000.0, 0.009));
        assert!(!switch_without_loss(1_000, 400, 60_000.0, 0.011));
        // Idle input never loses.
        assert!(switch_without_loss(10, 10, 0.0, 100.0));
    }

    #[test]
    fn theorem5_scale_up_worthwhile() {
        // γ'=10k/s → γ=20k/s with 10ms switch: X > 2e8*0.01/1e4 = 200.
        assert!(scale_up_worthwhile(300.0, 20_000.0, 10_000.0, 0.01));
        assert!(!scale_up_worthwhile(100.0, 20_000.0, 10_000.0, 0.01));
        // No rate gain → never worthwhile.
        assert!(!scale_up_worthwhile(1e9, 10_000.0, 10_000.0, 0.01));
    }

    #[test]
    fn theorem3_negative_scale_down_beats_baseline() {
        // Analytic check of Theorem 3: with linearly growing queue, the
        // proactive trigger fires at q(t*) <= l_w, so the peak queue
        // (trigger level + inflow during the switch delay) is no larger
        // than the baseline that waits until l_w is reached.
        let v_in = 50_000.0; // tuples/s
        let v_out = 20_000.0;
        let growth = v_in - v_out; // tuples/s
        let l_w = 1_200.0;
        let t_down = 0.5;
        let dt = 0.01; // monitoring interval seconds
        let switch_delay = 0.02;
        // Proactive trigger: first sample where Δ/(l_w - l) >= T_down
        // (or the waterline is already breached).
        let mut q = 0.0;
        let mut trigger_q = None;
        for _ in 0..1_000 {
            let q_next = q + growth * dt;
            let headroom = l_w - q_next;
            if headroom <= 0.0 || (q_next - q) / headroom >= t_down {
                trigger_q = Some(q_next);
                break;
            }
            q = q_next;
        }
        let trigger_q = trigger_q.expect("must trigger before waterline");
        assert!(trigger_q <= l_w);
        let peak_negative = trigger_q + v_in * switch_delay;
        let peak_baseline = l_w + v_in * switch_delay;
        assert!(peak_negative <= peak_baseline);
    }
}
