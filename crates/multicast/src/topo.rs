//! Topology-aware multicast tree construction (Gleam-style).
//!
//! Whale's Algorithm 1 derives the relay fan-out d* from λ alone and
//! places edges wherever the attachment order lands them; once racks are
//! in play and uplinks are oversubscribed, *where* an edge lands matters
//! as much as how many there are. [`TopoTreeBuilder`] keeps the
//! non-blocking layer-by-layer shape (and degenerates to exactly
//! [`build_nonblocking`]'s tree on one rack) while adding two placement
//! rules:
//!
//! 1. **subtrees stay intra-rack** — a node with spare degree always
//!    adopts an unattached destination from its own rack first;
//! 2. **one inter-rack edge per destination rack** — a rack is entered
//!    exactly once, through a Gleam-style *rack head*; every other
//!    member attaches beneath the head through rack-local edges. A node
//!    may carry a crossing once its own rack is exhausted or while it
//!    still has a slot to spare for it (one slot stays reserved for
//!    rack-local work, which keeps d* = 1 chains deadlock-free), and the
//!    (parent, rack) pair with the least combined uplink load wins, so
//!    crossings land on the coolest uplinks and heavily loaded racks are
//!    entered last.
//!
//! [`build_nonblocking`]: crate::build_nonblocking

use crate::tree::{MulticastTree, Node};
use whale_net::{ClusterSpec, MachineId};

/// Rack-aware non-blocking tree builder: Algorithm 1's layer-by-layer
/// growth constrained to rack-local subtrees with load-aware rack entry.
#[derive(Clone, Debug, PartialEq)]
pub struct TopoTreeBuilder {
    d_star: u32,
    source_rack: u32,
    node_racks: Vec<u32>,
    uplink_load: Vec<u64>,
}

impl TopoTreeBuilder {
    /// Builder over `node_racks.len()` destinations with out-degree cap
    /// `d_star`; `node_racks[i]` is destination `i`'s rack and
    /// `source_rack` the sender's. Uplink loads start at zero (no
    /// congestion feedback).
    pub fn new(d_star: u32, source_rack: u32, node_racks: Vec<u32>) -> Self {
        assert!(d_star >= 1, "d* must be at least 1");
        let racks = node_racks
            .iter()
            .copied()
            .chain([source_rack])
            .max()
            .unwrap_or(0)
            + 1;
        TopoTreeBuilder {
            d_star,
            source_rack,
            node_racks,
            uplink_load: vec![0; racks as usize],
        }
    }

    /// Builder over a [`ClusterSpec`] placement: destination `i` lives on
    /// `dest_machines[i]`, the source on `source`.
    pub fn from_cluster(
        d_star: u32,
        spec: &ClusterSpec,
        source: MachineId,
        dest_machines: &[MachineId],
    ) -> Self {
        let node_racks = dest_machines.iter().map(|&m| spec.rack_of(m).0).collect();
        let mut b = TopoTreeBuilder::new(d_star, spec.rack_of(source).0, node_racks);
        b.uplink_load.resize(spec.racks() as usize, 0);
        b
    }

    /// Feed a per-rack uplink load snapshot (e.g.
    /// [`LinkTracker::uplink_loads`]); gateway election then routes rack
    /// entries over the coolest uplinks. Entries beyond the rack count
    /// are ignored; missing entries count as idle.
    ///
    /// [`LinkTracker::uplink_loads`]: whale_net::LinkTracker::uplink_loads
    pub fn with_uplink_load(mut self, load: &[u64]) -> Self {
        for (slot, &l) in self.uplink_load.iter_mut().zip(load) {
            *slot = l;
        }
        self
    }

    fn rack_of(&self, node: Node) -> u32 {
        match node {
            Node::Source => self.source_rack,
            Node::Dest(i) => self.node_racks[i as usize],
        }
    }

    fn load(&self, rack: u32) -> u64 {
        self.uplink_load.get(rack as usize).copied().unwrap_or(0)
    }

    /// Build the tree. Runs in rounds mirroring Algorithm 1: in each
    /// round every attached node with spare degree adopts one unattached
    /// same-rack destination (lowest index first — on a single rack this
    /// reproduces [`build_nonblocking`] exactly), then gateway election
    /// opens still-unentered racks through nodes whose own rack is
    /// exhausted, cheapest uplink pair first.
    ///
    /// [`build_nonblocking`]: crate::build_nonblocking
    pub fn build(&self) -> MulticastTree {
        let n = self.node_racks.len() as u32;
        let mut tree = MulticastTree::empty(n);
        if n == 0 {
            return tree;
        }
        let racks = self.uplink_load.len().max(
            self.node_racks
                .iter()
                .copied()
                .chain([self.source_rack])
                .max()
                .unwrap_or(0) as usize
                + 1,
        );
        // Per-rack ascending queues of unattached destinations.
        let mut unattached: Vec<Vec<u32>> = vec![Vec::new(); racks];
        for (i, &r) in self.node_racks.iter().enumerate().rev() {
            unattached[r as usize].push(i as u32);
        }
        // Entered racks may only be extended by their own members.
        let mut entered = vec![false; racks];
        entered[self.source_rack as usize] = true;
        let mut list: Vec<Node> = Vec::with_capacity(1 + n as usize);
        list.push(Node::Source);
        let mut attached = 0u32;
        while attached < n {
            // Same-rack growth pass over the round's snapshot.
            let size = list.len();
            for i in 0..size {
                if attached == n {
                    return tree;
                }
                let u = list[i];
                if tree.out_degree(u) >= self.d_star {
                    continue;
                }
                let rack = self.rack_of(u) as usize;
                if let Some(v) = unattached[rack].pop() {
                    tree.attach(u, v);
                    list.push(Node::Dest(v));
                    attached += 1;
                }
            }
            // Gateway election: enter unentered racks, cheapest
            // (egress + ingress) uplink pair first; ties break toward the
            // earliest-attached parent, then the lowest rack id. A parent
            // with rack-local work pending must keep one slot reserved
            // for it — without the reservation a d* = 1 node could spend
            // its only slot on a crossing and strand its own rack.
            loop {
                let mut best: Option<(u64, usize, u32)> = None;
                for (pos, &u) in list.iter().enumerate() {
                    let deg = tree.out_degree(u);
                    if deg >= self.d_star {
                        continue;
                    }
                    let ur = self.rack_of(u);
                    if !unattached[ur as usize].is_empty() && deg + 2 > self.d_star {
                        continue; // last free slot is reserved for the rack
                    }
                    for r in 0..racks {
                        if entered[r] || unattached[r].is_empty() {
                            continue;
                        }
                        let key = (self.load(ur) + self.load(r as u32), pos, r as u32);
                        if best.is_none_or(|b| key < b) {
                            best = Some(key);
                        }
                    }
                }
                let Some((_, pos, r)) = best else { break };
                let head = unattached[r as usize].pop().expect("candidate rack");
                tree.attach(list[pos], head);
                list.push(Node::Dest(head));
                entered[r as usize] = true;
                attached += 1;
                if attached == n {
                    return tree;
                }
            }
        }
        tree
    }
}

/// Modeled cost of delivering one frame through a tree: the source and
/// every relay forward to their children sequentially (`t_e_us` per
/// child, the paper's per-destination serialization time), intra-rack
/// edges add `t_intra_us` (rack-local fabric, full bisection), and
/// inter-rack edges occupy the *sender's rack uplink* for `t_uplink_us`
/// each. The uplink is the shared, oversubscribed resource: concurrent
/// crossings out of the same rack serialize behind each other, which is
/// exactly the contention a topology-oblivious tree runs into.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TreeCost {
    /// Time until the *last* destination holds the frame (µs).
    pub completion_us: f64,
    /// Edges whose parent and child sit in different racks — each one
    /// pushes the full frame over a rack uplink.
    pub uplink_edges: u32,
    /// Deepest destination (relay hops from the source).
    pub max_depth: u32,
}

/// Price `tree` on the rack placement: `node_racks[i]` is destination
/// `i`'s rack, the source sits in `source_rack`. Crossings queue FIFO
/// (by the instant the sender finishes emitting the frame) on their
/// egress rack's uplink.
pub fn tree_cost(
    tree: &MulticastTree,
    source_rack: u32,
    node_racks: &[u32],
    t_e_us: f64,
    t_intra_us: f64,
    t_uplink_us: f64,
) -> TreeCost {
    assert_eq!(tree.n() as usize, node_racks.len());
    let rack_of = |node: Node| match node {
        Node::Source => source_rack,
        Node::Dest(i) => node_racks[i as usize],
    };
    let racks = node_racks
        .iter()
        .copied()
        .chain([source_rack])
        .max()
        .unwrap_or(0) as usize
        + 1;
    let mut uplink_free = vec![0f64; racks];
    // Edge (parent, k-th child) becomes *ready* once the parent holds the
    // frame and has emitted its k predecessors; crossings then wait for
    // the egress uplink. Serving ready edges in global FIFO order needs
    // arrival times resolved parent-before-child, so walk a worklist of
    // edges whose parent arrival is known, cheapest ready time first.
    let mut arrival = vec![f64::NAN; node_racks.len()];
    let at = |node: Node, arrival: &[f64]| match node {
        Node::Source => Some(0.0),
        Node::Dest(i) => {
            let t = arrival[i as usize];
            t.is_finite().then_some(t)
        }
    };
    let mut pending: Vec<(Node, usize, u32, u32)> = Vec::new(); // (parent, k, child, depth)
    let mut frontier = vec![(Node::Source, 0u32)];
    while let Some((u, depth)) = frontier.pop() {
        for (k, &child) in tree.children(u).iter().enumerate() {
            let Node::Dest(c) = child else { unreachable!() };
            pending.push((u, k, c, depth + 1));
            frontier.push((child, depth + 1));
        }
    }
    let mut completion = 0f64;
    let mut uplink_edges = 0u32;
    let mut max_depth = 0u32;
    while !pending.is_empty() {
        // The resolvable edge with the earliest ready time goes next.
        let mut pick: Option<(usize, f64)> = None;
        for (i, &(u, k, _, _)) in pending.iter().enumerate() {
            if let Some(t_u) = at(u, &arrival) {
                let ready = t_u + (k as f64 + 1.0) * t_e_us;
                if pick.is_none_or(|(_, best)| ready < best) {
                    pick = Some((i, ready));
                }
            }
        }
        let (i, ready) = pick.expect("tree edges resolve top-down");
        let (u, _, c, depth) = pending.swap_remove(i);
        let t_child = if rack_of(u) != rack_of(Node::Dest(c)) {
            let rack = rack_of(u) as usize;
            let start = ready.max(uplink_free[rack]);
            uplink_free[rack] = start + t_uplink_us;
            uplink_edges += 1;
            start + t_uplink_us
        } else {
            ready + t_intra_us
        };
        arrival[c as usize] = t_child;
        completion = completion.max(t_child);
        max_depth = max_depth.max(depth);
    }
    TreeCost {
        completion_us: completion,
        uplink_edges,
        max_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_nonblocking;

    /// Round-robin rack assignment over `n` nodes.
    fn rr(n: u32, racks: u32) -> Vec<u32> {
        (0..n).map(|i| i % racks).collect()
    }

    #[test]
    fn one_rack_reproduces_the_nonblocking_tree_exactly() {
        for n in [0u32, 1, 2, 7, 15, 23] {
            for d in [1u32, 2, 4, 8] {
                let topo = TopoTreeBuilder::new(d, 0, vec![0; n as usize]).build();
                assert_eq!(topo, build_nonblocking(n, d), "n={n} d={d}");
            }
        }
    }

    #[test]
    fn every_rack_entered_through_exactly_one_uplink_edge() {
        let racks = 5u32;
        let node_racks = rr(24, racks);
        let tree = TopoTreeBuilder::new(2, 0, node_racks.clone()).build();
        tree.validate(2).unwrap();
        assert_eq!(tree.reachable_count(), 24);
        let mut entries = vec![0u32; racks as usize];
        for i in 0..24u32 {
            let parent = tree.parent(i).unwrap();
            let pr = match parent {
                Node::Source => 0,
                Node::Dest(p) => node_racks[p as usize],
            };
            if pr != node_racks[i as usize] {
                entries[node_racks[i as usize] as usize] += 1;
            }
        }
        assert_eq!(entries[0], 0, "the source's rack is never entered");
        assert!(entries[1..].iter().all(|&e| e == 1), "{entries:?}");
    }

    #[test]
    fn skewed_placement_keeps_subtrees_intra_rack() {
        // 12 of 15 destinations share rack 0 with the source.
        let mut node_racks = vec![0u32; 12];
        node_racks.extend([1, 2, 2]);
        let tree = TopoTreeBuilder::new(4, 0, node_racks.clone()).build();
        tree.validate(4).unwrap();
        let cost = tree_cost(&tree, 0, &node_racks, 20.0, 5.0, 40.0);
        // Racks 1 and 2 each cost exactly one crossing.
        assert_eq!(cost.uplink_edges, 2);
    }

    #[test]
    fn loaded_uplinks_are_entered_last() {
        // Source alone in rack 0; racks 1..=3 hold one destination each.
        // Rack 2's uplink is hot, so it must be entered after 1 and 3.
        let node_racks = vec![1, 2, 3];
        let tree = TopoTreeBuilder::new(2, 0, node_racks)
            .with_uplink_load(&[0, 0, 1_000_000, 0])
            .build();
        // d*=2: the source adopts the two cool racks' heads; the hot
        // rack's head lands one level deeper.
        assert_eq!(tree.depth(Node::Dest(0)), Some(1)); // rack 1
        assert_eq!(tree.depth(Node::Dest(2)), Some(1)); // rack 3
        assert_eq!(tree.depth(Node::Dest(1)), Some(2)); // hot rack 2
    }

    #[test]
    fn gateway_prefers_parents_behind_cool_uplinks() {
        // Rack 0 (source + 1 dest, hot uplink), rack 1 (1 dest, cool
        // uplink), rack 2 unentered. Once racks 0 and 1 are exhausted,
        // the rack-1 node must carry the crossing into rack 2.
        let node_racks = vec![0, 1, 2];
        let tree = TopoTreeBuilder::new(1, 0, node_racks)
            .with_uplink_load(&[500, 0, 0])
            .build();
        tree.validate(1).unwrap();
        // d*=1 chain: source → dest0 (rack 0). Both source and dest0 are
        // full or hot; dest0 exhausted rack 0 and opens rack 1; dest1
        // (cool rack 1) opens rack 2.
        assert_eq!(tree.parent(2), Some(Node::Dest(1)));
    }

    #[test]
    fn builds_from_cluster_spec_placement() {
        let spec = ClusterSpec::with_rack_map(6, 2, 1, vec![0, 0, 0, 1, 1, 1]);
        let dests: Vec<MachineId> = (1..6).map(MachineId).collect();
        let tree = TopoTreeBuilder::from_cluster(2, &spec, MachineId(0), &dests).build();
        tree.validate(2).unwrap();
        assert_eq!(tree.reachable_count(), 5);
        let node_racks: Vec<u32> = dests.iter().map(|&m| spec.rack_of(m).0).collect();
        let cost = tree_cost(&tree, 0, &node_racks, 20.0, 5.0, 40.0);
        assert_eq!(cost.uplink_edges, 1);
    }

    #[test]
    fn topo_tree_cuts_uplink_traffic_and_latency_vs_oblivious() {
        // 5 racks, skewed: 16 dests in rack 0, 2 in each other rack.
        let mut node_racks = vec![0u32; 16];
        for r in 1..5u32 {
            node_racks.extend([r, r]);
        }
        let d = 4;
        let topo = TopoTreeBuilder::new(d, 0, node_racks.clone()).build();
        let whale = build_nonblocking(24, d);
        let price = |t: &MulticastTree| tree_cost(t, 0, &node_racks, 20.0, 5.0, 40.0);
        let (tc, wc) = (price(&topo), price(&whale));
        assert!(tc.uplink_edges < wc.uplink_edges, "{tc:?} vs {wc:?}");
        assert!(tc.completion_us < wc.completion_us, "{tc:?} vs {wc:?}");
    }

    #[test]
    fn empty_and_single_destination_trees() {
        assert_eq!(TopoTreeBuilder::new(2, 0, vec![]).build().n(), 0);
        let t = TopoTreeBuilder::new(2, 0, vec![3]).build();
        assert_eq!(t.parent(0), Some(Node::Source));
        assert_eq!(t.reachable_count(), 1);
    }
}
