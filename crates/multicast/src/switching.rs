//! Dynamic switching (§3.4): reorganizing the live multicast tree to a new
//! maximum out-degree with minimal change, plus the
//! `StatusMessage`/`ControlMessage`/ACK coordination protocol.
//!
//! - **Negative scale-down**: walk from `S` layer by layer; wherever a
//!   node's out-degree exceeds the new `d*`, detach the excess subtrees
//!   (keeping the earliest-attached children) and re-insert each detached
//!   root at the first node — searching from `S` — with spare degree.
//! - **Active scale-up**: repeatedly take the deepest leaf and re-attach
//!   it at the first node with spare degree, stopping as soon as the move
//!   would not reduce its depth.

use crate::tree::{MulticastTree, Node};
use std::collections::HashSet;
use whale_sim::SimTime;

/// The reorganization kind, multicast to all instances before switching.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StatusMessage {
    /// Out-degree is decreasing.
    NegativeScaleDown,
    /// Out-degree is increasing.
    ActiveScaleUp,
}

/// One connection change an instance must perform.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ControlMessage {
    /// The child whose parent changes.
    pub node: Node,
    /// The parent to disconnect from (None if it was detached already).
    pub disconnect_from: Option<Node>,
    /// The parent to connect to.
    pub connect_to: Node,
}

/// The full reorganization plan: the edge diff between the old and new
/// trees.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SwitchPlan {
    /// Status broadcast that precedes the control messages.
    pub status: Option<StatusMessage>,
    /// Per-instance connection changes, in execution order.
    pub moves: Vec<ControlMessage>,
}

impl SwitchPlan {
    /// Number of edges changed.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// True if nothing changes.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// The set of instances that must participate (and later ACK).
    pub fn participants(&self) -> HashSet<Node> {
        let mut set = HashSet::new();
        for m in &self.moves {
            set.insert(m.node);
            if let Some(p) = m.disconnect_from {
                set.insert(p);
            }
            set.insert(m.connect_to);
        }
        set
    }
}

/// First node in BFS order with out-degree below `d` — the insertion rule
/// both switching algorithms share.
fn first_with_spare(tree: &MulticastTree, d: u32) -> Option<Node> {
    tree.bfs()
        .into_iter()
        .map(|(n, _)| n)
        .find(|&n| tree.out_degree(n) < d)
}

/// Plan a negative scale-down of `tree` to maximum out-degree `new_d`.
/// Returns the reorganized tree and the plan. The input tree is not
/// modified.
pub fn plan_scale_down(tree: &MulticastTree, new_d: u32) -> (MulticastTree, SwitchPlan) {
    assert!(new_d >= 1);
    let mut t = tree.clone();
    let mut moves = Vec::new();
    // Collect excess children of every over-degree node, walking layers
    // from the source (BFS order is layer order).
    let mut marked: Vec<(Node, u32)> = Vec::new(); // (old_parent, detached root)
    for (node, _) in t.bfs() {
        let children: Vec<Node> = t.children(node).to_vec();
        if children.len() as u32 > new_d {
            for &c in &children[new_d as usize..] {
                if let Node::Dest(i) = c {
                    marked.push((node, i));
                }
            }
        }
    }
    for (old_parent, root) in &marked {
        t.detach(*root);
        let _ = old_parent;
    }
    // Re-insert each marked subtree at the first node with spare degree.
    for (old_parent, root) in marked {
        let target = first_with_spare(&t, new_d)
            .expect("a tree with degree cap >= 1 always has an open slot");
        t.attach(target, root);
        moves.push(ControlMessage {
            node: Node::Dest(root),
            disconnect_from: Some(old_parent),
            connect_to: target,
        });
    }
    (
        t,
        SwitchPlan {
            status: Some(StatusMessage::NegativeScaleDown),
            moves,
        },
    )
}

/// Arrival time unit of every node for one tuple entering at 0: the
/// *logical layer* of §3.2.2 (a node at tree depth 2 can sit on logical
/// layer 4 if it is served late by its parent).
fn logical_layers(tree: &MulticastTree) -> (Vec<u64>, u64) {
    let arrivals = crate::capability::RelaySim::new(tree.clone())
        .multicast(0)
        .arrivals;
    let max = arrivals
        .iter()
        .copied()
        .filter(|&a| a != u64::MAX)
        .max()
        .unwrap_or(0);
    (arrivals, max)
}

/// Plan an active scale-up of `tree` to maximum out-degree `new_d`.
///
/// Repeatedly takes the instance on the deepest *logical layer* (last
/// destination to receive a tuple) and re-attaches it under the earliest
/// node with spare degree; stops as soon as the move would land the
/// instance on the same or a deeper logical layer.
pub fn plan_scale_up(tree: &MulticastTree, new_d: u32) -> (MulticastTree, SwitchPlan) {
    assert!(new_d >= 1);
    let mut t = tree.clone();
    let mut moves = Vec::new();
    loop {
        let (arrivals, _) = logical_layers(&t);
        // Latest-arriving leaf, taking the highest index on ties (the
        // paper walks from the last destination instance backward).
        let Some((leaf_id, layer)) = (0..t.n())
            .filter(|&i| t.out_degree(Node::Dest(i)) == 0 && arrivals[i as usize] != u64::MAX)
            .map(|i| (i, arrivals[i as usize]))
            .max_by_key(|&(i, a)| (a, i))
        else {
            break;
        };
        // Earliest insertion point with spare degree, by logical layer.
        let layer_of = |n: Node| -> u64 {
            match n {
                Node::Source => 0,
                Node::Dest(i) => arrivals[i as usize],
            }
        };
        let mut candidates: Vec<Node> = std::iter::once(Node::Source)
            .chain((0..t.n()).map(Node::Dest))
            .filter(|&n| {
                n != Node::Dest(leaf_id) && t.out_degree(n) < new_d && layer_of(n) != u64::MAX
            })
            .collect();
        candidates.sort_by_key(|&n| {
            (
                layer_of(n),
                match n {
                    Node::Source => 0,
                    Node::Dest(i) => i + 1,
                },
            )
        });
        let Some(&target) = candidates.first() else {
            break;
        };
        // If moved, the leaf becomes the target's next-served child.
        let new_layer = layer_of(target) + t.out_degree(target) as u64 + 1;
        if new_layer >= layer {
            // Original and new positions on the same logical layer:
            // reorganization is complete.
            break;
        }
        let old_parent = t.detach(leaf_id);
        t.attach(target, leaf_id);
        moves.push(ControlMessage {
            node: Node::Dest(leaf_id),
            disconnect_from: old_parent,
            connect_to: target,
        });
    }
    (
        t,
        SwitchPlan {
            status: Some(StatusMessage::ActiveScaleUp),
            moves,
        },
    )
}

/// Plan whichever reorganization moves the tree to `new_d`.
pub fn plan_switch(tree: &MulticastTree, new_d: u32) -> (MulticastTree, SwitchPlan) {
    let current_max = std::iter::once(Node::Source)
        .chain((0..tree.n()).map(Node::Dest))
        .map(|n| tree.out_degree(n))
        .max()
        .unwrap_or(0);
    if new_d < current_max {
        plan_scale_down(tree, new_d)
    } else {
        plan_scale_up(tree, new_d)
    }
}

/// Tracks one in-flight switch: which instances still owe an ACK, and the
/// switch delay `T_switch` once complete.
#[derive(Clone, Debug)]
pub struct SwitchSession {
    started: SimTime,
    pending: HashSet<Node>,
    completed_at: Option<SimTime>,
}

impl SwitchSession {
    /// Open a session at `now` for the plan's participants. An empty plan
    /// completes immediately.
    pub fn start(now: SimTime, plan: &SwitchPlan) -> Self {
        let mut pending = plan.participants();
        pending.remove(&Node::Source); // the source coordinates; it does not ACK itself
        SwitchSession {
            started: now,
            completed_at: if pending.is_empty() { Some(now) } else { None },
            pending,
        }
    }

    /// Record an ACK from an instance at `now`. Returns true when this was
    /// the final outstanding ACK.
    pub fn ack(&mut self, node: Node, now: SimTime) -> bool {
        if self.completed_at.is_some() {
            return false;
        }
        self.pending.remove(&node);
        if self.pending.is_empty() {
            self.completed_at = Some(now);
            true
        } else {
            false
        }
    }

    /// Instances that have not ACKed yet.
    pub fn pending(&self) -> &HashSet<Node> {
        &self.pending
    }

    /// True once every participant ACKed.
    pub fn is_complete(&self) -> bool {
        self.completed_at.is_some()
    }

    /// The measured switch delay, if complete.
    pub fn switch_delay(&self) -> Option<whale_sim::SimDuration> {
        self.completed_at.map(|t| t.since(self.started))
    }

    /// True if the session has been open longer than `timeout` at `now`
    /// without completing — the coordinator should abort the switch (keep
    /// the old structure) and retry later. Theorem 4 bounds how long a
    /// switch may safely take; a session outliving that bound risks
    /// stream input loss.
    pub fn expired(&self, now: SimTime, timeout: whale_sim::SimDuration) -> bool {
        self.completed_at.is_none() && now.since(self.started) > timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_nonblocking, build_sequential};

    #[test]
    fn fig8a_scale_down_three_to_two() {
        // Fig 8a: d* goes 3 → 2 on a tree built with d* = 3.
        let tree = build_nonblocking(7, 3);
        let (new_tree, plan) = plan_scale_down(&tree, 2);
        new_tree.validate(2).unwrap();
        assert_eq!(new_tree.reachable_count(), 7);
        assert_eq!(plan.status, Some(StatusMessage::NegativeScaleDown));
        assert!(!plan.is_empty());
        // Moved nodes disconnect from an over-degree parent and reconnect
        // to one that had spare capacity.
        for m in &plan.moves {
            assert_ne!(m.disconnect_from.unwrap(), m.connect_to);
        }
    }

    #[test]
    fn fig8b_scale_up_two_to_three() {
        // Fig 8b: d* goes 2 → 3; the deepest instance (T_{4-1}) moves up.
        let tree = build_nonblocking(7, 2);
        let depth_before = tree.height();
        let (new_tree, plan) = plan_scale_up(&tree, 3);
        new_tree.validate(3).unwrap();
        assert_eq!(new_tree.reachable_count(), 7);
        assert_eq!(plan.status, Some(StatusMessage::ActiveScaleUp));
        assert!(!plan.is_empty());
        assert!(new_tree.height() <= depth_before);
        // The paper's example: T6 (=T_{4-1}) reconnects to S.
        let moved: Vec<Node> = plan.moves.iter().map(|m| m.node).collect();
        assert!(moved.contains(&Node::Dest(6)), "moved={moved:?}");
        assert_eq!(plan.moves[0].connect_to, Node::Source);
    }

    #[test]
    fn scale_down_from_sequential_star() {
        // Star of 30 → cap 3: heavy reorganization, still valid.
        let tree = build_sequential(30);
        let (new_tree, plan) = plan_scale_down(&tree, 3);
        new_tree.validate(3).unwrap();
        assert_eq!(new_tree.reachable_count(), 30);
        assert_eq!(plan.len(), 27, "27 of 30 children must move");
    }

    #[test]
    fn scale_down_preserves_early_children() {
        let tree = build_sequential(10);
        let (new_tree, _) = plan_scale_down(&tree, 4);
        // The first 4 attached children stay under the source.
        for i in 0..4 {
            assert_eq!(new_tree.parent(i), Some(Node::Source), "T{i}");
        }
    }

    #[test]
    fn plan_switch_picks_direction() {
        let tree = build_nonblocking(31, 3);
        let (down, p_down) = plan_switch(&tree, 2);
        assert_eq!(p_down.status, Some(StatusMessage::NegativeScaleDown));
        down.validate(2).unwrap();
        let (up, p_up) = plan_switch(&tree, 5);
        assert_eq!(p_up.status, Some(StatusMessage::ActiveScaleUp));
        up.validate(5).unwrap();
    }

    #[test]
    fn noop_switch_is_empty() {
        let tree = build_nonblocking(15, 2);
        let (same, plan) = plan_scale_down(&tree, 2);
        assert!(plan.is_empty());
        assert_eq!(same, tree);
    }

    #[test]
    fn scale_up_stops_at_same_layer() {
        // Already-balanced tree: scale-up to the same degree moves nothing.
        let tree = build_nonblocking(15, 4);
        let (_, plan) = plan_scale_up(&tree, 4);
        assert!(plan.is_empty(), "moves={:?}", plan.moves);
    }

    #[test]
    fn repeated_switches_stay_valid() {
        // Stress: alternate down/up across many sizes.
        let mut tree = build_nonblocking(100, 4);
        for &d in &[2u32, 6, 1, 5, 3, 7, 2] {
            let (t, _) = plan_switch(&tree, d);
            t.validate(d).unwrap_or_else(|e| panic!("d={d}: {e}"));
            assert_eq!(t.reachable_count(), 100);
            tree = t;
        }
    }

    #[test]
    fn switch_plan_is_minimal_diff() {
        // Edges not involved in violations must be untouched by scale-down.
        let tree = build_nonblocking(31, 4);
        let (new_tree, plan) = plan_scale_down(&tree, 3);
        let moved: HashSet<u32> = plan
            .moves
            .iter()
            .map(|m| match m.node {
                Node::Dest(i) => i,
                Node::Source => unreachable!(),
            })
            .collect();
        for i in 0..31 {
            if !moved.contains(&i) {
                assert_eq!(tree.parent(i), new_tree.parent(i), "T{i} must not move");
            }
        }
    }

    #[test]
    fn session_tracks_acks_and_delay() {
        let tree = build_sequential(6);
        let (_, plan) = plan_scale_down(&tree, 2);
        let mut session = SwitchSession::start(SimTime::from_millis(10), &plan);
        assert!(!session.is_complete());
        let participants: Vec<Node> = session.pending().iter().copied().collect();
        let mut done = false;
        for (i, node) in participants.iter().enumerate() {
            done = session.ack(*node, SimTime::from_millis(10 + i as u64 + 1));
        }
        assert!(done);
        assert!(session.is_complete());
        let delay = session.switch_delay().unwrap();
        assert_eq!(delay.as_millis(), participants.len() as u64);
        // Late ACKs are ignored.
        assert!(!session.ack(Node::Dest(0), SimTime::from_secs(1)));
    }

    #[test]
    fn session_expiry_detects_lost_acks() {
        let tree = build_sequential(6);
        let (_, plan) = plan_scale_down(&tree, 2);
        let mut session = SwitchSession::start(SimTime::from_millis(10), &plan);
        let timeout = whale_sim::SimDuration::from_millis(5);
        assert!(!session.expired(SimTime::from_millis(12), timeout));
        assert!(session.expired(SimTime::from_millis(16), timeout));
        // Completing clears expiry.
        let pending: Vec<Node> = session.pending().iter().copied().collect();
        for n in pending {
            session.ack(n, SimTime::from_millis(20));
        }
        assert!(session.is_complete());
        assert!(!session.expired(SimTime::from_secs(10), timeout));
    }

    #[test]
    fn empty_plan_session_completes_immediately() {
        let plan = SwitchPlan::default();
        let s = SwitchSession::start(SimTime::ZERO, &plan);
        assert!(s.is_complete());
        assert_eq!(s.switch_delay().unwrap().as_nanos(), 0);
    }

    #[test]
    fn participants_cover_all_roles() {
        let tree = build_sequential(5);
        let (_, plan) = plan_scale_down(&tree, 2);
        let parts = plan.participants();
        for m in &plan.moves {
            assert!(parts.contains(&m.node));
            assert!(parts.contains(&m.connect_to));
        }
    }
}
