//! # whale-multicast — the paper's core contribution
//!
//! Everything in §3: the non-blocking multicast tree (Algorithm 1) next to
//! its baselines (RDMC's binomial tree, Storm's sequential star), the
//! M/D/1-derived maximum out-degree `d*`, the multicast-capability
//! analysis `L(t)` with a relay-schedule simulator verified against the
//! paper's Fig 6 walkthrough, the queue-watching workload monitor, the
//! negative-scale-down / active-scale-up self-adjusting controller
//! (§3.3), the dynamic switching machinery with its
//! `StatusMessage`/`ControlMessage`/ACK protocol (§3.4), and a
//! Gleam-style topology-aware tree builder that keeps subtrees
//! intra-rack and routes rack entries over the coolest uplinks.

#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod capability;
pub mod controller;
pub mod fabric_driver;
pub mod monitor;
pub mod protocol;
pub mod switching;
pub mod topo;
pub mod tree;

pub use analysis::{affordable_rate_ratio, compare, recommend, StructureAnalysis};
pub use builder::{
    binomial_source_degree, build_binomial, build_nonblocking, build_sequential, Structure,
};
pub use capability::{capability, completion_time, RelaySim, TupleSchedule};
pub use controller::{AdjustController, ControllerConfig, Decision};
pub use fabric_driver::{
    decode_msg, encode_msg, run_switch_over_fabric, run_switch_over_fabric_at, CodecError,
    DriverError, SwitchDriverReport,
};
pub use monitor::{LinkPressure, MonitorReport, WorkloadMonitor};
pub use protocol::{AckOutcome, CoordinatorState, InstanceAgent, ProtocolMsg, SwitchCoordinator};
pub use switching::{
    plan_scale_down, plan_scale_up, plan_switch, ControlMessage, StatusMessage, SwitchPlan,
    SwitchSession,
};
pub use topo::{tree_cost, TopoTreeBuilder, TreeCost};
pub use tree::{MulticastTree, Node, TreeError};
