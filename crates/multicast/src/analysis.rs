//! Closed-form structural analysis (§3.2.2): given a fan-out, a measured
//! per-hop cost, and a queue budget, compare the three multicast
//! structures and pick one — the planning counterpart of the runtime
//! controller.
//!
//! Everything here is cross-checked against the [`RelaySim`] event
//! simulation in tests, so the formulas and the executable model cannot
//! drift apart.

use crate::builder::{binomial_source_degree, Structure};
use crate::capability::completion_time;
use whale_sim::cost::mdone;

/// The static properties of one structure over `n` destinations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StructureAnalysis {
    /// The analyzed structure.
    pub structure: Structure,
    /// Source out-degree `d0` — time units the source is busy per tuple.
    pub source_degree: u32,
    /// Time units until the last destination holds a tuple.
    pub completion_units: u32,
    /// Maximum affordable input rate `M` (Eq. 5), tuples/s.
    pub max_affordable_rate: f64,
}

impl StructureAnalysis {
    /// Analyze `structure` over `n` destinations with per-hop time
    /// `t_e_secs` and transfer-queue capacity `q`.
    pub fn of(structure: Structure, n: u32, t_e_secs: f64, q: usize) -> Self {
        assert!(n >= 1);
        let source_degree = structure.source_degree(n);
        let completion_units = match structure {
            Structure::Sequential => n,
            Structure::Binomial => binomial_source_degree(n),
            Structure::NonBlocking { d_star } => completion_time(d_star.max(1), n),
        };
        StructureAnalysis {
            structure,
            source_degree,
            completion_units,
            max_affordable_rate: mdone::max_affordable_rate(source_degree.max(1), t_e_secs, q),
        }
    }

    /// Expected one-tuple multicast latency in seconds (units × t_e).
    pub fn multicast_latency_secs(&self, t_e_secs: f64) -> f64 {
        self.completion_units as f64 * t_e_secs
    }

    /// True if the structure sustains `lambda` tuples/s without blocking.
    pub fn sustains(&self, lambda: f64) -> bool {
        lambda <= self.max_affordable_rate
    }
}

/// Analyze all three structures (non-blocking at the `d*` the M/D/1 model
/// derives for `lambda`), most capable first.
pub fn compare(n: u32, lambda: f64, t_e_secs: f64, q: usize) -> Vec<StructureAnalysis> {
    let d_star = mdone::d_star(lambda, t_e_secs, q).clamp(1, binomial_source_degree(n).max(1));
    let mut all = vec![
        StructureAnalysis::of(Structure::NonBlocking { d_star }, n, t_e_secs, q),
        StructureAnalysis::of(Structure::Binomial, n, t_e_secs, q),
        StructureAnalysis::of(Structure::Sequential, n, t_e_secs, q),
    ];
    all.sort_by(|a, b| {
        b.max_affordable_rate
            .partial_cmp(&a.max_affordable_rate)
            .unwrap()
    });
    all
}

/// Pick the structure for a stream of `lambda` tuples/s to `n`
/// destinations: the non-blocking tree at the derived `d*`, degenerating
/// to the binomial tree when the stream is slow enough to afford it
/// (§3.2.2: `d0 = min(d*, ceil(log2(n+1)))`).
pub fn recommend(n: u32, lambda: f64, t_e_secs: f64, q: usize) -> Structure {
    let cap = binomial_source_degree(n).max(1);
    let d_star = mdone::d_star(lambda, t_e_secs, q).clamp(1, cap);
    if d_star >= cap {
        Structure::Binomial
    } else {
        Structure::NonBlocking { d_star }
    }
}

/// The paper's headline ratio `M_nonblock / M_binomial =
/// ceil(log2(n+1)) / d0` (derived after Theorem 1).
pub fn affordable_rate_ratio(n: u32, d0: u32) -> f64 {
    assert!(d0 >= 1);
    binomial_source_degree(n) as f64 / d0.min(binomial_source_degree(n)).max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_nonblocking;
    use crate::capability::RelaySim;

    const T_E: f64 = 8e-6;
    const Q: usize = 2_048;

    #[test]
    fn analysis_matches_relay_simulation() {
        // Closed-form completion units must equal the event simulation's.
        for n in [7u32, 30, 100, 480] {
            for s in [
                Structure::Sequential,
                Structure::Binomial,
                Structure::NonBlocking { d_star: 3 },
            ] {
                let a = StructureAnalysis::of(s, n, T_E, Q);
                let sim = RelaySim::new(s.build(n)).multicast(0);
                assert_eq!(a.completion_units as u64, sim.complete, "{s:?} n={n}");
                assert_eq!(a.source_degree as u64, sim.source_done, "{s:?} n={n}");
            }
        }
    }

    #[test]
    fn ratio_formula_matches_analyses() {
        let n = 480;
        let nb = StructureAnalysis::of(Structure::NonBlocking { d_star: 3 }, n, T_E, Q);
        let bi = StructureAnalysis::of(Structure::Binomial, n, T_E, Q);
        let ratio = nb.max_affordable_rate / bi.max_affordable_rate;
        assert!((ratio - affordable_rate_ratio(n, 3)).abs() < 1e-9);
        // ceil(log2(481)) = 9, d0 = 3 → 3x more affordable input rate.
        assert!((ratio - 3.0).abs() < 1e-9);
    }

    #[test]
    fn compare_orders_by_capability() {
        let all = compare(480, 60_000.0, T_E, Q);
        assert_eq!(all.len(), 3);
        for w in all.windows(2) {
            assert!(w[0].max_affordable_rate >= w[1].max_affordable_rate);
        }
        // Sequential is always last at this fan-out.
        assert_eq!(all[2].structure, Structure::Sequential);
    }

    #[test]
    fn recommend_tracks_lambda() {
        // Slow stream: the binomial tree is affordable.
        assert_eq!(recommend(480, 1_000.0, T_E, Q), Structure::Binomial);
        // Fast stream: a capped tree.
        match recommend(480, 60_000.0, T_E, Q) {
            Structure::NonBlocking { d_star } => {
                assert!(d_star < 9);
                assert!(d_star >= 1);
            }
            other => panic!("expected capped tree, got {other:?}"),
        }
        // The recommended structure actually sustains the load.
        let lambda = 60_000.0;
        let s = recommend(480, lambda, T_E, Q);
        let a = StructureAnalysis::of(s, 480, T_E, Q);
        assert!(a.sustains(lambda));
    }

    #[test]
    fn sequential_never_recommended() {
        for lambda in [100.0, 10_000.0, 1e6] {
            assert_ne!(recommend(480, lambda, T_E, Q), Structure::Sequential);
        }
    }

    #[test]
    fn latency_helper() {
        let a = StructureAnalysis::of(Structure::Binomial, 480, T_E, Q);
        // 9 units × 8 µs = 72 µs.
        assert!((a.multicast_latency_secs(T_E) - 72e-6).abs() < 1e-12);
    }

    #[test]
    fn nonblocking_completion_between_binomial_and_sequential() {
        for n in [15u32, 100, 480] {
            let bi = StructureAnalysis::of(Structure::Binomial, n, T_E, Q);
            let nb = StructureAnalysis::of(Structure::NonBlocking { d_star: 2 }, n, T_E, Q);
            let se = StructureAnalysis::of(Structure::Sequential, n, T_E, Q);
            assert!(bi.completion_units <= nb.completion_units);
            assert!(nb.completion_units <= se.completion_units);
        }
    }

    #[test]
    fn single_destination_degenerate() {
        let a = StructureAnalysis::of(Structure::NonBlocking { d_star: 4 }, 1, T_E, Q);
        assert_eq!(a.source_degree, 1);
        assert_eq!(a.completion_units, 1);
        let sim = RelaySim::new(build_nonblocking(1, 4)).multicast(0);
        assert_eq!(sim.complete, 1);
    }
}
