//! The system workload monitor (§4): `StreamMonitor` measures the stream
//! input rate λ with α-weighted smoothing; `QueueMonitor` measures the
//! transfer-queue occupancy and the per-hop tuple processing time `t_e`.
//!
//! The controller consumes one [`MonitorReport`] per monitoring interval
//! Δt and decides whether to adjust the multicast structure.

use whale_sim::stats::{Ewma, Running};
use whale_sim::{SimDuration, SimTime};

/// Per-link congestion pressure sampled from a
/// [`LinkTracker`](whale_net::LinkTracker) snapshot and folded into each
/// [`MonitorReport`]. All-zero (the [`Default`]) means "no topology
/// feedback" — the controller then behaves exactly as the λ-only §3.3
/// rules.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkPressure {
    /// Deepest rack-uplink send queue (frames) at sample time.
    pub max_uplink_queue: u64,
    /// Total bytes delivered over rack uplinks so far.
    pub uplink_bytes: u64,
    /// Number of uplinks whose queue exceeds the configured hot
    /// threshold.
    pub hot_uplinks: u32,
}

/// One periodic observation handed to the controller.
#[derive(Clone, Copy, Debug)]
pub struct MonitorReport {
    /// Sample time.
    pub at: SimTime,
    /// Smoothed stream input rate λ (tuples/s).
    pub lambda: f64,
    /// Mean per-hop tuple processing time `t_e` (seconds).
    pub t_e_secs: f64,
    /// Transfer-queue length at sample time.
    pub queue_len: usize,
    /// Queue length at the previous sample.
    pub prev_queue_len: usize,
    /// Rack-uplink pressure (zeros when no tracker is installed).
    pub links: LinkPressure,
}

impl MonitorReport {
    /// Queue growth since the previous sample (negative = draining).
    pub fn delta(&self) -> i64 {
        self.queue_len as i64 - self.prev_queue_len as i64
    }
}

/// Collects raw arrivals, emit times, and queue samples; emits smoothed
/// reports at each monitoring interval.
#[derive(Clone, Debug)]
pub struct WorkloadMonitor {
    interval: SimDuration,
    alpha_lambda: Ewma,
    /// Arrivals since the window opened.
    window_arrivals: u64,
    window_start: SimTime,
    /// Per-tuple emit (hop processing) time estimator.
    t_e: Running,
    /// Default t_e used before any measurement exists (from calibration).
    t_e_default: f64,
    prev_queue_len: usize,
    last_report: Option<MonitorReport>,
}

impl WorkloadMonitor {
    /// Create a monitor sampling every `interval`, smoothing λ with
    /// `alpha` (the paper's α-weighted averaging), with a calibrated
    /// fallback `t_e_default` (seconds) until live measurements arrive.
    pub fn new(interval: SimDuration, alpha: f64, t_e_default: f64) -> Self {
        assert!(!interval.is_zero());
        assert!(t_e_default > 0.0);
        WorkloadMonitor {
            interval,
            alpha_lambda: Ewma::new(alpha),
            window_arrivals: 0,
            window_start: SimTime::ZERO,
            t_e: Running::new(),
            t_e_default,
            prev_queue_len: 0,
            last_report: None,
        }
    }

    /// The monitoring interval Δt.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Record `n` tuples arriving at the source.
    pub fn record_arrivals(&mut self, n: u64) {
        self.window_arrivals += n;
    }

    /// Record one measured per-hop emit time.
    pub fn record_emit_time(&mut self, d: SimDuration) {
        self.t_e.push(d.as_secs_f64());
    }

    /// Current t_e estimate (seconds).
    pub fn t_e_secs(&self) -> f64 {
        if self.t_e.count() == 0 {
            self.t_e_default
        } else {
            self.t_e.mean()
        }
    }

    /// Current smoothed λ estimate (tuples/s); 0 before the first window.
    pub fn lambda(&self) -> f64 {
        self.alpha_lambda.value().unwrap_or(0.0)
    }

    /// Close the current window at `now` with the observed queue length,
    /// producing a report. Call once per interval.
    pub fn sample(&mut self, now: SimTime, queue_len: usize) -> MonitorReport {
        self.sample_with_links(now, queue_len, LinkPressure::default())
    }

    /// [`sample`](Self::sample) with a rack-uplink pressure snapshot
    /// attached, for runtimes with a
    /// [`LinkTracker`](whale_net::LinkTracker) installed.
    pub fn sample_with_links(
        &mut self,
        now: SimTime,
        queue_len: usize,
        links: LinkPressure,
    ) -> MonitorReport {
        let elapsed = now.since(self.window_start);
        let raw_rate = if elapsed.is_zero() {
            0.0
        } else {
            self.window_arrivals as f64 / elapsed.as_secs_f64()
        };
        let lambda = self.alpha_lambda.observe(raw_rate);
        let report = MonitorReport {
            at: now,
            lambda,
            t_e_secs: self.t_e_secs(),
            queue_len,
            prev_queue_len: self.prev_queue_len,
            links,
        };
        self.prev_queue_len = queue_len;
        self.window_start = now;
        self.window_arrivals = 0;
        self.last_report = Some(report);
        report
    }

    /// The last emitted report.
    pub fn last_report(&self) -> Option<MonitorReport> {
        self.last_report
    }

    /// Export the current λ/t_e estimates and last queue observation into
    /// `reg` under `prefix.*`.
    pub fn export_metrics(&self, reg: &mut whale_sim::MetricsRegistry, prefix: &str) {
        reg.set_gauge(&format!("{prefix}.lambda"), self.lambda());
        reg.set_gauge(&format!("{prefix}.t_e_secs"), self.t_e_secs());
        if let Some(r) = self.last_report {
            reg.set_gauge(&format!("{prefix}.queue_len"), r.queue_len as f64);
            reg.set_gauge(&format!("{prefix}.queue_delta"), r.delta() as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> WorkloadMonitor {
        WorkloadMonitor::new(SimDuration::from_millis(100), 0.5, 5e-6)
    }

    #[test]
    fn lambda_measured_per_window() {
        let mut m = monitor();
        m.record_arrivals(1_000);
        let r = m.sample(SimTime::from_millis(100), 0);
        // 1000 tuples in 100ms → 10k/s; first EWMA observation passes through.
        assert!((r.lambda - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn lambda_smooths_across_windows() {
        let mut m = monitor();
        m.record_arrivals(1_000);
        m.sample(SimTime::from_millis(100), 0);
        // Next window: burst to 30k/s; α=0.5 smooths to 20k.
        m.record_arrivals(3_000);
        let r = m.sample(SimTime::from_millis(200), 0);
        assert!((r.lambda - 20_000.0).abs() < 1e-6, "lambda={}", r.lambda);
    }

    #[test]
    fn t_e_defaults_then_measures() {
        let mut m = monitor();
        assert!((m.t_e_secs() - 5e-6).abs() < 1e-18);
        m.record_emit_time(SimDuration::from_micros(10));
        m.record_emit_time(SimDuration::from_micros(20));
        assert!((m.t_e_secs() - 15e-6).abs() < 1e-12);
    }

    #[test]
    fn queue_delta_tracked() {
        let mut m = monitor();
        let r1 = m.sample(SimTime::from_millis(100), 40);
        assert_eq!(r1.prev_queue_len, 0);
        assert_eq!(r1.delta(), 40);
        let r2 = m.sample(SimTime::from_millis(200), 25);
        assert_eq!(r2.prev_queue_len, 40);
        assert_eq!(r2.delta(), -15);
    }

    #[test]
    fn window_resets_after_sample() {
        let mut m = monitor();
        m.record_arrivals(500);
        m.sample(SimTime::from_millis(100), 0);
        // No arrivals in second window → raw rate 0, smoothed halves.
        let r = m.sample(SimTime::from_millis(200), 0);
        assert!((r.lambda - 2_500.0).abs() < 1e-6);
    }

    #[test]
    fn last_report_remembered() {
        let mut m = monitor();
        assert!(m.last_report().is_none());
        m.record_arrivals(10);
        let r = m.sample(SimTime::from_millis(100), 3);
        assert_eq!(m.last_report().unwrap().queue_len, r.queue_len);
    }

    #[test]
    fn link_pressure_rides_along_with_the_sample() {
        let mut m = monitor();
        // Plain sample carries the all-zero default.
        let r = m.sample(SimTime::from_millis(100), 0);
        assert_eq!(r.links, LinkPressure::default());
        let links = LinkPressure {
            max_uplink_queue: 9,
            uplink_bytes: 4_096,
            hot_uplinks: 1,
        };
        let r = m.sample_with_links(SimTime::from_millis(200), 2, links);
        assert_eq!(r.links, links);
        assert_eq!(m.last_report().unwrap().links.hot_uplinks, 1);
    }

    #[test]
    fn zero_elapsed_window_is_zero_rate() {
        let mut m = monitor();
        m.record_arrivals(100);
        let r = m.sample(SimTime::ZERO, 0);
        assert_eq!(r.lambda, 0.0);
    }
}
