//! The dynamic-switching coordination protocol of §3.4/§4, as an explicit
//! message-level state machine.
//!
//! When the controller decides to adjust, the source:
//! 1. multicasts a [`StatusMessage`] to all destination instances
//!    announcing the switch direction,
//! 2. sends [`ControlMessage`]s **first** to the instances that must
//!    disconnect or establish connections,
//! 3. collects an ACK from each participant; the switch is complete when
//!    all ACKs arrive (that interval is the measured `T_switch`),
//! 4. then ships the new structure to the remaining instances "as the
//!    streaming tuples are being processed" (deferred notifications).
//!
//! Each destination runs an [`InstanceAgent`] holding a replica of the
//! multicast tree; agents apply control messages to their replica and
//! ACK. Tests drive a coordinator against a full set of agents and check
//! that every replica converges to the planned tree.

use crate::switching::{plan_switch, ControlMessage, StatusMessage, SwitchPlan, SwitchSession};
use crate::tree::{MulticastTree, Node};
use whale_sim::{SimDuration, SimTime};

/// A protocol message on the wire (sent with two-sided verbs under
/// DiffVerbs — the ring region cannot predict control-message addresses).
#[derive(Clone, Debug, PartialEq)]
pub enum ProtocolMsg {
    /// Phase 1: the switch announcement.
    Status(StatusMessage),
    /// Phase 2: a connection change for one instance (sent to both the
    /// moving node and the parents it touches).
    Control(ControlMessage),
    /// Phase 4: the full new structure for instances not involved in any
    /// move (they only need their updated child lists).
    NewStructure(MulticastTree),
    /// Destination → source: the control message was applied.
    Ack {
        /// The acknowledging instance.
        from: Node,
    },
    /// Destination → source: the deferred [`ProtocolMsg::NewStructure`]
    /// was installed. Distinct from [`ProtocolMsg::Ack`] so that a late
    /// duplicate control ACK on a lossy transport can never be mistaken
    /// for confirmation of the structure broadcast.
    AckStructure {
        /// The acknowledging instance.
        from: Node,
    },
}

/// Coordinator lifecycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CoordinatorState {
    /// ACKs outstanding.
    AwaitingAcks,
    /// All ACKs in; deferred notifications may be sent.
    Complete,
}

/// What `on_ack` reports.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum AckOutcome {
    /// Still waiting on others.
    Pending,
    /// This was the last ACK; the switch took `t_switch`.
    Completed {
        /// Measured switching delay.
        t_switch: SimDuration,
    },
    /// ACK from a node that owes none (duplicate or stray).
    Ignored,
}

/// The source-side coordinator for one switch.
#[derive(Clone, Debug)]
pub struct SwitchCoordinator {
    plan: SwitchPlan,
    new_tree: MulticastTree,
    session: SwitchSession,
    state: CoordinatorState,
}

impl SwitchCoordinator {
    /// Plan and start a switch of `tree` to maximum out-degree `new_d` at
    /// time `now`. Returns the coordinator and the initial outbox:
    /// the status broadcast to every destination, then control messages
    /// to the affected instances (in execution order).
    pub fn start(
        now: SimTime,
        tree: &MulticastTree,
        new_d: u32,
    ) -> (Self, Vec<(Node, ProtocolMsg)>) {
        let (new_tree, plan) = plan_switch(tree, new_d);
        let session = SwitchSession::start(now, &plan);
        let mut outbox = Vec::new();
        if let Some(status) = plan.status {
            for i in 0..tree.n() {
                outbox.push((Node::Dest(i), ProtocolMsg::Status(status)));
            }
        }
        // Control messages go to every participant that must act: the
        // moving node plus the parents gaining/losing an edge.
        for m in &plan.moves {
            outbox.push((m.node, ProtocolMsg::Control(*m)));
            if let Some(p) = m.disconnect_from {
                if p != Node::Source {
                    outbox.push((p, ProtocolMsg::Control(*m)));
                }
            }
            if m.connect_to != Node::Source {
                outbox.push((m.connect_to, ProtocolMsg::Control(*m)));
            }
        }
        let state = if session.is_complete() {
            CoordinatorState::Complete
        } else {
            CoordinatorState::AwaitingAcks
        };
        (
            SwitchCoordinator {
                plan,
                new_tree,
                session,
                state,
            },
            outbox,
        )
    }

    /// The planned reorganization.
    pub fn plan(&self) -> &SwitchPlan {
        &self.plan
    }

    /// The target structure.
    pub fn new_tree(&self) -> &MulticastTree {
        &self.new_tree
    }

    /// Current state.
    pub fn state(&self) -> CoordinatorState {
        self.state
    }

    /// Process an ACK at `now`.
    pub fn on_ack(&mut self, from: Node, now: SimTime) -> AckOutcome {
        if self.state == CoordinatorState::Complete {
            return AckOutcome::Ignored;
        }
        if !self.session.pending().contains(&from) {
            return AckOutcome::Ignored;
        }
        if self.session.ack(from, now) {
            self.state = CoordinatorState::Complete;
            AckOutcome::Completed {
                t_switch: self.session.switch_delay().expect("complete"),
            }
        } else {
            AckOutcome::Pending
        }
    }

    /// Export the switch-session state into `reg` under `prefix.*`:
    /// outstanding ACK count, planned moves, and — once complete — the
    /// measured `T_switch` in seconds.
    pub fn export_metrics(&self, reg: &mut whale_sim::MetricsRegistry, prefix: &str) {
        reg.set_gauge(
            &format!("{prefix}.pending_acks"),
            self.session.pending().len() as f64,
        );
        reg.set_counter(&format!("{prefix}.moves"), self.plan.moves.len() as u64);
        if let Some(d) = self.session.switch_delay() {
            reg.set_gauge(&format!("{prefix}.t_switch_secs"), d.as_secs_f64());
        }
    }

    /// Phase 4: after completion, the full-structure update delivered
    /// lazily with the data stream. Participants applied their urgent
    /// [`ControlMessage`]s during the switch but still need the complete
    /// picture (a participant in move A never heard about move B), so
    /// every destination receives it.
    pub fn deferred_notifications(&self) -> Vec<(Node, ProtocolMsg)> {
        assert_eq!(
            self.state,
            CoordinatorState::Complete,
            "deferred notifications are sent only after all ACKs"
        );
        (0..self.new_tree.n())
            .map(Node::Dest)
            .map(|n| (n, ProtocolMsg::NewStructure(self.new_tree.clone())))
            .collect()
    }
}

/// A destination instance's protocol endpoint: holds its replica of the
/// multicast tree and applies control traffic.
#[derive(Clone, Debug)]
pub struct InstanceAgent {
    me: Node,
    replica: MulticastTree,
    status: Option<StatusMessage>,
    applied: u64,
}

impl InstanceAgent {
    /// Create for destination `me` with the current structure.
    pub fn new(me: Node, tree: MulticastTree) -> Self {
        assert!(matches!(me, Node::Dest(_)), "agents run on destinations");
        InstanceAgent {
            me,
            replica: tree,
            status: None,
            applied: 0,
        }
    }

    /// This agent's identity.
    pub fn id(&self) -> Node {
        self.me
    }

    /// The agent's current view of the tree (its direct cascading
    /// instances are `replica.children(me)`).
    pub fn replica(&self) -> &MulticastTree {
        &self.replica
    }

    /// Direct cascading instances this agent relays to.
    pub fn cascading(&self) -> Vec<Node> {
        self.replica.children(self.me).to_vec()
    }

    /// Control messages applied.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Handle one protocol message; returns an ACK when one is owed.
    pub fn on_message(&mut self, msg: ProtocolMsg) -> Option<ProtocolMsg> {
        match msg {
            ProtocolMsg::Status(s) => {
                self.status = Some(s);
                None
            }
            ProtocolMsg::Control(m) => {
                // Apply idempotently: the same move may arrive via the
                // moving node and both parents.
                let Node::Dest(child) = m.node else {
                    return None;
                };
                if self.replica.parent(child) != Some(m.connect_to) {
                    if self.replica.parent(child).is_some() {
                        self.replica.detach(child);
                    }
                    self.replica.attach(m.connect_to, child);
                    self.applied += 1;
                }
                Some(ProtocolMsg::Ack { from: self.me })
            }
            ProtocolMsg::NewStructure(t) => {
                // Replacing the replica is naturally idempotent, and the
                // ACK lets a lossy transport re-send the deferred
                // notification until it is confirmed delivered.
                self.replica = t;
                Some(ProtocolMsg::AckStructure { from: self.me })
            }
            ProtocolMsg::Ack { .. } | ProtocolMsg::AckStructure { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_nonblocking, build_sequential};

    /// Drive a full switch through coordinator + agents; returns the
    /// coordinator and agents after convergence.
    fn run_protocol(n: u32, initial_d: u32, new_d: u32) -> (SwitchCoordinator, Vec<InstanceAgent>) {
        let tree = build_nonblocking(n, initial_d);
        let mut agents: Vec<InstanceAgent> = (0..n)
            .map(|i| InstanceAgent::new(Node::Dest(i), tree.clone()))
            .collect();
        let (mut coord, outbox) = SwitchCoordinator::start(SimTime::from_millis(1), &tree, new_d);
        let mut acks = Vec::new();
        for (dst, msg) in outbox {
            let Node::Dest(i) = dst else { continue };
            if let Some(ack) = agents[i as usize].on_message(msg) {
                acks.push(ack);
            }
        }
        let mut t = SimTime::from_millis(1);
        for ack in acks {
            let ProtocolMsg::Ack { from } = ack else {
                unreachable!()
            };
            t += SimDuration::from_micros(10);
            coord.on_ack(from, t);
        }
        if coord.state() == CoordinatorState::Complete {
            for (dst, msg) in coord.deferred_notifications() {
                let Node::Dest(i) = dst else { continue };
                agents[i as usize].on_message(msg);
            }
        }
        (coord, agents)
    }

    #[test]
    fn full_scale_down_converges_all_replicas() {
        let (coord, agents) = run_protocol(30, 6, 2);
        assert_eq!(coord.state(), CoordinatorState::Complete);
        coord.new_tree().validate(2).unwrap();
        for agent in &agents {
            assert_eq!(
                agent.replica(),
                coord.new_tree(),
                "agent {} replica diverged",
                agent.id()
            );
        }
    }

    #[test]
    fn full_scale_up_converges_all_replicas() {
        let (coord, agents) = run_protocol(30, 2, 5);
        assert_eq!(coord.state(), CoordinatorState::Complete);
        for agent in &agents {
            assert_eq!(agent.replica(), coord.new_tree());
        }
    }

    #[test]
    fn status_broadcast_reaches_everyone() {
        let tree = build_nonblocking(10, 4);
        let (_, outbox) = SwitchCoordinator::start(SimTime::ZERO, &tree, 2);
        let status_dsts: Vec<Node> = outbox
            .iter()
            .filter(|(_, m)| matches!(m, ProtocolMsg::Status(_)))
            .map(|&(d, _)| d)
            .collect();
        assert_eq!(status_dsts.len(), 10);
    }

    #[test]
    fn t_switch_measured_from_start_to_last_ack() {
        let tree = build_sequential(6);
        let (mut coord, outbox) = SwitchCoordinator::start(SimTime::from_millis(10), &tree, 2);
        let mut acked = std::collections::HashSet::new();
        let mut last = AckOutcome::Pending;
        let mut t = SimTime::from_millis(10);
        for (dst, msg) in outbox {
            if let ProtocolMsg::Control(_) = msg {
                if acked.insert(dst) {
                    t += SimDuration::from_micros(50);
                    last = coord.on_ack(dst, t);
                }
            }
        }
        // The moving nodes + touched parents have all ACKed by now; but
        // some participants may appear only as connect_to targets already
        // covered. Drain any stragglers.
        let pending: Vec<Node> = coord.session.pending().iter().copied().collect();
        for node in pending {
            t += SimDuration::from_micros(50);
            last = coord.on_ack(node, t);
        }
        match last {
            AckOutcome::Completed { t_switch } => {
                assert_eq!(t_switch, t.since(SimTime::from_millis(10)));
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_and_stray_acks_ignored() {
        let tree = build_sequential(5);
        let (mut coord, _) = SwitchCoordinator::start(SimTime::ZERO, &tree, 2);
        let some = *coord.session.pending().iter().next().unwrap();
        assert_ne!(
            coord.on_ack(some, SimTime::from_micros(1)),
            AckOutcome::Ignored
        );
        assert_eq!(
            coord.on_ack(some, SimTime::from_micros(2)),
            AckOutcome::Ignored
        );
        // A node with nothing to do:
        let uninvolved = (0..5)
            .map(Node::Dest)
            .find(|n| !coord.session.pending().contains(n))
            .unwrap();
        assert_eq!(
            coord.on_ack(uninvolved, SimTime::from_micros(3)),
            AckOutcome::Ignored
        );
    }

    #[test]
    fn noop_switch_completes_immediately() {
        let tree = build_nonblocking(8, 3);
        let (coord, outbox) = SwitchCoordinator::start(SimTime::ZERO, &tree, 3);
        assert_eq!(coord.state(), CoordinatorState::Complete);
        assert!(outbox
            .iter()
            .all(|(_, m)| !matches!(m, ProtocolMsg::Control(_))));
    }

    #[test]
    fn control_messages_are_idempotent_at_agents() {
        let tree = build_sequential(6);
        let (coord, outbox) = SwitchCoordinator::start(SimTime::ZERO, &tree, 2);
        let mut agent = InstanceAgent::new(Node::Dest(0), tree);
        for (_, msg) in &outbox {
            if let ProtocolMsg::Control(_) = msg {
                agent.on_message(msg.clone());
                agent.on_message(msg.clone()); // duplicate delivery
            }
        }
        assert_eq!(agent.replica(), coord.new_tree());
    }

    #[test]
    fn cascading_lists_follow_the_replica() {
        let (_, agents) = run_protocol(15, 4, 2);
        for agent in &agents {
            let expect = agent.replica().children(agent.id()).to_vec();
            assert_eq!(agent.cascading(), expect);
        }
    }
}
