//! The dynamic-switching protocol (§3.4) driven over a live fabric.
//!
//! [`crate::protocol`] specifies the coordinator/agent state machines as
//! pure message handlers; this module puts them on the wire. It defines a
//! compact frame codec for [`ProtocolMsg`] (control traffic travels as
//! two-sided sends under DiffVerbs — the ring region cannot predict
//! control-message addresses, §4) and [`run_switch_over_fabric`], which
//! executes one complete switch over any [`FabricPath`] transport: the
//! coordinator thread multicasts the status + control outbox, one agent
//! thread per destination applies messages to its tree replica and ACKs,
//! the coordinator measures `T_switch` from the ACK stream, ships deferred
//! `NewStructure` notifications, and finally verifies that every replica
//! converged to the planned tree.
//!
//! The driver is transport-agnostic: run it over [`whale_net::LiveFabric`]
//! for synchronous per-send delivery or over [`whale_net::RingFabric`] for
//! the batched ring path — the converged trees are identical, only the
//! delivery schedule differs.

use crate::protocol::{AckOutcome, CoordinatorState, InstanceAgent, ProtocolMsg, SwitchCoordinator};
use crate::switching::{ControlMessage, StatusMessage};
use crate::tree::{MulticastTree, Node};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use whale_sim::{MetricsRegistry, SimDuration, SimTime};
use whale_net::{EndpointId, FabricPath, RegisterError, SendError, SendPolicy};

/// Frame tags of the wire codec.
const TAG_STATUS: u8 = 1;
const TAG_CONTROL: u8 = 2;
const TAG_NEW_STRUCTURE: u8 = 3;
const TAG_ACK: u8 = 4;
const TAG_ACK_STRUCTURE: u8 = 5;

/// Errors from decoding a protocol frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CodecError {
    /// The frame ended before the advertised fields.
    Truncated,
    /// Unknown frame tag byte.
    UnknownTag(u8),
    /// Bytes left over after the last field.
    TrailingBytes,
    /// A field held a value the frame's own header rules out (a
    /// destination index ≥ `n`, a duplicate edge, a bad enum byte).
    Malformed,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::UnknownTag(t) => write!(f, "unknown frame tag {t}"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after frame"),
            CodecError::Malformed => write!(f, "frame field out of range"),
        }
    }
}

impl std::error::Error for CodecError {}

/// `Node` on the wire: 0 is the source, `i + 1` is `Dest(i)`.
fn encode_node(n: Node) -> u32 {
    match n {
        Node::Source => 0,
        Node::Dest(i) => i + 1,
    }
}

fn decode_node(raw: u32) -> Node {
    if raw == 0 {
        Node::Source
    } else {
        Node::Dest(raw - 1)
    }
}

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, CodecError> {
        let (&b, rest) = self.buf.split_first().ok_or(CodecError::Truncated)?;
        self.buf = rest;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        if self.buf.len() < 4 {
            return Err(CodecError::Truncated);
        }
        let (head, rest) = self.buf.split_at(4);
        self.buf = rest;
        Ok(u32::from_le_bytes(head.try_into().expect("4 bytes")))
    }

    fn done(&self) -> Result<(), CodecError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }
}

/// Encode a protocol message into a self-contained little-endian frame.
pub fn encode_msg(msg: &ProtocolMsg) -> Vec<u8> {
    match msg {
        ProtocolMsg::Status(s) => {
            let dir = match s {
                StatusMessage::NegativeScaleDown => 0u8,
                StatusMessage::ActiveScaleUp => 1u8,
            };
            vec![TAG_STATUS, dir]
        }
        ProtocolMsg::Control(m) => {
            let mut out = Vec::with_capacity(14);
            out.push(TAG_CONTROL);
            out.extend_from_slice(&encode_node(m.node).to_le_bytes());
            out.push(m.disconnect_from.is_some() as u8);
            let disc = m.disconnect_from.map_or(0, encode_node);
            out.extend_from_slice(&disc.to_le_bytes());
            out.extend_from_slice(&encode_node(m.connect_to).to_le_bytes());
            out
        }
        ProtocolMsg::NewStructure(tree) => {
            // Edges in per-parent attachment order; replaying them through
            // ordered `attach` calls reproduces the relay schedule exactly.
            let mut edges = Vec::new();
            let nodes =
                std::iter::once(Node::Source).chain((0..tree.n()).map(Node::Dest));
            for parent in nodes {
                for &child in tree.children(parent) {
                    let Node::Dest(c) = child else { continue };
                    edges.push((encode_node(parent), c));
                }
            }
            let mut out = Vec::with_capacity(9 + edges.len() * 8);
            out.push(TAG_NEW_STRUCTURE);
            out.extend_from_slice(&tree.n().to_le_bytes());
            out.extend_from_slice(&(edges.len() as u32).to_le_bytes());
            for (p, c) in edges {
                out.extend_from_slice(&p.to_le_bytes());
                out.extend_from_slice(&c.to_le_bytes());
            }
            out
        }
        ProtocolMsg::Ack { from } => {
            let mut out = Vec::with_capacity(5);
            out.push(TAG_ACK);
            out.extend_from_slice(&encode_node(*from).to_le_bytes());
            out
        }
        ProtocolMsg::AckStructure { from } => {
            let mut out = Vec::with_capacity(5);
            out.push(TAG_ACK_STRUCTURE);
            out.extend_from_slice(&encode_node(*from).to_le_bytes());
            out
        }
    }
}

/// Decode a frame produced by [`encode_msg`].
pub fn decode_msg(bytes: &[u8]) -> Result<ProtocolMsg, CodecError> {
    let mut r = Reader { buf: bytes };
    let msg = match r.u8()? {
        TAG_STATUS => ProtocolMsg::Status(match r.u8()? {
            0 => StatusMessage::NegativeScaleDown,
            1 => StatusMessage::ActiveScaleUp,
            _ => return Err(CodecError::Malformed),
        }),
        TAG_CONTROL => {
            let node = decode_node(r.u32()?);
            let has_disconnect = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(CodecError::Malformed),
            };
            let disc_raw = r.u32()?;
            let connect_to = decode_node(r.u32()?);
            ProtocolMsg::Control(ControlMessage {
                node,
                disconnect_from: has_disconnect.then(|| decode_node(disc_raw)),
                connect_to,
            })
        }
        TAG_NEW_STRUCTURE => {
            let n = r.u32()?;
            let edge_count = r.u32()?;
            let mut tree = MulticastTree::empty(n);
            for _ in 0..edge_count {
                let parent = decode_node(r.u32()?);
                let child = r.u32()?;
                if child >= n || tree.parent(child).is_some() || parent == Node::Dest(child) {
                    return Err(CodecError::Malformed);
                }
                if let Node::Dest(p) = parent {
                    if p >= n {
                        return Err(CodecError::Malformed);
                    }
                }
                tree.attach(parent, child);
            }
            ProtocolMsg::NewStructure(tree)
        }
        TAG_ACK => ProtocolMsg::Ack {
            from: decode_node(r.u32()?),
        },
        TAG_ACK_STRUCTURE => ProtocolMsg::AckStructure {
            from: decode_node(r.u32()?),
        },
        t => return Err(CodecError::UnknownTag(t)),
    };
    r.done()?;
    Ok(msg)
}

/// Errors from [`run_switch_over_fabric`].
#[derive(Debug)]
pub enum DriverError {
    /// An endpoint id the driver needs is already taken on this fabric.
    Register(RegisterError),
    /// A send failed terminally (backpressure is retried, not reported).
    Send(SendError),
    /// A received frame did not decode.
    Codec(CodecError),
    /// The coordinator received a non-ACK frame.
    UnexpectedMessage,
    /// No ACK arrived within the collection timeout.
    AckTimeout,
    /// An agent thread panicked.
    AgentPanicked(Node),
    /// An agent's replica did not converge to the planned tree.
    ReplicaDiverged(Node),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Register(e) => write!(f, "endpoint registration failed: {e}"),
            DriverError::Send(e) => write!(f, "protocol send failed: {e}"),
            DriverError::Codec(e) => write!(f, "protocol frame corrupt: {e}"),
            DriverError::UnexpectedMessage => write!(f, "coordinator received a non-ACK frame"),
            DriverError::AckTimeout => write!(f, "timed out waiting for switch ACKs"),
            DriverError::AgentPanicked(n) => write!(f, "agent thread for {n} panicked"),
            DriverError::ReplicaDiverged(n) => write!(f, "replica at {n} diverged from plan"),
        }
    }
}

impl std::error::Error for DriverError {}

/// What one fabric-driven switch produced.
#[derive(Clone, Debug)]
pub struct SwitchDriverReport {
    /// The structure every replica converged to.
    pub new_tree: MulticastTree,
    /// Measured switching delay (ACK-clocked, 10 µs per distinct ACK).
    pub t_switch: SimDuration,
    /// Edges changed by the plan.
    pub moves: usize,
    /// Protocol frames the coordinator sent (status, control, deferred
    /// and shutdown, plus any ACK-timeout re-send rounds on lossy
    /// transports).
    pub frames_sent: u64,
    /// Distinct frames the coordinator serialized. Fan-out repeats a
    /// frame to many destinations, so this is ≤ `frames_sent`: the
    /// status broadcast is encoded once for all agents, each control
    /// move once for every party it touches, and the deferred
    /// `NewStructure` once for all uninvolved instances.
    pub frames_encoded: u64,
    /// ACK frames the coordinator received.
    pub acks_received: u64,
    /// Coordinator metrics under `multicast.switch.*` (pending ACKs,
    /// moves, `t_switch_secs`) plus driver frame counters.
    pub metrics: MetricsRegistry,
}

/// Coordinator endpoint of a switch round anchored at `base`; agent `i`
/// lives at `EndpointId(base + i + 1)`. A base of 0 gives the protocol a
/// dedicated fabric; a non-zero base lets the round share a fabric whose
/// low endpoint ids are already taken (the live runtime's data plane
/// carries the switch protocol above its worker endpoints).
fn coordinator_endpoint(base: u32) -> EndpointId {
    EndpointId(base)
}

fn agent_endpoint(base: u32, i: u32) -> EndpointId {
    EndpointId(base + i + 1)
}

/// Backpressure retries performed by the driver's bounded sends (shared
/// across switches; purely informational).
static DRIVER_RETRIES: AtomicU64 = AtomicU64::new(0);

/// Send one frame, waiting out ring backpressure under the default
/// [`SendPolicy`]. A `Full` that never clears within the policy deadline
/// is a terminal [`DriverError::Send`] — the driver cannot livelock on a
/// dead flusher.
fn push(
    fabric: &dyn FabricPath,
    from: EndpointId,
    to: EndpointId,
    bytes: &[u8],
) -> Result<(), DriverError> {
    SendPolicy::default()
        .run(&DRIVER_RETRIES, || fabric.send_copied(from, to, bytes))
        .map_err(DriverError::Send)
}

/// Send one already-encoded frame by reference, with the same bounded
/// backoff as [`push`]. Retries clone the `Arc`, never the bytes.
fn push_shared(
    fabric: &dyn FabricPath,
    from: EndpointId,
    to: EndpointId,
    frame: &Arc<[u8]>,
) -> Result<(), DriverError> {
    SendPolicy::default()
        .run(&DRIVER_RETRIES, || {
            fabric.send_shared(from, to, Arc::clone(frame))
        })
        .map_err(DriverError::Send)
}

/// Serialize-once fan-out cache. The coordinator's send schedule repeats
/// each frame to consecutive destinations (status broadcast to every
/// agent, a control move to all parties it touches, the deferred
/// structure to every uninvolved instance); caching the last encoded
/// frame turns those N sends into one serialization shared N ways.
struct FrameCache {
    last: Option<(ProtocolMsg, Arc<[u8]>)>,
    encoded: u64,
}

impl FrameCache {
    fn new() -> Self {
        FrameCache { last: None, encoded: 0 }
    }

    fn frame(&mut self, msg: &ProtocolMsg) -> Arc<[u8]> {
        if let Some((cached, frame)) = &self.last {
            if cached == msg {
                return Arc::clone(frame);
            }
        }
        let frame: Arc<[u8]> = encode_msg(msg).into();
        self.encoded += 1;
        self.last = Some((msg.clone(), Arc::clone(&frame)));
        frame
    }
}

/// Execute one complete switch of `tree` to maximum out-degree `new_d`
/// over `fabric`, with real coordinator/agent threads exchanging encoded
/// frames. Endpoints `0..=n` on the fabric must be free; they are
/// registered on entry and deregistered before returning.
///
/// The ACK clock is virtual — each *distinct* pending ACK "arrives" 10 µs
/// after the previous one (duplicates don't advance it) — so `t_switch`
/// is deterministic across transports and runs.
pub fn run_switch_over_fabric(
    fabric: Arc<dyn FabricPath>,
    tree: &MulticastTree,
    new_d: u32,
) -> Result<SwitchDriverReport, DriverError> {
    run_switch_over_fabric_at(fabric, tree, new_d, 0)
}

/// [`run_switch_over_fabric`] anchored at `endpoint_base`: the protocol
/// occupies endpoints `base..=base + n` instead of `0..=n`, so it can run
/// over a fabric whose low ids belong to another plane (the live runtime
/// keeps workers at `0..n_workers` and carries switch rounds above them).
pub fn run_switch_over_fabric_at(
    fabric: Arc<dyn FabricPath>,
    tree: &MulticastTree,
    new_d: u32,
    endpoint_base: u32,
) -> Result<SwitchDriverReport, DriverError> {
    let n = tree.n();
    let base = endpoint_base;
    let coord_rx = fabric
        .register(coordinator_endpoint(base))
        .map_err(DriverError::Register)?;
    let mut agent_rx = Vec::with_capacity(n as usize);
    for i in 0..n {
        match fabric.register(agent_endpoint(base, i)) {
            Ok(rx) => agent_rx.push(rx),
            Err(e) => {
                fabric.deregister(coordinator_endpoint(base));
                for j in 0..i {
                    fabric.deregister(agent_endpoint(base, j));
                }
                return Err(DriverError::Register(e));
            }
        }
    }

    // Agent threads: decode frames, apply them to the replica, ACK when
    // owed; an empty frame is the shutdown signal. Each returns its final
    // replica for convergence checking.
    let mut handles = Vec::with_capacity(n as usize);
    for (i, rx) in agent_rx.into_iter().enumerate() {
        let fabric = Arc::clone(&fabric);
        let replica = tree.clone();
        handles.push(std::thread::spawn(move || -> Result<MulticastTree, DriverError> {
            let me = Node::Dest(i as u32);
            let mut agent = InstanceAgent::new(me, replica);
            while let Ok(msg) = rx.recv() {
                if msg.payload.is_empty() {
                    break;
                }
                let decoded = decode_msg(msg.payload.bytes()).map_err(DriverError::Codec)?;
                if let Some(ack) = agent.on_message(decoded) {
                    push(
                        fabric.as_ref(),
                        agent_endpoint(base, i as u32),
                        coordinator_endpoint(base),
                        &encode_msg(&ack),
                    )?;
                }
            }
            Ok(agent.replica().clone())
        }));
    }

    let run = || -> Result<(SwitchCoordinator, SimDuration, u64, u64, u64), DriverError> {
        let (mut coord, outbox) = SwitchCoordinator::start(SimTime::ZERO, tree, new_d);
        let mut frames_sent = 0u64;
        let mut cache = FrameCache::new();
        let mut send_to = |node: Node, msg: &ProtocolMsg| -> Result<(), DriverError> {
            let Node::Dest(i) = node else { return Ok(()) };
            frames_sent += 1;
            let frame = cache.frame(msg);
            push_shared(fabric.as_ref(), coordinator_endpoint(base), agent_endpoint(base, i), &frame)
        };
        for (dst, msg) in &outbox {
            send_to(*dst, msg)?;
        }
        fabric.flush();

        // Phase 3: collect ACKs on the virtual clock until the session
        // completes. A no-op plan is born complete and owes none. Lost
        // control frames or lost ACKs are tolerated: if no ACK lands
        // within the retry interval, the announcement outbox is re-sent
        // wholesale (agents apply control messages idempotently and
        // always re-ACK; the coordinator ignores duplicate ACKs), up to
        // a bounded number of rounds before giving up with `AckTimeout`.
        const ACK_RETRY_INTERVAL: std::time::Duration = std::time::Duration::from_millis(250);
        const MAX_RESEND_ROUNDS: u32 = 8;
        let mut resend_rounds = 0u32;
        let mut now = SimTime::ZERO;
        let mut t_switch = SimDuration::ZERO;
        let mut acks_received = 0u64;
        while coord.state() == CoordinatorState::AwaitingAcks {
            let msg = match coord_rx.recv_timeout(ACK_RETRY_INTERVAL) {
                Ok(m) => m,
                Err(_) => {
                    resend_rounds += 1;
                    if resend_rounds > MAX_RESEND_ROUNDS {
                        return Err(DriverError::AckTimeout);
                    }
                    for (dst, msg) in &outbox {
                        send_to(*dst, msg)?;
                    }
                    fabric.flush();
                    continue;
                }
            };
            let ProtocolMsg::Ack { from } =
                decode_msg(msg.payload.bytes()).map_err(DriverError::Codec)?
            else {
                return Err(DriverError::UnexpectedMessage);
            };
            acks_received += 1;
            // Advance the clock only for ACKs the session was waiting on:
            // agents ACK every control delivery, so duplicates arrive in a
            // thread-interleaving-dependent order — counting them would
            // make `t_switch` differ run to run.
            let tentative = now + SimDuration::from_micros(10);
            match coord.on_ack(from, tentative) {
                AckOutcome::Ignored => {}
                AckOutcome::Pending => now = tentative,
                AckOutcome::Completed { t_switch: t } => {
                    now = tentative;
                    t_switch = t;
                }
            }
        }

        // Phase 4: deferred full-structure updates. Agents confirm these
        // with a dedicated `AckStructure` (a late duplicate control ACK
        // must not pass for one), so a lossy transport gets the same
        // bounded re-send treatment: each instance is re-notified until
        // its confirmation lands. The broadcast also reconciles replicas
        // whose per-move control frames were partially lost — a node
        // owing several controls ACKs after the first, so control ACKs
        // alone cannot prove full application.
        let deferred = coord.deferred_notifications();
        let mut awaiting: std::collections::HashSet<Node> =
            deferred.iter().map(|&(dst, _)| dst).collect();
        for (dst, msg) in &deferred {
            send_to(*dst, msg)?;
        }
        fabric.flush();
        let mut deferred_rounds = 0u32;
        while !awaiting.is_empty() {
            match coord_rx.recv_timeout(ACK_RETRY_INTERVAL) {
                Ok(msg) => {
                    match decode_msg(msg.payload.bytes()).map_err(DriverError::Codec)? {
                        ProtocolMsg::AckStructure { from } => {
                            acks_received += 1;
                            awaiting.remove(&from);
                        }
                        // A duplicated control ACK from phase 3 may still
                        // be in flight; it confirms nothing here.
                        ProtocolMsg::Ack { .. } => acks_received += 1,
                        _ => return Err(DriverError::UnexpectedMessage),
                    }
                }
                Err(_) => {
                    deferred_rounds += 1;
                    if deferred_rounds > MAX_RESEND_ROUNDS {
                        return Err(DriverError::AckTimeout);
                    }
                    for (dst, msg) in &deferred {
                        if awaiting.contains(dst) {
                            send_to(*dst, msg)?;
                        }
                    }
                    fabric.flush();
                }
            }
        }

        // Phase 5: shutdown frames (one shared empty frame per agent).
        let shutdown: Arc<[u8]> = Vec::new().into();
        for i in 0..n {
            frames_sent += 1;
            push_shared(fabric.as_ref(), coordinator_endpoint(base), agent_endpoint(base, i), &shutdown)?;
        }
        fabric.flush();
        Ok((coord, t_switch, frames_sent, cache.encoded, acks_received))
    };
    let result = run();
    if result.is_err() {
        // Best-effort shutdown frames so agents unblock before the join
        // below (the success path sent them inside `run`).
        for i in 0..n {
            let _ = fabric.send_copied(coordinator_endpoint(base), agent_endpoint(base, i), &[]);
        }
        fabric.flush();
    }

    // Deregister the agent endpoints before joining: closing each inbox
    // unblocks its agent even if a lossy transport swallowed the shutdown
    // frame (frames already queued are still drained first).
    for i in 0..n {
        fabric.deregister(agent_endpoint(base, i));
    }
    // Join every agent before reporting any failure — a poisoned run must
    // not leak threads.
    let mut replicas = Vec::with_capacity(n as usize);
    let mut panicked = None;
    for (i, h) in handles.into_iter().enumerate() {
        match h.join() {
            Ok(r) => replicas.push((Node::Dest(i as u32), r)),
            Err(_) => panicked = Some(Node::Dest(i as u32)),
        }
    }
    fabric.deregister(coordinator_endpoint(base));
    let (coord, t_switch, frames_sent, frames_encoded, acks_received) = result?;
    if let Some(node) = panicked {
        return Err(DriverError::AgentPanicked(node));
    }

    for (node, replica) in replicas {
        let replica = replica?;
        if &replica != coord.new_tree() {
            return Err(DriverError::ReplicaDiverged(node));
        }
    }

    let mut metrics = MetricsRegistry::new();
    coord.export_metrics(&mut metrics, "multicast.switch");
    metrics.set_counter("multicast.switch.frames_sent", frames_sent);
    metrics.set_counter("multicast.switch.frames_encoded", frames_encoded);
    metrics.set_counter("multicast.switch.acks_received", acks_received);
    Ok(SwitchDriverReport {
        new_tree: coord.new_tree().clone(),
        t_switch,
        moves: coord.plan().moves.len(),
        frames_sent,
        frames_encoded,
        acks_received,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_nonblocking, build_sequential};
    use whale_net::LiveFabric;

    fn roundtrip(msg: ProtocolMsg) {
        let bytes = encode_msg(&msg);
        assert_eq!(decode_msg(&bytes).unwrap(), msg, "frame: {bytes:?}");
    }

    #[test]
    fn codec_roundtrips_every_variant() {
        roundtrip(ProtocolMsg::Status(StatusMessage::NegativeScaleDown));
        roundtrip(ProtocolMsg::Status(StatusMessage::ActiveScaleUp));
        roundtrip(ProtocolMsg::Control(ControlMessage {
            node: Node::Dest(7),
            disconnect_from: Some(Node::Source),
            connect_to: Node::Dest(3),
        }));
        roundtrip(ProtocolMsg::Control(ControlMessage {
            node: Node::Dest(0),
            disconnect_from: None,
            connect_to: Node::Source,
        }));
        roundtrip(ProtocolMsg::Ack { from: Node::Dest(12) });
        roundtrip(ProtocolMsg::AckStructure { from: Node::Dest(4) });
        roundtrip(ProtocolMsg::NewStructure(build_nonblocking(17, 3)));
        roundtrip(ProtocolMsg::NewStructure(build_sequential(6)));
        roundtrip(ProtocolMsg::NewStructure(MulticastTree::empty(4)));
    }

    #[test]
    fn codec_preserves_relay_order() {
        // Children order is the relay schedule; a codec that sorted edges
        // would silently change completion times.
        let mut tree = MulticastTree::empty(4);
        tree.attach(Node::Source, 2);
        tree.attach(Node::Source, 0);
        tree.attach(Node::Dest(2), 3);
        tree.attach(Node::Dest(2), 1);
        let ProtocolMsg::NewStructure(decoded) =
            decode_msg(&encode_msg(&ProtocolMsg::NewStructure(tree.clone()))).unwrap()
        else {
            panic!("wrong variant");
        };
        assert_eq!(decoded.children(Node::Source), tree.children(Node::Source));
        assert_eq!(
            decoded.children(Node::Dest(2)),
            tree.children(Node::Dest(2))
        );
    }

    #[test]
    fn codec_rejects_malformed_frames() {
        assert_eq!(decode_msg(&[]), Err(CodecError::Truncated));
        assert_eq!(decode_msg(&[99]), Err(CodecError::UnknownTag(99)));
        assert_eq!(decode_msg(&[TAG_STATUS, 7]), Err(CodecError::Malformed));
        assert_eq!(decode_msg(&[TAG_ACK, 1, 0]), Err(CodecError::Truncated));
        let mut ok = encode_msg(&ProtocolMsg::Ack { from: Node::Dest(0) });
        ok.push(0);
        assert_eq!(decode_msg(&ok), Err(CodecError::TrailingBytes));
        // NewStructure with a child index out of range.
        let mut bad = vec![TAG_NEW_STRUCTURE];
        bad.extend_from_slice(&2u32.to_le_bytes()); // n = 2
        bad.extend_from_slice(&1u32.to_le_bytes()); // one edge
        bad.extend_from_slice(&0u32.to_le_bytes()); // parent = Source
        bad.extend_from_slice(&5u32.to_le_bytes()); // child 5 >= n
        assert_eq!(decode_msg(&bad), Err(CodecError::Malformed));
    }

    #[test]
    fn driver_converges_over_live_fabric() {
        let tree = build_nonblocking(12, 4);
        let fabric: Arc<dyn FabricPath> = Arc::new(LiveFabric::new());
        let report = run_switch_over_fabric(Arc::clone(&fabric), &tree, 2).unwrap();
        report.new_tree.validate(2).unwrap();
        assert!(report.t_switch > SimDuration::ZERO);
        assert!(report.moves > 0);
        assert_eq!(
            report.metrics.counter("multicast.switch.moves"),
            Some(report.moves as u64)
        );
        assert_eq!(report.metrics.gauge("multicast.switch.pending_acks"), Some(0.0));
        assert!(report.metrics.gauge("multicast.switch.t_switch_secs").unwrap() > 0.0);
        // Serialize-once fan-out: the status broadcast alone repeats one
        // frame to all 12 agents, so far fewer frames are encoded than
        // sent (shutdown frames are shared too and encode nothing).
        assert!(report.frames_encoded > 0);
        assert!(
            report.frames_encoded + 12 <= report.frames_sent,
            "encoded {} of {} sent frames",
            report.frames_encoded,
            report.frames_sent
        );
        assert_eq!(
            report.metrics.counter("multicast.switch.frames_encoded"),
            Some(report.frames_encoded)
        );
        // Endpoints released: the driver can run again on the same fabric.
        let again = run_switch_over_fabric(fabric, &report.new_tree, 4).unwrap();
        again.new_tree.validate(4).unwrap();
    }

    #[test]
    fn driver_converges_over_one_sided_fabric() {
        // Remote-fetch transport: frames sit in per-link outboxes until the
        // fetcher thread pulls them, so the protocol must converge without
        // any synchronous delivery guarantee.
        let tree = build_nonblocking(12, 4);
        let mut instance =
            whale_net::FabricKind::OneSided(whale_net::OneSidedConfig::default()).build();
        let report = run_switch_over_fabric(Arc::clone(&instance.fabric), &tree, 2).unwrap();
        report.new_tree.validate(2).unwrap();
        assert!(report.t_switch > SimDuration::ZERO);
        assert!(report.moves > 0);
        assert_eq!(report.metrics.gauge("multicast.switch.pending_acks"), Some(0.0));
        // The shared status broadcast stays serialize-once on this path too.
        assert!(report.frames_encoded + 12 <= report.frames_sent);
        // Endpoints released: the driver can run again on the same fabric.
        let again = run_switch_over_fabric(Arc::clone(&instance.fabric), &report.new_tree, 4)
            .unwrap();
        again.new_tree.validate(4).unwrap();
        instance.shutdown();
    }

    #[test]
    fn noop_switch_completes_without_acks() {
        let tree = build_nonblocking(8, 3);
        let fabric: Arc<dyn FabricPath> = Arc::new(LiveFabric::new());
        let report = run_switch_over_fabric(Arc::clone(&fabric), &tree, 3).unwrap();
        assert_eq!(report.moves, 0);
        // No control ACKs, but every agent still confirms the final
        // structure broadcast.
        assert_eq!(report.acks_received, 8);
        assert_eq!(&report.new_tree, &tree);
    }

    #[test]
    fn driver_tolerates_lost_and_duplicated_protocol_frames() {
        // A quarter of all frames are dropped and another quarter
        // duplicated — control messages, ACKs, and even the shutdown
        // frames. The coordinator's re-send rounds, the agents'
        // idempotent handlers, and the coordinator-side duplicate-ACK
        // dedup must still converge every replica.
        let tree = build_nonblocking(10, 4);
        let inner: Arc<dyn FabricPath> = Arc::new(LiveFabric::new());
        let plan = whale_net::FaultPlan {
            seed: 42,
            default_link: whale_net::LinkFaults {
                drop: 0.25,
                duplicate: 0.25,
                ..whale_net::LinkFaults::default()
            },
            ..whale_net::FaultPlan::default()
        };
        let fault = Arc::new(whale_net::FaultFabric::new(inner, plan));
        let fabric: Arc<dyn FabricPath> = Arc::clone(&fault) as Arc<dyn FabricPath>;
        let report = run_switch_over_fabric(fabric, &tree, 2).unwrap();
        report.new_tree.validate(2).unwrap();
        assert!(report.moves > 0);
        assert!(fault.drops() > 0, "the plan must actually drop frames");
        // Lost ACKs surface as extra coordinator receives or re-sends,
        // never as divergence.
        assert!(report.acks_received >= report.moves as u64);
    }

    #[test]
    fn occupied_endpoint_is_a_register_error() {
        let tree = build_sequential(4);
        let fabric = Arc::new(LiveFabric::new());
        let _held = fabric.register(EndpointId(2)).unwrap();
        let dyn_fabric: Arc<dyn FabricPath> = Arc::clone(&fabric) as Arc<dyn FabricPath>;
        let err = run_switch_over_fabric(dyn_fabric, &tree, 2).unwrap_err();
        assert!(matches!(err, DriverError::Register(_)), "got {err:?}");
        // The failed attempt must not leave partial registrations behind.
        assert_eq!(fabric.endpoint_count(), 1);
    }
}
