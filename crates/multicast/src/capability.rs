//! Multicast capability analysis (§3.2.2, Theorems 1–2) and the relay
//! schedule simulator.
//!
//! Time is measured in relay units: one unit = one hop's tuple processing
//! time `t_e`. In every unit, each node holding a tuple forwards it to one
//! of its not-yet-served children, in attachment order — exactly the
//! walkthrough of Fig 6. The closed-form recurrence (Eqs 6–7) and the
//! simulator must agree; tests enforce that.

use crate::tree::{MulticastTree, Node};

/// Cumulative multicast capability `L(t)`: how many nodes (including the
/// source) hold the tuple after `t` time units, for a non-blocking tree
/// with unlimited destinations and out-degree cap `d_star`.
///
/// Eq. (6): `L(t) = 2·L(t-1)` while every holder is still forwarding;
/// Eq. (7): `L(t) = 2·L(t-1) - L(t-d*-1)` once nodes saturate their cap.
///
/// ```
/// use whale_multicast::capability;
/// // Uncapped: doubles every unit. Capped at 2: 1, 2, 4, 7, 12, ...
/// assert_eq!(capability(30, 4), 16);
/// assert_eq!(capability(2, 4), 12);
/// ```
pub fn capability(d_star: u32, t: u32) -> u64 {
    assert!(d_star >= 1);
    let t = t as usize;
    let d = d_star as usize;
    let mut l = vec![0u64; t + 1];
    l[0] = 1;
    for i in 1..=t {
        let doubled = l[i - 1].saturating_mul(2);
        l[i] = if i <= d {
            doubled
        } else {
            // Nodes that received the tuple more than d* units ago have
            // finished their d* sends and no longer contribute.
            doubled.saturating_sub(l[i - d - 1])
        };
    }
    l[t]
}

/// Smallest number of time units after which a non-blocking tree with cap
/// `d_star` has delivered to at least `n` destinations.
pub fn completion_time(d_star: u32, n: u32) -> u32 {
    let target = n as u64 + 1; // destinations + source
    let mut t = 0;
    while capability(d_star, t) < target {
        t += 1;
        assert!(t < 10_000, "completion time diverged (d*={d_star}, n={n})");
    }
    t
}

/// The delivery schedule of one tuple through a tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TupleSchedule {
    /// Arrival time unit of each destination (index = destination id).
    pub arrivals: Vec<u64>,
    /// Unit at which the last destination received the tuple.
    pub complete: u64,
    /// Unit at which the source finished sending to its children — when it
    /// can take up the next tuple (drives `µ = 1/(d0·t_e)`).
    pub source_done: u64,
}

impl TupleSchedule {
    /// Multicast latency in time units, measured from the tuple entering
    /// the source at `enter`.
    pub fn latency(&self, enter: u64) -> u64 {
        self.complete - enter
    }
}

/// Simulates relay forwarding over a concrete tree, with per-node busy
/// clocks that persist across tuples (pipelining: a relay may still be
/// forwarding tuple *k* when *k+1* arrives).
#[derive(Clone, Debug)]
pub struct RelaySim {
    tree: MulticastTree,
    /// free[0] = source, free[1+i] = Dest(i): unit after which the node's
    /// sender is available.
    free: Vec<u64>,
}

impl RelaySim {
    /// New simulator over a validated tree.
    pub fn new(tree: MulticastTree) -> Self {
        let n = tree.n() as usize;
        RelaySim {
            tree,
            free: vec![0; 1 + n],
        }
    }

    /// The tree being simulated.
    pub fn tree(&self) -> &MulticastTree {
        &self.tree
    }

    fn slot(node: Node) -> usize {
        match node {
            Node::Source => 0,
            Node::Dest(i) => 1 + i as usize,
        }
    }

    /// Deliver one tuple entering the source at time unit `enter`.
    pub fn multicast(&mut self, enter: u64) -> TupleSchedule {
        let n = self.tree.n() as usize;
        let mut arrivals = vec![u64::MAX; n];
        let mut source_done = enter;
        // Process nodes in order of tuple arrival (min-heap).
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(std::cmp::Reverse((enter, Node::Source)));
        let mut complete = enter;
        while let Some(std::cmp::Reverse((arrived, node))) = heap.pop() {
            if let Node::Dest(i) = node {
                arrivals[i as usize] = arrived;
                complete = complete.max(arrived);
            }
            let slot = Self::slot(node);
            // The node starts forwarding in the unit after it has the tuple,
            // once its sender is free from previous tuples.
            let mut t = self.free[slot].max(arrived);
            for &child in self.tree.children(node) {
                t += 1; // one send per time unit
                heap.push(std::cmp::Reverse((t, child)));
            }
            self.free[slot] = t;
            if node == Node::Source {
                source_done = t;
            }
        }
        TupleSchedule {
            arrivals,
            complete,
            source_done,
        }
    }

    /// Deliver a back-to-back stream of `k` tuples entering one unit apart
    /// starting at `start`; returns each tuple's schedule.
    pub fn multicast_stream(
        &mut self,
        start: u64,
        k: u32,
        inter_arrival: u64,
    ) -> Vec<TupleSchedule> {
        (0..k as u64)
            .map(|i| self.multicast(start + i * inter_arrival))
            .collect()
    }

    /// Reset all busy clocks.
    pub fn reset(&mut self) {
        self.free.iter_mut().for_each(|f| *f = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_binomial, build_nonblocking, build_sequential};

    #[test]
    fn capability_uncapped_doubles() {
        // With a huge cap, L(t) = 2^t (Eq. 6).
        for t in 0..10 {
            assert_eq!(capability(30, t), 1u64 << t);
        }
    }

    #[test]
    fn capability_capped_recurrence() {
        // d* = 2: L = 1,2,4,7,12,20,33,...  (L(t)=2L(t-1)-L(t-3)).
        let expect = [1u64, 2, 4, 7, 12, 20, 33, 54, 88];
        for (t, &e) in expect.iter().enumerate() {
            assert_eq!(capability(2, t as u32), e, "t={t}");
        }
    }

    #[test]
    fn theorem2_capability_monotone_in_dstar() {
        for t in 1..12 {
            for d in 1..8 {
                assert!(
                    capability(d, t) <= capability(d + 1, t),
                    "L must be non-decreasing in d* (d={d}, t={t})"
                );
            }
        }
        // Strict somewhere: d*=2 vs d*=3 differ by t=4.
        assert!(capability(2, 4) < capability(3, 4));
    }

    #[test]
    fn capability_matches_simulated_tree() {
        // The closed form must agree with an actual tree simulation when
        // the tree is large enough not to run out of destinations.
        for d_star in [1u32, 2, 3, 4] {
            let n = 600;
            let tree = build_nonblocking(n, d_star);
            let mut sim = RelaySim::new(tree);
            let sched = sim.multicast(0);
            for t in 1..=8u32 {
                let reached = 1 + sched
                    .arrivals
                    .iter()
                    .filter(|&&a| a != u64::MAX && a <= t as u64)
                    .count() as u64;
                let predicted = capability(d_star, t).min(n as u64 + 1);
                assert_eq!(reached, predicted, "d*={d_star} t={t}");
            }
        }
    }

    #[test]
    fn completion_time_binomial_is_log() {
        // n = 2^k - 1 completes in k units with an uncapped tree.
        assert_eq!(completion_time(30, 15), 4);
        assert_eq!(completion_time(30, 31), 5);
        // Sequential-like chain (d*=1): much slower.
        assert!(completion_time(1, 31) > 7);
    }

    #[test]
    fn fig6_walkthrough_exact() {
        // Reproduce the paper's Fig 6 two-tuple walkthrough step by step.
        let tree = build_nonblocking(7, 2);
        let mut sim = RelaySim::new(tree);
        // Tuple t1 enters at unit 0.
        let s1 = sim.multicast(0);
        // T_{1-1}=T0 at 1; T_{2-1}=T1 at 2; T_{2-2}=T2 at 2;
        // T_{3-1}=T3 at 3; T_{3-2}=T4 at 3; T_{3-3}=T5 at 3; T_{4-1}=T6 at 4.
        assert_eq!(s1.arrivals, vec![1, 2, 2, 3, 3, 3, 4]);
        assert_eq!(s1.complete, 4);
        assert_eq!(s1.source_done, 2, "S sends t1 in units 1 and 2");
        // Tuple t2 enters at unit 2 ("in the third time unit t2 arrives").
        let s2 = sim.multicast(2);
        // S sends t2 to T0 in unit 3 and to T1 in unit 4.
        assert_eq!(s2.arrivals[0], 3);
        assert_eq!(s2.arrivals[1], 4);
        // T0 sends t2 to T2 in unit 4 (paper: "T1-1 sends t2 to T2-2").
        assert_eq!(s2.arrivals[2], 4);
        assert_eq!(s2.source_done, 4);
    }

    #[test]
    fn sequential_latency_linear() {
        let mut sim = RelaySim::new(build_sequential(100));
        let s = sim.multicast(0);
        assert_eq!(s.complete, 100);
        assert_eq!(s.source_done, 100, "source busy for all n sends");
        assert_eq!(s.arrivals[0], 1);
        assert_eq!(s.arrivals[99], 100);
    }

    #[test]
    fn binomial_latency_logarithmic() {
        let mut sim = RelaySim::new(build_binomial(480));
        let s = sim.multicast(0);
        assert_eq!(s.complete, completion_time(u32::MAX - 1, 480) as u64);
        assert!(s.complete <= 9, "binomial over 480 completes in ~9 units");
        assert_eq!(s.source_done, 9, "source degree is 9");
    }

    #[test]
    fn nonblocking_source_frees_faster_than_binomial() {
        // The whole point: capping d* frees the source sooner, at slightly
        // higher completion time.
        let mut nb = RelaySim::new(build_nonblocking(480, 3));
        let mut bi = RelaySim::new(build_binomial(480));
        let s_nb = nb.multicast(0);
        let s_bi = bi.multicast(0);
        assert!(s_nb.source_done < s_bi.source_done);
        assert!(s_nb.complete >= s_bi.complete);
        assert!(
            s_nb.complete <= s_bi.complete + 5,
            "cap 3 costs only a few extra units"
        );
    }

    #[test]
    fn pipelining_consecutive_tuples() {
        // With d* = 2 the source is busy 2 units per tuple, so a stream
        // arriving every 2 units never queues; every tuple's latency is
        // the same as the first.
        let tree = build_nonblocking(63, 2);
        let mut sim = RelaySim::new(tree);
        let schedules = sim.multicast_stream(0, 10, 2);
        let lat0 = schedules[0].latency(0);
        for (i, s) in schedules.iter().enumerate() {
            assert_eq!(
                s.latency(i as u64 * 2),
                lat0,
                "tuple {i} latency must not grow"
            );
        }
    }

    #[test]
    fn overload_grows_queueing_delay() {
        // Arriving every 1 unit with d* = 3 (source busy 3 units/tuple):
        // latencies must grow without bound.
        let tree = build_nonblocking(63, 3);
        let mut sim = RelaySim::new(tree);
        let schedules = sim.multicast_stream(0, 20, 1);
        let first = schedules[0].latency(0);
        let last = schedules[19].latency(19);
        assert!(last > first + 20, "first={first} last={last}");
    }

    #[test]
    fn single_destination() {
        let mut sim = RelaySim::new(build_nonblocking(1, 3));
        let s = sim.multicast(0);
        assert_eq!(s.arrivals, vec![1]);
        assert_eq!(s.complete, 1);
        assert_eq!(s.source_done, 1);
    }

    #[test]
    fn reset_clears_pipelining_state() {
        let mut sim = RelaySim::new(build_nonblocking(15, 2));
        let a = sim.multicast(0);
        sim.reset();
        let b = sim.multicast(0);
        assert_eq!(a, b);
    }
}
