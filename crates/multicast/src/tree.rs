//! The multicast tree structure.
//!
//! A [`MulticastTree`] organizes the source `S` and `n` destination
//! instances into a relay tree: every node forwards each tuple to its
//! children, one per time unit, in attachment order. The structural
//! invariants the paper's algorithms rely on — connectivity, acyclicity,
//! bounded out-degree — are checkable with [`MulticastTree::validate`].

use std::collections::VecDeque;
use std::fmt;

/// A node in the multicast tree.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Node {
    /// The source instance `S`.
    Source,
    /// The `i`th destination instance (0-based).
    Dest(u32),
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::Source => write!(f, "S"),
            Node::Dest(i) => write!(f, "T{i}"),
        }
    }
}

/// Structural problems [`MulticastTree::validate`] can detect.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TreeError {
    /// A destination is not reachable from the source.
    Disconnected(Node),
    /// A node's out-degree exceeds the allowed maximum.
    DegreeExceeded {
        /// The offending node.
        node: Node,
        /// Its out-degree.
        degree: u32,
        /// The allowed maximum.
        max: u32,
    },
    /// A node appears as a child of two parents (or of itself).
    NotATree(Node),
    /// The number of destinations in the tree differs from `n`.
    WrongCount {
        /// Destinations found.
        found: u32,
        /// Destinations expected.
        expected: u32,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Disconnected(n) => write!(f, "{n} unreachable from source"),
            TreeError::DegreeExceeded { node, degree, max } => {
                write!(f, "{node} has out-degree {degree} > max {max}")
            }
            TreeError::NotATree(n) => write!(f, "{n} has multiple parents"),
            TreeError::WrongCount { found, expected } => {
                write!(f, "tree holds {found} destinations, expected {expected}")
            }
        }
    }
}

impl std::error::Error for TreeError {}

/// A rooted multicast tree over the source and `n` destinations.
///
/// Children are kept in attachment order; that order is the relay
/// schedule (first child served in the first time unit after receipt).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MulticastTree {
    n: u32,
    /// children[0] is the source; children[1 + i] is Dest(i).
    children: Vec<Vec<Node>>,
    /// parent[i] for Dest(i); None if detached.
    parent: Vec<Option<Node>>,
}

impl MulticastTree {
    /// An edgeless tree over `n` destinations (all detached).
    pub fn empty(n: u32) -> Self {
        MulticastTree {
            n,
            children: vec![Vec::new(); 1 + n as usize],
            parent: vec![None; n as usize],
        }
    }

    fn slot(&self, node: Node) -> usize {
        match node {
            Node::Source => 0,
            Node::Dest(i) => {
                assert!(i < self.n, "destination {i} out of range (n={})", self.n);
                1 + i as usize
            }
        }
    }

    /// Number of destinations.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Children of a node, in attachment (relay) order.
    pub fn children(&self, node: Node) -> &[Node] {
        &self.children[self.slot(node)]
    }

    /// Out-degree of a node.
    pub fn out_degree(&self, node: Node) -> u32 {
        self.children[self.slot(node)].len() as u32
    }

    /// Parent of a destination (None if detached). The source has no parent.
    pub fn parent(&self, dest: u32) -> Option<Node> {
        self.parent[dest as usize]
    }

    /// Attach `Dest(child)` under `parent`. The child must be detached.
    pub fn attach(&mut self, parent: Node, child: u32) {
        assert!(
            self.parent[child as usize].is_none(),
            "T{child} is already attached"
        );
        assert!(
            parent != Node::Dest(child),
            "a node cannot be its own parent"
        );
        let slot = self.slot(parent);
        self.children[slot].push(Node::Dest(child));
        self.parent[child as usize] = Some(parent);
    }

    /// Detach `Dest(child)` from its parent (its own subtree stays intact
    /// below it). Returns the former parent.
    pub fn detach(&mut self, child: u32) -> Option<Node> {
        let parent = self.parent[child as usize].take()?;
        let slot = self.slot(parent);
        let pos = self.children[slot]
            .iter()
            .position(|&c| c == Node::Dest(child))
            .expect("parent must list the child");
        self.children[slot].remove(pos);
        Some(parent)
    }

    /// Breadth-first traversal from the source; yields `(node, depth)`.
    /// Depth 0 is the source.
    pub fn bfs(&self) -> Vec<(Node, u32)> {
        let mut out = Vec::with_capacity(1 + self.n as usize);
        let mut q = VecDeque::new();
        q.push_back((Node::Source, 0));
        while let Some((node, d)) = q.pop_front() {
            out.push((node, d));
            for &c in self.children(node) {
                q.push_back((c, d + 1));
            }
        }
        out
    }

    /// Depth of a node (hops from source), or None if unreachable.
    pub fn depth(&self, node: Node) -> Option<u32> {
        self.bfs()
            .into_iter()
            .find(|&(n, _)| n == node)
            .map(|(_, d)| d)
    }

    /// Height of the tree (max depth over reachable nodes).
    pub fn height(&self) -> u32 {
        self.bfs().into_iter().map(|(_, d)| d).max().unwrap_or(0)
    }

    /// Destinations reachable from the source.
    pub fn reachable_count(&self) -> u32 {
        (self.bfs().len() - 1) as u32
    }

    /// All destinations of the subtree rooted at `root` (inclusive).
    pub fn subtree(&self, root: u32) -> Vec<u32> {
        let mut out = Vec::new();
        let mut q = VecDeque::new();
        q.push_back(Node::Dest(root));
        while let Some(node) = q.pop_front() {
            if let Node::Dest(i) = node {
                out.push(i);
            }
            for &c in self.children(node) {
                q.push_back(c);
            }
        }
        out
    }

    /// Validate all structural invariants against a maximum out-degree.
    /// `max_degree = u32::MAX` checks connectivity only.
    pub fn validate(&self, max_degree: u32) -> Result<(), TreeError> {
        // Degree check.
        let all_nodes = std::iter::once(Node::Source).chain((0..self.n).map(Node::Dest));
        for node in all_nodes {
            let d = self.out_degree(node);
            if d > max_degree {
                return Err(TreeError::DegreeExceeded {
                    node,
                    degree: d,
                    max: max_degree,
                });
            }
        }
        // Single-parent check (each Dest appears as a child at most once).
        let mut seen = vec![false; self.n as usize];
        for slot in 0..self.children.len() {
            for &c in &self.children[slot] {
                if let Node::Dest(i) = c {
                    if seen[i as usize] {
                        return Err(TreeError::NotATree(c));
                    }
                    seen[i as usize] = true;
                }
            }
        }
        // Connectivity.
        let reach = self.reachable_count();
        if reach != self.n {
            let missing = (0..self.n)
                .find(|&i| self.depth(Node::Dest(i)).is_none())
                .map(Node::Dest)
                .unwrap_or(Node::Source);
            if self.parent.iter().filter(|p| p.is_some()).count() as u32 == self.n {
                // everyone has a parent but not reachable → cycle among dests
                return Err(TreeError::NotATree(missing));
            }
            return Err(TreeError::Disconnected(missing));
        }
        Ok(())
    }

    /// Render the tree as indented ASCII, children in relay order.
    ///
    /// ```text
    /// S
    /// ├── T0
    /// │   ├── T2
    /// │   └── T3
    /// └── T1
    /// ```
    pub fn render_ascii(&self) -> String {
        fn walk(tree: &MulticastTree, node: Node, prefix: &str, out: &mut String) {
            let children = tree.children(node);
            for (i, &c) in children.iter().enumerate() {
                let last = i + 1 == children.len();
                let (branch, cont) = if last {
                    ("└── ", "    ")
                } else {
                    ("├── ", "│   ")
                };
                out.push_str(prefix);
                out.push_str(branch);
                out.push_str(&c.to_string());
                out.push('\n');
                walk(tree, c, &format!("{prefix}{cont}"), out);
            }
        }
        let mut out = String::from("S\n");
        walk(self, Node::Source, "", &mut out);
        out
    }

    /// Per-node out-degree histogram `(degree → count)`, for diagnostics.
    pub fn degree_histogram(&self) -> std::collections::BTreeMap<u32, u32> {
        let mut map = std::collections::BTreeMap::new();
        *map.entry(self.out_degree(Node::Source)).or_insert(0) += 1;
        for i in 0..self.n {
            *map.entry(self.out_degree(Node::Dest(i))).or_insert(0) += 1;
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig 6 example: |T| = 7, d* = 2.
    fn fig6_tree() -> MulticastTree {
        let mut t = MulticastTree::empty(7);
        // Layer 1: S → T0 (T_{1-1})
        t.attach(Node::Source, 0);
        // Layer 2: S → T1 (T_{2-1}), T0 → T2 (T_{2-2})
        t.attach(Node::Source, 1);
        t.attach(Node::Dest(0), 2);
        // Layer 3: T0 → T3 (T_{3-1}), T1 → T4 (T_{3-2}), T2 → T5 (T_{3-3})
        t.attach(Node::Dest(0), 3);
        t.attach(Node::Dest(1), 4);
        t.attach(Node::Dest(2), 5);
        // Layer 4: T1 → T6 (T_{4-1})
        t.attach(Node::Dest(1), 6);
        t
    }

    #[test]
    fn fig6_structure_is_valid_at_dstar_2() {
        let t = fig6_tree();
        t.validate(2).unwrap();
        assert_eq!(t.out_degree(Node::Source), 2);
        assert_eq!(t.out_degree(Node::Dest(0)), 2);
        assert_eq!(t.out_degree(Node::Dest(1)), 2);
        assert_eq!(t.out_degree(Node::Dest(2)), 1);
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn depths_match_layers() {
        let t = fig6_tree();
        assert_eq!(t.depth(Node::Source), Some(0));
        assert_eq!(t.depth(Node::Dest(0)), Some(1));
        assert_eq!(t.depth(Node::Dest(1)), Some(1));
        assert_eq!(t.depth(Node::Dest(5)), Some(3));
        // T6 = T_{4-1}: logical layer 4 (receives in time unit 4) but tree
        // depth 2 — it is T1's second child.
        assert_eq!(t.depth(Node::Dest(6)), Some(2));
    }

    #[test]
    fn detach_and_reattach() {
        let mut t = fig6_tree();
        let old_parent = t.detach(6).unwrap();
        assert_eq!(old_parent, Node::Dest(1));
        assert_eq!(t.reachable_count(), 6);
        assert!(matches!(
            t.validate(2),
            Err(TreeError::Disconnected(Node::Dest(6)))
        ));
        t.attach(Node::Dest(2), 6);
        t.validate(2).unwrap();
        assert_eq!(t.parent(6), Some(Node::Dest(2)));
    }

    #[test]
    fn subtree_collects_descendants() {
        let t = fig6_tree();
        let mut s = t.subtree(0);
        s.sort_unstable();
        assert_eq!(s, vec![0, 2, 3, 5]);
        assert_eq!(t.subtree(6), vec![6]);
    }

    #[test]
    fn degree_violation_detected() {
        let t = fig6_tree();
        match t.validate(1) {
            Err(TreeError::DegreeExceeded { degree, max, .. }) => {
                assert_eq!(degree, 2);
                assert_eq!(max, 1);
            }
            other => panic!("expected degree error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_parent_double_attach_panics() {
        let mut t = MulticastTree::empty(2);
        t.attach(Node::Source, 0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut t2 = t.clone();
            t2.attach(Node::Dest(1), 0);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn empty_tree_detached() {
        let t = MulticastTree::empty(3);
        assert_eq!(t.reachable_count(), 0);
        assert!(t.validate(10).is_err());
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn detach_keeps_subtree_intact() {
        let mut t = fig6_tree();
        t.detach(0);
        // T0's own children remain attached below it.
        assert_eq!(t.children(Node::Dest(0)), &[Node::Dest(2), Node::Dest(3)]);
        assert_eq!(t.parent(2), Some(Node::Dest(0)));
    }

    #[test]
    fn bfs_order_is_layerwise() {
        let t = fig6_tree();
        let order: Vec<Node> = t.bfs().into_iter().map(|(n, _)| n).collect();
        assert_eq!(order[0], Node::Source);
        // Layer 1 before layer 2 before layer 3.
        let pos = |n: Node| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(Node::Dest(0)) < pos(Node::Dest(2)));
        assert!(pos(Node::Dest(2)) < pos(Node::Dest(5)));
    }

    #[test]
    fn degree_histogram_sums_to_node_count() {
        let t = fig6_tree();
        let hist = t.degree_histogram();
        let total: u32 = hist.values().sum();
        assert_eq!(total, 8);
        assert_eq!(hist[&2], 3); // S, T0, T1
    }

    #[test]
    fn ascii_rendering() {
        let mut t = MulticastTree::empty(3);
        t.attach(Node::Source, 0);
        t.attach(Node::Source, 1);
        t.attach(Node::Dest(0), 2);
        let art = t.render_ascii();
        assert_eq!(art, "S\n├── T0\n│   └── T2\n└── T1\n");
    }

    #[test]
    fn ascii_rendering_covers_all_reachable_nodes() {
        let t = fig6_tree();
        let art = t.render_ascii();
        for i in 0..7 {
            assert!(art.contains(&format!("T{i}")), "missing T{i} in:\n{art}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_destination_panics() {
        let t = MulticastTree::empty(2);
        let _ = t.children(Node::Dest(5));
    }
}
