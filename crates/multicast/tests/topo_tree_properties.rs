//! Property tests for the topology-aware tree builder.
//!
//! Random skewed cluster placements (1–5 racks, rack 0 over-weighted the
//! way a real scheduler packs a hot rack) and every d* the benches use
//! must always yield a tree that (a) respects the degree cap, (b)
//! reaches every destination exactly once, and (c) enters each
//! destination rack over exactly one inter-rack edge — the invariant the
//! uplink-byte savings rest on. On a single rack the builder must be
//! *indistinguishable* from Algorithm 1's `build_nonblocking`.

use proptest::prelude::*;
use whale_multicast::{build_nonblocking, MulticastTree, Node, TopoTreeBuilder};

/// Skewed rack assignment: roughly half the destinations land in rack 0,
/// the rest spread round the remaining racks.
fn skewed_racks(racks: u32, max_n: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..100, 0..=max_n)
        .prop_map(move |picks| {
            picks
                .into_iter()
                .map(|p| if p < 50 { 0 } else { p % racks })
                .collect()
        })
}

/// The rack of `node` under `node_racks`, with the source in
/// `source_rack`.
fn rack_of(node: Node, source_rack: u32, node_racks: &[u32]) -> u32 {
    match node {
        Node::Source => source_rack,
        Node::Dest(i) => node_racks[i as usize],
    }
}

/// Count, per rack, the edges whose parent sits in a different rack.
fn rack_entries(tree: &MulticastTree, source_rack: u32, node_racks: &[u32]) -> Vec<u32> {
    let racks = node_racks
        .iter()
        .copied()
        .chain([source_rack])
        .max()
        .unwrap_or(0)
        + 1;
    let mut entries = vec![0u32; racks as usize];
    for i in 0..tree.n() {
        let parent = tree.parent(i).expect("attached dest has a parent");
        let pr = rack_of(parent, source_rack, node_racks);
        let cr = node_racks[i as usize];
        if pr != cr {
            entries[cr as usize] += 1;
        }
    }
    entries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Core invariants over random skewed placements and loads.
    #[test]
    fn topo_trees_stay_valid_rack_local_and_single_entry(
        racks in 1u32..=5,
        d_pow in 0u32..=3,
        source_rack_pick in 0u32..100,
        node_racks in skewed_racks(5, 40),
        loads in proptest::collection::vec(0u64..10_000, 5),
    ) {
        let d_star = 1u32 << d_pow; // 1, 2, 4, 8
        let node_racks: Vec<u32> =
            node_racks.into_iter().map(|r| r % racks).collect();
        let source_rack = source_rack_pick % racks;
        let n = node_racks.len() as u32;

        let tree = TopoTreeBuilder::new(d_star, source_rack, node_racks.clone())
            .with_uplink_load(&loads)
            .build();

        // (a) degree cap + structural soundness, (b) full coverage.
        tree.validate(d_star).expect("tree must validate");
        prop_assert_eq!(tree.reachable_count(), n);

        // (c) one entry per destination rack, none into the source's.
        let entries = rack_entries(&tree, source_rack, &node_racks);
        for (r, &e) in entries.iter().enumerate() {
            let has_dests = node_racks.iter().any(|&x| x as usize == r);
            if r == source_rack as usize {
                prop_assert_eq!(e, 0, "source rack re-entered");
            } else if has_dests {
                prop_assert_eq!(e, 1, "rack {} entered {} times", r, e);
            } else {
                prop_assert_eq!(e, 0, "empty rack {} entered", r);
            }
        }
    }

    /// On one rack the topology-aware builder must produce *the same
    /// tree* as Algorithm 1 — same parents, same order — so switching it
    /// on in a single-rack deployment changes nothing, and the delivered
    /// (dedup'd) destination set is trivially identical.
    #[test]
    fn one_rack_collapses_to_algorithm_1(
        n in 0u32..=64,
        d_pow in 0u32..=3,
        loads in proptest::collection::vec(0u64..10_000, 3),
    ) {
        let d_star = 1u32 << d_pow;
        let topo = TopoTreeBuilder::new(d_star, 0, vec![0; n as usize])
            .with_uplink_load(&loads)
            .build();
        let whale = build_nonblocking(n, d_star);
        prop_assert_eq!(&topo, &whale);

        // Belt and braces: the reached destination sets match too.
        let reached = |t: &MulticastTree| {
            let mut seen: Vec<u32> =
                (0..t.n()).filter(|&i| t.depth(Node::Dest(i)).is_some()).collect();
            seen.sort_unstable();
            seen.dedup();
            seen
        };
        prop_assert_eq!(reached(&topo), reached(&whale));
    }

    /// Uplink-load feedback never breaks the invariants, only reorders
    /// rack entries: the same placement under any two load vectors yields
    /// trees covering the same destinations with the same entry counts.
    #[test]
    fn load_feedback_preserves_coverage(
        racks in 2u32..=5,
        node_racks in skewed_racks(5, 24),
        loads_a in proptest::collection::vec(0u64..10_000, 5),
        loads_b in proptest::collection::vec(0u64..10_000, 5),
    ) {
        let node_racks: Vec<u32> =
            node_racks.into_iter().map(|r| r % racks).collect();
        let build = |loads: &[u64]| {
            TopoTreeBuilder::new(2, 0, node_racks.clone())
                .with_uplink_load(loads)
                .build()
        };
        let (a, b) = (build(&loads_a), build(&loads_b));
        prop_assert_eq!(a.reachable_count(), b.reachable_count());
        prop_assert_eq!(
            rack_entries(&a, 0, &node_racks),
            rack_entries(&b, 0, &node_racks)
        );
    }
}
