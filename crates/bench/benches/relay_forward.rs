//! Criterion microbenchmark of per-hop relay forwarding: the old
//! decode + re-encode-per-child discipline vs the zero-copy forward
//! (fixed-offset header decode + one shared wire buffer cloned by
//! reference to every child).

use bytes::{BufMut, BytesMut};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use whale_dsps::codec::{decode_tuple, encode_tuple_into};
use whale_dsps::{RelayHeader, Tuple, Value};

/// Wire tag carried by relay data frames (runtime's `TAG_RELAY`).
const TAG_RELAY: u8 = 4;

/// Build one relay frame: `tag | RelayHeader | item`, with a ~150 B
/// tuple payload matching the calibration runs.
fn frame() -> Vec<u8> {
    let tuple = Tuple::with_id(7, vec![Value::I64(42), Value::Str("x".repeat(120).into())]);
    let header = RelayHeader {
        origin: 0,
        epoch: 3,
        component: 1,
        tracked: 0x00AB_CDEF,
    };
    let mut buf = BytesMut::new();
    buf.put_u8(TAG_RELAY);
    header.encode_into(&mut buf);
    encode_tuple_into(&mut buf, &tuple);
    buf.to_vec()
}

fn bench_forward(c: &mut Criterion) {
    let wire = frame();
    for children in [2usize, 4] {
        // Old discipline: decode the whole frame, then re-encode it from
        // scratch once per child.
        c.bench_function(&format!("clone_forward_{children}_children"), |b| {
            b.iter(|| {
                let mut buf = &wire[1..];
                let header = RelayHeader::decode(&mut buf).expect("frame is well-formed");
                let tuple = decode_tuple(&mut buf).expect("frame is well-formed");
                for _ in 0..children {
                    let mut out = BytesMut::with_capacity(wire.len());
                    out.put_u8(TAG_RELAY);
                    header.encode_into(&mut out);
                    encode_tuple_into(&mut out, &tuple);
                    black_box(out.len());
                }
            })
        });

        // Zero-copy forward: read the header at its fixed offset, then
        // hand the received wire bytes to every child by reference.
        c.bench_function(&format!("zero_copy_forward_{children}_children"), |b| {
            let shared: Arc<[u8]> = Arc::from(&wire[..]);
            b.iter(|| {
                let mut buf = &shared[1..];
                let header = RelayHeader::decode(&mut buf).expect("frame is well-formed");
                black_box(header.epoch);
                for _ in 0..children {
                    black_box(Arc::clone(&shared));
                }
            })
        });
    }
}

criterion_group!(benches, bench_forward);
criterion_main!(benches);
