//! Criterion microbenchmarks of the fabric pieces: ring memory region
//! reuse, stream-slicing batcher, and the live fabric's copy vs
//! zero-copy send paths.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use whale_net::{BatchConfig, Batcher, EndpointId, LiveFabric, MemoryRegistry, RingRegion};
use whale_sim::{SimDuration, SimTime};

fn bench_fabric(c: &mut Criterion) {
    c.bench_function("ring_produce_consume", |b| {
        let mut reg = MemoryRegistry::new();
        let mut ring: RingRegion<u64> = RingRegion::new(1_024, 256, &mut reg);
        b.iter(|| {
            ring.produce(black_box(7)).unwrap();
            ring.consume().unwrap()
        })
    });

    c.bench_function("batcher_offer", |b| {
        let mut batcher: Batcher<u64> = Batcher::new(BatchConfig {
            mms: 256 * 1024,
            wtl: SimDuration::from_millis(1),
        });
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(batcher.offer(SimTime::from_nanos(i), i, 150))
        })
    });

    let payload = vec![0u8; 256];
    c.bench_function("live_fabric_send_copied_256B", |b| {
        let fabric = LiveFabric::new();
        let rx = fabric.register(EndpointId(1)).unwrap();
        b.iter(|| {
            fabric
                .send_copied(EndpointId(0), EndpointId(1), black_box(&payload))
                .unwrap();
            rx.recv().unwrap()
        })
    });

    c.bench_function("live_fabric_send_shared_256B", |b| {
        let fabric = LiveFabric::new();
        let rx = fabric.register(EndpointId(1)).unwrap();
        let buf: Arc<[u8]> = Arc::from(&payload[..]);
        b.iter(|| {
            fabric
                .send_shared(EndpointId(0), EndpointId(1), black_box(buf.clone()))
                .unwrap();
            rx.recv().unwrap()
        })
    });

    c.bench_function("ring_fabric_post_flush_256B", |b| {
        let fabric = whale_net::RingFabric::new(whale_net::RingConfig::default());
        let rx = fabric.register(EndpointId(1)).unwrap();
        let buf: Arc<[u8]> = Arc::from(&payload[..]);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            fabric
                .send_shared(EndpointId(0), EndpointId(1), black_box(buf.clone()))
                .unwrap();
            fabric.flush_at(SimTime::from_nanos(i));
            rx.try_recv().unwrap()
        })
    });
}

criterion_group!(benches, bench_fabric);
criterion_main!(benches);
