//! Criterion microbenchmarks of the multicast machinery: tree
//! construction (Algorithm 1), dynamic switching plans, relay scheduling,
//! and the M/D/1 d* computation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use whale_multicast::{build_binomial, build_nonblocking, plan_switch, RelaySim};
use whale_sim::cost::mdone;

fn bench_multicast(c: &mut Criterion) {
    c.bench_function("build_nonblocking_480_d3", |b| {
        b.iter(|| build_nonblocking(black_box(480), black_box(3)))
    });

    c.bench_function("build_binomial_480", |b| {
        b.iter(|| build_binomial(black_box(480)))
    });

    let tree = build_nonblocking(480, 5);
    c.bench_function("plan_switch_480_5_to_2", |b| {
        b.iter(|| plan_switch(black_box(&tree), black_box(2)))
    });
    c.bench_function("plan_switch_480_5_to_8", |b| {
        b.iter(|| plan_switch(black_box(&tree), black_box(8)))
    });

    c.bench_function("relay_multicast_480", |b| {
        let tree = build_nonblocking(480, 3);
        b.iter(|| RelaySim::new(tree.clone()).multicast(black_box(0)))
    });

    c.bench_function("d_star", |b| {
        b.iter(|| mdone::d_star(black_box(45_000.0), black_box(8.4e-6), black_box(2_048)))
    });
}

criterion_group!(benches, bench_multicast);
criterion_main!(benches);
