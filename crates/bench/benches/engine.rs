//! Criterion benchmark of the cluster-simulation engine itself: events
//! per second across the five system modes (this is the harness the
//! figures run on, so its own speed bounds experiment turnaround).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use whale_core::{run, EngineConfig, SystemMode};

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_saturate_20_tuples");
    group.sample_size(10);
    for mode in SystemMode::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(mode.label()), &mode, |b, &m| {
            b.iter(|| run(black_box(EngineConfig::paper(m, 480, 20))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
