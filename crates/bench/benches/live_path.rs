//! Criterion microbenchmarks of the zero-copy live path: buffer-pool
//! acquire/release vs fresh allocation, pooled encode + share, and the
//! sharded ring drain.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use whale_dsps::{BufferPool, PoolConfig};
use whale_net::{BatchConfig, EndpointId, RingConfig, RingFabric};
use whale_sim::{SimDuration, SimTime};

use bytes::BufMut;

fn bench_pool(c: &mut Criterion) {
    c.bench_function("pool_acquire_release", |b| {
        let pool = BufferPool::new(PoolConfig::default());
        drop(pool.acquire()); // warm: steady state is all hits
        b.iter(|| {
            let mut buf = pool.acquire();
            buf.put_slice(black_box(b"steady-state frame payload"));
            black_box(buf.len())
        })
    });

    c.bench_function("fresh_alloc_baseline", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(1024);
            buf.put_slice(black_box(b"steady-state frame payload"));
            black_box(buf.len())
        })
    });

    c.bench_function("pool_encode_share_150B", |b| {
        let pool = BufferPool::new(PoolConfig::default());
        let payload = [0u8; 150];
        b.iter(|| {
            let mut buf = pool.acquire();
            buf.put_slice(black_box(&payload));
            black_box(buf.share())
        })
    });
}

fn sharded_ring(shards: usize) -> RingFabric {
    RingFabric::new(RingConfig {
        ring_capacity: 64 * 1024,
        batch: BatchConfig {
            mms: 4 * 1024,
            wtl: SimDuration::from_millis(1),
        },
        flusher_shards: shards,
        ..RingConfig::default()
    })
}

fn bench_sharded_flush(c: &mut Criterion) {
    for shards in [1usize, 4] {
        c.bench_function(&format!("ring_fanout8_flush_{shards}shard"), |b| {
            let fabric = sharded_ring(shards);
            let receivers: Vec<_> = (0..8)
                .map(|d| fabric.register(EndpointId(d + 1)).unwrap())
                .collect();
            let buf: Arc<[u8]> = Arc::from(&[0u8; 150][..]);
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                for d in 0..8u32 {
                    fabric
                        .send_shared(EndpointId(0), EndpointId(d + 1), buf.clone())
                        .unwrap();
                }
                let now = SimTime::from_nanos(i);
                for s in 0..fabric.config().shard_count() {
                    fabric.flush_shard_at(s, now);
                }
                for rx in &receivers {
                    black_box(rx.try_recv().unwrap());
                }
            })
        });
    }
}

criterion_group!(benches, bench_pool, bench_sharded_flush);
criterion_main!(benches);
