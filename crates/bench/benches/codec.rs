//! Criterion microbenchmarks of the wire codec: the serialization
//! asymmetry that motivates worker-oriented communication, plus the
//! eager-vs-lazy decode comparison behind the zero-materialization
//! receive path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use whale_dsps::codec::{decode_tuple, encode_tuple};
use whale_dsps::{
    InstanceMessage, LengthPrefixedCodec, TaskId, Tuple, TupleView, Value, WhaleCodec, WireCodec,
    WorkerMessage,
};

fn sample_tuple() -> Tuple {
    Tuple::with_id(
        7,
        vec![
            Value::I64(123_456),
            Value::F64(39.91),
            Value::F64(116.33),
            Value::I64(1_620_000_000),
            Value::str("driver-payload-string"),
        ],
    )
}

fn bench_codec(c: &mut Criterion) {
    let tuple = sample_tuple();

    c.bench_function("encode_tuple", |b| {
        b.iter(|| encode_tuple(black_box(&tuple)))
    });

    let encoded = encode_tuple(&tuple);
    c.bench_function("decode_tuple", |b| {
        b.iter_batched(
            || encoded.clone(),
            |mut buf| decode_tuple(black_box(&mut buf)).unwrap(),
            BatchSize::SmallInput,
        )
    });

    // The paper's comparison: serializing for 16 colocated instances.
    c.bench_function("instance_oriented_16_messages", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for i in 0..16u32 {
                let m = InstanceMessage {
                    src: TaskId(0),
                    dst: TaskId(i),
                    tuple: tuple.clone(),
                };
                total += m.encode().len();
            }
            total
        })
    });

    c.bench_function("worker_oriented_1_message_16_ids", |b| {
        let dsts: Vec<TaskId> = (0..16).map(TaskId).collect();
        b.iter(|| {
            let item = encode_tuple(black_box(&tuple));
            WorkerMessage::encode_with_item(TaskId(0), &dsts, &item).len()
        })
    });
}

/// A tuple whose encoding is roughly `payload` bytes: an i64 key field
/// followed by one string carrying the bulk — the shape of the paper's
/// key-grouped application streams.
fn payload_tuple(payload: usize) -> Tuple {
    let body = "x".repeat(payload.saturating_sub(24));
    Tuple::with_id(7, vec![Value::I64(42), Value::str(body.as_str())])
}

/// Eager decode vs borrowed lazy views, touching one field vs all of
/// them, across payload sizes 64 B – 16 KiB. The lazy single-field
/// column is the case the receive path optimizes: key extraction and
/// sink bolts that never need the bulk of the tuple.
fn bench_lazy_decode(c: &mut Criterion) {
    for payload in [64usize, 512, 2048, 16384] {
        let tuple = payload_tuple(payload);
        let encoded = encode_tuple(&tuple);

        c.bench_function(&format!("eager_decode/{payload}"), |b| {
            b.iter_batched(
                || encoded.clone(),
                |mut buf| decode_tuple(black_box(&mut buf)).unwrap(),
                BatchSize::SmallInput,
            )
        });

        c.bench_function(&format!("lazy_view_1field/{payload}"), |b| {
            b.iter(|| {
                let view = TupleView::parse(black_box(&encoded[..])).unwrap();
                view.field(0).unwrap().unwrap().as_i64().unwrap()
            })
        });

        c.bench_function(&format!("lazy_view_full/{payload}"), |b| {
            b.iter(|| {
                let view = TupleView::parse(black_box(&encoded[..])).unwrap();
                let mut touched = 0usize;
                for f in view.fields() {
                    match f.unwrap() {
                        whale_dsps::ValueView::Str(s) => touched += s.len(),
                        whale_dsps::ValueView::I64(x) => touched += x as usize & 1,
                        _ => {}
                    }
                }
                touched
            })
        });
    }

    // Codec head-to-head through the trait object: fixed-offset whale
    // format vs the length-prefixed variant.
    let tuple = payload_tuple(512);
    for codec in [
        &WhaleCodec as &dyn WireCodec,
        &LengthPrefixedCodec as &dyn WireCodec,
    ] {
        let encoded = codec.encode_tuple(&tuple);
        c.bench_function(&format!("codec_{}_roundtrip/512", codec.name()), |b| {
            b.iter(|| {
                let bytes = codec.encode_tuple(black_box(&tuple));
                let view = codec.tuple_view(&bytes).unwrap();
                view.arity()
            })
        });
        let buf: Arc<[u8]> = Arc::from(&encoded[..]);
        c.bench_function(&format!("codec_{}_view/512", codec.name()), |b| {
            b.iter(|| {
                let view = codec.tuple_view(black_box(&buf[..])).unwrap();
                view.field(0).unwrap().unwrap().as_i64().unwrap()
            })
        });
    }
}

criterion_group!(benches, bench_codec, bench_lazy_decode);
criterion_main!(benches);
