//! Criterion microbenchmarks of the wire codec: the serialization
//! asymmetry that motivates worker-oriented communication.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use whale_dsps::codec::{decode_tuple, encode_tuple};
use whale_dsps::{InstanceMessage, TaskId, Tuple, Value, WorkerMessage};

fn sample_tuple() -> Tuple {
    Tuple::with_id(
        7,
        vec![
            Value::I64(123_456),
            Value::F64(39.91),
            Value::F64(116.33),
            Value::I64(1_620_000_000),
            Value::str("driver-payload-string"),
        ],
    )
}

fn bench_codec(c: &mut Criterion) {
    let tuple = sample_tuple();

    c.bench_function("encode_tuple", |b| {
        b.iter(|| encode_tuple(black_box(&tuple)))
    });

    let encoded = encode_tuple(&tuple);
    c.bench_function("decode_tuple", |b| {
        b.iter_batched(
            || encoded.clone(),
            |mut buf| decode_tuple(black_box(&mut buf)).unwrap(),
            BatchSize::SmallInput,
        )
    });

    // The paper's comparison: serializing for 16 colocated instances.
    c.bench_function("instance_oriented_16_messages", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for i in 0..16u32 {
                let m = InstanceMessage {
                    src: TaskId(0),
                    dst: TaskId(i),
                    tuple: tuple.clone(),
                };
                total += m.encode().len();
            }
            total
        })
    });

    c.bench_function("worker_oriented_1_message_16_ids", |b| {
        let dsts: Vec<TaskId> = (0..16).map(TaskId).collect();
        b.iter(|| {
            let item = encode_tuple(black_box(&tuple));
            WorkerMessage::encode_with_item(TaskId(0), &dsts, &item).len()
        })
    });
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
