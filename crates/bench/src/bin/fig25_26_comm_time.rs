//! E14 — Figs 25/26: communication time and serialization share.
fn main() {
    let scale = whale_bench::Scale::from_env();
    for table in whale_bench::experiments::fig25_28_communication::run_comm_time(scale) {
        table.emit(None);
    }
}
