//! E15 — Figs 27/28: communication traffic.
fn main() {
    let scale = whale_bench::Scale::from_env();
    for table in whale_bench::experiments::fig25_28_communication::run_traffic(scale) {
        table.emit(None);
    }
}
