//! E08 — Figs 13/14: ride-hailing throughput & latency.
fn main() {
    let scale = whale_bench::Scale::from_env();
    for table in whale_bench::experiments::fig13_16_applications::run_ride_hailing(scale) {
        table.emit(None);
    }
}
