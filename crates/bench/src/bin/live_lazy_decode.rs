//! E25 — lazy zero-materialization decode: borrowed tuple views.
//!
//! Emits `results/live_lazy_decode.{csv,json}` plus the top-level
//! `BENCH_lazy_decode.json` headline report (override the location with
//! `WHALE_BENCH_DIR`). Pass `--smoke` (or set `WHALE_SCALE=smoke`) for
//! the minimal CI variant.

use whale_bench::experiments::live_lazy_decode as e25;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        whale_bench::Scale::Smoke
    } else {
        whale_bench::Scale::from_env()
    };
    let points = e25::sweep();
    for table in e25::run_experiment(scale) {
        table.emit(None);
    }
    let cells = e25::live_cells(scale);

    let dir = std::env::var_os("WHALE_BENCH_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("BENCH_lazy_decode.json");
    let json = e25::summary_json(&points, &cells).to_json_string();
    std::fs::write(&path, format!("{json}\n")).expect("write BENCH_lazy_decode.json");
    println!("headline report → {}", path.display());
}
