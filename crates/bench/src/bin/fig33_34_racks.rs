//! E17 — Figs 33/34: rack topology sensitivity.
fn main() {
    let scale = whale_bench::Scale::from_env();
    for table in whale_bench::experiments::fig33_34_racks::run_experiment(scale) {
        table.emit(None);
    }
}
