//! E01–E03 — Fig 2: Storm's one-to-many bottleneck.
fn main() {
    let scale = whale_bench::Scale::from_env();
    for table in whale_bench::experiments::fig02_storm_bottleneck::run_experiment(scale) {
        table.emit(None);
    }
}
