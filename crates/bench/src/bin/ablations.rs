//! Ablation studies beyond the paper's figures: fixed vs adaptive d*,
//! proactive vs baseline switching (Theorem 3), backpressure window.
fn main() {
    let scale = whale_bench::Scale::from_env();
    for table in whale_bench::experiments::ablations::run_dstar_sweep(scale) {
        table.emit(None);
    }
    for table in whale_bench::experiments::ablations::run_switch_strategy(scale) {
        table.emit(None);
    }
    for table in whale_bench::experiments::ablations::run_window_sweep(scale) {
        table.emit(None);
    }
}
