//! E13 — Figs 23/24: dynamic streams and self-adjusting switching.
fn main() {
    let scale = whale_bench::Scale::from_env();
    for table in whale_bench::experiments::fig23_24_dynamic::run_experiment(scale) {
        table.emit(None);
    }
}
