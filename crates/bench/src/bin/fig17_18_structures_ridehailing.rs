//! E10 — Figs 17/18: multicast structures, ride-hailing.
fn main() {
    let scale = whale_bench::Scale::from_env();
    for table in whale_bench::experiments::fig17_22_structures::run_ride_hailing(scale) {
        table.emit(None);
    }
}
