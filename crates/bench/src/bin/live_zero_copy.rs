//! E20 — live path: clone-per-dest vs serialize-once zero-copy fan-out.
//!
//! Emits `results/live_zero_copy.{csv,json}` plus the top-level
//! `BENCH_live_path.json` headline report (override the location with
//! `WHALE_BENCH_DIR`).

use whale_bench::experiments::live_zero_copy as e20;

fn main() {
    let scale = whale_bench::Scale::from_env();
    let points = e20::sweep(scale);
    e20::table_from_points(&points).emit(None);

    let dir = std::env::var_os("WHALE_BENCH_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("BENCH_live_path.json");
    let json = e20::summary_json(&points).to_json_string();
    std::fs::write(&path, format!("{json}\n")).expect("write BENCH_live_path.json");
    println!("headline report → {}", path.display());
}
