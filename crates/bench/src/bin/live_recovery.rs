//! E26 — crash recovery and late-subscriber backfill from the partition
//! log.
//!
//! Emits `results/live_recovery.{csv,json}` plus the top-level
//! `BENCH_recovery.json` headline report (override the location with
//! `WHALE_BENCH_DIR`). Pass `--smoke` (or set `WHALE_SCALE=smoke`) for
//! the minimal CI variant.

use whale_bench::experiments::live_recovery as e26;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        whale_bench::Scale::Smoke
    } else {
        whale_bench::Scale::from_env()
    };
    let points = e26::sweep(scale);
    e26::table_from_points(&points).emit(None);

    let dir = std::env::var_os("WHALE_BENCH_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("BENCH_recovery.json");
    let json = e26::summary_json(&points).to_json_string();
    std::fs::write(&path, format!("{json}\n")).expect("write BENCH_recovery.json");
    println!("headline report → {}", path.display());
}
