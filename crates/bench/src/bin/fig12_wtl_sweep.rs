//! E07 — Fig 12: WTL sweep (runs the shared batching experiment; the
//! second emitted table is Fig 12).
fn main() {
    let scale = whale_bench::Scale::from_env();
    for table in whale_bench::experiments::fig11_12_batching::run_experiment(scale) {
        table.emit(None);
    }
}
