//! E24 — shard-owned pipelines: core-scaling of the live receive path.
//!
//! Emits `results/live_shards.{csv,json}` plus the top-level
//! `BENCH_shards.json` headline report (override the location with
//! `WHALE_BENCH_DIR`). Pass `--smoke` (or set `WHALE_SCALE=smoke`) for
//! the minimal CI variant.

use whale_bench::experiments::live_shards as e24;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        whale_bench::Scale::Smoke
    } else {
        whale_bench::Scale::from_env()
    };
    let points = e24::sweep(scale);
    for table in e24::run_experiment(scale) {
        table.emit(None);
    }
    let cells = e24::live_cells(scale);

    let dir = std::env::var_os("WHALE_BENCH_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("BENCH_shards.json");
    let json = e24::summary_json(&points, &cells).to_json_string();
    std::fs::write(&path, format!("{json}\n")).expect("write BENCH_shards.json");
    println!("headline report → {}", path.display());
}
