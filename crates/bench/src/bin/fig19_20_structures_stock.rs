//! E11 — Figs 19/20: multicast structures, stock exchange.
fn main() {
    let scale = whale_bench::Scale::from_env();
    for table in whale_bench::experiments::fig17_22_structures::run_stock_exchange(scale) {
        table.emit(None);
    }
}
