//! E09 — Figs 15/16: stock exchange throughput & latency.
fn main() {
    let scale = whale_bench::Scale::from_env();
    for table in whale_bench::experiments::fig13_16_applications::run_stock_exchange(scale) {
        table.emit(None);
    }
}
