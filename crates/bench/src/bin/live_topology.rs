//! E27 — live topology: rack-aware multicast trees vs Whale's
//! oblivious d* tree and the binomial baseline on skewed placements.
//!
//! Emits `results/live_topology.{csv,json}` plus the top-level
//! `BENCH_topology.json` headline report (override the location with
//! `WHALE_BENCH_DIR`). Pass `--smoke` (or set `WHALE_SCALE=smoke`) for
//! the minimal CI variant.

use whale_bench::experiments::live_topology as e27;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        whale_bench::Scale::Smoke
    } else {
        whale_bench::Scale::from_env()
    };
    let points = e27::model_sweep();
    for table in e27::run_experiment(scale) {
        table.emit(None);
    }
    let bytes = e27::byte_cells(scale);
    let acked = vec![e27::measure_acked(scale)];

    let dir = std::env::var_os("WHALE_BENCH_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("BENCH_topology.json");
    let json = e27::summary_json(&points, &bytes, &acked).to_json_string();
    std::fs::write(&path, format!("{json}\n")).expect("write BENCH_topology.json");
    println!("headline report → {}", path.display());
}
