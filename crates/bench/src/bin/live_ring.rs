//! E19 — live path: batched ring delivery vs per-send capacity.
fn main() {
    let scale = whale_bench::Scale::from_env();
    for table in whale_bench::experiments::live_ring::run_experiment(scale) {
        table.emit(None);
    }
}
