//! E05 — Table 2: dataset statistics.
fn main() {
    let scale = whale_bench::Scale::from_env();
    for table in whale_bench::experiments::table2_datasets::run_experiment(scale) {
        table.emit(None);
    }
}
