//! E12 — Figs 21/22: average multicast latency.
fn main() {
    let scale = whale_bench::Scale::from_env();
    for table in whale_bench::experiments::fig17_22_structures::run_multicast_latency(scale) {
        table.emit(None);
    }
}
