//! E22 — live adaptive: runtime tree switching + zero-copy relay
//! forwarding on a phase-shifted workload.
//!
//! Emits `results/live_adaptive.{csv,json}` plus the top-level
//! `BENCH_adaptive.json` headline report (override the location with
//! `WHALE_BENCH_DIR`). Pass `--smoke` (or set `WHALE_SCALE=smoke`) for
//! the minimal CI variant.

use whale_bench::experiments::live_adaptive as e22;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        whale_bench::Scale::Smoke
    } else {
        whale_bench::Scale::from_env()
    };
    let points = e22::model_sweep();
    for table in e22::run_experiment(scale) {
        table.emit(None);
    }
    let cells = e22::live_cells(scale);

    let dir = std::env::var_os("WHALE_BENCH_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("BENCH_adaptive.json");
    let json = e22::summary_json(&points, &cells).to_json_string();
    std::fs::write(&path, format!("{json}\n")).expect("write BENCH_adaptive.json");
    println!("headline report → {}", path.display());
}
