//! E23 — one-sided remote-fetch delivery vs per-send and batched ring.
//!
//! Emits `results/live_one_sided.{csv,json}` plus the top-level
//! `BENCH_one_sided.json` headline report (override the location with
//! `WHALE_BENCH_DIR`). Pass `--smoke` (or set `WHALE_SCALE=smoke`) for
//! the minimal CI variant.

use whale_bench::experiments::live_one_sided as e23;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        whale_bench::Scale::Smoke
    } else {
        whale_bench::Scale::from_env()
    };
    let points = e23::model_sweep();
    for table in e23::run_experiment(scale) {
        table.emit(None);
    }
    let cells = e23::live_cells(scale);

    let dir = std::env::var_os("WHALE_BENCH_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("BENCH_one_sided.json");
    let json = e23::summary_json(&points, &cells).to_json_string();
    std::fs::write(&path, format!("{json}\n")).expect("write BENCH_one_sided.json");
    println!("headline report → {}", path.display());
}
