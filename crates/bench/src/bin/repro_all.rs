//! Regenerates every table and figure of the paper's evaluation section.
//! `WHALE_SCALE=full` for longer runs; CSVs land in `results/`.

use whale_bench::experiments as ex;
use whale_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("reproducing the Whale (SC'21) evaluation at scale {scale:?}\n");
    type Section = (&'static str, Box<dyn Fn(Scale) -> Vec<whale_bench::Table>>);
    let sections: Vec<Section> = vec![
        (
            "E01-E03 Fig 2",
            Box::new(ex::fig02_storm_bottleneck::run_experiment),
        ),
        (
            "E04 Fig 3",
            Box::new(ex::fig03_rdmc_blocking::run_experiment),
        ),
        ("E05 Table 2", Box::new(ex::table2_datasets::run_experiment)),
        (
            "E06-E07 Figs 11/12",
            Box::new(ex::fig11_12_batching::run_experiment),
        ),
        (
            "E08 Figs 13/14",
            Box::new(ex::fig13_16_applications::run_ride_hailing),
        ),
        (
            "E09 Figs 15/16",
            Box::new(ex::fig13_16_applications::run_stock_exchange),
        ),
        (
            "E10 Figs 17/18",
            Box::new(ex::fig17_22_structures::run_ride_hailing),
        ),
        (
            "E11 Figs 19/20",
            Box::new(ex::fig17_22_structures::run_stock_exchange),
        ),
        (
            "E12 Figs 21/22",
            Box::new(ex::fig17_22_structures::run_multicast_latency),
        ),
        (
            "E13 Figs 23/24",
            Box::new(ex::fig23_24_dynamic::run_experiment),
        ),
        (
            "E14 Figs 25/26",
            Box::new(ex::fig25_28_communication::run_comm_time),
        ),
        (
            "E15 Figs 27/28",
            Box::new(ex::fig25_28_communication::run_traffic),
        ),
        (
            "E16 Figs 29-32",
            Box::new(|s| {
                let mut t = ex::fig29_32_verbs::run_verb_micro(s);
                t.extend(ex::fig29_32_verbs::run_diffverbs(s));
                t
            }),
        ),
        (
            "E17 Figs 33/34",
            Box::new(ex::fig33_34_racks::run_experiment),
        ),
        (
            "E19 Live ring vs per-send",
            Box::new(ex::live_ring::run_experiment),
        ),
        (
            "E20 Live zero-copy fan-out",
            Box::new(ex::live_zero_copy::run_experiment),
        ),
        (
            "E22 Adaptive vs static relay trees",
            Box::new(ex::live_adaptive::run_experiment),
        ),
        (
            "E23 One-sided remote fetch vs per-send/ring",
            Box::new(ex::live_one_sided::run_experiment),
        ),
        (
            "Ablations (beyond the paper)",
            Box::new(|s| {
                let mut t = ex::ablations::run_dstar_sweep(s);
                t.extend(ex::ablations::run_switch_strategy(s));
                t.extend(ex::ablations::run_window_sweep(s));
                t
            }),
        ),
    ];
    for (name, f) in sections {
        println!("──────── {name} ────────");
        let start = std::time::Instant::now();
        for table in f(scale) {
            table.emit(None);
        }
        println!("({name} took {:?})\n", start.elapsed());
    }
    println!("done — CSVs in {}", whale_bench::results_dir().display());
}
