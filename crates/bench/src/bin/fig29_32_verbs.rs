//! E16 — Figs 29/30 (verb microbenchmark) and 31/32 (DiffVerbs end to end).
fn main() {
    let scale = whale_bench::Scale::from_env();
    for table in whale_bench::experiments::fig29_32_verbs::run_verb_micro(scale) {
        table.emit(None);
    }
    for table in whale_bench::experiments::fig29_32_verbs::run_diffverbs(scale) {
        table.emit(None);
    }
}
