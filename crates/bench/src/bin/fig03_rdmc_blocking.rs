//! E04 — Fig 3: RDMC blocking under dynamic input.
fn main() {
    let scale = whale_bench::Scale::from_env();
    for table in whale_bench::experiments::fig03_rdmc_blocking::run_experiment(scale) {
        table.emit(None);
    }
}
