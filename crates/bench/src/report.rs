//! Result tables: aligned console output + CSV files under `results/`.

use std::fmt::Display;
use std::fs;
use std::path::PathBuf;

/// A simple column-aligned result table that doubles as a CSV writer.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id, e.g. "fig13".
    pub id: String,
    /// Human title.
    pub title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with an experiment id, title, and column names.
    pub fn new(id: &str, title: &str, header: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringifies each cell).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|c| format!("{c}")).collect());
    }

    /// Append a row of preformatted strings.
    pub fn row_strings(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render aligned for the console.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// CSV serialization.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Print to stdout and write `results/<id>.csv` (or `<id>_<suffix>.csv`).
    pub fn emit(&self, suffix: Option<&str>) {
        println!("{}", self.render());
        let dir = results_dir();
        let _ = fs::create_dir_all(&dir);
        let name = match suffix {
            Some(s) => format!("{}_{s}.csv", self.id),
            None => format!("{}.csv", self.id),
        };
        let path = dir.join(name);
        if let Err(e) = fs::write(&path, self.to_csv()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("wrote {}\n", path.display());
        }
    }
}

/// Where CSVs land: `$WHALE_RESULTS_DIR` or `./results`.
pub fn results_dir() -> PathBuf {
    std::env::var_os("WHALE_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Format a tuples/s number compactly.
pub fn fmt_rate(v: f64) -> String {
    if v >= 1_000.0 {
        format!("{:.1}k", v / 1_000.0)
    } else {
        format!("{v:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("figX", "demo", &["a", "long_column"]);
        t.row(&[&1, &"x"]);
        t.row(&[&22, &"yy"]);
        let r = t.render();
        assert!(r.contains("figX"));
        assert!(r.lines().count() >= 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("f", "t", &["a,b", "c"]);
        t.row_strings(vec!["x\"y".into(), "z".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("\"a,b\",c\n"));
        assert!(csv.contains("\"x\"\"y\",z"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("f", "t", &["a", "b"]);
        t.row(&[&1]);
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(12.34), "12.3");
        assert_eq!(fmt_rate(56_600.0), "56.6k");
    }
}
