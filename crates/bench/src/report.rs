//! Result tables: aligned console output + CSV files under `results/`,
//! each paired with a schema-stable machine-readable JSON report.

use std::fmt::Display;
use std::fs;
use std::path::PathBuf;
use whale_core::EngineReport;
use whale_sim::JsonValue;

/// Version tag stamped into every JSON report so downstream tooling can
/// detect layout changes.
pub const JSON_SCHEMA: &str = "whale-bench/v1";

/// A simple column-aligned result table that doubles as a CSV writer.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id, e.g. "fig13".
    pub id: String,
    /// Human title.
    pub title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    /// Optional per-run JSON objects (see [`engine_run_json`]) carrying
    /// the full metrics snapshot behind the table's summary rows.
    runs: Vec<JsonValue>,
}

impl Table {
    /// New table with an experiment id, title, and column names.
    pub fn new(id: &str, title: &str, header: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            runs: Vec::new(),
        }
    }

    /// Attach one run-level JSON object (typically from
    /// [`engine_run_json`]) to the table's JSON report.
    pub fn attach_run(&mut self, run: JsonValue) {
        self.runs.push(run);
    }

    /// Append a row (stringifies each cell).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|c| format!("{c}")).collect());
    }

    /// Append a row of preformatted strings.
    pub fn row_strings(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render aligned for the console.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// CSV serialization.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// The table as a schema-stable JSON report: id, title, columns, each
    /// row as an object (cells parsed to numbers where they are numeric),
    /// and any attached run-level metrics objects. Rendering is fully
    /// deterministic, so two same-seed runs produce byte-identical files.
    pub fn to_json(&self) -> JsonValue {
        let rows = self
            .rows
            .iter()
            .map(|row| {
                JsonValue::Object(
                    self.header
                        .iter()
                        .zip(row)
                        .map(|(h, c)| (h.clone(), cell_to_json(c)))
                        .collect(),
                )
            })
            .collect();
        let mut fields = vec![
            ("schema".to_string(), JsonValue::str(JSON_SCHEMA)),
            ("figure".to_string(), JsonValue::str(&self.id)),
            ("title".to_string(), JsonValue::str(&self.title)),
            (
                "columns".to_string(),
                JsonValue::Array(self.header.iter().map(JsonValue::str).collect()),
            ),
            ("rows".to_string(), JsonValue::Array(rows)),
        ];
        if !self.runs.is_empty() {
            fields.push(("runs".to_string(), JsonValue::Array(self.runs.clone())));
        }
        JsonValue::Object(fields)
    }

    /// Print to stdout and write `results/<id>.csv` plus the matching
    /// `results/<id>.json` (or `<id>_<suffix>.{csv,json}`).
    pub fn emit(&self, suffix: Option<&str>) {
        println!("{}", self.render());
        let dir = results_dir();
        let _ = fs::create_dir_all(&dir);
        let stem = match suffix {
            Some(s) => format!("{}_{s}", self.id),
            None => self.id.clone(),
        };
        let csv_path = dir.join(format!("{stem}.csv"));
        if let Err(e) = fs::write(&csv_path, self.to_csv()) {
            eprintln!("warning: could not write {}: {e}", csv_path.display());
        } else {
            println!("wrote {}", csv_path.display());
        }
        let json_path = dir.join(format!("{stem}.json"));
        if let Err(e) = fs::write(&json_path, self.to_json().to_json_pretty()) {
            eprintln!("warning: could not write {}: {e}", json_path.display());
        } else {
            println!("wrote {}\n", json_path.display());
        }
    }
}

/// A CSV cell as a typed JSON value: unsigned, signed, finite float, or
/// string, in that preference order.
fn cell_to_json(cell: &str) -> JsonValue {
    if let Ok(u) = cell.parse::<u64>() {
        return JsonValue::UInt(u);
    }
    if let Ok(i) = cell.parse::<i64>() {
        return JsonValue::Int(i);
    }
    // Reject float syntax Rust accepts but JSON consumers may not expect
    // from a table cell (inf/nan), keeping those cells as strings.
    if cell.parse::<f64>().is_ok_and(f64::is_finite)
        && cell.chars().all(|c| "0123456789+-.eE".contains(c))
    {
        if let Ok(f) = cell.parse::<f64>() {
            return JsonValue::Float(f);
        }
    }
    JsonValue::str(cell)
}

/// One engine run as a schema-stable JSON object: the acceptance headline
/// numbers (throughput, latency percentiles, queue/CPU gauges, seed) at
/// the top level, plus the engine's full [`MetricsRegistry`] snapshot
/// under `"metrics"`.
///
/// [`MetricsRegistry`]: whale_sim::MetricsRegistry
pub fn engine_run_json(
    figure: &str,
    mode: &str,
    parallelism: u32,
    seed: u64,
    r: &EngineReport,
) -> JsonValue {
    let ns_to_ms = 1e-6;
    let lat = |f: &dyn Fn(&whale_sim::Summary) -> f64| -> JsonValue {
        match r.metrics.summary("engine.latency_ns") {
            Some(s) => JsonValue::Float(f(&s) * ns_to_ms),
            None => JsonValue::Null,
        }
    };
    let gauge = |name: &str| -> JsonValue {
        match r.metrics.gauge(name) {
            Some(v) => JsonValue::Float(v),
            None => JsonValue::Null,
        }
    };
    JsonValue::Object(vec![
        ("figure".to_string(), JsonValue::str(figure)),
        ("mode".to_string(), JsonValue::str(mode)),
        ("parallelism".to_string(), JsonValue::UInt(parallelism as u64)),
        ("seed".to_string(), JsonValue::UInt(seed)),
        ("completed".to_string(), JsonValue::UInt(r.completed)),
        ("dropped".to_string(), JsonValue::UInt(r.dropped)),
        (
            "throughput_tuples_per_s".to_string(),
            JsonValue::Float(r.throughput),
        ),
        (
            "latency_ms".to_string(),
            JsonValue::Object(vec![
                ("mean".to_string(), lat(&|s| s.mean)),
                ("p50".to_string(), lat(&|s| s.p50)),
                ("p95".to_string(), lat(&|s| s.p95)),
                ("p99".to_string(), lat(&|s| s.p99)),
            ]),
        ),
        (
            "queue".to_string(),
            JsonValue::Object(vec![
                ("capacity".to_string(), gauge("engine.queue.capacity")),
                (
                    "mean_load_factor".to_string(),
                    gauge("engine.queue.mean_load_factor"),
                ),
            ]),
        ),
        (
            "cpu".to_string(),
            JsonValue::Object(vec![
                ("source".to_string(), gauge("engine.cpu.source")),
                ("downstream".to_string(), gauge("engine.cpu.downstream")),
                ("dispatcher".to_string(), gauge("engine.cpu.dispatcher")),
                ("aggregator".to_string(), gauge("engine.cpu.aggregator")),
            ]),
        ),
        (
            "elapsed_secs".to_string(),
            JsonValue::Float(r.elapsed.as_secs_f64()),
        ),
        ("metrics".to_string(), r.metrics.to_json()),
    ])
}

/// Where CSVs land: `$WHALE_RESULTS_DIR` or `./results`.
pub fn results_dir() -> PathBuf {
    std::env::var_os("WHALE_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Format a tuples/s number compactly.
pub fn fmt_rate(v: f64) -> String {
    if v >= 1_000.0 {
        format!("{:.1}k", v / 1_000.0)
    } else {
        format!("{v:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("figX", "demo", &["a", "long_column"]);
        t.row(&[&1, &"x"]);
        t.row(&[&22, &"yy"]);
        let r = t.render();
        assert!(r.contains("figX"));
        assert!(r.lines().count() >= 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("f", "t", &["a,b", "c"]);
        t.row_strings(vec!["x\"y".into(), "z".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("\"a,b\",c\n"));
        assert!(csv.contains("\"x\"\"y\",z"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("f", "t", &["a", "b"]);
        t.row(&[&1]);
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(12.34), "12.3");
        assert_eq!(fmt_rate(56_600.0), "56.6k");
    }

    #[test]
    fn json_report_schema() {
        let mut t = Table::new("figX", "demo", &["parallelism", "system", "rate"]);
        t.row_strings(vec!["120".into(), "whale".into(), "56.6k".into()]);
        let j = t.to_json().to_json_string();
        assert!(j.contains("\"schema\":\"whale-bench/v1\""), "{j}");
        assert!(j.contains("\"figure\":\"figX\""));
        assert!(j.contains("\"parallelism\":120"));
        // Non-numeric cells stay strings.
        assert!(j.contains("\"rate\":\"56.6k\""));
        // No runs attached → no runs field.
        assert!(!j.contains("\"runs\""));
    }

    #[test]
    fn cells_parse_to_typed_json() {
        assert_eq!(cell_to_json("12"), JsonValue::UInt(12));
        assert_eq!(cell_to_json("-3"), JsonValue::Int(-3));
        assert_eq!(cell_to_json("2.5"), JsonValue::Float(2.5));
        assert_eq!(cell_to_json("inf"), JsonValue::str("inf"));
        assert_eq!(cell_to_json("NaN"), JsonValue::str("NaN"));
        assert_eq!(cell_to_json("56.6k"), JsonValue::str("56.6k"));
    }

    #[test]
    fn engine_run_json_has_acceptance_fields() {
        use whale_core::{run, EngineConfig, SystemMode};
        let r = run(EngineConfig::paper(SystemMode::WhaleFull, 64, 10));
        let j = engine_run_json("fig13", "whale", 64, 42, &r).to_json_string();
        for key in [
            "\"figure\":\"fig13\"",
            "\"mode\":\"whale\"",
            "\"parallelism\":64",
            "\"seed\":42",
            "\"throughput_tuples_per_s\":",
            "\"p50\":",
            "\"p95\":",
            "\"p99\":",
            "\"mean_load_factor\":",
            "\"dispatcher\":",
            "\"metrics\":",
        ] {
            assert!(j.contains(key), "missing {key}");
        }
    }

    #[test]
    fn same_seed_runs_render_byte_identical_json() {
        use whale_core::{run, EngineConfig, SystemMode};
        let render = || {
            let r = run(EngineConfig::paper(SystemMode::WhaleFull, 64, 10));
            let mut t = Table::new("figX", "demo", &["a"]);
            t.row_strings(vec!["1".into()]);
            t.attach_run(engine_run_json("figX", "whale", 64, 42, &r));
            t.to_json().to_json_pretty()
        };
        assert_eq!(render(), render());
    }
}
