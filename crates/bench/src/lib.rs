//! # whale-bench — the experiment harness
//!
//! One module per paper artifact (figure or table); each exposes
//! `run(scale) -> Vec<Table>` printing the same rows/series the paper
//! reports and writing CSVs under `results/`. The `repro_all` binary runs
//! the whole evaluation section; individual `figXX_*` binaries run one
//! experiment.

#![warn(missing_docs)]

pub mod experiments;
pub mod par;
pub mod report;

pub use par::{par_map, par_map_with};
pub use report::{engine_run_json, fmt_rate, results_dir, Table, JSON_SCHEMA};

/// How much work to spend: `Quick` keeps every experiment seconds-scale;
/// `Full` uses longer runs for smoother series; `Smoke` is a minimal
/// variant for the unit tests (unoptimized builds).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Minimal runs for tests.
    Smoke,
    /// Short runs (default).
    Quick,
    /// Longer runs (`WHALE_SCALE=full`).
    Full,
}

impl Scale {
    /// Read from the `WHALE_SCALE` environment variable.
    pub fn from_env() -> Scale {
        match std::env::var("WHALE_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            Ok("smoke") | Ok("SMOKE") => Scale::Smoke,
            _ => Scale::Quick,
        }
    }

    /// Pick a value by scale (smoke shares the quick value).
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Smoke | Scale::Quick => quick,
            Scale::Full => full,
        }
    }

    /// Pick with a dedicated smoke value for the expensive experiments.
    pub fn pick3<T>(self, smoke: T, quick: T, full: T) -> T {
        match self {
            Scale::Smoke => smoke,
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_picks() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
        assert_eq!(Scale::Smoke.pick(1, 2), 1);
        assert_eq!(Scale::Smoke.pick3(0, 1, 2), 0);
        assert_eq!(Scale::Full.pick3(0, 1, 2), 2);
    }
}
