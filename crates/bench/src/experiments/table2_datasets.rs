//! E05 — Table 2: dataset statistics, paper reference vs sampled
//! generator output.

use crate::{Scale, Table};
use whale_workloads::table2;

/// Produce the Table 2 reproduction.
pub fn run_experiment(scale: Scale) -> Vec<Table> {
    let sample = scale.pick3(5_000, 100_000, 1_000_000);
    let mut t = Table::new(
        "table2",
        "Statistics of the datasets (paper trace vs sampled generator)",
        &[
            "dataset",
            "paper_tuples",
            "paper_keys",
            "sampled_tuples",
            "sampled_keys",
        ],
    );
    for row in table2(7, sample) {
        t.row_strings(vec![
            row.dataset.to_string(),
            row.paper_tuples.to_string(),
            row.paper_keys.to_string(),
            row.sampled_tuples.to_string(),
            row.sampled_keys.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_both_dataset_rows() {
        let tables = run_experiment(Scale::Smoke);
        assert_eq!(tables[0].len(), 2);
    }
}
