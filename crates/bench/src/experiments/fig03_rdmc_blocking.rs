//! E04 — Fig 3: RDMC's static binomial tree blocks under dynamic input.
//!
//! 480 matching instances, the binomial multicast of RDMC, input rates
//! swept upward. Throughput stops tracking the input once the source's
//! transfer queue saturates (load factor → 1) and latency blows up —
//! while a self-adjusting non-blocking tree (shown alongside) keeps the
//! queue stable at the same rates.

use crate::experiments::common::{config, Dataset};
use crate::{fmt_rate, Scale, Table};
use whale_core::{run, AppProfile, Drive, SystemMode};
use whale_multicast::Structure;
use whale_sim::SimTime;
use whale_workloads::RatePlan;

/// Run the Fig 3 rate sweep.
pub fn run_experiment(scale: Scale) -> Vec<Table> {
    let horizon = SimTime::from_millis(scale.pick3(150, 1_200, 4_000));
    let rates: Vec<f64> = match scale {
        Scale::Smoke => vec![2_000.0, 12_000.0, 25_000.0],
        _ => vec![
            2_000.0, 4_000.0, 6_000.0, 8_000.0, 10_000.0, 12_000.0, 14_000.0, 18_000.0, 22_000.0,
            25_000.0,
        ],
    };

    let mut fig3a = Table::new(
        "fig03a",
        "RDMC throughput and load factor vs input rate (480 instances)",
        &[
            "input_rate",
            "rdmc_tput",
            "rdmc_load",
            "whale_tput",
            "whale_load",
        ],
    );
    let mut fig3b = Table::new(
        "fig03b",
        "RDMC processing latency vs input rate",
        &["input_rate", "rdmc_latency_ms", "whale_latency_ms"],
    );

    let results = crate::par_map(rates.clone(), |rate| {
        // RDMC: instance-oriented relaying over a *static* binomial tree.
        let mut rdmc = config(Dataset::Didi, SystemMode::RdmaStorm, 480, 0);
        rdmc.structure = Some(Structure::Binomial);
        rdmc.app = AppProfile::lightweight();
        rdmc.inflight_window = 4_096;
        rdmc.drive = Drive::Rate {
            plan: RatePlan::Poisson(rate),
            horizon,
        };
        let r_rdmc = run(rdmc);

        // Whale: worker-oriented + self-adjusting non-blocking tree.
        let mut whale = config(Dataset::Didi, SystemMode::WhaleFull, 480, 0);
        whale.app = AppProfile::lightweight();
        whale.inflight_window = 4_096;
        whale.drive = Drive::Rate {
            plan: RatePlan::Poisson(rate),
            horizon,
        };
        let r_whale = run(whale);
        (rate, r_rdmc, r_whale)
    });
    for (rate, r_rdmc, r_whale) in results {
        fig3a.row_strings(vec![
            fmt_rate(rate),
            fmt_rate(r_rdmc.throughput),
            format!("{:.3}", r_rdmc.mean_load_factor),
            fmt_rate(r_whale.throughput),
            format!("{:.3}", r_whale.mean_load_factor),
        ]);
        fig3b.row_strings(vec![
            fmt_rate(rate),
            format!("{:.2}", r_rdmc.mean_latency.as_secs_f64() * 1e3),
            format!("{:.2}", r_whale.mean_latency.as_secs_f64() * 1e3),
        ]);
    }
    vec![fig3a, fig3b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_rate_sweep() {
        let tables = run_experiment(Scale::Smoke);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 3);
    }
}
