//! E08–E09 — Figs 13/14 (ride-hailing) and 15/16 (stock exchange):
//! throughput and processing latency of all five systems across
//! parallelism levels.

use crate::experiments::common::{config, Dataset, PARALLELISM_SWEEP};
use crate::report::engine_run_json;
use crate::{fmt_rate, Scale, Table};
use whale_core::{run, EngineReport, SystemMode};

fn sweep(dataset: Dataset, tuples: u64) -> Vec<(u32, SystemMode, EngineReport)> {
    // Every grid point is an independent deterministic simulation.
    let points: Vec<(u32, SystemMode)> = PARALLELISM_SWEEP
        .iter()
        .flat_map(|&p| SystemMode::ALL.into_iter().map(move |m| (p, m)))
        .collect();
    crate::par_map(points, |(p, mode)| {
        (p, mode, run(config(dataset, mode, p, tuples)))
    })
}

fn tables(dataset: Dataset, ids: (&str, &str), tuples: u64) -> Vec<Table> {
    let results = sweep(dataset, tuples);
    let mut tput = Table::new(
        ids.0,
        &format!("throughput vs parallelism — {}", dataset.label()),
        &["parallelism", "system", "tuples_per_s"],
    );
    let mut lat = Table::new(
        ids.1,
        &format!("processing latency vs parallelism — {}", dataset.label()),
        &["parallelism", "system", "mean_latency_ms", "p99_latency_ms"],
    );
    for (p, mode, r) in &results {
        tput.row_strings(vec![
            p.to_string(),
            mode.label().to_string(),
            fmt_rate(r.throughput),
        ]);
        // The throughput table's JSON carries the full per-run metrics
        // snapshot (latency percentiles, queue/CPU gauges, seed).
        tput.attach_run(engine_run_json(
            ids.0,
            mode.label(),
            *p,
            dataset.seed(),
            r,
        ));
        lat.row_strings(vec![
            p.to_string(),
            mode.label().to_string(),
            format!("{:.2}", r.mean_latency.as_secs_f64() * 1e3),
            format!("{:.2}", r.p99_latency.as_secs_f64() * 1e3),
        ]);
    }
    // Headline summary rows (the paper quotes these at parallelism 480).
    let at = |mode: SystemMode| {
        results
            .iter()
            .find(|(p, m, _)| *p == 480 && *m == mode)
            .map(|(_, _, r)| r)
            .unwrap()
    };
    let whale = at(SystemMode::WhaleFull);
    let storm = at(SystemMode::Storm);
    let rdma = at(SystemMode::RdmaStorm);
    println!(
        "[{}] at parallelism 480: Whale = {:.1}x Storm, {:.1}x RDMA-Storm \
         (paper: 56.6x / 15x for ride-hailing; 51.2x / 16x for stock); \
         latency -{:.1}% vs Storm (paper: ~96%)",
        dataset.label(),
        whale.throughput / storm.throughput,
        whale.throughput / rdma.throughput,
        100.0 * (1.0 - whale.mean_latency.as_secs_f64() / storm.mean_latency.as_secs_f64()),
    );
    vec![tput, lat]
}

/// Figs 13/14: ride-hailing.
pub fn run_ride_hailing(scale: Scale) -> Vec<Table> {
    tables(Dataset::Didi, ("fig13", "fig14"), scale.pick3(12, 80, 300))
}

/// Figs 15/16: stock exchange.
pub fn run_stock_exchange(scale: Scale) -> Vec<Table> {
    tables(
        Dataset::Nasdaq,
        ("fig15", "fig16"),
        scale.pick3(12, 80, 300),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_full_grid() {
        let tables = run_ride_hailing(Scale::Smoke);
        assert_eq!(tables.len(), 2);
        // 4 parallelism levels x 5 systems.
        assert_eq!(tables[0].len(), 20);
        assert_eq!(tables[1].len(), 20);
    }
}
