//! One module per paper artifact. See DESIGN.md §4 for the experiment
//! index mapping each figure/table to its module and binary.

pub mod ablations;
pub mod common;
pub mod fig02_storm_bottleneck;
pub mod fig03_rdmc_blocking;
pub mod fig11_12_batching;
pub mod fig13_16_applications;
pub mod fig17_22_structures;
pub mod fig23_24_dynamic;
pub mod fig25_28_communication;
pub mod fig29_32_verbs;
pub mod fig33_34_racks;
pub mod live_adaptive;
pub mod live_chaos;
pub mod live_lazy_decode;
pub mod live_one_sided;
pub mod live_recovery;
pub mod live_ring;
pub mod live_shards;
pub mod live_topology;
pub mod live_zero_copy;
pub mod table2_datasets;
