//! E01–E03 — Fig 2: the one-to-many performance bottleneck in Storm.
//!
//! 2a: throughput falls as parallelism grows; 2b: latency rises; 2c: the
//! upstream instance's CPU saturates while downstream CPUs idle; 2d: the
//! upstream CPU time is dominated by serialization + packet processing.

use crate::experiments::common::{config, Dataset};
use crate::{fmt_rate, Scale, Table};
use whale_core::{run, SystemMode};
use whale_sim::CpuCategory;

/// Run the Fig 2 sweep and produce the four sub-figure tables.
pub fn run_experiment(scale: Scale) -> Vec<Table> {
    let tuples = scale.pick3(10, 60, 200);
    let sweep = [30u32, 60, 120, 240, 300, 360, 480];

    let mut fig2a = Table::new(
        "fig02a",
        "Storm throughput vs parallelism (tuples/s)",
        &["parallelism", "throughput"],
    );
    let mut fig2b = Table::new(
        "fig02b",
        "Storm processing latency vs parallelism",
        &["parallelism", "mean_latency_ms", "p99_latency_ms"],
    );
    let mut fig2c = Table::new(
        "fig02c",
        "CPU utilization: upstream vs downstream instance",
        &["parallelism", "upstream_cpu", "downstream_cpu"],
    );
    let mut fig2d = Table::new(
        "fig02d",
        "Upstream CPU time breakdown",
        &["parallelism", "serialization", "packet_processing", "other"],
    );

    for &p in &sweep {
        let report = run(config(Dataset::Didi, SystemMode::Storm, p, tuples));
        fig2a.row_strings(vec![p.to_string(), fmt_rate(report.throughput)]);
        fig2b.row_strings(vec![
            p.to_string(),
            format!("{:.2}", report.mean_latency.as_secs_f64() * 1e3),
            format!("{:.2}", report.p99_latency.as_secs_f64() * 1e3),
        ]);
        fig2c.row_strings(vec![
            p.to_string(),
            format!("{:.3}", report.source_cpu),
            format!("{:.3}", report.downstream_cpu),
        ]);
        let share = |cat: CpuCategory| -> f64 {
            report
                .source_breakdown
                .iter()
                .find(|(c, _)| *c == cat)
                .map(|&(_, s)| s)
                .unwrap_or(0.0)
        };
        let ser = share(CpuCategory::Serialization);
        let pkt = share(CpuCategory::PacketProcessing);
        fig2d.row_strings(vec![
            p.to_string(),
            format!("{ser:.3}"),
            format!("{pkt:.3}"),
            format!("{:.3}", (1.0 - ser - pkt).max(0.0)),
        ]);
    }
    vec![fig2a, fig2b, fig2c, fig2d]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_all_subfigures() {
        let tables = run_experiment(Scale::Smoke);
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert_eq!(t.len(), 7, "{}", t.id);
        }
    }
}
