//! E26 — crash recovery and late-subscriber backfill from the partition
//! log.
//!
//! Four cell families, one report:
//!
//! * **Crash + restart, log-recovered** (one per transport): the real
//!   threaded runtime with the XOR acker, a write-ahead
//!   [`LogConfig`]-driven partition log, and a fault plan that crashes a
//!   worker endpoint mid-run and restarts it a few frames later. The
//!   acker timeout is set far past the run length, so the only thing
//!   that can heal the crashed window is the log replay — every cell
//!   asserts `acked + failed == emitted` with `failed == 0`,
//!   `log_replayed_records > 0`, and `tuples_replayed == 0` (the acker's
//!   replay budget is never spent).
//! * **Crash + restart, acker baseline**: the same fault plan without a
//!   log — recovery rides acker-timeout replays. The sweep asserts the
//!   log cells spend no more acker replays than this baseline (they
//!   spend none at all).
//! * **Late subscriber**: a net-level [`OneSidedFabric`] with per-link
//!   logs publishes a stream, the live consumer drains it, and a reader
//!   that attaches *after* the fact backfills the whole history with
//!   [`OneSidedFabric::backfill`] — modeled one-sided READs against the
//!   sender's log region. The cell asserts the sender's publish-CPU
//!   counter does not move during the backfill.
//! * **Bounded retention** and **torn tail**: a sustained acked run with
//!   tiny log segments whose watermark GC reclaims every byte by
//!   shutdown (retention flat, nothing left resident), and a persisted
//!   log image truncated mid-record that recovers to the last complete
//!   record with a counted torn tail instead of a panic.
//!
//! Thread scheduling perturbs replay/GC *counts*, so emitted rows carry
//! only run-invariant fields (variable counts are asserted as invariants
//! and surfaced as booleans); `results/live_recovery.json` and
//! `BENCH_recovery.json` are byte-identical across same-seed reruns.

use crate::{Scale, Table};
use std::time::Duration;
use whale_dsps::{
    run_topology, AckConfig, Emitter, FnBolt, Grouping, IterSpout, LiveConfig, LogConfig,
    Operators, RunOutcome, Schema, Topology, TopologyBuilder, Tuple, Value,
};
use whale_net::{
    EndpointCrash, EndpointId, EndpointRestart, FabricKind, FaultPlan, OneSidedConfig,
    OneSidedFabric, PartitionLog, RingConfig,
};
use whale_sim::JsonValue;

/// Simulated worker processes per crash cell.
const MACHINES: u32 = 4;

/// One recovery cell. Every field is a pure function of the cell's
/// inputs, so rows render identically across reruns.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecoveryPoint {
    /// Cell family (`crash_restart_log`, `crash_restart_acker`,
    /// `late_subscriber`, `bounded_retention`, `torn_tail`).
    pub cell: &'static str,
    /// Transport (or storage source) under test.
    pub fabric: &'static str,
    /// Tuples emitted (crash/retention cells), frames published (late
    /// subscriber), or records appended (torn tail).
    pub emitted: u64,
    /// Emitted tuples with no final verdict; identically zero.
    pub silent_lost: u64,
    /// Whether the cell's recovery actually replayed records from the
    /// partition log.
    pub log_replayed: bool,
    /// Whether the cell completed without spending the acker's replay
    /// budget (`tuples_replayed == 0`).
    pub acker_replay_free: bool,
    /// Sender publish-CPU nanoseconds consumed *during* the late
    /// subscriber's backfill; identically zero (one-sided READs only).
    pub backfill_sender_cpu_ns: u64,
    /// Log bytes still resident when the run reported; zero wherever the
    /// acker watermark drives GC.
    pub retained_end_bytes: u64,
    /// Torn tails healed while recovering a persisted log image.
    pub torn_tails: u64,
}

/// All-grouped spout → sink topology: every tuple is tracked to `fanout`
/// first-hop subscribers.
fn topology(n: i64, fanout: u32) -> (Topology, Operators) {
    let mut b = TopologyBuilder::new();
    b.spout("src", 1, Schema::new(vec!["n"]))
        .bolt("sink", fanout, Schema::new(vec!["n"]))
        .connect("src", "sink", Grouping::All);
    let t = b.build().expect("static topology is valid");
    let ops = Operators::new()
        .spout("src", move |_| {
            Box::new(IterSpout::new(
                (0..n).map(|i| Tuple::with_id(i as u64, vec![Value::I64(i)])),
            ))
        })
        .bolt("sink", |_| {
            Box::new(FnBolt::new(|_t: &Tuple, _out: &mut dyn Emitter| {}))
        });
    (t, ops)
}

/// The transports the crash-recovery cell runs over.
pub fn fabric_kinds() -> [(&'static str, FabricKind); 3] {
    [
        ("per_send", FabricKind::PerSend),
        ("ring", FabricKind::Ring(RingConfig::default())),
        ("one_sided", FabricKind::OneSided(OneSidedConfig::default())),
    ]
}

/// The crash-then-rejoin schedule every crash cell uses: `EndpointId(1)`
/// (the first remote worker) goes dark at its 10th addressed frame and
/// rejoins at its 30th.
fn crash_plan() -> FaultPlan {
    FaultPlan {
        seed: 0xE26,
        crashes: vec![EndpointCrash {
            endpoint: EndpointId(1),
            at_frame: 10,
        }],
        restarts: vec![EndpointRestart {
            endpoint: EndpointId(1),
            at_frame: 30,
        }],
        ..FaultPlan::default()
    }
}

/// Run one crash+restart cell and verify the recovery contract. Returns
/// the row plus the acker replays the run actually spent (run-variant,
/// compared against the baseline by [`sweep`], kept out of the row).
pub fn measure_crash(
    scale: Scale,
    label: &'static str,
    kind: FabricKind,
    with_log: bool,
) -> (RecoveryPoint, u64) {
    let tuples: i64 = scale.pick3(200, 800, 3_000);
    let ack = if with_log {
        AckConfig {
            // Far past the run length: only the log replay can heal the
            // crashed window, never an acker-timeout replay racing it.
            timeout: Duration::from_secs(10),
            max_replays: 3,
            drain_deadline: Duration::from_secs(30),
            eos_redundancy: 4,
            ..AckConfig::default()
        }
    } else {
        AckConfig {
            // The baseline heals the same window the PR-4 way: short
            // timeout, generous replay budget.
            timeout: Duration::from_millis(40),
            max_replays: 20,
            drain_deadline: Duration::from_secs(30),
            eos_redundancy: 4,
            ..AckConfig::default()
        }
    };
    let config = LiveConfig {
        machines: MACHINES,
        fabric: kind,
        ack: Some(ack),
        fault: Some(crash_plan()),
        log: with_log.then(LogConfig::default),
        run_deadline: Some(Duration::from_secs(15)),
        ..LiveConfig::default()
    };
    let (t, ops) = topology(tuples, 2);
    let r = run_topology(t, ops, config);

    assert_eq!(r.spout_emitted, tuples as u64, "{label}: spout must finish");
    assert_eq!(
        r.tuples_acked + r.tuples_failed,
        r.spout_emitted,
        "{label} log={with_log}: silent loss"
    );
    assert_eq!(r.thread_panics, 0, "{label}: no thread may panic");
    assert!(
        r.fault_crashed_sends > 0,
        "{label}: the crash window must reject sends"
    );
    assert_eq!(
        r.tuples_failed, 0,
        "{label} log={with_log}: the restart must let every tuple recover"
    );
    if with_log {
        assert!(
            r.log_appended_records > 0,
            "{label}: sends must write through the log"
        );
        assert!(
            r.log_replayed_records > 0,
            "{label}: the restart must trigger a log replay"
        );
        assert_eq!(
            r.tuples_replayed, 0,
            "{label}: recovery must not spend the acker's replay budget"
        );
        assert_eq!(
            r.log_retained_bytes, 0,
            "{label}: the acked watermark must reclaim the whole log"
        );
    } else {
        assert!(
            r.tuples_replayed > 0,
            "{label}: the baseline must recover via acker replays"
        );
        assert_eq!(r.log_appended_records, 0, "{label}: baseline runs unlogged");
    }

    let point = RecoveryPoint {
        cell: if with_log {
            "crash_restart_log"
        } else {
            "crash_restart_acker"
        },
        fabric: label,
        emitted: r.spout_emitted,
        silent_lost: r.spout_emitted - r.tuples_acked - r.tuples_failed,
        log_replayed: r.log_replayed_records > 0,
        acker_replay_free: r.tuples_replayed == 0,
        backfill_sender_cpu_ns: 0,
        retained_end_bytes: r.log_retained_bytes,
        torn_tails: r.log_torn_tails,
    };
    (point, r.tuples_replayed)
}

/// Late-subscriber cell: publish a stream over a logged one-sided link,
/// drain it live, then attach a fresh reader and backfill the whole
/// history from sequence 0 — asserting the sender's publish CPU never
/// moves while the backfill runs.
pub fn measure_late_subscriber(scale: Scale) -> RecoveryPoint {
    let frames: u64 = scale.pick3(48, 200, 800);
    let fabric = OneSidedFabric::new(OneSidedConfig {
        ring_slots: 64,
        log: Some(LogConfig::default()),
        ..OneSidedConfig::default()
    });
    let live = fabric
        .register(EndpointId(1))
        .expect("live endpoint registers");
    let mut live_seen = 0u64;
    for i in 0..frames {
        let mut payload = [0u8; 32];
        payload[..8].copy_from_slice(&i.to_le_bytes());
        fabric
            .send_copied(EndpointId(0), EndpointId(1), &payload)
            .expect("outbox ring never fills between fetch passes");
        if i % 16 == 15 {
            fabric.fetch_all();
            while live.try_recv().is_ok() {
                live_seen += 1;
            }
        }
    }
    fabric.fetch_all();
    while live.try_recv().is_ok() {
        live_seen += 1;
    }
    assert_eq!(live_seen, frames, "live consumer must drain the stream");

    // The history now lives only in the log: the ring slots were all
    // consumed. A late reader attaches and fetches it with one-sided
    // READs — the sender-side publish CPU counter must not move.
    let late = fabric
        .register(EndpointId(9))
        .expect("late endpoint registers");
    let cpu_before = fabric.log_sender_cpu_ns();
    let reads_before = fabric.log_reads_posted();
    let backfilled = fabric
        .backfill(EndpointId(0), EndpointId(1), EndpointId(9), 0)
        .expect("backfill reads the retained history");
    let cpu_during_backfill = fabric.log_sender_cpu_ns() - cpu_before;
    assert_eq!(backfilled, frames, "backfill must replay the full history");
    assert_eq!(
        cpu_during_backfill, 0,
        "backfill must never touch the sender's CPU"
    );
    assert_eq!(
        fabric.log_reads_posted() - reads_before,
        frames,
        "each backfilled record is one modeled one-sided READ"
    );
    let mut late_seen = 0u64;
    let mut expect = 0u64;
    while let Ok(msg) = late.try_recv() {
        let mut got = [0u8; 8];
        got.copy_from_slice(&msg.payload.bytes()[..8]);
        assert_eq!(u64::from_le_bytes(got), expect, "backfill keeps log order");
        expect += 1;
        late_seen += 1;
    }
    assert_eq!(late_seen, frames, "the late reader must see every record");

    RecoveryPoint {
        cell: "late_subscriber",
        fabric: "one_sided",
        emitted: frames,
        silent_lost: 0,
        log_replayed: true,
        acker_replay_free: true,
        backfill_sender_cpu_ns: cpu_during_backfill,
        retained_end_bytes: 0,
        torn_tails: 0,
    }
}

/// Bounded-retention cell: a clean tracked run over tiny log segments.
/// The acker watermark reclaims every acked root's records as the run
/// streams, so the log drains to zero resident bytes by shutdown even
/// though the whole stream wrote through it.
pub fn measure_bounded_retention(scale: Scale) -> RecoveryPoint {
    let tuples: i64 = scale.pick3(200, 1_000, 4_000);
    let config = LiveConfig {
        machines: 2,
        ack: Some(AckConfig {
            timeout: Duration::from_secs(10),
            drain_deadline: Duration::from_secs(30),
            ..AckConfig::default()
        }),
        log: Some(LogConfig {
            segment_bytes: 256,
            // Far above what the stream needs: the watermark GC, not the
            // segment cap, is what keeps memory flat.
            max_segments: 1 << 20,
            rack_hops: 0,
        }),
        run_deadline: Some(Duration::from_secs(15)),
        ..LiveConfig::default()
    };
    let (t, ops) = topology(tuples, 2);
    let r = run_topology(t, ops, config);

    assert_eq!(r.outcome, RunOutcome::Clean, "retention cell runs clean");
    assert_eq!(r.tuples_acked, tuples as u64);
    assert!(r.log_appended_records > 0, "the stream must write through");
    assert!(
        r.log_gcd_bytes > 0,
        "acked roots must reclaim log bytes mid-run"
    );
    // `gcd_bytes` counts framed segment bytes (payload + record header),
    // `appended_bytes` counts payload only.
    assert_eq!(
        r.log_gcd_bytes,
        r.log_appended_bytes + whale_net::RECORD_HEADER as u64 * r.log_appended_records,
        "by shutdown the watermark must have reclaimed every byte"
    );
    assert_eq!(
        r.log_retained_bytes, 0,
        "retention must drain to zero, not grow with the stream"
    );
    assert!(r.log_gc_watermark > 0);

    RecoveryPoint {
        cell: "bounded_retention",
        fabric: "per_send",
        emitted: r.spout_emitted,
        silent_lost: r.spout_emitted - r.tuples_acked - r.tuples_failed,
        log_replayed: false,
        acker_replay_free: r.tuples_replayed == 0,
        backfill_sender_cpu_ns: 0,
        retained_end_bytes: r.log_retained_bytes,
        torn_tails: r.log_torn_tails,
    }
}

/// Torn-tail cell: persist a log image, truncate it mid-record, and
/// recover — the log comes back holding every complete record, counts
/// exactly one torn tail, and never panics.
pub fn measure_torn_tail() -> RecoveryPoint {
    let config = whale_net::LogConfig {
        segment_bytes: 256,
        max_segments: 1024,
        rack_hops: 0,
    };
    let mut log = PartitionLog::new(config);
    let records: u64 = 24;
    for i in 0..records {
        log.append(&[i as u8; 24]);
    }
    let snap = log.snapshot();
    // Cut inside the last record's payload: 12-byte header + 24-byte
    // payload means any cut in the final 23 bytes tears it.
    let cut = snap.len() - 7;
    let mut recovered = PartitionLog::recover(config, &snap[..cut]);
    assert_eq!(recovered.torn_tails(), 1, "the cut must surface as a torn tail");
    let read = recovered.read_from(0);
    assert_eq!(
        read.records.len() as u64,
        records - 1,
        "recovery keeps every complete record"
    );
    for (i, (seq, bytes)) in read.records.iter().enumerate() {
        assert_eq!(*seq, i as u64, "recovered seqs stay dense");
        assert_eq!(bytes.as_slice(), &[i as u8; 24], "payloads stay intact");
    }

    RecoveryPoint {
        cell: "torn_tail",
        fabric: "snapshot",
        emitted: records,
        silent_lost: 0,
        log_replayed: true,
        acker_replay_free: true,
        backfill_sender_cpu_ns: 0,
        retained_end_bytes: 0,
        torn_tails: recovered.torn_tails(),
    }
}

/// Measure every cell: the acker baseline, one log-recovered crash cell
/// per transport (asserting none spends more acker replays than the
/// baseline), the late subscriber, bounded retention, and the torn tail.
pub fn sweep(scale: Scale) -> Vec<RecoveryPoint> {
    let mut points = Vec::new();
    let (baseline, baseline_replays) =
        measure_crash(scale, "per_send", FabricKind::PerSend, false);
    points.push(baseline);
    for (label, kind) in fabric_kinds() {
        let (p, replays) = measure_crash(scale, label, kind, true);
        assert!(
            replays <= baseline_replays,
            "{label}: log recovery spent {replays} acker replays, baseline {baseline_replays}"
        );
        points.push(p);
    }
    points.push(measure_late_subscriber(scale));
    points.push(measure_bounded_retention(scale));
    points.push(measure_torn_tail());
    points
}

/// Build the result table from measured points.
pub fn table_from_points(points: &[RecoveryPoint]) -> Table {
    let mut table = Table::new(
        "live_recovery",
        "Crash recovery and late-subscriber backfill from the partition log",
        &[
            "cell",
            "fabric",
            "emitted",
            "silent_lost",
            "log_replayed",
            "acker_replay_free",
            "backfill_sender_cpu_ns",
            "retained_end_bytes",
            "torn_tails",
        ],
    );
    for p in points {
        table.row_strings(vec![
            p.cell.to_string(),
            p.fabric.to_string(),
            p.emitted.to_string(),
            p.silent_lost.to_string(),
            p.log_replayed.to_string(),
            p.acker_replay_free.to_string(),
            p.backfill_sender_cpu_ns.to_string(),
            p.retained_end_bytes.to_string(),
            p.torn_tails.to_string(),
        ]);
    }
    table
}

/// Headline summary written as the top-level `BENCH_recovery.json`.
/// Schema-stable and byte-identical across same-scale reruns.
pub fn summary_json(points: &[RecoveryPoint]) -> JsonValue {
    let cell_json = |p: &RecoveryPoint| {
        JsonValue::Object(vec![
            ("cell".into(), JsonValue::str(p.cell)),
            ("fabric".into(), JsonValue::str(p.fabric)),
            ("emitted".into(), JsonValue::UInt(p.emitted)),
            ("silent_lost".into(), JsonValue::UInt(p.silent_lost)),
            ("log_replayed".into(), JsonValue::Bool(p.log_replayed)),
            (
                "acker_replay_free".into(),
                JsonValue::Bool(p.acker_replay_free),
            ),
            (
                "sender_cpu_during_backfill".into(),
                JsonValue::UInt(p.backfill_sender_cpu_ns),
            ),
            (
                "retained_end_bytes".into(),
                JsonValue::UInt(p.retained_end_bytes),
            ),
            ("torn_tails".into(), JsonValue::UInt(p.torn_tails)),
        ])
    };
    JsonValue::Object(vec![
        ("schema".into(), JsonValue::str(crate::JSON_SCHEMA)),
        ("report".into(), JsonValue::str("recovery")),
        ("experiment".into(), JsonValue::str("live_recovery")),
        ("cells".into(), JsonValue::UInt(points.len() as u64)),
        (
            "silent_lost_total".into(),
            JsonValue::UInt(points.iter().map(|p| p.silent_lost).sum()),
        ),
        (
            "log_cells_replay_free".into(),
            JsonValue::Bool(
                points
                    .iter()
                    .filter(|p| p.cell == "crash_restart_log")
                    .all(|p| p.acker_replay_free && p.log_replayed),
            ),
        ),
        (
            "acceptance_cells".into(),
            JsonValue::Array(points.iter().map(cell_json).collect()),
        ),
    ])
}

/// Run the recovery sweep.
pub fn run_experiment(scale: Scale) -> Vec<Table> {
    vec![table_from_points(&sweep(scale))]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_cell_recovers_without_acker_replays() {
        let (p, replays) = measure_crash(Scale::Smoke, "per_send", FabricKind::PerSend, true);
        assert_eq!(p.silent_lost, 0);
        assert!(p.log_replayed);
        assert!(p.acker_replay_free);
        assert_eq!(replays, 0);
    }

    #[test]
    fn acker_baseline_recovers_by_spending_replays() {
        let (p, replays) = measure_crash(Scale::Smoke, "per_send", FabricKind::PerSend, false);
        assert_eq!(p.silent_lost, 0);
        assert!(!p.log_replayed);
        assert!(replays > 0, "the baseline must ride the acker's budget");
    }

    #[test]
    fn late_subscriber_backfills_with_zero_sender_cpu() {
        let p = measure_late_subscriber(Scale::Smoke);
        assert_eq!(p.backfill_sender_cpu_ns, 0);
        assert!(p.log_replayed);
        assert_eq!(p.emitted, 48);
    }

    #[test]
    fn retention_drains_to_zero_under_sustained_load() {
        let p = measure_bounded_retention(Scale::Smoke);
        assert_eq!(p.retained_end_bytes, 0);
        assert_eq!(p.silent_lost, 0);
    }

    #[test]
    fn torn_tail_recovers_to_the_last_complete_record() {
        let p = measure_torn_tail();
        assert_eq!(p.torn_tails, 1);
        assert_eq!(p.silent_lost, 0);
    }

    #[test]
    fn points_are_deterministic() {
        let (a, _) = measure_crash(Scale::Smoke, "per_send", FabricKind::PerSend, true);
        let (b, _) = measure_crash(Scale::Smoke, "per_send", FabricKind::PerSend, true);
        assert_eq!(a, b, "same-seed cells must render identical rows");
    }

    #[test]
    fn table_and_summary_carry_the_schema() {
        let points = [measure_torn_tail(), measure_late_subscriber(Scale::Smoke)];
        let table = table_from_points(&points);
        assert_eq!(table.len(), 2);
        let json = table.to_json().to_json_string();
        assert!(json.contains("\"schema\":\"whale-bench/v1\""), "{json}");
        assert!(json.contains("\"figure\":\"live_recovery\""));
        let summary = summary_json(&points).to_json_string();
        assert!(summary.contains("\"report\":\"recovery\""));
        assert!(summary.contains("\"sender_cpu_during_backfill\":0"));
        assert!(summary.contains("\"silent_lost_total\":0"));
    }
}
