//! Ablations of the design choices DESIGN.md §7 calls out, beyond the
//! paper's own figures:
//!
//! - **d\* selection**: fixed out-degrees vs the self-adjusting controller
//!   under a fixed Poisson load (shows the M/D/1 knee of Theorem 1 and
//!   that the controller lands near the best fixed choice).
//! - **Switch strategy**: the paper's proactive negative scale-down vs
//!   the baseline dynamic switch of Definition 3 (Theorem 3: the
//!   proactive peak queue is never worse).
//! - **Backpressure window**: Storm's `max.spout.pending` equivalent —
//!   the throughput/latency trade-off of the closed-loop window.

use crate::experiments::common::{config, Dataset};
use crate::{fmt_rate, Scale, Table};
use whale_core::{run, AppProfile, Drive, EngineConfig, SystemMode};
use whale_multicast::Structure;
use whale_sim::{SimDuration, SimTime};
use whale_workloads::RatePlan;

fn light(mut cfg: EngineConfig) -> EngineConfig {
    cfg.app = AppProfile::lightweight();
    cfg.tuple_bytes = 64;
    cfg.cost.id_pack = SimDuration::from_nanos(10);
    cfg.cost.deser_fixed = SimDuration::from_micros(5);
    cfg.cost.deser_per_byte_ns = 30;
    cfg.cost.dispatch = SimDuration::from_nanos(500);
    cfg.inflight_window = 4_096;
    cfg
}

/// Fixed d* sweep vs the adaptive controller at one Poisson rate.
pub fn run_dstar_sweep(scale: Scale) -> Vec<Table> {
    let horizon = SimTime::from_millis(scale.pick3(400, 4_000, 10_000));
    let rate = 22_000.0; // near the knee: small d* required
    let mut t = Table::new(
        "ablation_dstar",
        &format!(
            "fixed d* vs self-adjusting at {} tuples/s (480 instances)",
            fmt_rate(rate)
        ),
        &[
            "d_star",
            "throughput",
            "steady_latency_ms",
            "dropped",
            "mean_load",
            "dispatcher_cpu",
        ],
    );
    // Steady-state latency: mean over the second half of the run, so the
    // adaptive controller's convergence phase is not conflated with its
    // converged behaviour.
    let steady = |r: &whale_core::EngineReport| -> f64 {
        r.latency_series
            .mean_in(SimTime::from_nanos(horizon.as_nanos() / 2), horizon)
            .unwrap_or(r.mean_latency.as_secs_f64() * 1e3)
    };
    let mut emit = |label: String, r: &whale_core::EngineReport| {
        t.row_strings(vec![
            label,
            fmt_rate(r.throughput),
            format!("{:.2}", steady(r)),
            r.dropped.to_string(),
            format!("{:.3}", r.mean_load_factor),
            format!("{:.3}", r.dispatcher_cpu),
        ]);
    };
    for d in 1u32..=6 {
        let mut cfg = light(config(Dataset::Didi, SystemMode::WhaleWocRdma, 480, 0));
        cfg.structure = Some(Structure::NonBlocking { d_star: d });
        cfg.record_series = true;
        cfg.drive = Drive::Rate {
            plan: RatePlan::Poisson(rate),
            horizon,
        };
        let r = run(cfg);
        emit(d.to_string(), &r);
    }
    let mut cfg = light(config(Dataset::Didi, SystemMode::WhaleFull, 480, 0));
    cfg.initial_d_star = 5;
    cfg.record_series = true;
    cfg.drive = Drive::Rate {
        plan: RatePlan::Poisson(rate),
        horizon,
    };
    let r = run(cfg);
    emit("adaptive".into(), &r);
    vec![t]
}

/// Proactive negative scale-down vs the baseline dynamic switch under a
/// sharp rate step (Theorem 3 in practice).
pub fn run_switch_strategy(scale: Scale) -> Vec<Table> {
    let step_at = scale.pick3(1u64, 2, 4);
    let horizon = SimTime::from_secs(3 * step_at);
    // A step mild enough that the queue does not pin before either
    // strategy can react (fill time >> the monitoring interval).
    let plan = RatePlan::Steps(vec![
        (SimTime::ZERO, 8_000.0),
        (SimTime::from_secs(step_at), 21_000.0),
    ]);
    let mut t = Table::new(
        "ablation_switch",
        "proactive vs baseline dynamic switch under a sharp rate step",
        &[
            "strategy",
            "peak_queue",
            "dropped",
            "first_switch_s",
            "mean_latency_ms",
        ],
    );
    for (label, baseline) in [("proactive", false), ("baseline", true)] {
        let mut cfg = light(config(Dataset::Didi, SystemMode::WhaleFull, 480, 0));
        cfg.initial_d_star = 5;
        cfg.baseline_switch = baseline;
        cfg.record_series = true;
        cfg.drive = Drive::Rate {
            plan: plan.clone(),
            horizon,
        };
        let r = run(cfg);
        let peak = r.queue_series.max_value().unwrap_or(0.0);
        let first_switch = r
            .switches
            .first()
            .map(|(at, _, _)| format!("{:.2}", at.as_secs_f64()))
            .unwrap_or_else(|| "-".into());
        t.row_strings(vec![
            label.into(),
            format!("{peak:.0}"),
            r.dropped.to_string(),
            first_switch,
            format!("{:.2}", r.mean_latency.as_secs_f64() * 1e3),
        ]);
    }
    vec![t]
}

/// Backpressure window sweep (saturate drive): deeper windows buy
/// throughput until the pipeline is full, then only add latency.
pub fn run_window_sweep(scale: Scale) -> Vec<Table> {
    let tuples = scale.pick3(15, 80, 300);
    let mut t = Table::new(
        "ablation_window",
        "inflight window (max.spout.pending) vs throughput and latency",
        &["window", "throughput", "mean_latency_ms"],
    );
    for &w in &[1usize, 2, 4, 8, 16, 32, 64] {
        let mut cfg = config(Dataset::Didi, SystemMode::WhaleFull, 480, tuples);
        cfg.inflight_window = w;
        let r = run(cfg);
        t.row_strings(vec![
            w.to_string(),
            fmt_rate(r.throughput),
            format!("{:.2}", r.mean_latency.as_secs_f64() * 1e3),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dstar_sweep_shows_the_knee() {
        let tables = run_dstar_sweep(Scale::Smoke);
        assert_eq!(tables[0].len(), 7);
    }

    #[test]
    fn proactive_switches_no_later_than_baseline() {
        let tables = run_switch_strategy(Scale::Smoke);
        assert_eq!(tables[0].len(), 2);
    }

    #[test]
    fn window_sweep_throughput_monotone_until_full() {
        let tables = run_window_sweep(Scale::Smoke);
        assert_eq!(tables[0].len(), 7);
    }
}
