//! E22 — live adaptive: runtime tree switching + zero-copy relay
//! forwarding on a phase-shifted workload.
//!
//! Two layers, one report:
//!
//! * **Model sweep** (deterministic): a phase-shifted arrival trace
//!   (low → high → low λ) priced on the paper's M/D/1 source model.
//!   Each static out-degree `d` caps throughput at
//!   `µ(d) = (Q+1-√(Q²+1))/(d·t_e)`; the adaptive structure re-plans
//!   `d*(λ)` per phase exactly as the live controller would, so it
//!   tracks the offered load while the worst static tree saturates.
//!   Per-hop forwarding is priced both ways: decode + re-encode per
//!   child (clone-forward) vs the fixed-offset header patch + shared
//!   wire buffer (zero-copy forward).
//! * **Live acceptance cells**: the real threaded runtime with the XOR
//!   acker on, relay trees enabled, and a forced mid-run epoch switch —
//!   clean, 10 %-drop, and clone-forward variants. Every cell asserts
//!   `tuples_acked + tuples_failed == spout_emitted` with
//!   `relay_forwards > 0`.
//!
//! Thread scheduling perturbs replay/forward *counts*, so the emitted
//! rows carry only run-invariant fields; `results/live_adaptive.json`
//! and `BENCH_adaptive.json` are byte-identical across same-seed reruns.

use crate::{Scale, Table};
use std::time::Duration;
use whale_dsps::{
    run_topology, AckConfig, AdaptiveConfig, Emitter, FnBolt, Grouping, IterSpout, LiveConfig,
    Operators, RunOutcome, Schema, Topology, TopologyBuilder, Tuple, Value,
};
use whale_multicast::{build_nonblocking, Node};
use whale_net::{FabricKind, FaultPlan};
use whale_sim::cost::mdone;
use whale_sim::{CostModel, JsonValue};

/// Tuple payload size, matching the E19/E20 calibration runs.
const MSG_BYTES: usize = 150;

/// Per-destination serialization time fed to `d*` (matches the live
/// controller's `t_e_default`).
const T_E: f64 = 20e-6;

/// Transfer-queue capacity Q for the M/D/1 waterline.
const Q: usize = 1024;

/// Workers in the modeled cluster (relay tree spans `WORKERS - 1`).
const WORKERS: u32 = 16;

/// Degree ceiling the adaptive planner may pick (≈ binomial source
/// degree for a 16-worker cluster).
const MAX_D: u32 = 8;

/// Phase-shifted workload: `(duration_s, lambda_tuples_per_s)`. Low →
/// high → low, crossing the affordable rate of every large out-degree.
pub const PHASES: [(f64, f64); 5] = [
    (2.0, 4_000.0),
    (2.0, 24_000.0),
    (2.0, 45_000.0),
    (2.0, 12_000.0),
    (2.0, 30_000.0),
];

/// Static out-degrees the adaptive structure is compared against.
pub const STATIC_DS: [u32; 4] = [1, 2, 4, 8];

/// One (structure, phase) cell of the model sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct ModelPoint {
    /// `static_d<k>` or `adaptive`.
    pub structure: String,
    /// Phase index into [`PHASES`].
    pub phase: usize,
    /// Phase duration (s).
    pub dur_s: f64,
    /// Offered arrival rate λ (tuples/s).
    pub lambda: f64,
    /// Out-degree in force during the phase.
    pub d: u32,
    /// Affordable source rate µ(d) (tuples/s).
    pub mu: f64,
    /// Delivered rate `min(λ, µ(d))` (tuples/s).
    pub delivered: f64,
    /// Relay-tree depth at this out-degree (latency proxy).
    pub depth: u32,
}

/// Deepest node of the nonblocking relay tree over `WORKERS - 1`
/// destinations at out-degree `d`.
fn tree_depth(d: u32) -> u32 {
    let tree = build_nonblocking(WORKERS - 1, d);
    (0..tree.n())
        .filter_map(|i| tree.depth(Node::Dest(i)))
        .max()
        .unwrap_or(0)
}

/// The out-degree the live controller would plan for arrival rate λ.
pub fn planned_d(lambda: f64) -> u32 {
    mdone::d_star(lambda, T_E, Q).clamp(1, MAX_D)
}

/// Model one structure across every phase. `degree(λ)` picks the
/// out-degree in force during a phase.
fn model_structure(name: &str, degree: impl Fn(f64) -> u32) -> Vec<ModelPoint> {
    PHASES
        .iter()
        .enumerate()
        .map(|(phase, &(dur_s, lambda))| {
            let d = degree(lambda);
            let mu = mdone::max_affordable_rate(d, T_E, Q);
            ModelPoint {
                structure: name.to_string(),
                phase,
                dur_s,
                lambda,
                d,
                mu,
                delivered: lambda.min(mu),
                depth: tree_depth(d),
            }
        })
        .collect()
}

/// The full model sweep: every static degree, then the adaptive plan.
pub fn model_sweep() -> Vec<ModelPoint> {
    let mut points = Vec::new();
    for &d in &STATIC_DS {
        points.extend(model_structure(&format!("static_d{d}"), |_| d));
    }
    points.extend(model_structure("adaptive", planned_d));
    points
}

/// End-to-end throughput of one structure: delivered tuples over the
/// whole trace divided by trace duration.
pub fn throughput(points: &[ModelPoint], structure: &str) -> f64 {
    let mine: Vec<_> = points.iter().filter(|p| p.structure == structure).collect();
    let delivered: f64 = mine.iter().map(|p| p.delivered * p.dur_s).sum();
    let dur: f64 = mine.iter().map(|p| p.dur_s).sum();
    delivered / dur
}

/// Per-hop forwarding price of both disciplines on the cost model:
/// clone-forward pays a decode and a re-encode of the frame per child,
/// zero-copy pays a reference handoff. Both pay the ring bookkeeping op.
/// Returns `(clone_us, zero_copy_us)`.
pub fn hop_prices() -> (f64, f64) {
    let cost = CostModel::default();
    let ser = cost.serialize(MSG_BYTES).as_secs_f64();
    let id_pack = cost.id_pack.as_secs_f64();
    let mr_op = cost.ring_mr_op.as_secs_f64();
    ((2.0 * ser + mr_op) * 1e6, (id_pack + mr_op) * 1e6)
}

/// One live acceptance cell. Every field is run-invariant: counts that
/// thread scheduling perturbs (replays, forwards) surface as booleans
/// asserted inside [`measure_live`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LivePoint {
    /// Cell label.
    pub mode: &'static str,
    /// Shared wire buffers (true) vs per-hop copies (false).
    pub zero_copy: bool,
    /// Injected silent-drop probability, in percent.
    pub drop_pct: u32,
    /// Worker processes in the run.
    pub machines: u32,
    /// Tuples the spout emitted (excludes replays).
    pub emitted: u64,
    /// `emitted - acked - failed`; identically zero (at-least-once).
    pub silent_lost: u64,
    /// Whether the run switched tree generations mid-stream.
    pub switched: bool,
    /// Whether tuples actually rode the relay tree.
    pub relay_active: bool,
}

/// All-grouped spout → sink topology with a throttled spout, so forced
/// switches land while the stream is in flight.
fn topology(n: i64, fanout: u32, gap: Duration) -> (Topology, Operators) {
    let mut b = TopologyBuilder::new();
    b.spout("src", 1, Schema::new(vec!["n"]))
        .bolt("sink", fanout, Schema::new(vec!["n"]))
        .connect("src", "sink", Grouping::All);
    let t = b.build().expect("static topology is valid");
    let ops = Operators::new()
        .spout("src", move |_| {
            Box::new(IterSpout::new((0..n).map(move |i| {
                if !gap.is_zero() {
                    std::thread::sleep(gap);
                }
                Tuple::with_id(i as u64, vec![Value::I64(i)])
            })))
        })
        .bolt("sink", |_| {
            Box::new(FnBolt::new(|_t: &Tuple, _out: &mut dyn Emitter| {}))
        });
    (t, ops)
}

/// Run one acked relay cell and verify acceptance: every emitted tuple
/// ends acked or failed, and the relay tree actually carried them.
pub fn measure_live(
    scale: Scale,
    mode: &'static str,
    adaptive: Option<AdaptiveConfig>,
    static_d: Option<u32>,
    zero_copy: bool,
    drop_pct: u32,
) -> LivePoint {
    let tuples: i64 = scale.pick3(120, 400, 1_500);
    let machines = 8;
    let expect_switch = adaptive
        .as_ref()
        .is_some_and(|a| !a.forced_switches.is_empty());
    let seed = 0xADA9_7000 + drop_pct as u64 * 31 + zero_copy as u64 * 7 + mode.len() as u64;
    let config = LiveConfig {
        machines,
        zero_copy,
        multicast_d_star: static_d,
        multicast_adaptive: adaptive,
        fabric: FabricKind::PerSend,
        ack: Some(AckConfig {
            timeout: Duration::from_millis(60),
            max_replays: 20,
            drain_deadline: Duration::from_secs(20),
            // Redundant EOS copies ride every relay hop independently, so
            // a lossy deep tree still terminates promptly.
            eos_redundancy: 8,
            ..AckConfig::default()
        }),
        fault: (drop_pct > 0)
            .then(|| FaultPlan::uniform_drops(seed, drop_pct as f64 / 100.0)),
        run_deadline: Some(Duration::from_secs(10)),
        ..LiveConfig::default()
    };
    // Throttle the spout just enough for a forced switch to land while
    // frames are in flight.
    let gap = if expect_switch {
        Duration::from_micros(100)
    } else {
        Duration::ZERO
    };
    let (t, ops) = topology(tuples, 16, gap);
    let r = run_topology(t, ops, config);

    assert_eq!(r.spout_emitted, tuples as u64, "{mode}: spout must finish");
    assert_eq!(
        r.tuples_acked + r.tuples_failed,
        r.spout_emitted,
        "{mode}: silent loss"
    );
    assert!(r.relay_forwards > 0, "{mode}: tuples must ride the relay tree");
    assert_eq!(r.thread_panics, 0, "{mode}: no thread may panic");
    if expect_switch {
        assert!(r.relay_switches >= 1, "{mode}: forced switch must land");
        assert!(r.relay_epoch >= 1, "{mode}: epoch must advance");
    }
    if drop_pct == 0 {
        assert_eq!(r.tuples_failed, 0, "{mode}: clean cell must ack everything");
        assert!(matches!(r.outcome, RunOutcome::Clean), "{mode}: {:?}", r.outcome);
        assert_eq!(r.relay_stale_drops, 0, "{mode}: clean cell drops nothing");
    } else {
        assert!(r.fault_drops > 0, "{mode}: plan must actually drop frames");
    }
    if zero_copy {
        assert!(r.shared_bytes > 0, "{mode}: zero-copy cell must share buffers");
    } else {
        assert_eq!(r.shared_bytes, 0, "{mode}: clone cell never shares");
        assert!(r.copied_bytes > 0, "{mode}: clone cell must copy frames");
    }

    LivePoint {
        mode,
        zero_copy,
        drop_pct,
        machines,
        emitted: r.spout_emitted,
        silent_lost: r.spout_emitted - r.tuples_acked - r.tuples_failed,
        switched: r.relay_switches >= 1,
        relay_active: r.relay_forwards > 0,
    }
}

/// Controller-driven soak: no forced switches — the tree starts narrow
/// (`d* = 1`) under a throttled spout, so the workload monitor sees a
/// low λ with an idle queue and the self-adjusting controller itself
/// scales the structure up mid-stream. Asserts at least one *organic*
/// switch landed with zero silent loss.
pub fn measure_controller_soak(scale: Scale) -> LivePoint {
    let tuples: i64 = scale.pick3(150, 400, 1_500);
    let machines = 8;
    let config = LiveConfig {
        machines,
        zero_copy: true,
        multicast_adaptive: Some(AdaptiveConfig {
            initial_d: 1,
            interval: Duration::from_millis(1),
            // Empty: decisions come from the monitor + controller.
            forced_switches: Vec::new(),
            ..AdaptiveConfig::default()
        }),
        fabric: FabricKind::PerSend,
        ack: Some(AckConfig {
            timeout: Duration::from_millis(60),
            max_replays: 20,
            drain_deadline: Duration::from_secs(20),
            eos_redundancy: 8,
            ..AckConfig::default()
        }),
        run_deadline: Some(Duration::from_secs(10)),
        ..LiveConfig::default()
    };
    // ~5k tuples/s: slow enough that the queue idles between arrivals
    // (the controller's scale-up signal), fast enough that the stream is
    // still in flight when the switch lands.
    let (t, ops) = topology(tuples, 16, Duration::from_micros(200));
    let r = run_topology(t, ops, config);

    assert_eq!(r.spout_emitted, tuples as u64, "soak: spout must finish");
    assert_eq!(
        r.tuples_acked + r.tuples_failed,
        r.spout_emitted,
        "soak: silent loss"
    );
    assert_eq!(r.tuples_failed, 0, "soak: clean run must ack everything");
    assert!(
        r.relay_switches >= 1,
        "soak: the controller itself must scale the tree up from d*=1"
    );
    assert!(r.relay_epoch >= 1, "soak: epoch must advance");
    assert!(r.relay_d_star > 1, "soak: final degree must widen past 1");
    assert!(r.relay_forwards > 0, "soak: tuples must ride the relay tree");
    assert_eq!(r.thread_panics, 0, "soak: no thread may panic");
    assert!(matches!(r.outcome, RunOutcome::Clean), "soak: {:?}", r.outcome);

    LivePoint {
        mode: "controller_soak",
        zero_copy: true,
        drop_pct: 0,
        machines,
        emitted: r.spout_emitted,
        silent_lost: r.spout_emitted - r.tuples_acked - r.tuples_failed,
        switched: r.relay_switches >= 1,
        relay_active: r.relay_forwards > 0,
    }
}

/// Adaptive config used by the live cells: start narrow, force a switch
/// to a shallow tree a third of the way through the stream.
fn live_adaptive_config(tuples: u64) -> AdaptiveConfig {
    AdaptiveConfig {
        initial_d: 2,
        interval: Duration::from_millis(1),
        forced_switches: vec![(tuples / 3, 4)],
        ..AdaptiveConfig::default()
    }
}

/// Run every live acceptance cell.
pub fn live_cells(scale: Scale) -> Vec<LivePoint> {
    let tuples = scale.pick3(120u64, 400, 1_500);
    vec![
        measure_live(
            scale,
            "adaptive_clean",
            Some(live_adaptive_config(tuples)),
            None,
            true,
            0,
        ),
        measure_live(
            scale,
            "adaptive_drops",
            Some(live_adaptive_config(tuples)),
            None,
            true,
            10,
        ),
        measure_live(scale, "static_clean", None, Some(2), true, 0),
        measure_live(
            scale,
            "clone_forward",
            Some(live_adaptive_config(tuples)),
            None,
            false,
            0,
        ),
        measure_controller_soak(scale),
    ]
}

/// Build the model-sweep result table.
pub fn table_from_points(points: &[ModelPoint]) -> Table {
    let mut table = Table::new(
        "live_adaptive",
        "Adaptive vs static relay trees on a phase-shifted workload (modeled)",
        &[
            "structure", "phase", "dur_s", "lambda", "d", "mu", "delivered", "depth",
        ],
    );
    for p in points {
        table.row_strings(vec![
            p.structure.clone(),
            p.phase.to_string(),
            format!("{:.1}", p.dur_s),
            format!("{:.0}", p.lambda),
            p.d.to_string(),
            format!("{:.1}", p.mu),
            format!("{:.1}", p.delivered),
            p.depth.to_string(),
        ]);
    }
    table
}

/// Headline summary written as the top-level `BENCH_adaptive.json`.
/// Schema-stable and byte-identical across same-scale reruns.
pub fn summary_json(points: &[ModelPoint], cells: &[LivePoint]) -> JsonValue {
    let adaptive_tps = throughput(points, "adaptive");
    let statics: Vec<f64> = STATIC_DS
        .iter()
        .map(|d| throughput(points, &format!("static_d{d}")))
        .collect();
    let worst_static = statics.iter().copied().fold(f64::INFINITY, f64::min);
    let best_static = statics.iter().copied().fold(0.0, f64::max);
    let (clone_us, zero_us) = hop_prices();
    let cell_json = |p: &LivePoint| {
        JsonValue::Object(vec![
            ("mode".into(), JsonValue::str(p.mode)),
            ("zero_copy".into(), JsonValue::Bool(p.zero_copy)),
            ("drop_pct".into(), JsonValue::UInt(p.drop_pct as u64)),
            ("emitted".into(), JsonValue::UInt(p.emitted)),
            ("silent_lost".into(), JsonValue::UInt(p.silent_lost)),
            ("switched".into(), JsonValue::Bool(p.switched)),
            ("relay_active".into(), JsonValue::Bool(p.relay_active)),
        ])
    };
    JsonValue::Object(vec![
        ("schema".into(), JsonValue::str(crate::JSON_SCHEMA)),
        ("report".into(), JsonValue::str("adaptive")),
        ("experiment".into(), JsonValue::str("live_adaptive")),
        ("phases".into(), JsonValue::UInt(PHASES.len() as u64)),
        ("adaptive_tuples_s".into(), JsonValue::Float(adaptive_tps)),
        ("best_static_tuples_s".into(), JsonValue::Float(best_static)),
        (
            "worst_static_tuples_s".into(),
            JsonValue::Float(worst_static),
        ),
        (
            "adaptive_gain_vs_worst_static".into(),
            JsonValue::Float(adaptive_tps / worst_static),
        ),
        (
            "clone_forward_us_per_child".into(),
            JsonValue::Float(clone_us),
        ),
        (
            "zero_copy_forward_us_per_child".into(),
            JsonValue::Float(zero_us),
        ),
        (
            "forward_speedup_per_hop".into(),
            JsonValue::Float(clone_us / zero_us),
        ),
        (
            "acceptance_cells".into(),
            JsonValue::Array(cells.iter().map(cell_json).collect()),
        ),
    ])
}

/// Run the model sweep, assert the acceptance margins, and return the
/// result table.
pub fn run_experiment(_scale: Scale) -> Vec<Table> {
    let points = model_sweep();
    let adaptive = throughput(&points, "adaptive");
    let worst = STATIC_DS
        .iter()
        .map(|d| throughput(&points, &format!("static_d{d}")))
        .fold(f64::INFINITY, f64::min);
    assert!(
        adaptive >= 1.3 * worst,
        "adaptive ({adaptive:.0}/s) must beat the worst static tree ({worst:.0}/s) by ≥30%"
    );
    let (clone_us, zero_us) = hop_prices();
    assert!(
        zero_us < clone_us,
        "zero-copy hop ({zero_us:.2}µs) must beat decode+re-encode ({clone_us:.2}µs)"
    );
    vec![table_from_points(&points)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_tracks_the_offered_load() {
        let points = model_sweep();
        let offered: f64 = PHASES.iter().map(|&(d, l)| d * l).sum::<f64>()
            / PHASES.iter().map(|&(d, _)| d).sum::<f64>();
        let adaptive = throughput(&points, "adaptive");
        assert!(
            (adaptive - offered).abs() < 1e-6,
            "adaptive {adaptive:.1} must deliver the offered {offered:.1}"
        );
        let worst = STATIC_DS
            .iter()
            .map(|d| throughput(&points, &format!("static_d{d}")))
            .fold(f64::INFINITY, f64::min);
        assert!(adaptive >= 1.3 * worst, "{adaptive:.0} vs {worst:.0}");
    }

    #[test]
    fn planner_narrows_under_load() {
        assert!(planned_d(4_000.0) > planned_d(45_000.0));
        assert_eq!(planned_d(45_000.0), 1);
        assert_eq!(planned_d(4_000.0), MAX_D);
    }

    #[test]
    fn zero_copy_hop_is_cheaper() {
        let (clone_us, zero_us) = hop_prices();
        assert!(zero_us < clone_us, "{zero_us:.2} vs {clone_us:.2}");
        assert!(clone_us / zero_us > 2.0);
    }

    #[test]
    fn model_sweep_is_deterministic() {
        assert_eq!(model_sweep(), model_sweep());
        let json_a = summary_json(&model_sweep(), &[]).to_json_string();
        let json_b = summary_json(&model_sweep(), &[]).to_json_string();
        assert_eq!(json_a, json_b);
    }

    #[test]
    fn adaptive_clean_cell_accounts_for_every_tuple() {
        let p = measure_live(
            Scale::Smoke,
            "adaptive_clean",
            Some(live_adaptive_config(120)),
            None,
            true,
            0,
        );
        assert_eq!(p.silent_lost, 0);
        assert!(p.switched);
        assert!(p.relay_active);
    }

    #[test]
    fn drops_on_the_relay_tree_never_cause_silent_loss() {
        let p = measure_live(
            Scale::Smoke,
            "adaptive_drops",
            Some(live_adaptive_config(120)),
            None,
            true,
            10,
        );
        assert_eq!(p.silent_lost, 0);
        assert!(p.relay_active);
    }

    #[test]
    fn controller_scales_the_tree_up_on_its_own() {
        let p = measure_controller_soak(Scale::Smoke);
        assert_eq!(p.mode, "controller_soak");
        assert_eq!(p.silent_lost, 0);
        assert!(p.switched, "switch must be controller-driven, not forced");
        assert!(p.relay_active);
    }

    #[test]
    fn table_and_summary_carry_the_schema() {
        let tables = run_experiment(Scale::Smoke);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), PHASES.len() * (STATIC_DS.len() + 1));
        let json = tables[0].to_json().to_json_string();
        assert!(json.contains("\"schema\":\"whale-bench/v1\""), "{json}");
        assert!(json.contains("\"figure\":\"live_adaptive\""));
        let summary = summary_json(&model_sweep(), &[]).to_json_string();
        assert!(summary.contains("adaptive_gain_vs_worst_static"));
    }
}
