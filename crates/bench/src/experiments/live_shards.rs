//! E24 — shard-owned pipelines: core-scaling of the live receive path.
//!
//! Two layers, one report:
//!
//! * **Model sweep** (deterministic): extends the E20 zero-copy pricing
//!   with pipeline shards. E20's shared discipline is sender-bound at
//!   real fan-outs — one pipeline per worker serializes routing, encode,
//!   and ring bookkeeping behind a single thread, which is exactly the
//!   dispatcher bottleneck the runtime refactor removes. With `S`
//!   shard-owned pipelines the sender stage divides by `S` (each shard
//!   owns its slice of tasks end to end) and the drain stage shards the
//!   same way (each pipeline owns its own fabric endpoint, mirroring
//!   `RingConfig::flusher_shards`); capacity is the slower stage. The
//!   1-shard column reproduces E20's `shared_tuples_s` numbers exactly
//!   — same counters, same pricing — so the sweep's scaling curve is
//!   anchored to the committed `BENCH_live_path.json` baseline.
//! * **Live acceptance cells**: the real threaded runtime with
//!   `LiveConfig::shards` ∈ {1, 4} across all three transports
//!   (per_send, ring, one_sided) with the XOR acker on. Every cell
//!   asserts `tuples_acked + tuples_failed == spout_emitted` (zero
//!   silent loss) and that multi-shard runs actually cross shards.
//!
//! Thread scheduling perturbs cross-shard *counts*, so the emitted rows
//! carry only run-invariant fields; `results/live_shards.json` and
//! `BENCH_shards.json` are byte-identical across same-seed reruns.

use crate::{Scale, Table};
use std::time::Duration;
use whale_dsps::{
    run_topology, AckConfig, Emitter, FnBolt, Grouping, IterSpout, LiveConfig, Operators,
    RunOutcome, Schema, Topology, TopologyBuilder, Tuple, Value,
};
use whale_net::{FabricKind, OneSidedConfig, RingConfig};
use whale_sim::{CostModel, JsonValue, Transport};

use super::live_zero_copy::{self, MSG_BYTES};

/// Pipeline shard counts swept per worker.
pub const PIPE_SHARDS: [u32; 4] = [1, 2, 4, 8];

/// Fan-outs swept (destinations per tuple).
pub const FANOUTS: [u32; 3] = [2, 8, 32];

/// The committed `BENCH_live_path.json` fan-out-8 shared-path baseline
/// (tuples/s) the 1-shard cell must not regress below.
pub const BASELINE_F8_TUPLES_S: f64 = 63897.76357827476;

/// One (fanout, shards) cell of the scaling sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct ShardPoint {
    /// Destinations per tuple.
    pub fanout: u32,
    /// Shard-owned pipelines per worker.
    pub shards: u32,
    /// Tuples driven through the measured ring.
    pub tuples: u64,
    /// Messages delivered (`tuples × fanout`).
    pub messages: u64,
    /// Mean messages per flushed batch.
    pub mean_batch: f64,
    /// Messages on the most loaded pipeline (drain critical path).
    pub max_shard_msgs: u64,
    /// Modeled shared-path capacity with an unsharded sender on the
    /// same drain configuration (at 1 shard: exactly the E20 number).
    pub single_tuples_s: f64,
    /// Modeled shared-path capacity with `shards` pipelines.
    pub sharded_tuples_s: f64,
    /// Whether the sharded cell is still sender-bound (more shards keep
    /// paying off) or has hit the drain critical path.
    pub sender_bound: bool,
}

impl ShardPoint {
    /// Sender-sharding gain: capacity over an unsharded sender on the
    /// same drain configuration (isolates the dispatcher removal from
    /// the flusher sharding E20 already measured).
    pub fn speedup(&self) -> f64 {
        self.sharded_tuples_s / self.single_tuples_s
    }
}

/// Measure one (fanout, shards) cell: drive E20's deterministic ring
/// workload with `shards` flusher shards for the drain counters, then
/// price the sender stage divided across `shards` pipelines.
pub fn measure(scale: Scale, fanout: u32, shards: u32) -> ShardPoint {
    let p = live_zero_copy::measure(scale, fanout, shards as usize);
    let cost = CostModel::default();
    let ser = cost.serialize(MSG_BYTES).as_secs_f64();
    let id_pack = cost.id_pack.as_secs_f64();
    let mr_op = cost.ring_mr_op.as_secs_f64();
    let post = cost.rdma_post_send.as_secs_f64();
    let wire = cost.wire_time(Transport::Rdma, MSG_BYTES).as_secs_f64();

    // Same arithmetic as E20's shared discipline, with the sender stage
    // divided by the pipeline count (routing, encode, and bookkeeping
    // are per-shard work now) — at `shards == 1` this reproduces
    // `p.shared_tuples_s` bit for bit.
    let drain_per_msg = mr_op + wire + post / p.mean_batch.max(1.0);
    let drain_time = p.max_shard_msgs as f64 * drain_per_msg;
    let f = fanout as f64;
    let sender_shared = p.tuples as f64 * (ser + f * (id_pack + mr_op));
    let sender_sharded = sender_shared / shards as f64;
    ShardPoint {
        fanout,
        shards,
        tuples: p.tuples,
        messages: p.messages,
        mean_batch: p.mean_batch,
        max_shard_msgs: p.max_shard_msgs,
        single_tuples_s: p.tuples as f64 / sender_shared.max(drain_time),
        sharded_tuples_s: p.tuples as f64 / sender_sharded.max(drain_time),
        sender_bound: sender_sharded >= drain_time,
    }
}

/// Measure every (fanout, shards) cell of the sweep, in row order.
pub fn sweep(scale: Scale) -> Vec<ShardPoint> {
    let mut points = Vec::with_capacity(FANOUTS.len() * PIPE_SHARDS.len());
    for &fanout in &FANOUTS {
        for &shards in &PIPE_SHARDS {
            points.push(measure(scale, fanout, shards));
        }
    }
    points
}

/// One live acceptance cell. Every field is run-invariant: counts that
/// thread scheduling perturbs (replays, cross-shard messages) surface
/// as booleans asserted inside [`measure_live`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LivePoint {
    /// Transport label.
    pub fabric: &'static str,
    /// Pipelines per worker in the run.
    pub shards: u32,
    /// Worker processes in the run.
    pub machines: u32,
    /// Tuples the spout emitted (excludes replays).
    pub emitted: u64,
    /// `emitted - acked - failed`; identically zero (at-least-once).
    pub silent_lost: u64,
    /// Whether deliveries actually crossed shard inboxes.
    pub cross_shard_active: bool,
}

/// All-grouped spout → sink topology, matching the E20/E23 cells.
fn topology(n: i64, fanout: u32) -> (Topology, Operators) {
    let mut b = TopologyBuilder::new();
    b.spout("src", 1, Schema::new(vec!["n"]))
        .bolt("sink", fanout, Schema::new(vec!["n"]))
        .connect("src", "sink", Grouping::All);
    let t = b.build().expect("static topology is valid");
    let ops = Operators::new()
        .spout("src", move |_| {
            Box::new(IterSpout::new(
                (0..n).map(|i| Tuple::with_id(i as u64, vec![Value::I64(i)])),
            ))
        })
        .bolt("sink", |_| {
            Box::new(FnBolt::new(|_t: &Tuple, _out: &mut dyn Emitter| {}))
        });
    (t, ops)
}

/// Run one tracked cell on the real runtime and verify acceptance:
/// every emitted tuple ends acked or failed, and a clean run acks all.
pub fn measure_live(
    scale: Scale,
    fabric: &'static str,
    kind: FabricKind,
    shards: u32,
) -> LivePoint {
    let tuples: i64 = scale.pick3(120, 400, 1_500);
    let machines = 4;
    let config = LiveConfig {
        machines,
        shards,
        zero_copy: true,
        fabric: kind,
        ack: Some(AckConfig {
            timeout: Duration::from_millis(60),
            max_replays: 20,
            drain_deadline: Duration::from_secs(20),
            eos_redundancy: 8,
            ..AckConfig::default()
        }),
        run_deadline: Some(Duration::from_secs(10)),
        ..LiveConfig::default()
    };
    let (t, ops) = topology(tuples, 16);
    let r = run_topology(t, ops, config);

    let label = format!("{fabric}/{shards}");
    assert_eq!(r.spout_emitted, tuples as u64, "{label}: spout must finish");
    assert_eq!(
        r.tuples_acked + r.tuples_failed,
        r.spout_emitted,
        "{label}: silent loss"
    );
    assert_eq!(r.tuples_failed, 0, "{label}: clean cell must ack everything");
    assert!(matches!(r.outcome, RunOutcome::Clean), "{label}: {:?}", r.outcome);
    assert_eq!(r.shards, shards as u64, "{label}: report must carry shards");
    if shards > 1 {
        assert!(
            r.cross_shard_msgs > 0,
            "{label}: fan-out must cross shard inboxes"
        );
    }

    LivePoint {
        fabric,
        shards,
        machines,
        emitted: r.spout_emitted,
        silent_lost: r.spout_emitted - r.tuples_acked - r.tuples_failed,
        cross_shard_active: r.cross_shard_msgs > 0,
    }
}

/// Run every live acceptance cell: three transports × {1, 4} shards.
pub fn live_cells(scale: Scale) -> Vec<LivePoint> {
    let kinds = || {
        vec![
            ("per_send", FabricKind::PerSend),
            ("ring", FabricKind::Ring(RingConfig::default())),
            (
                "one_sided",
                FabricKind::OneSided(OneSidedConfig::default()),
            ),
        ]
    };
    let mut cells = Vec::new();
    for shards in [1u32, 4] {
        for (label, kind) in kinds() {
            cells.push(measure_live(scale, label, kind, shards));
        }
    }
    cells
}

/// Build the scaling-sweep result table.
pub fn table_from_points(points: &[ShardPoint]) -> Table {
    let mut table = Table::new(
        "live_shards",
        "Shard-owned pipelines: live-path capacity vs pipelines per worker (modeled tuples/s)",
        &[
            "fanout",
            "shards",
            "messages",
            "max_shard_msgs",
            "single_tuples_s",
            "sharded_tuples_s",
            "speedup",
            "sender_bound",
        ],
    );
    for p in points {
        table.row_strings(vec![
            p.fanout.to_string(),
            p.shards.to_string(),
            p.messages.to_string(),
            p.max_shard_msgs.to_string(),
            format!("{:.0}", p.single_tuples_s),
            format!("{:.0}", p.sharded_tuples_s),
            format!("{:.2}", p.speedup()),
            p.sender_bound.to_string(),
        ]);
    }
    table
}

/// The cell at one (fanout, shards) coordinate.
fn by(points: &[ShardPoint], fanout: u32, shards: u32) -> &ShardPoint {
    points
        .iter()
        .find(|p| p.fanout == fanout && p.shards == shards)
        .expect("sweep covers the headline points")
}

/// Headline summary written as the top-level `BENCH_shards.json`.
/// Schema-stable and byte-identical across same-scale reruns.
pub fn summary_json(points: &[ShardPoint], cells: &[LivePoint]) -> JsonValue {
    let f8_1 = by(points, 8, 1);
    let f8_4 = by(points, 8, 4);
    let curve: Vec<JsonValue> = points
        .iter()
        .map(|p| {
            JsonValue::Object(vec![
                ("fanout".into(), JsonValue::UInt(p.fanout as u64)),
                ("shards".into(), JsonValue::UInt(p.shards as u64)),
                (
                    "sharded_tuples_s".into(),
                    JsonValue::Float(p.sharded_tuples_s),
                ),
                ("speedup".into(), JsonValue::Float(p.speedup())),
                ("sender_bound".into(), JsonValue::Bool(p.sender_bound)),
            ])
        })
        .collect();
    let cell_json = |p: &LivePoint| {
        JsonValue::Object(vec![
            ("fabric".into(), JsonValue::str(p.fabric)),
            ("shards".into(), JsonValue::UInt(p.shards as u64)),
            ("machines".into(), JsonValue::UInt(p.machines as u64)),
            ("emitted".into(), JsonValue::UInt(p.emitted)),
            ("silent_lost".into(), JsonValue::UInt(p.silent_lost)),
            (
                "cross_shard_active".into(),
                JsonValue::Bool(p.cross_shard_active),
            ),
        ])
    };
    JsonValue::Object(vec![
        ("schema".into(), JsonValue::str(crate::JSON_SCHEMA)),
        ("report".into(), JsonValue::str("shards")),
        ("experiment".into(), JsonValue::str("live_shards")),
        (
            "fanouts".into(),
            JsonValue::Array(FANOUTS.iter().map(|&f| JsonValue::UInt(f as u64)).collect()),
        ),
        (
            "shard_counts".into(),
            JsonValue::Array(
                PIPE_SHARDS
                    .iter()
                    .map(|&s| JsonValue::UInt(s as u64))
                    .collect(),
            ),
        ),
        (
            "fanout8_1shard_tuples_s".into(),
            JsonValue::Float(f8_1.sharded_tuples_s),
        ),
        (
            "fanout8_4shard_tuples_s".into(),
            JsonValue::Float(f8_4.sharded_tuples_s),
        ),
        (
            "fanout8_4shard_speedup".into(),
            JsonValue::Float(f8_4.speedup()),
        ),
        (
            "baseline_tuples_s".into(),
            JsonValue::Float(BASELINE_F8_TUPLES_S),
        ),
        (
            "one_shard_matches_baseline".into(),
            JsonValue::Bool(f8_1.sharded_tuples_s >= BASELINE_F8_TUPLES_S * 0.999),
        ),
        ("scaling_curve".into(), JsonValue::Array(curve)),
        (
            "acceptance_cells".into(),
            JsonValue::Array(cells.iter().map(cell_json).collect()),
        ),
    ])
}

/// Run the scaling sweep, assert the acceptance margins, and return the
/// result table.
pub fn run_experiment(scale: Scale) -> Vec<Table> {
    let points = sweep(scale);
    let f8_1 = by(&points, 8, 1);
    let f8_4 = by(&points, 8, 4);
    assert!(
        f8_1.sharded_tuples_s >= BASELINE_F8_TUPLES_S * 0.999,
        "1-shard fan-out-8 cell regressed below the live-path baseline: \
         {:.2} < {BASELINE_F8_TUPLES_S:.2}",
        f8_1.sharded_tuples_s
    );
    assert!(
        f8_4.speedup() >= 2.5,
        "4 pipelines must scale ≥2.5× at fan-out 8, got {:.2}×",
        f8_4.speedup()
    );
    for &f in &FANOUTS {
        for w in PIPE_SHARDS.windows(2) {
            let (a, b) = (by(&points, f, w[0]), by(&points, f, w[1]));
            assert!(
                b.sharded_tuples_s >= a.sharded_tuples_s,
                "fanout {f}: {} → {} shards must never price slower",
                w[0],
                w[1]
            );
        }
    }
    vec![table_from_points(&points)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shard_cell_equals_the_e20_shared_path() {
        for &f in &FANOUTS {
            let e24 = measure(Scale::Smoke, f, 1);
            let e20 = live_zero_copy::measure(Scale::Smoke, f, 1);
            assert_eq!(
                e24.sharded_tuples_s, e20.shared_tuples_s,
                "fanout {f}: the 1-shard cell must reproduce E20 exactly"
            );
            assert_eq!(e24.sharded_tuples_s, e24.single_tuples_s);
        }
    }

    #[test]
    fn four_shards_scale_beyond_2_5x_at_fanout_8() {
        let p = measure(Scale::Smoke, 8, 4);
        assert!(p.speedup() >= 2.5, "got {:.2}×", p.speedup());
    }

    #[test]
    fn scaling_is_monotone_in_shards() {
        for &f in &FANOUTS {
            let mut last = 0.0f64;
            for &s in &PIPE_SHARDS {
                let p = measure(Scale::Smoke, f, s);
                assert!(
                    p.sharded_tuples_s >= last,
                    "fanout {f} shards {s}: {:.0} < {last:.0}",
                    p.sharded_tuples_s
                );
                last = p.sharded_tuples_s;
            }
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        assert_eq!(sweep(Scale::Smoke), sweep(Scale::Smoke));
        let a = summary_json(&sweep(Scale::Smoke), &[]).to_json_string();
        let b = summary_json(&sweep(Scale::Smoke), &[]).to_json_string();
        assert_eq!(a, b);
    }

    #[test]
    fn live_cells_account_for_every_tuple() {
        for cell in live_cells(Scale::Smoke) {
            assert_eq!(cell.silent_lost, 0, "{}/{}", cell.fabric, cell.shards);
            if cell.shards > 1 {
                assert!(cell.cross_shard_active, "{}", cell.fabric);
            }
        }
    }

    #[test]
    fn table_and_summary_carry_the_schema() {
        let tables = run_experiment(Scale::Smoke);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), FANOUTS.len() * PIPE_SHARDS.len());
        let json = tables[0].to_json().to_json_string();
        assert!(json.contains("\"schema\":\"whale-bench/v1\""), "{json}");
        assert!(json.contains("\"figure\":\"live_shards\""));
        let summary = summary_json(&sweep(Scale::Smoke), &[]).to_json_string();
        assert!(summary.contains("\"report\":\"shards\""));
        assert!(summary.contains("scaling_curve"));
        assert!(summary.contains("fanout8_4shard_speedup"));
    }
}
