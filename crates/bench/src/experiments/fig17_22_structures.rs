//! E10–E12 — Figs 17–22: the three multicast structures (Storm's
//! sequential, RDMC's binomial, Whale's non-blocking with d* = 3), all
//! implemented on top of Whale-WOC-RDMA as in the paper.
//!
//! Figs 17/18 and 19/20 report throughput and processing latency under a
//! near-capacity Poisson input (the paper drives "the maximum stream rate
//! the system can sustain" — the structures differ exactly in what they
//! can sustain, Theorem 1); Figs 21/22 report the average multicast
//! latency.

use crate::experiments::common::{config, Dataset, PARALLELISM_SWEEP};
use crate::report::engine_run_json;
use crate::{fmt_rate, Scale, Table};
use whale_core::{run, EngineReport, SystemMode};
use whale_multicast::Structure;

const STRUCTURES: [Structure; 3] = [
    Structure::Sequential,
    Structure::Binomial,
    Structure::NonBlocking { d_star: 3 },
];

fn run_point(dataset: Dataset, s: Structure, p: u32, tuples: u64) -> EngineReport {
    let mut cfg = config(dataset, SystemMode::WhaleWocRdma, p, tuples);
    cfg.structure = Some(s);
    run(cfg)
}

fn throughput_latency(dataset: Dataset, ids: (&str, &str), tuples: u64) -> Vec<Table> {
    let mut tput = Table::new(
        ids.0,
        &format!("multicast structures: throughput — {}", dataset.label()),
        &["parallelism", "structure", "tuples_per_s"],
    );
    let mut lat = Table::new(
        ids.1,
        &format!("multicast structures: latency — {}", dataset.label()),
        &["parallelism", "structure", "mean_latency_ms"],
    );
    for &p in &PARALLELISM_SWEEP {
        for s in STRUCTURES {
            let r = run_point(dataset, s, p, tuples);
            tput.row_strings(vec![
                p.to_string(),
                s.label().to_string(),
                fmt_rate(r.throughput),
            ]);
            // The throughput table's JSON carries the full per-run
            // metrics snapshot behind both summary tables.
            tput.attach_run(engine_run_json(ids.0, s.label(), p, dataset.seed(), &r));
            lat.row_strings(vec![
                p.to_string(),
                s.label().to_string(),
                format!("{:.2}", r.mean_latency.as_secs_f64() * 1e3),
            ]);
        }
    }
    vec![tput, lat]
}

/// Figs 17/18: structures on ride-hailing.
pub fn run_ride_hailing(scale: Scale) -> Vec<Table> {
    throughput_latency(Dataset::Didi, ("fig17", "fig18"), scale.pick3(12, 80, 300))
}

/// Figs 19/20: structures on stock exchange.
pub fn run_stock_exchange(scale: Scale) -> Vec<Table> {
    throughput_latency(
        Dataset::Nasdaq,
        ("fig19", "fig20"),
        scale.pick3(12, 80, 300),
    )
}

/// Figs 21/22: average multicast latency, both datasets, d* = 3.
pub fn run_multicast_latency(scale: Scale) -> Vec<Table> {
    let tuples = scale.pick3(12, 80, 300);
    let mut out = Vec::new();
    for (dataset, id) in [(Dataset::Didi, "fig21"), (Dataset::Nasdaq, "fig22")] {
        let mut t = Table::new(
            id,
            &format!("average multicast latency — {}", dataset.label()),
            &["parallelism", "structure", "multicast_latency_us"],
        );
        for &p in &PARALLELISM_SWEEP {
            for s in STRUCTURES {
                let r = run_point(dataset, s, p, tuples);
                t.row_strings(vec![
                    p.to_string(),
                    s.label().to_string(),
                    format!("{:.1}", r.mean_multicast_latency.as_nanos() as f64 / 1e3),
                ]);
                t.attach_run(engine_run_json(id, s.label(), p, dataset.seed(), &r));
            }
        }
        // Summary line at parallelism 480 (the paper quotes -54.4%/-57.8%
        // for Didi and -50.6%/-56.6% for NASDAQ).
        let at = |s: Structure| {
            run_point(dataset, s, 480, tuples)
                .mean_multicast_latency
                .as_secs_f64()
        };
        let nb = at(Structure::NonBlocking { d_star: 3 });
        let bi = at(Structure::Binomial);
        let se = at(Structure::Sequential);
        println!(
            "[{}] multicast latency at 480: non-blocking is {:.1}% below binomial, {:.1}% below sequential",
            dataset.label(),
            100.0 * (1.0 - nb / bi),
            100.0 * (1.0 - nb / se),
        );
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structures_grid_complete() {
        let tables = run_ride_hailing(Scale::Smoke);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), PARALLELISM_SWEEP.len() * 3);
        let json = tables[0].to_json().to_json_string();
        assert!(
            json.contains("\"runs\""),
            "throughput table must carry per-run metrics snapshots"
        );
    }

    #[test]
    fn nonblocking_beats_sequential_multicast_latency() {
        let nb = run_point(Dataset::Didi, Structure::NonBlocking { d_star: 3 }, 480, 40);
        let se = run_point(Dataset::Didi, Structure::Sequential, 480, 40);
        assert!(
            nb.mean_multicast_latency < se.mean_multicast_latency,
            "nb={} seq={}",
            nb.mean_multicast_latency,
            se.mean_multicast_latency
        );
    }
}
