//! E27 — live topology: congestion- and topology-aware multicast trees
//! vs Whale's placement-oblivious d* tree and the binomial baseline.
//!
//! Two layers, one report:
//!
//! * **Model sweep** (deterministic): racks {1, 2, 5} × a skewed,
//!   interleaved destination placement × a λ ramp. Each cell builds the
//!   rack-aware tree (`TopoTreeBuilder` at the controller's `d*(λ)`),
//!   Whale's oblivious `build_nonblocking` at the same `d*`, and the
//!   RDMC binomial tree, then prices all three on the uplink-serialized
//!   cost model (`tree_cost`): intra-rack hops are cheap and parallel,
//!   rack crossings FIFO-queue on their egress rack's uplink. The
//!   rack-aware tree enters each destination rack exactly once, so on
//!   the skewed 5-rack cell it wins on *both* modeled completion
//!   latency and uplink crossings.
//! * **Live byte cells** (deterministic): the real threaded runtime on
//!   a skewed rack map, per-send fabric, no faults, no mid-run
//!   switches, untracked — so delivered frames and therefore per-link
//!   byte counts are exact and rerun-identical. Each racks>1 pair
//!   (rack-aware vs oblivious trees under the *same* topology) must
//!   show fewer measured uplink bytes for the rack-aware tree, and
//!   per-link sums must tile the wire total. A separate acked
//!   acceptance cell (replay counts are scheduling-dependent) reports
//!   only run-invariant booleans: no silent loss across a mid-stream
//!   switch on the 5-rack skew.
//!
//! Emits `results/live_topology.{csv,json}` and the headline
//! `BENCH_topology.json`; both are byte-identical across reruns.

use crate::{Scale, Table};
use std::time::Duration;
use whale_dsps::{
    run_topology, AckConfig, AdaptiveConfig, Emitter, FnBolt, Grouping, IterSpout, LiveConfig,
    Operators, RunOutcome, Schema, Topology, TopologyBuilder, Tuple, Value,
};
use whale_multicast::{build_binomial, build_nonblocking, tree_cost, TopoTreeBuilder, TreeCost};
use whale_net::{FabricKind, TopologyConfig};
use whale_sim::cost::mdone;
use whale_sim::JsonValue;

/// Per-destination serialization time (µs), matching the live
/// controller's `t_e_default`.
const T_E_US: f64 = 20.0;

/// Modeled one-hop latency within a rack (µs).
const T_INTRA_US: f64 = 5.0;

/// Modeled uplink occupancy per crossing (µs) — crossings serialize on
/// their egress rack's uplink.
const T_UPLINK_US: f64 = 40.0;

/// Transfer-queue capacity Q for the M/D/1 `d*`.
const Q: usize = 1024;

/// Degree ceiling the planner may pick.
const MAX_D: u32 = 8;

/// Workers in the modeled cluster (trees span `WORKERS - 1` dests).
const WORKERS: u32 = 24;

/// Rack counts swept by the model.
pub const RACKS: [u32; 3] = [1, 2, 5];

/// λ ramp (tuples/s): low → mid → saturating, driving `d*` 8 → 4 → 1.
pub const LAMBDA_RAMP: [f64; 3] = [4_000.0, 12_000.0, 45_000.0];

/// The headline acceptance cell: 5 racks at the mid-ramp λ.
pub const HEADLINE_RACKS: u32 = 5;
/// Headline arrival rate.
pub const HEADLINE_LAMBDA: f64 = 12_000.0;

/// The out-degree the live controller would plan for arrival rate λ.
fn planned_d(lambda: f64) -> u32 {
    mdone::d_star(lambda, T_E_US * 1e-6, Q).clamp(1, MAX_D)
}

/// Skewed, *interleaved* destination placement: roughly a third of the
/// destinations are scattered across the remote racks in between the
/// hot rack's — the adversarial layout a placement-oblivious tree
/// crosses over and over while the rack-aware tree still enters each
/// remote rack exactly once.
pub fn skewed_dest_racks(racks: u32, n: u32) -> Vec<u32> {
    (0..n)
        .map(|i| {
            if racks > 1 && i % 3 == 2 {
                1 + (i / 3) % (racks - 1)
            } else {
                0
            }
        })
        .collect()
}

/// One (racks, λ, structure) cell of the model sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct ModelPoint {
    /// Rack count of the cell.
    pub racks: u32,
    /// `topo`, `whale` or `binomial`.
    pub structure: &'static str,
    /// Offered arrival rate λ (tuples/s).
    pub lambda: f64,
    /// Out-degree of the structure in this cell.
    pub d: u32,
    /// Priced on the uplink-serialized model.
    pub cost: TreeCost,
}

/// Price one structure on one cell.
fn model_point(racks: u32, lambda: f64, structure: &'static str) -> ModelPoint {
    let n = WORKERS - 1;
    let node_racks = skewed_dest_racks(racks, n);
    let d = planned_d(lambda);
    let (tree, d) = match structure {
        "topo" => (
            TopoTreeBuilder::new(d, 0, node_racks.clone()).build(),
            d,
        ),
        "whale" => (build_nonblocking(n, d), d),
        "binomial" => {
            let t = build_binomial(n);
            let src_deg = whale_multicast::binomial_source_degree(n);
            (t, src_deg)
        }
        other => unreachable!("unknown structure {other}"),
    };
    let cost = tree_cost(&tree, 0, &node_racks, T_E_US, T_INTRA_US, T_UPLINK_US);
    ModelPoint {
        racks,
        structure,
        lambda,
        d,
        cost,
    }
}

/// The full model sweep: racks × λ ramp × three structures.
pub fn model_sweep() -> Vec<ModelPoint> {
    let mut points = Vec::new();
    for &racks in &RACKS {
        for &lambda in &LAMBDA_RAMP {
            for structure in ["topo", "whale", "binomial"] {
                points.push(model_point(racks, lambda, structure));
            }
        }
    }
    points
}

/// Find one cell of the sweep.
pub fn cell<'a>(
    points: &'a [ModelPoint],
    racks: u32,
    lambda: f64,
    structure: &str,
) -> &'a ModelPoint {
    points
        .iter()
        .find(|p| p.racks == racks && p.lambda == lambda && p.structure == structure)
        .expect("cell present")
}

/// One deterministic live byte-measurement cell.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ByteCell {
    /// Rack count of the cell.
    pub racks: u32,
    /// Rack-aware trees (true) vs Whale's oblivious trees (false),
    /// both under the same per-link accounting.
    pub topo_trees: bool,
    /// Total wire bytes (`copied + shared`).
    pub wire_bytes: u64,
    /// Measured bytes delivered over rack uplinks.
    pub uplink_bytes: u64,
}

/// Skewed machine → rack map for `machines` workers: remote racks get
/// one machine each, interleaved with the hot rack's.
pub fn skewed_rack_map(racks: u32, machines: u32) -> Vec<u32> {
    (0..machines)
        .map(|m| {
            if racks > 1 && m % 2 == 1 && m / 2 < racks - 1 {
                1 + m / 2
            } else {
                0
            }
        })
        .collect()
}

/// All-grouped spout → sink topology.
fn topology(n: i64, fanout: u32, gap: Duration) -> (Topology, Operators) {
    let mut b = TopologyBuilder::new();
    b.spout("src", 1, Schema::new(vec!["n"]))
        .bolt("sink", fanout, Schema::new(vec!["n"]))
        .connect("src", "sink", Grouping::All);
    let t = b.build().expect("static topology is valid");
    let ops = Operators::new()
        .spout("src", move |_| {
            Box::new(IterSpout::new((0..n).map(move |i| {
                if !gap.is_zero() {
                    std::thread::sleep(gap);
                }
                Tuple::with_id(i as u64, vec![Value::I64(i)])
            })))
        })
        .bolt("sink", |_| {
            Box::new(FnBolt::new(|_t: &Tuple, _out: &mut dyn Emitter| {}))
        });
    (t, ops)
}

/// Run one untracked, fault-free, switch-free cell and read the link
/// counters. Everything on this path is deterministic, so the returned
/// byte counts are identical across reruns.
pub fn measure_bytes(scale: Scale, racks: u32, topo_trees: bool) -> ByteCell {
    let tuples: i64 = scale.pick3(120, 400, 1_200);
    let machines = 10;
    let (t, ops) = topology(tuples, 16, Duration::ZERO);
    let r = run_topology(
        t,
        ops,
        LiveConfig {
            machines,
            zero_copy: true,
            fabric: FabricKind::PerSend,
            multicast_adaptive: Some(AdaptiveConfig {
                initial_d: 2,
                // No mid-run switches: one tree generation end to end.
                interval: Duration::from_secs(60),
                topology: Some(TopologyConfig {
                    racks,
                    rack_of_machine: Some(skewed_rack_map(racks, machines)),
                    topo_trees,
                    ..TopologyConfig::default()
                }),
                ..AdaptiveConfig::default()
            }),
            ..LiveConfig::default()
        },
    );
    assert_eq!(r.outcome, RunOutcome::Clean, "byte cell must run clean");
    assert_eq!(r.executed[1], tuples as u64 * 16, "every broadcast lands");
    assert!(r.relay_forwards > 0, "tuples must ride the relay tree");
    let wire = r.copied_bytes + r.shared_bytes;
    let linked: u64 = r.link_bytes.iter().map(|(_, b)| b).sum();
    assert_eq!(linked, wire, "per-link sums must tile the wire total");
    if racks > 1 {
        assert!(r.uplink_bytes > 0, "cross-rack traffic must register");
    } else {
        assert_eq!(r.uplink_bytes, 0, "one rack has no uplink traffic");
    }
    ByteCell {
        racks,
        topo_trees,
        wire_bytes: wire,
        uplink_bytes: r.uplink_bytes,
    }
}

/// Every deterministic byte cell, with the rack-aware tree required to
/// move strictly fewer uplink bytes than the oblivious tree wherever an
/// uplink exists.
pub fn byte_cells(scale: Scale) -> Vec<ByteCell> {
    let mut cells = Vec::new();
    for &racks in &RACKS {
        let topo = measure_bytes(scale, racks, true);
        let oblivious = measure_bytes(scale, racks, false);
        if racks > 1 {
            assert!(
                topo.uplink_bytes < oblivious.uplink_bytes,
                "racks={racks}: rack-aware trees must economize the uplink \
                 ({} vs {})",
                topo.uplink_bytes,
                oblivious.uplink_bytes
            );
        } else {
            assert_eq!(topo.uplink_bytes, 0);
            assert_eq!(
                topo.wire_bytes, oblivious.wire_bytes,
                "one rack: the builders produce the same tree"
            );
        }
        cells.push(topo);
        cells.push(oblivious);
    }
    cells
}

/// The acked acceptance cell: run-invariant booleans only (replay and
/// forward counts are scheduling-dependent).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AckedCell {
    /// Tuples the spout emitted (excludes replays).
    pub emitted: u64,
    /// `emitted - acked - failed`; identically zero.
    pub silent_lost: u64,
    /// Whether the run switched tree generations mid-stream.
    pub switched: bool,
    /// Whether tuples actually rode the relay tree.
    pub relay_active: bool,
}

/// Acked run on the 5-rack skew with a forced mid-stream switch: the
/// XOR acker must account for every tuple across the topo-aware epoch
/// handoff.
pub fn measure_acked(scale: Scale) -> AckedCell {
    let tuples: i64 = scale.pick3(120, 400, 1_200);
    let machines = 10;
    let (t, ops) = topology(tuples, 16, Duration::from_micros(100));
    let r = run_topology(
        t,
        ops,
        LiveConfig {
            machines,
            zero_copy: true,
            fabric: FabricKind::PerSend,
            multicast_adaptive: Some(AdaptiveConfig {
                initial_d: 1,
                interval: Duration::from_millis(1),
                forced_switches: vec![(tuples as u64 / 3, 4)],
                topology: Some(TopologyConfig {
                    racks: HEADLINE_RACKS,
                    rack_of_machine: Some(skewed_rack_map(HEADLINE_RACKS, machines)),
                    ..TopologyConfig::default()
                }),
                ..AdaptiveConfig::default()
            }),
            ack: Some(AckConfig {
                timeout: Duration::from_millis(60),
                max_replays: 20,
                drain_deadline: Duration::from_secs(20),
                eos_redundancy: 8,
                ..AckConfig::default()
            }),
            run_deadline: Some(Duration::from_secs(10)),
            ..LiveConfig::default()
        },
    );
    assert_eq!(r.spout_emitted, tuples as u64, "acked: spout must finish");
    assert_eq!(
        r.tuples_acked + r.tuples_failed,
        r.spout_emitted,
        "acked: silent loss"
    );
    assert_eq!(r.tuples_failed, 0, "acked: clean run must ack everything");
    assert!(r.relay_switches >= 1, "acked: forced switch must land");
    assert!(r.relay_forwards > 0, "acked: tuples must ride the tree");
    assert_eq!(r.thread_panics, 0, "acked: no thread may panic");
    AckedCell {
        emitted: r.spout_emitted,
        silent_lost: r.spout_emitted - r.tuples_acked - r.tuples_failed,
        switched: r.relay_switches >= 1,
        relay_active: r.relay_forwards > 0,
    }
}

/// Build the model-sweep result table.
pub fn table_from_points(points: &[ModelPoint]) -> Table {
    let mut table = Table::new(
        "live_topology",
        "Rack-aware vs oblivious multicast trees on skewed placements (modeled)",
        &[
            "racks",
            "structure",
            "lambda",
            "d",
            "completion_us",
            "uplink_edges",
            "depth",
        ],
    );
    for p in points {
        table.row_strings(vec![
            p.racks.to_string(),
            p.structure.to_string(),
            format!("{:.0}", p.lambda),
            p.d.to_string(),
            format!("{:.1}", p.cost.completion_us),
            p.cost.uplink_edges.to_string(),
            p.cost.max_depth.to_string(),
        ]);
    }
    table
}

/// Headline summary written as the top-level `BENCH_topology.json`.
/// Schema-stable and byte-identical across same-scale reruns.
pub fn summary_json(points: &[ModelPoint], bytes: &[ByteCell], acked: &[AckedCell]) -> JsonValue {
    let topo = cell(points, HEADLINE_RACKS, HEADLINE_LAMBDA, "topo");
    let whale = cell(points, HEADLINE_RACKS, HEADLINE_LAMBDA, "whale");
    let binomial = cell(points, HEADLINE_RACKS, HEADLINE_LAMBDA, "binomial");
    let byte_json = |c: &ByteCell| {
        JsonValue::Object(vec![
            ("racks".into(), JsonValue::UInt(c.racks as u64)),
            ("topo_trees".into(), JsonValue::Bool(c.topo_trees)),
            ("wire_bytes".into(), JsonValue::UInt(c.wire_bytes)),
            ("uplink_bytes".into(), JsonValue::UInt(c.uplink_bytes)),
        ])
    };
    let acked_json = |c: &AckedCell| {
        JsonValue::Object(vec![
            ("emitted".into(), JsonValue::UInt(c.emitted)),
            ("silent_lost".into(), JsonValue::UInt(c.silent_lost)),
            ("switched".into(), JsonValue::Bool(c.switched)),
            ("relay_active".into(), JsonValue::Bool(c.relay_active)),
        ])
    };
    JsonValue::Object(vec![
        ("schema".into(), JsonValue::str(crate::JSON_SCHEMA)),
        ("report".into(), JsonValue::str("topology")),
        ("experiment".into(), JsonValue::str("live_topology")),
        ("headline_racks".into(), JsonValue::UInt(HEADLINE_RACKS as u64)),
        ("headline_lambda".into(), JsonValue::Float(HEADLINE_LAMBDA)),
        (
            "topo_completion_us".into(),
            JsonValue::Float(topo.cost.completion_us),
        ),
        (
            "whale_completion_us".into(),
            JsonValue::Float(whale.cost.completion_us),
        ),
        (
            "binomial_completion_us".into(),
            JsonValue::Float(binomial.cost.completion_us),
        ),
        (
            "topo_uplink_edges".into(),
            JsonValue::UInt(topo.cost.uplink_edges as u64),
        ),
        (
            "whale_uplink_edges".into(),
            JsonValue::UInt(whale.cost.uplink_edges as u64),
        ),
        (
            "binomial_uplink_edges".into(),
            JsonValue::UInt(binomial.cost.uplink_edges as u64),
        ),
        (
            "speedup_vs_whale".into(),
            JsonValue::Float(whale.cost.completion_us / topo.cost.completion_us),
        ),
        (
            "speedup_vs_binomial".into(),
            JsonValue::Float(binomial.cost.completion_us / topo.cost.completion_us),
        ),
        (
            "byte_cells".into(),
            JsonValue::Array(bytes.iter().map(byte_json).collect()),
        ),
        (
            "acked_cells".into(),
            JsonValue::Array(acked.iter().map(acked_json).collect()),
        ),
    ])
}

/// Run the model sweep, assert the acceptance margins, and return the
/// result table.
pub fn run_experiment(_scale: Scale) -> Vec<Table> {
    let points = model_sweep();

    // Headline: the rack-aware tree must beat *both* baselines on *both*
    // axes on the skewed 5-rack cell.
    let topo = cell(&points, HEADLINE_RACKS, HEADLINE_LAMBDA, "topo");
    for base in ["whale", "binomial"] {
        let b = cell(&points, HEADLINE_RACKS, HEADLINE_LAMBDA, base);
        assert!(
            topo.cost.completion_us < b.cost.completion_us,
            "topo ({:.1}µs) must complete before {base} ({:.1}µs)",
            topo.cost.completion_us,
            b.cost.completion_us
        );
        assert!(
            topo.cost.uplink_edges < b.cost.uplink_edges,
            "topo ({} crossings) must cross racks less than {base} ({})",
            topo.cost.uplink_edges,
            b.cost.uplink_edges
        );
    }

    for p in points.iter().filter(|p| p.structure == "topo") {
        // Rack-aware trees never cross more than the oblivious tree
        // anywhere in the sweep (equality allowed off-headline: on tiny
        // remote racks both may reach the one-entry floor)…
        let whale = cell(&points, p.racks, p.lambda, "whale");
        assert!(p.cost.uplink_edges <= whale.cost.uplink_edges);
        // …and every remote rack costs exactly one crossing.
        let expect: u32 = if p.racks > 1 { p.racks - 1 } else { 0 };
        assert_eq!(p.cost.uplink_edges, expect, "one entry per remote rack");
    }

    // One rack: the builder collapses to Algorithm 1, identical cost.
    for &lambda in &LAMBDA_RAMP {
        assert_eq!(
            cell(&points, 1, lambda, "topo").cost,
            cell(&points, 1, lambda, "whale").cost,
            "single-rack topo tree must price exactly like Whale's"
        );
    }

    vec![table_from_points(&points)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_cell_beats_both_baselines_on_both_axes() {
        // `run_experiment` carries the assertions; this pins the margin.
        let points = model_sweep();
        let topo = cell(&points, HEADLINE_RACKS, HEADLINE_LAMBDA, "topo");
        let whale = cell(&points, HEADLINE_RACKS, HEADLINE_LAMBDA, "whale");
        assert!(topo.cost.completion_us < whale.cost.completion_us);
        assert!(topo.cost.uplink_edges < whale.cost.uplink_edges);
    }

    #[test]
    fn sweep_is_deterministic() {
        assert_eq!(model_sweep(), model_sweep());
        let a = summary_json(&model_sweep(), &[], &[]).to_json_string();
        let b = summary_json(&model_sweep(), &[], &[]).to_json_string();
        assert_eq!(a, b);
    }

    #[test]
    fn table_covers_the_full_sweep() {
        let tables = run_experiment(Scale::Smoke);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), RACKS.len() * LAMBDA_RAMP.len() * 3);
        let json = tables[0].to_json().to_json_string();
        assert!(json.contains("\"schema\":\"whale-bench/v1\""), "{json}");
        assert!(json.contains("\"figure\":\"live_topology\""));
    }

    #[test]
    fn skewed_maps_touch_every_rack() {
        for &racks in &RACKS {
            let dest = skewed_dest_racks(racks, WORKERS - 1);
            let map = skewed_rack_map(racks, 10);
            for r in 0..racks {
                assert!(dest.contains(&r), "dest racks miss {r}");
                assert!(map.contains(&r), "machine map misses {r}");
            }
            assert!(
                dest.iter().filter(|&&r| r == 0).count() * 2 > dest.len(),
                "rack 0 stays the hot rack"
            );
        }
    }

    #[test]
    fn live_byte_cells_prefer_the_uplink_economizing_tree() {
        // `byte_cells` itself asserts topo < oblivious per rack count;
        // smoke-run the 5-rack pair here.
        let topo = measure_bytes(Scale::Smoke, 5, true);
        let oblivious = measure_bytes(Scale::Smoke, 5, false);
        assert!(topo.uplink_bytes > 0);
        assert!(topo.uplink_bytes < oblivious.uplink_bytes);
        // Deterministic: the same cell re-measures byte-identically.
        assert_eq!(topo, measure_bytes(Scale::Smoke, 5, true));
    }

    #[test]
    fn acked_cell_accounts_for_every_tuple() {
        let c = measure_acked(Scale::Smoke);
        assert_eq!(c.silent_lost, 0);
        assert!(c.switched);
        assert!(c.relay_active);
    }
}
