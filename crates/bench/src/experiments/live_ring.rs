//! E19 — live path: batched ring delivery vs synchronous per-send.
//!
//! Drives a real [`RingFabric`] in deterministic mode (virtual clock, no
//! flusher thread) with a rate-driven one-to-many workload: one source
//! posting each tuple to `fanout` destination endpoints, the ring drained
//! on every tick exactly as the doorbell-woken flusher would. The measured
//! mean batch size then prices both delivery disciplines on the paper's
//! cost model — one work-request post per *message* (the per-send path,
//! what `LiveFabric` does) vs one post per *batch* plus a ring-buffer
//! memory-region reuse per message (stream slicing, §4). Every run is a
//! pure function of the config, so reruns emit byte-identical JSON.

use crate::{Scale, Table};
use std::sync::Arc;
use whale_net::{BatchConfig, EndpointId, RingConfig, RingFabric};
use whale_sim::{CostModel, SimDuration, SimTime, Transport};

/// Tuple payload size, matching the Figs 11/12 calibration runs.
const MSG_BYTES: usize = 150;

/// One fan-out operating point.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LivePoint {
    /// Destinations per tuple.
    pub fanout: u32,
    /// Tuples the source emitted.
    pub tuples: u64,
    /// Messages delivered (must equal `tuples × fanout`).
    pub messages: u64,
    /// Batches the ring flushed.
    pub batches: u64,
    /// Mean messages per flushed batch.
    pub mean_batch: f64,
    /// Modeled sender capacity with one post per message (msgs/s).
    pub per_send_msgs_s: f64,
    /// Modeled sender capacity at the measured batch size (msgs/s).
    pub ring_msgs_s: f64,
}

impl LivePoint {
    /// Ring capacity over per-send capacity.
    pub fn speedup(&self) -> f64 {
        self.ring_msgs_s / self.per_send_msgs_s
    }
}

/// Sender-side sustainable messages/s when flushes carry `batch_n`
/// messages: each flush costs one work-request post, each message a
/// ring-region reuse plus its wire time (same model as Figs 11/12).
fn sender_capacity(batch_n: f64, cost: &CostModel) -> f64 {
    let post = cost.rdma_post_send.as_secs_f64();
    let per_msg =
        cost.ring_mr_op.as_secs_f64() + cost.wire_time(Transport::Rdma, MSG_BYTES).as_secs_f64();
    batch_n / (post + batch_n * per_msg)
}

/// Drive a ring fabric at `rate` tuples/s for `tuples` tuples, fanning
/// each tuple out to `fanout` endpoints, and price the result.
pub fn measure(scale: Scale, fanout: u32) -> LivePoint {
    let tuples: u64 = scale.pick3(2_000, 10_000, 50_000);
    let rate = 50_000.0; // tuples/s — WTL governs, as in the Fig 12 runs
    let config = RingConfig {
        ring_capacity: 64 * 1024,
        batch: BatchConfig {
            mms: 4 * 1024,
            wtl: SimDuration::from_millis(1),
        },
        ..RingConfig::default()
    };
    let fabric = RingFabric::new(config);
    let receivers: Vec<_> = (0..fanout)
        .map(|d| {
            fabric
                .register(EndpointId(d + 1))
                .expect("fresh fabric has free endpoints")
        })
        .collect();

    let source = EndpointId(0);
    let payload: Arc<[u8]> = Arc::from(vec![0u8; MSG_BYTES].into_boxed_slice());
    let gap = SimDuration::from_secs_f64(1.0 / rate);
    let mut now = SimTime::ZERO;
    for _ in 0..tuples {
        for d in 0..fanout {
            fabric
                .send_shared(source, EndpointId(d + 1), Arc::clone(&payload))
                .expect("ring sized above the workload");
        }
        // The doorbell-woken flusher drains size-triggered batches
        // immediately and timer batches at their WTL deadline; pumping on
        // every tick covers both (the tick gap is far below the WTL).
        fabric.pump(now);
        now += gap;
    }
    fabric.flush_at(now);

    let mut delivered = 0u64;
    for rx in &receivers {
        delivered += std::iter::from_fn(|| rx.try_recv().ok()).count() as u64;
    }
    assert_eq!(
        delivered,
        tuples * fanout as u64,
        "ring delivery must be lossless"
    );

    let cost = CostModel::default();
    LivePoint {
        fanout,
        tuples,
        messages: fabric.messages(),
        batches: fabric.flushed_batches(),
        mean_batch: fabric.mean_batch_size(),
        per_send_msgs_s: sender_capacity(1.0, &cost),
        ring_msgs_s: sender_capacity(fabric.mean_batch_size().max(1.0), &cost),
    }
}

/// Run the fan-out sweep.
pub fn run_experiment(scale: Scale) -> Vec<Table> {
    let mut table = Table::new(
        "live_ring",
        "Live path: batched ring delivery vs per-send (modeled sender capacity)",
        &[
            "fanout",
            "messages",
            "batches",
            "mean_batch",
            "per_send_msgs_s",
            "ring_msgs_s",
            "speedup",
        ],
    );
    for fanout in [1u32, 2, 4, 8] {
        let p = measure(scale, fanout);
        table.row_strings(vec![
            p.fanout.to_string(),
            p.messages.to_string(),
            p.batches.to_string(),
            format!("{:.1}", p.mean_batch),
            format!("{:.0}", p.per_send_msgs_s),
            format!("{:.0}", p.ring_msgs_s),
            format!("{:.2}", p.speedup()),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_at_least_matches_per_send_at_fanout_4_and_up() {
        for fanout in [4u32, 8] {
            let p = measure(Scale::Smoke, fanout);
            assert!(p.mean_batch > 1.0, "fanout {fanout}: {:.2}", p.mean_batch);
            assert!(
                p.ring_msgs_s >= p.per_send_msgs_s,
                "fanout {fanout}: ring {:.0} < per-send {:.0}",
                p.ring_msgs_s,
                p.per_send_msgs_s
            );
        }
    }

    #[test]
    fn delivery_is_lossless_and_deterministic() {
        let a = measure(Scale::Smoke, 4);
        let b = measure(Scale::Smoke, 4);
        assert_eq!(a, b, "virtual-clock runs must be reproducible");
        assert_eq!(a.messages, a.tuples * 4);
        assert!(a.batches > 0);
    }

    #[test]
    fn sweep_emits_one_row_per_fanout() {
        let tables = run_experiment(Scale::Smoke);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 4);
        let json = tables[0].to_json().to_json_string();
        assert!(json.contains("\"schema\":\"whale-bench/v1\""), "{json}");
        assert!(json.contains("\"figure\":\"live_ring\""));
    }
}
