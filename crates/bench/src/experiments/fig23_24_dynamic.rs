//! E13 — Figs 23/24: highly dynamic streams. The input rate steps
//! upward and back down; Whale's self-adjusting non-blocking structure
//! keeps tracking the input (brief dips during switching) while the
//! static sequential multicast saturates and its latency climbs.
//!
//! The paper's absolute rates (30k–100k tuples/s) exceed the simulated
//! source's serialization ceiling, so the profile is scaled to straddle
//! the simulated capacity knee the same way (see EXPERIMENTS.md).

use crate::experiments::common::{config, Dataset};
use crate::report::engine_run_json;
use crate::{Scale, Table};
use whale_core::{run, AppProfile, Drive, EngineConfig, EngineReport, SystemMode};
use whale_multicast::Structure;
use whale_sim::{SimDuration, SimTime};
use whale_workloads::RatePlan;

fn base(structure: Option<Structure>, horizon: SimTime, plan: RatePlan) -> EngineConfig {
    let mode = if structure.is_none() {
        SystemMode::WhaleFull
    } else {
        SystemMode::WhaleWocRdma
    };
    let mut cfg = config(Dataset::Didi, mode, 480, 0);
    cfg.structure = structure;
    cfg.app = AppProfile::lightweight();
    cfg.tuple_bytes = 64;
    cfg.cost.id_pack = SimDuration::from_nanos(10);
    cfg.cost.deser_fixed = SimDuration::from_micros(5);
    cfg.cost.deser_per_byte_ns = 30;
    cfg.cost.dispatch = SimDuration::from_nanos(500);
    cfg.initial_d_star = 5;
    cfg.inflight_window = 4_096;
    cfg.record_series = true;
    cfg.drive = Drive::Rate { plan, horizon };
    cfg
}

/// Run the dynamic-rate comparison.
pub fn run_experiment(scale: Scale) -> Vec<Table> {
    // Steps every `step` seconds, mirroring the paper's 40 s cadence.
    let step = scale.pick3(1u64, 3, 8);
    let horizon = SimTime::from_secs(5 * step);
    let plan = RatePlan::Steps(vec![
        (SimTime::ZERO, 10_000.0),
        (SimTime::from_secs(step), 20_000.0),
        (SimTime::from_secs(2 * step), 30_000.0),
        (SimTime::from_secs(3 * step), 40_000.0),
        (SimTime::from_secs(4 * step), 12_000.0),
    ]);

    let adaptive: EngineReport = run(base(None, horizon, plan.clone()));
    let sequential: EngineReport = run(base(Some(Structure::Sequential), horizon, plan));

    let mut fig23 = Table::new(
        "fig23",
        "throughput over time under a dynamic stream (1 s windows)",
        &["t_s", "input_step", "whale_tput", "sequential_tput"],
    );
    // Full metrics snapshots of both engine runs ride in the JSON report.
    let seed = Dataset::Didi.seed();
    fig23.attach_run(engine_run_json("fig23", "whale-adaptive", 480, seed, &adaptive));
    fig23.attach_run(engine_run_json("fig23", "sequential", 480, seed, &sequential));
    let rate_at = |t: f64| -> f64 {
        let s = step as f64;
        if t < s {
            10_000.0
        } else if t < 2.0 * s {
            20_000.0
        } else if t < 3.0 * s {
            30_000.0
        } else if t < 4.0 * s {
            40_000.0
        } else {
            12_000.0
        }
    };
    let seq_points = sequential.throughput_series.points();
    for (i, &(t, whale_v)) in adaptive.throughput_series.points().iter().enumerate() {
        let ts = t.as_secs_f64();
        if ts > (5 * step) as f64 {
            break;
        }
        let seq_v = seq_points.get(i).map(|&(_, v)| v).unwrap_or(0.0);
        fig23.row_strings(vec![
            format!("{ts:.0}"),
            format!("{:.0}", rate_at(ts - 0.5)),
            format!("{whale_v:.0}"),
            format!("{seq_v:.0}"),
        ]);
    }

    let mut fig24 = Table::new(
        "fig24",
        "processing latency under a dynamic stream (per-second mean, ms)",
        &["t_s", "whale_latency_ms", "sequential_latency_ms"],
    );
    for sec in 1..=(5 * step) {
        let from = SimTime::from_secs(sec - 1);
        let to = SimTime::from_secs(sec);
        let w = adaptive
            .latency_series
            .mean_in(from, to)
            .unwrap_or(f64::NAN);
        let s = sequential
            .latency_series
            .mean_in(from, to)
            .unwrap_or(f64::NAN);
        fig24.row_strings(vec![sec.to_string(), format!("{w:.2}"), format!("{s:.2}")]);
    }

    let mut switches = Table::new(
        "fig23_switches",
        "dynamic switching events (Whale)",
        &["t", "new_d_star", "switch_delay_us"],
    );
    for (at, d, delay) in &adaptive.switches {
        switches.row_strings(vec![
            format!("{:.3}", at.as_secs_f64()),
            d.to_string(),
            format!("{:.0}", delay.as_nanos() as f64 / 1e3),
        ]);
    }

    println!(
        "whale: completed {} dropped {} | sequential: completed {} dropped {}",
        adaptive.completed, adaptive.dropped, sequential.completed, sequential.dropped
    );

    vec![fig23, fig24, switches]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_tracks_rate_better_than_sequential() {
        let tables = run_experiment(Scale::Smoke);
        assert_eq!(tables.len(), 3);
        assert!(!tables[2].is_empty(), "controller must switch");
        let json = tables[0].to_json().to_json_string();
        assert!(
            json.contains("\"whale-adaptive\"") && json.contains("\"sequential\""),
            "fig23 JSON must carry both engine run snapshots"
        );
    }
}
