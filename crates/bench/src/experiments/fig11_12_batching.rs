//! E06–E07 — Figs 11/12: calibrating Stream Slicing (MMS and WTL).
//!
//! A dedicated micro-simulation of the sender's transfer buffer: messages
//! arrive at a controlled rate, the [`Batcher`] flushes at MMS bytes or
//! WTL age, each flush costs one work-request post plus the batch's wire
//! time on the 56 Gbps NIC. Reported: sustainable throughput (sender-side
//! capacity) and mean per-message latency.

use crate::{fmt_rate, Scale, Table};
use whale_net::{BatchConfig, Batcher, Nic};
use whale_sim::{CoreClock, CostModel, SimDuration, SimTime, Transport};

/// Result of one batching operating point.
#[derive(Clone, Copy, Debug)]
pub struct BatchPoint {
    /// Sender-side sustainable messages/s.
    pub capacity: f64,
    /// Mean per-message latency at the driven rate.
    pub mean_latency: SimDuration,
    /// Mean messages per emitted batch.
    pub mean_batch: f64,
}

/// Sender-side capacity: messages per second the post+wire pipeline can
/// sustain when batches reach `batch_n` messages.
fn capacity(batch_n: f64, msg_bytes: usize, cost: &CostModel) -> f64 {
    let post = cost.rdma_post_send.as_secs_f64();
    let per_msg =
        cost.ring_mr_op.as_secs_f64() + cost.wire_time(Transport::Rdma, msg_bytes).as_secs_f64();
    batch_n / (post + batch_n * per_msg)
}

/// Drive the batcher at `rate` msgs/s for `horizon` and measure latency.
pub fn simulate(config: BatchConfig, msg_bytes: usize, rate: f64, horizon: SimTime) -> BatchPoint {
    let cost = CostModel::default();
    let mut batcher: Batcher<SimTime> = Batcher::new(config);
    let mut nic = Nic::new(Transport::Rdma);
    let mut sender = CoreClock::new();
    let mut total_latency = SimDuration::ZERO;
    let mut delivered: u64 = 0;

    let gap = SimDuration::from_secs_f64(1.0 / rate);
    let mut t = SimTime::ZERO;
    let flush = |batch: whale_net::Batch<SimTime>,
                 at: SimTime,
                 nic: &mut Nic,
                 sender: &mut CoreClock,
                 total: &mut SimDuration,
                 delivered: &mut u64| {
        // One WR post per batch, then the batch crosses the wire.
        let (_, posted) = sender.begin_work(at, cost.rdma_post_send);
        let (_, arrive) = nic.transmit(posted, batch.bytes, 0, &cost);
        for sent_at in batch.items {
            *total += arrive.since(sent_at);
            *delivered += 1;
        }
    };

    while t <= horizon {
        // Timer flushes due before this arrival.
        if let Some(deadline) = batcher.deadline() {
            if deadline <= t {
                if let Some(batch) = batcher.on_timer(deadline) {
                    flush(
                        batch,
                        deadline,
                        &mut nic,
                        &mut sender,
                        &mut total_latency,
                        &mut delivered,
                    );
                }
            }
        }
        if let Some(batch) = batcher.offer(t, t, msg_bytes) {
            flush(
                batch,
                t,
                &mut nic,
                &mut sender,
                &mut total_latency,
                &mut delivered,
            );
        }
        t += gap;
    }
    if let Some(batch) = batcher.flush() {
        flush(
            batch,
            t,
            &mut nic,
            &mut sender,
            &mut total_latency,
            &mut delivered,
        );
    }

    let batch_n = batcher.mean_batch_size().max(1.0);
    BatchPoint {
        capacity: capacity(batch_n, msg_bytes, &cost),
        mean_latency: if delivered == 0 {
            SimDuration::ZERO
        } else {
            total_latency / delivered
        },
        mean_batch: batch_n,
    }
}

/// Run both sweeps.
pub fn run_experiment(scale: Scale) -> Vec<Table> {
    let msg_bytes = 150;
    let horizon = SimTime::from_millis(scale.pick3(50, 300, 2_000));
    let cost = CostModel::default();

    let mut fig11 = Table::new(
        "fig11",
        "System performance vs Max Memory Size (WTL = 1 ms)",
        &["mms", "capacity_msgs_s", "mean_latency_us", "mean_batch"],
    );
    for &mms in &[
        512usize,
        4 * 1024,
        16 * 1024,
        64 * 1024,
        256 * 1024,
        512 * 1024,
        1024 * 1024,
    ] {
        let config = BatchConfig {
            mms,
            wtl: SimDuration::from_millis(1),
        };
        // Drive at 80% of this point's fill capacity so batches actually
        // form (the paper saturates the sender the same way).
        let cap_est = capacity((mms as f64 / msg_bytes as f64).max(1.0), msg_bytes, &cost);
        let point = simulate(config, msg_bytes, cap_est * 0.8, horizon);
        fig11.row_strings(vec![
            human_bytes(mms),
            fmt_rate(point.capacity),
            format!("{:.1}", point.mean_latency.as_nanos() as f64 / 1e3),
            format!("{:.1}", point.mean_batch),
        ]);
    }

    let mut fig12 = Table::new(
        "fig12",
        "System performance vs Wait Time Limit (MMS = 256 KB)",
        &["wtl_ms", "capacity_msgs_s", "mean_latency_us", "mean_batch"],
    );
    for &wtl_ms in &[1u64, 2, 5, 10, 20, 30] {
        let config = BatchConfig {
            mms: 256 * 1024,
            wtl: SimDuration::from_millis(wtl_ms),
        };
        // Moderate rate: the buffer never reaches MMS, so WTL governs.
        let point = simulate(config, msg_bytes, 50_000.0, horizon);
        fig12.row_strings(vec![
            wtl_ms.to_string(),
            fmt_rate(point.capacity),
            format!("{:.1}", point.mean_latency.as_nanos() as f64 / 1e3),
            format!("{:.1}", point.mean_batch),
        ]);
    }
    vec![fig11, fig12]
}

fn human_bytes(b: usize) -> String {
    if b >= 1024 * 1024 {
        format!("{}MB", b / (1024 * 1024))
    } else if b >= 1024 {
        format!("{}KB", b / 1024)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rises_with_batch_size() {
        let cost = CostModel::default();
        let small = capacity(3.0, 150, &cost);
        let big = capacity(1_000.0, 150, &cost);
        assert!(big > 2.0 * small, "small={small:.0} big={big:.0}");
    }

    #[test]
    fn latency_rises_with_wtl() {
        let horizon = SimTime::from_millis(200);
        let lat = |wtl_ms: u64| {
            simulate(
                BatchConfig {
                    mms: 256 * 1024,
                    wtl: SimDuration::from_millis(wtl_ms),
                },
                150,
                50_000.0,
                horizon,
            )
            .mean_latency
        };
        let l1 = lat(1);
        let l10 = lat(10);
        let l30 = lat(30);
        assert!(l1 < l10 && l10 < l30, "{l1} {l10} {l30}");
    }

    #[test]
    fn fig11_shape_throughput_up() {
        let tables = run_experiment(Scale::Smoke);
        let fig11 = &tables[0];
        assert_eq!(fig11.len(), 7);
    }
}
