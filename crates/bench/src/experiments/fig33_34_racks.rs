//! E17 — Figs 33/34: sensitivity to physical topology. The 30 machines
//! are partitioned into 1–5 racks; Whale's throughput and latency should
//! barely move, unlike the TCP-bound baselines.

use crate::experiments::common::{config, Dataset};
use crate::{fmt_rate, Scale, Table};
use whale_core::{run, SystemMode};
use whale_net::ClusterSpec;

/// Run the rack sweep.
pub fn run_experiment(scale: Scale) -> Vec<Table> {
    let tuples = scale.pick3(10, 60, 250);
    let mut fig33 = Table::new(
        "fig33",
        "throughput vs number of racks (parallelism 480)",
        &["racks", "system", "tuples_per_s"],
    );
    let mut fig34 = Table::new(
        "fig34",
        "latency vs number of racks (parallelism 480)",
        &["racks", "system", "mean_latency_ms"],
    );
    for racks in 1u32..=5 {
        for mode in [
            SystemMode::Storm,
            SystemMode::RdmaStorm,
            SystemMode::WhaleFull,
        ] {
            let mut cfg = config(Dataset::Didi, mode, 480, tuples);
            cfg.cluster = ClusterSpec::new(30, racks, 16);
            let r = run(cfg);
            fig33.row_strings(vec![
                racks.to_string(),
                mode.label().to_string(),
                fmt_rate(r.throughput),
            ]);
            fig34.row_strings(vec![
                racks.to_string(),
                mode.label().to_string(),
                format!("{:.2}", r.mean_latency.as_secs_f64() * 1e3),
            ]);
        }
    }
    vec![fig33, fig34]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rack_sweep_complete() {
        let tables = run_experiment(Scale::Smoke);
        assert_eq!(tables[0].len(), 15);
        assert_eq!(tables[1].len(), 15);
    }
}
