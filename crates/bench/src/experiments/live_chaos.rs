//! E21 — live chaos: at-least-once delivery under injected faults.
//!
//! Runs the real threaded dsps runtime (spouts, dispatchers, executors
//! over a live fabric) with the XOR acker enabled and the fabric wrapped
//! in a seeded [`FaultPlan`]: a sweep of silent drop rates × fan-out ×
//! transport kind, plus one acceptance cell per transport that combines
//! 10 % drops with an endpoint crash mid-run. Every cell asserts the
//! at-least-once contract — `acked + failed == emitted`, so no tuple is
//! ever *silently* lost — and that the run terminates within its
//! deadline instead of livelocking on retries.
//!
//! Fault decisions are pure hashes of `(seed, link, attempt)`, so a cell
//! is deterministic in its inputs; the emitted JSON carries only
//! run-invariant fields (thread scheduling perturbs replay/duplicate
//! *counts*, which are asserted as invariants but kept out of the rows),
//! making `results/live_chaos.json` byte-identical across reruns.

use crate::{Scale, Table};
use std::time::Duration;
use whale_dsps::{
    run_topology, AckConfig, Emitter, FnBolt, Grouping, IterSpout, LiveConfig, Operators,
    RunOutcome, Schema, Topology, TopologyBuilder, Tuple, Value,
};
use whale_net::{EndpointCrash, EndpointId, FabricKind, FaultPlan, RingConfig};
use whale_sim::JsonValue;

/// Simulated worker processes per cell.
const MACHINES: u32 = 4;

/// One chaos cell. Every field is a pure function of the cell's inputs,
/// so rows render identically across reruns.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChaosPoint {
    /// Transport under test (`per_send` or `ring`).
    pub fabric: &'static str,
    /// Injected silent-drop probability, in percent.
    pub drop_pct: u32,
    /// Sink instances each spout tuple fans out to.
    pub fanout: u32,
    /// Worker processes in the run.
    pub machines: u32,
    /// Whether one endpoint crashed mid-run.
    pub crash: bool,
    /// Tuples the spout emitted (excludes replays).
    pub emitted: u64,
    /// Emitted tuples with no final verdict (`emitted - acked - failed`).
    /// The at-least-once contract makes this identically zero.
    pub silent_lost: u64,
}

/// All-grouped spout → sink topology: every tuple is tracked to `fanout`
/// first-hop subscribers.
fn topology(n: i64, fanout: u32) -> (Topology, Operators) {
    let mut b = TopologyBuilder::new();
    b.spout("src", 1, Schema::new(vec!["n"]))
        .bolt("sink", fanout, Schema::new(vec!["n"]))
        .connect("src", "sink", Grouping::All);
    let t = b.build().expect("static topology is valid");
    let ops = Operators::new()
        .spout("src", move |_| {
            Box::new(IterSpout::new(
                (0..n).map(|i| Tuple::with_id(i as u64, vec![Value::I64(i)])),
            ))
        })
        .bolt("sink", |_| {
            Box::new(FnBolt::new(|_t: &Tuple, _out: &mut dyn Emitter| {}))
        });
    (t, ops)
}

/// The transports each cell is run over.
pub fn fabric_kinds() -> [(&'static str, FabricKind); 2] {
    [
        ("per_send", FabricKind::PerSend),
        ("ring", FabricKind::Ring(RingConfig::default())),
    ]
}

/// Drop rates swept (percent).
pub const DROP_PCTS: [u32; 3] = [0, 10, 25];

/// Fan-outs swept.
pub const FANOUTS: [u32; 2] = [2, 4];

/// Run one chaos cell and verify the at-least-once contract.
pub fn measure(
    scale: Scale,
    label: &'static str,
    kind: FabricKind,
    drop_pct: u32,
    fanout: u32,
    crash: bool,
) -> ChaosPoint {
    let tuples: i64 = scale.pick3(200, 1_000, 5_000);
    // Seed mixes the cell coordinates so no two cells share a fault
    // schedule, while reruns of the same cell replay it exactly.
    let seed = 0xC4A0_5000
        + drop_pct as u64 * 101
        + fanout as u64 * 17
        + crash as u64 * 7
        + (label.len() as u64);
    let mut plan = FaultPlan::uniform_drops(seed, drop_pct as f64 / 100.0);
    if crash {
        plan.crashes.push(EndpointCrash {
            endpoint: EndpointId(1),
            at_frame: 10,
        });
    }
    let config = LiveConfig {
        machines: MACHINES,
        fabric: kind,
        ack: Some(AckConfig {
            timeout: Duration::from_millis(40),
            // A crashed endpoint never acks, so keep its replay budget
            // small; pure drops deserve enough budget to always get
            // through.
            max_replays: if crash { 3 } else { 20 },
            drain_deadline: Duration::from_secs(20),
            eos_redundancy: 4,
            ..AckConfig::default()
        }),
        fault: Some(plan),
        run_deadline: Some(Duration::from_secs(10)),
        ..LiveConfig::default()
    };
    let (t, ops) = topology(tuples, fanout);
    let r = run_topology(t, ops, config);

    // The at-least-once contract: every emitted tuple ends acked or
    // failed — never unaccounted.
    assert_eq!(r.spout_emitted, tuples as u64, "{label}: spout must finish");
    assert_eq!(
        r.tuples_acked + r.tuples_failed,
        r.spout_emitted,
        "{label} drop={drop_pct}% fanout={fanout} crash={crash}: silent loss"
    );
    assert_eq!(r.thread_panics, 0, "{label}: no thread may panic");
    if drop_pct > 0 {
        assert!(r.fault_drops > 0, "{label}: plan must actually drop frames");
    } else if !crash {
        assert_eq!(r.tuples_failed, 0, "{label}: clean cell must ack everything");
        assert!(matches!(r.outcome, RunOutcome::Clean), "{label}: {:?}", r.outcome);
    }
    if crash {
        assert!(
            r.fault_crashed_sends > 0,
            "{label}: the crash must reject sends"
        );
        assert!(
            r.tuples_failed > 0,
            "{label}: tuples routed at the dead endpoint must fail"
        );
    }

    ChaosPoint {
        fabric: label,
        drop_pct,
        fanout,
        machines: MACHINES,
        crash,
        emitted: r.spout_emitted,
        silent_lost: r.spout_emitted - r.tuples_acked - r.tuples_failed,
    }
}

/// Measure the full sweep: drops × fan-out per transport, plus the
/// 10 %-drops-and-a-crash acceptance cell per transport.
pub fn sweep(scale: Scale) -> Vec<ChaosPoint> {
    let mut points = Vec::new();
    for (label, kind) in fabric_kinds() {
        for &drop_pct in &DROP_PCTS {
            for &fanout in &FANOUTS {
                points.push(measure(scale, label, kind, drop_pct, fanout, false));
            }
        }
        points.push(measure(scale, label, kind, 10, 2, true));
    }
    points
}

/// Build the result table from measured points.
pub fn table_from_points(points: &[ChaosPoint]) -> Table {
    let mut table = Table::new(
        "live_chaos",
        "Live chaos: at-least-once delivery under injected drops and crashes",
        &[
            "fabric",
            "drop_pct",
            "fanout",
            "machines",
            "crash",
            "emitted",
            "silent_lost",
        ],
    );
    for p in points {
        table.row_strings(vec![
            p.fabric.to_string(),
            p.drop_pct.to_string(),
            p.fanout.to_string(),
            p.machines.to_string(),
            p.crash.to_string(),
            p.emitted.to_string(),
            p.silent_lost.to_string(),
        ]);
    }
    table
}

/// Headline summary written as the top-level `BENCH_chaos.json`.
/// Schema-stable and byte-identical across same-scale reruns.
pub fn summary_json(points: &[ChaosPoint]) -> JsonValue {
    let acceptance = points
        .iter()
        .filter(|p| p.crash)
        .map(|p| {
            JsonValue::Object(vec![
                ("fabric".into(), JsonValue::str(p.fabric)),
                ("drop_pct".into(), JsonValue::UInt(p.drop_pct as u64)),
                ("fanout".into(), JsonValue::UInt(p.fanout as u64)),
                ("emitted".into(), JsonValue::UInt(p.emitted)),
                ("silent_lost".into(), JsonValue::UInt(p.silent_lost)),
            ])
        })
        .collect();
    JsonValue::Object(vec![
        ("schema".into(), JsonValue::str(crate::JSON_SCHEMA)),
        ("report".into(), JsonValue::str("chaos")),
        ("experiment".into(), JsonValue::str("live_chaos")),
        ("cells".into(), JsonValue::UInt(points.len() as u64)),
        (
            "max_drop_pct".into(),
            JsonValue::UInt(points.iter().map(|p| p.drop_pct).max().unwrap_or(0) as u64),
        ),
        (
            "silent_lost_total".into(),
            JsonValue::UInt(points.iter().map(|p| p.silent_lost).sum()),
        ),
        ("acceptance_cells".into(), JsonValue::Array(acceptance)),
    ])
}

/// Run the chaos sweep.
pub fn run_experiment(scale: Scale) -> Vec<Table> {
    vec![table_from_points(&sweep(scale))]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_cell_acks_everything() {
        let p = measure(Scale::Smoke, "per_send", FabricKind::PerSend, 0, 2, false);
        assert_eq!(p.silent_lost, 0);
        assert_eq!(p.emitted, 200);
    }

    #[test]
    fn drops_never_cause_silent_loss() {
        for (label, kind) in fabric_kinds() {
            let p = measure(Scale::Smoke, label, kind, 25, 2, false);
            assert_eq!(p.silent_lost, 0, "{label}");
        }
    }

    #[test]
    fn crash_cell_terminates_and_accounts_for_every_tuple() {
        let start = std::time::Instant::now();
        let p = measure(Scale::Smoke, "per_send", FabricKind::PerSend, 10, 2, true);
        assert_eq!(p.silent_lost, 0);
        assert!(p.crash);
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "crash cell must terminate promptly"
        );
    }

    #[test]
    fn points_are_deterministic() {
        let a = measure(Scale::Smoke, "per_send", FabricKind::PerSend, 10, 4, false);
        let b = measure(Scale::Smoke, "per_send", FabricKind::PerSend, 10, 4, false);
        assert_eq!(a, b, "same-seed cells must render identical rows");
    }

    #[test]
    fn table_rows_carry_the_schema() {
        let points = [
            measure(Scale::Smoke, "per_send", FabricKind::PerSend, 0, 2, false),
            measure(
                Scale::Smoke,
                "ring",
                FabricKind::Ring(RingConfig::default()),
                10,
                2,
                false,
            ),
        ];
        let table = table_from_points(&points);
        assert_eq!(table.len(), 2);
        let json = table.to_json().to_json_string();
        assert!(json.contains("\"schema\":\"whale-bench/v1\""), "{json}");
        assert!(json.contains("\"figure\":\"live_chaos\""));
        let summary = summary_json(&points).to_json_string();
        assert!(summary.contains("\"schema\": \"whale-bench/v1\"") || summary.contains("\"schema\":\"whale-bench/v1\""));
    }
}
