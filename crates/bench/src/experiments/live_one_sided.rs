//! E23 — one-sided remote-fetch delivery vs per-send and batched ring.
//!
//! Two layers, one report:
//!
//! * **Model sweep** (deterministic): per-tuple per-destination cost of
//!   the three live transports on the paper's verb cost model, across
//!   message sizes × fan-outs. The per-send path pays a two-sided
//!   SEND/RECV post per message; the ring path amortizes one post over
//!   the `k = MMS / size` messages of a stream-slicing batch; the
//!   one-sided path pays a single sender-side ring publish *shared by
//!   the whole fan-out* plus a receiver-driven RDMA READ (round-trip
//!   latency, `rdma_post_read` CPU) per destination. Batching wins while
//!   `k > 1`; once the message reaches MMS the batch collapses to a
//!   single post and the remote-fetch path is cheaper — the sweep
//!   locates that crossover per fan-out.
//! * **Live acceptance cells**: the real threaded runtime on
//!   `FabricKind::OneSided` with the XOR acker and relay trees on —
//!   clean and 10 %-drop variants. Every cell asserts
//!   `tuples_acked + tuples_failed == spout_emitted`.
//!
//! Thread scheduling perturbs replay/fetch *counts*, so the emitted rows
//! carry only run-invariant fields; `results/live_one_sided.json` and
//! `BENCH_one_sided.json` are byte-identical across same-seed reruns.

use crate::{Scale, Table};
use std::time::Duration;
use whale_dsps::{
    run_topology, AckConfig, Emitter, FnBolt, Grouping, IterSpout, LiveConfig, Operators,
    RunOutcome, Schema, Topology, TopologyBuilder, Tuple, Value,
};
use whale_net::{FabricKind, FaultPlan, OneSidedConfig};
use whale_sim::{CostModel, JsonValue, Transport, Verb};

/// Stream-slicing batch ceiling (bytes) the modeled ring path slices
/// against. Held fixed so the crossover is a pure function of message
/// size; E19 measures live batch sizes instead.
pub const MMS: usize = 16 * 1024;

/// Message sizes swept (bytes). The largest equals [`MMS`], where ring
/// batching degenerates to one post per message.
pub const SIZES: [usize; 4] = [64, 512, 2 * 1024, 16 * 1024];

/// Fan-outs swept (destinations per tuple).
pub const FANOUTS: [u32; 3] = [2, 8, 32];

/// One (fan-out, size) cell of the model sweep. Costs are modeled
/// nanoseconds per tuple per destination, end to end (sender CPU + wire
/// + latency + receiver CPU).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ModelPoint {
    /// Destinations per tuple.
    pub fanout: u32,
    /// Message payload size (bytes).
    pub msg_bytes: usize,
    /// Two-sided SEND/RECV, one post per message.
    pub per_send_ns: f64,
    /// Stream-slicing ring, one post per `k`-message batch.
    pub ring_ns: f64,
    /// Remote fetch: shared publish + per-destination RDMA READ.
    pub one_sided_ns: f64,
}

impl ModelPoint {
    /// Cheapest transport at this cell.
    pub fn winner(&self) -> &'static str {
        if self.one_sided_ns <= self.ring_ns && self.one_sided_ns <= self.per_send_ns {
            "one_sided"
        } else if self.ring_ns <= self.per_send_ns {
            "ring"
        } else {
            "per_send"
        }
    }
}

/// Messages per stream-slicing batch at payload size `s`.
fn batch_factor(s: usize) -> f64 {
    ((MMS / s.max(1)).max(1)) as f64
}

/// Price one (fan-out, size) cell on the cost model.
pub fn price(cost: &CostModel, fanout: u32, msg_bytes: usize) -> ModelPoint {
    let ns = |d: whale_sim::SimDuration| d.as_secs_f64() * 1e9;
    let wire = ns(cost.wire_time(Transport::Rdma, msg_bytes));
    let lat = ns(cost.net_latency(Transport::Rdma, 0));
    let mr_op = ns(cost.ring_mr_op);

    // Per-send: every message pays a full two-sided post on both ends.
    let per_send = ns(cost.send_cpu(Transport::Rdma, Verb::SendRecv, msg_bytes))
        + wire
        + lat
        + ns(cost.recv_cpu(Transport::Rdma, Verb::SendRecv));

    // Ring: the SEND/RECV posts amortize over the batch; every message
    // still pays a ring-region reuse on each end plus its wire share.
    let k = batch_factor(msg_bytes);
    let ring = 2.0 * mr_op
        + (ns(cost.send_cpu(Transport::Rdma, Verb::SendRecv, msg_bytes))
            + ns(cost.recv_cpu(Transport::Rdma, Verb::SendRecv)))
            / k
        + wire
        + lat;

    // One-sided: the sender publishes once for the whole fan-out (the
    // outbox slots share one Arc'd payload), then each destination pays
    // a ring bookkeeping op, an RDMA READ round trip, and the
    // receiver-side READ post.
    let one_sided = ns(cost.send_cpu(Transport::Rdma, Verb::Read, msg_bytes)) / fanout as f64
        + mr_op
        + wire
        + 2.0 * lat
        + ns(cost.recv_cpu(Transport::Rdma, Verb::Read));

    ModelPoint {
        fanout,
        msg_bytes,
        per_send_ns: per_send,
        ring_ns: ring,
        one_sided_ns: one_sided,
    }
}

/// The full model sweep: every fan-out × message size.
pub fn model_sweep() -> Vec<ModelPoint> {
    let cost = CostModel::default();
    FANOUTS
        .iter()
        .flat_map(|&fanout| SIZES.iter().map(move |&s| (fanout, s)))
        .map(|(fanout, s)| price(&cost, fanout, s))
        .collect()
}

/// Smallest swept message size at which the remote-fetch path beats the
/// batched ring for this fan-out, or `None` if batching always wins.
pub fn crossover_bytes(points: &[ModelPoint], fanout: u32) -> Option<usize> {
    points
        .iter()
        .filter(|p| p.fanout == fanout && p.one_sided_ns < p.ring_ns)
        .map(|p| p.msg_bytes)
        .min()
}

/// Sender-CPU bypass factor at fan-out `n`: per-send burns one full post
/// per destination; one-sided burns one shared publish plus a ring op
/// per destination.
pub fn sender_bypass_speedup(cost: &CostModel, fanout: u32) -> f64 {
    let n = fanout as f64;
    let per_send = n * cost.send_cpu(Transport::Rdma, Verb::SendRecv, 0).as_secs_f64();
    let one_sided = cost.send_cpu(Transport::Rdma, Verb::Read, 0).as_secs_f64()
        + n * cost.ring_mr_op.as_secs_f64();
    per_send / one_sided
}

/// One live acceptance cell. Every field is run-invariant: counts that
/// thread scheduling perturbs (replays, fetches) surface as booleans
/// asserted inside [`measure_live`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LivePoint {
    /// Cell label.
    pub mode: &'static str,
    /// Injected silent-drop probability, in percent.
    pub drop_pct: u32,
    /// Worker processes in the run.
    pub machines: u32,
    /// Tuples the spout emitted (excludes replays).
    pub emitted: u64,
    /// `emitted - acked - failed`; identically zero (at-least-once).
    pub silent_lost: u64,
    /// Whether tuples actually rode the relay tree.
    pub relay_active: bool,
}

/// All-grouped spout → sink topology, matching the E22 acceptance cells.
fn topology(n: i64, fanout: u32) -> (Topology, Operators) {
    let mut b = TopologyBuilder::new();
    b.spout("src", 1, Schema::new(vec!["n"]))
        .bolt("sink", fanout, Schema::new(vec!["n"]))
        .connect("src", "sink", Grouping::All);
    let t = b.build().expect("static topology is valid");
    let ops = Operators::new()
        .spout("src", move |_| {
            Box::new(IterSpout::new(
                (0..n).map(|i| Tuple::with_id(i as u64, vec![Value::I64(i)])),
            ))
        })
        .bolt("sink", |_| {
            Box::new(FnBolt::new(|_t: &Tuple, _out: &mut dyn Emitter| {}))
        });
    (t, ops)
}

/// Run one acked relay cell over `FabricKind::OneSided` and verify
/// acceptance: every emitted tuple ends acked or failed.
pub fn measure_live(scale: Scale, mode: &'static str, drop_pct: u32) -> LivePoint {
    let tuples: i64 = scale.pick3(120, 400, 1_500);
    let machines = 8;
    let seed = 0x0515_ED00 + drop_pct as u64 * 31 + mode.len() as u64;
    let config = LiveConfig {
        machines,
        zero_copy: true,
        multicast_d_star: Some(2),
        fabric: FabricKind::OneSided(OneSidedConfig::default()),
        ack: Some(AckConfig {
            timeout: Duration::from_millis(60),
            max_replays: 20,
            drain_deadline: Duration::from_secs(20),
            eos_redundancy: 8,
            ..AckConfig::default()
        }),
        fault: (drop_pct > 0).then(|| FaultPlan::uniform_drops(seed, drop_pct as f64 / 100.0)),
        run_deadline: Some(Duration::from_secs(10)),
        ..LiveConfig::default()
    };
    let (t, ops) = topology(tuples, 16);
    let r = run_topology(t, ops, config);

    assert_eq!(r.spout_emitted, tuples as u64, "{mode}: spout must finish");
    assert_eq!(
        r.tuples_acked + r.tuples_failed,
        r.spout_emitted,
        "{mode}: silent loss"
    );
    assert!(r.relay_forwards > 0, "{mode}: tuples must ride the relay tree");
    assert_eq!(r.thread_panics, 0, "{mode}: no thread may panic");
    assert!(r.shared_bytes > 0, "{mode}: fan-out must share buffers");
    if drop_pct == 0 {
        assert_eq!(r.tuples_failed, 0, "{mode}: clean cell must ack everything");
        assert!(matches!(r.outcome, RunOutcome::Clean), "{mode}: {:?}", r.outcome);
    } else {
        assert!(r.fault_drops > 0, "{mode}: plan must actually drop frames");
    }

    LivePoint {
        mode,
        drop_pct,
        machines,
        emitted: r.spout_emitted,
        silent_lost: r.spout_emitted - r.tuples_acked - r.tuples_failed,
        relay_active: r.relay_forwards > 0,
    }
}

/// Run every live acceptance cell.
pub fn live_cells(scale: Scale) -> Vec<LivePoint> {
    vec![
        measure_live(scale, "one_sided_clean", 0),
        measure_live(scale, "one_sided_drops", 10),
    ]
}

/// Build the model-sweep result table.
pub fn table_from_points(points: &[ModelPoint]) -> Table {
    let mut table = Table::new(
        "live_one_sided",
        "One-sided remote fetch vs per-send and batched ring (modeled ns/tuple/dest)",
        &[
            "fanout",
            "msg_bytes",
            "per_send_ns",
            "ring_ns",
            "one_sided_ns",
            "winner",
        ],
    );
    for p in points {
        table.row_strings(vec![
            p.fanout.to_string(),
            p.msg_bytes.to_string(),
            format!("{:.1}", p.per_send_ns),
            format!("{:.1}", p.ring_ns),
            format!("{:.1}", p.one_sided_ns),
            p.winner().to_string(),
        ]);
    }
    table
}

/// Headline summary written as the top-level `BENCH_one_sided.json`.
/// Schema-stable and byte-identical across same-scale reruns.
pub fn summary_json(points: &[ModelPoint], cells: &[LivePoint]) -> JsonValue {
    let cost = CostModel::default();
    let crossovers: Vec<JsonValue> = FANOUTS
        .iter()
        .map(|&f| {
            JsonValue::Object(vec![
                ("fanout".into(), JsonValue::UInt(f as u64)),
                (
                    "crossover_bytes".into(),
                    match crossover_bytes(points, f) {
                        Some(b) => JsonValue::UInt(b as u64),
                        None => JsonValue::Null,
                    },
                ),
                (
                    "sender_bypass_speedup".into(),
                    JsonValue::Float(sender_bypass_speedup(&cost, f)),
                ),
            ])
        })
        .collect();
    let beats_per_send = points.iter().all(|p| p.one_sided_ns < p.per_send_ns);
    let cell_json = |p: &LivePoint| {
        JsonValue::Object(vec![
            ("mode".into(), JsonValue::str(p.mode)),
            ("drop_pct".into(), JsonValue::UInt(p.drop_pct as u64)),
            ("emitted".into(), JsonValue::UInt(p.emitted)),
            ("silent_lost".into(), JsonValue::UInt(p.silent_lost)),
            ("relay_active".into(), JsonValue::Bool(p.relay_active)),
        ])
    };
    JsonValue::Object(vec![
        ("schema".into(), JsonValue::str(crate::JSON_SCHEMA)),
        ("report".into(), JsonValue::str("one_sided")),
        ("experiment".into(), JsonValue::str("live_one_sided")),
        ("mms_bytes".into(), JsonValue::UInt(MMS as u64)),
        (
            "sizes_bytes".into(),
            JsonValue::Array(SIZES.iter().map(|&s| JsonValue::UInt(s as u64)).collect()),
        ),
        (
            "fanouts".into(),
            JsonValue::Array(FANOUTS.iter().map(|&f| JsonValue::UInt(f as u64)).collect()),
        ),
        (
            "one_sided_beats_per_send_everywhere".into(),
            JsonValue::Bool(beats_per_send),
        ),
        ("crossovers".into(), JsonValue::Array(crossovers)),
        (
            "acceptance_cells".into(),
            JsonValue::Array(cells.iter().map(cell_json).collect()),
        ),
    ])
}

/// Run the model sweep, assert the acceptance margins, and return the
/// result table.
pub fn run_experiment(_scale: Scale) -> Vec<Table> {
    let points = model_sweep();
    assert!(
        points.iter().all(|p| p.one_sided_ns < p.per_send_ns),
        "remote fetch must beat per-send at every cell"
    );
    for &f in &FANOUTS {
        let cross = crossover_bytes(&points, f)
            .unwrap_or_else(|| panic!("fanout {f}: batching must stop paying at MMS"));
        assert!(
            cross >= 1024,
            "fanout {f}: small messages must still favor batching (crossover {cross}B)"
        );
    }
    vec![table_from_points(&points)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_fetch_beats_per_send_everywhere() {
        for p in model_sweep() {
            assert!(
                p.one_sided_ns < p.per_send_ns,
                "fanout {} size {}: {:.0} vs {:.0}",
                p.fanout,
                p.msg_bytes,
                p.one_sided_ns,
                p.per_send_ns
            );
        }
    }

    #[test]
    fn batching_wins_small_remote_fetch_wins_at_mms() {
        let points = model_sweep();
        for p in &points {
            if p.msg_bytes <= 512 {
                assert_eq!(p.winner(), "ring", "fanout {} size {}", p.fanout, p.msg_bytes);
            }
            if p.msg_bytes >= MMS {
                assert_eq!(
                    p.winner(),
                    "one_sided",
                    "fanout {} size {}",
                    p.fanout,
                    p.msg_bytes
                );
            }
        }
        for &f in &FANOUTS {
            let cross = crossover_bytes(&points, f).expect("crossover must exist");
            assert!(cross > 512 && cross <= MMS, "fanout {f}: {cross}");
        }
    }

    #[test]
    fn sender_bypass_grows_with_fanout() {
        let cost = CostModel::default();
        let s2 = sender_bypass_speedup(&cost, 2);
        let s32 = sender_bypass_speedup(&cost, 32);
        assert!(s2 > 1.0, "{s2:.1}");
        assert!(s32 > s2, "{s32:.1} vs {s2:.1}");
    }

    #[test]
    fn model_sweep_is_deterministic() {
        assert_eq!(model_sweep(), model_sweep());
        let json_a = summary_json(&model_sweep(), &[]).to_json_string();
        let json_b = summary_json(&model_sweep(), &[]).to_json_string();
        assert_eq!(json_a, json_b);
    }

    #[test]
    fn one_sided_clean_cell_accounts_for_every_tuple() {
        let p = measure_live(Scale::Smoke, "one_sided_clean", 0);
        assert_eq!(p.silent_lost, 0);
        assert!(p.relay_active);
    }

    #[test]
    fn drops_over_remote_fetch_never_cause_silent_loss() {
        let p = measure_live(Scale::Smoke, "one_sided_drops", 10);
        assert_eq!(p.silent_lost, 0);
        assert!(p.relay_active);
    }

    #[test]
    fn table_and_summary_carry_the_schema() {
        let tables = run_experiment(Scale::Smoke);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), SIZES.len() * FANOUTS.len());
        let json = tables[0].to_json().to_json_string();
        assert!(json.contains("\"schema\":\"whale-bench/v1\""), "{json}");
        assert!(json.contains("\"figure\":\"live_one_sided\""));
        let summary = summary_json(&model_sweep(), &[]).to_json_string();
        assert!(summary.contains("\"report\":\"one_sided\""));
        assert!(summary.contains("crossover_bytes"));
    }
}
