//! E20 — live path: clone-per-destination vs serialize-once zero-copy
//! fan-out over the sharded ring.
//!
//! Drives a real [`RingFabric`] in deterministic mode (virtual clock,
//! per-shard pumping exactly as the sharded doorbell-woken flusher would
//! drain) with a one-to-many workload under both send disciplines:
//!
//! * **clone-per-dest** — every destination gets its own freshly
//!   allocated encode of the frame, posted through the copied (TCP
//!   semantics) path: `fanout` serializations and `fanout` buffers per
//!   tuple.
//! * **shared** — the frame is encoded once into a [`BufferPool`]
//!   scratch buffer, snapshotted into one shared wire buffer, and posted
//!   by reference to every destination: one serialization per tuple and
//!   a pool hit-rate that approaches 1.0 after the first acquire.
//!
//! The measured batch sizes, per-shard message loads, and pool counters
//! then price both disciplines on the paper's cost model. Every run is a
//! pure function of the config, so reruns emit byte-identical JSON.

use crate::{Scale, Table};
use bytes::BufMut;
use whale_dsps::BufferPool;
use whale_net::{BatchConfig, EndpointId, RingConfig, RingFabric};
use whale_sim::{CostModel, JsonValue, SimDuration, SimTime, Transport};

/// Tuple payload size, matching the Figs 11/12 and E19 calibration runs.
/// Public so E24 prices its pipeline-shard sweep on the same frames.
pub const MSG_BYTES: usize = 150;

/// One (fanout, shards) operating point measured under both disciplines.
#[derive(Clone, PartialEq, Debug)]
pub struct ZeroCopyPoint {
    /// Destinations per tuple.
    pub fanout: u32,
    /// Flusher shards draining the ring.
    pub shards: usize,
    /// Tuples the source emitted (per discipline).
    pub tuples: u64,
    /// Messages delivered per discipline (`tuples × fanout`).
    pub messages: u64,
    /// Bytes physically copied by the clone-per-dest discipline.
    pub clone_bytes: u64,
    /// Bytes passed by reference by the shared discipline.
    pub shared_bytes: u64,
    /// Frames serialized by the clone discipline (`tuples × fanout`).
    pub clone_encodes: u64,
    /// Frames serialized by the shared discipline (`tuples`).
    pub shared_encodes: u64,
    /// Pool hits during the shared run.
    pub pool_hits: u64,
    /// Pool misses during the shared run (1 after warmup).
    pub pool_misses: u64,
    /// Pool hit rate of the shared run (≈ 1.0 after warmup).
    pub pool_hit_rate: f64,
    /// Mean messages per flushed batch (shared run).
    pub mean_batch: f64,
    /// Messages on the most loaded flusher shard (drain critical path).
    pub max_shard_msgs: u64,
    /// Modeled end-to-end capacity of clone-per-dest (tuples/s).
    pub clone_tuples_s: f64,
    /// Modeled end-to-end capacity of shared fan-out (tuples/s).
    pub shared_tuples_s: f64,
}

impl ZeroCopyPoint {
    /// Shared-payload capacity over clone-per-dest capacity.
    pub fn speedup(&self) -> f64 {
        self.shared_tuples_s / self.clone_tuples_s
    }
}

/// Encode the deterministic frame for `seq` into `out`.
fn fill_frame(out: &mut impl BufMut, seq: u64) {
    out.put_u64_le(seq);
    out.put_slice(&[0u8; MSG_BYTES - 8]);
}

/// Drain every shard the way its flusher thread would, on the virtual
/// clock. Equivalent to `pump(now)` but exercises the sharded slot
/// filtering used by the live drain workers.
fn pump_all_shards(fabric: &RingFabric, now: SimTime) {
    for shard in 0..fabric.config().shard_count() {
        fabric.pump_shard(shard, now);
    }
}

/// Run one discipline: emit `tuples` frames to `fanout` destinations,
/// draining per shard on every tick, and return the fabric for its
/// counters. `send` posts one frame to all destinations.
fn drive(
    config: RingConfig,
    tuples: u64,
    fanout: u32,
    mut send: impl FnMut(&RingFabric, u64),
) -> RingFabric {
    let fabric = RingFabric::new(config);
    let receivers: Vec<_> = (0..fanout)
        .map(|d| {
            fabric
                .register(EndpointId(d + 1))
                .expect("fresh fabric has free endpoints")
        })
        .collect();
    let rate = 50_000.0; // tuples/s — WTL governs, as in the Fig 12 runs
    let gap = SimDuration::from_secs_f64(1.0 / rate);
    let mut now = SimTime::ZERO;
    for seq in 0..tuples {
        send(&fabric, seq);
        pump_all_shards(&fabric, now);
        now += gap;
    }
    for shard in 0..config.shard_count() {
        fabric.flush_shard_at(shard, now);
    }
    let mut delivered = 0u64;
    for rx in &receivers {
        delivered += std::iter::from_fn(|| rx.try_recv().ok()).count() as u64;
    }
    assert_eq!(
        delivered,
        tuples * fanout as u64,
        "ring delivery must be lossless"
    );
    fabric
}

/// Measure one (fanout, shards) point under both disciplines and price
/// the result on the cost model.
pub fn measure(scale: Scale, fanout: u32, shards: usize) -> ZeroCopyPoint {
    let tuples: u64 = scale.pick3(600, 10_000, 50_000);
    let config = RingConfig {
        ring_capacity: 64 * 1024,
        batch: BatchConfig {
            mms: 4 * 1024,
            wtl: SimDuration::from_millis(1),
        },
        flusher_shards: shards,
        ..RingConfig::default()
    };
    let source = EndpointId(0);

    // Clone-per-dest: a fresh encode and a physical copy per destination.
    let clone_fabric = drive(config, tuples, fanout, |fabric, seq| {
        for d in 0..fanout {
            let mut frame = Vec::with_capacity(MSG_BYTES);
            fill_frame(&mut frame, seq);
            fabric
                .send_copied(source, EndpointId(d + 1), &frame)
                .expect("ring sized above the workload");
        }
    });

    // Shared: one pooled encode per tuple, one wire buffer shared by
    // reference across every destination.
    let pool = BufferPool::default();
    let shared_fabric = drive(config, tuples, fanout, |fabric, seq| {
        let mut scratch = pool.acquire();
        fill_frame(&mut *scratch, seq);
        let frame = scratch.share();
        for d in 0..fanout {
            fabric
                .send_shared(source, EndpointId(d + 1), std::sync::Arc::clone(&frame))
                .expect("ring sized above the workload");
        }
    });
    assert_eq!(
        clone_fabric.copied_bytes(),
        shared_fabric.shared_bytes(),
        "both disciplines deliver the same frames"
    );
    assert_eq!(shared_fabric.copied_bytes(), 0, "shared run never copies");

    // Drain critical path: each endpoint belongs to exactly one shard, so
    // the slowest shard drains `tuples × (endpoints it owns)` messages.
    let max_shard_msgs = (0..config.shard_count())
        .map(|s| {
            let owned = (0..fanout)
                .filter(|d| config.shard_of(EndpointId(d + 1)) == s)
                .count() as u64;
            owned * tuples
        })
        .max()
        .unwrap_or(0);

    // Pricing. The sender pays serialization (per destination for the
    // clone discipline, once plus id-pack-sized reference handoffs for
    // the shared one) and a ring-region bookkeeping op per posted
    // message; the flusher shards pay one work-request post per batch
    // plus wire time per message, and drain in parallel, so the slowest
    // shard is the drain critical path. Capacity is the slower of the
    // two stages.
    let cost = CostModel::default();
    let ser = cost.serialize(MSG_BYTES).as_secs_f64();
    let id_pack = cost.id_pack.as_secs_f64();
    let mr_op = cost.ring_mr_op.as_secs_f64();
    let post = cost.rdma_post_send.as_secs_f64();
    let wire = cost.wire_time(Transport::Rdma, MSG_BYTES).as_secs_f64();
    let mean_batch = shared_fabric.mean_batch_size().max(1.0);
    let drain_per_msg = mr_op + wire + post / mean_batch;
    let drain_time = max_shard_msgs as f64 * drain_per_msg;
    let f = fanout as f64;
    let sender_clone = tuples as f64 * f * (ser + mr_op);
    let sender_shared = tuples as f64 * (ser + f * (id_pack + mr_op));
    ZeroCopyPoint {
        fanout,
        shards: config.shard_count(),
        tuples,
        messages: shared_fabric.messages(),
        clone_bytes: clone_fabric.copied_bytes(),
        shared_bytes: shared_fabric.shared_bytes(),
        clone_encodes: tuples * fanout as u64,
        shared_encodes: tuples,
        pool_hits: pool.hits(),
        pool_misses: pool.misses(),
        pool_hit_rate: pool.hit_rate(),
        mean_batch: shared_fabric.mean_batch_size(),
        max_shard_msgs,
        clone_tuples_s: tuples as f64 / sender_clone.max(drain_time),
        shared_tuples_s: tuples as f64 / sender_shared.max(drain_time),
    }
}

/// Fan-outs swept by the experiment.
pub const FANOUTS: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Flusher shard counts swept by the experiment.
pub const SHARDS: [usize; 3] = [1, 2, 4];

/// Measure every (shards, fanout) point of the sweep, in row order.
pub fn sweep(scale: Scale) -> Vec<ZeroCopyPoint> {
    let mut points = Vec::with_capacity(FANOUTS.len() * SHARDS.len());
    for &shards in &SHARDS {
        for &fanout in &FANOUTS {
            points.push(measure(scale, fanout, shards));
        }
    }
    points
}

/// Build the result table from measured points.
pub fn table_from_points(points: &[ZeroCopyPoint]) -> Table {
    let mut table = Table::new(
        "live_zero_copy",
        "Live path: clone-per-dest vs serialize-once shared fan-out (modeled capacity)",
        &[
            "fanout",
            "shards",
            "messages",
            "clone_encodes",
            "shared_encodes",
            "pool_hit_rate",
            "mean_batch",
            "max_shard_msgs",
            "clone_tuples_s",
            "shared_tuples_s",
            "speedup",
        ],
    );
    for p in points {
        table.row_strings(vec![
            p.fanout.to_string(),
            p.shards.to_string(),
            p.messages.to_string(),
            p.clone_encodes.to_string(),
            p.shared_encodes.to_string(),
            format!("{:.4}", p.pool_hit_rate),
            format!("{:.1}", p.mean_batch),
            p.max_shard_msgs.to_string(),
            format!("{:.0}", p.clone_tuples_s),
            format!("{:.0}", p.shared_tuples_s),
            format!("{:.2}", p.speedup()),
        ]);
    }
    table
}

/// Headline summary of the live path, written as the top-level
/// `BENCH_live_path.json`. Schema-stable and byte-identical across
/// same-scale reruns (every field derives from the deterministic sweep).
pub fn summary_json(points: &[ZeroCopyPoint]) -> JsonValue {
    let by = |fanout: u32, shards: usize| {
        points
            .iter()
            .find(|p| p.fanout == fanout && p.shards == shards)
            .expect("sweep covers the headline points")
    };
    let best = points
        .iter()
        .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
        .expect("sweep is non-empty");
    let f8 = by(8, 1);
    let point_json = |p: &ZeroCopyPoint| {
        JsonValue::Object(vec![
            ("fanout".into(), JsonValue::UInt(p.fanout as u64)),
            ("shards".into(), JsonValue::UInt(p.shards as u64)),
            ("speedup".into(), JsonValue::Float(p.speedup())),
            ("clone_tuples_s".into(), JsonValue::Float(p.clone_tuples_s)),
            (
                "shared_tuples_s".into(),
                JsonValue::Float(p.shared_tuples_s),
            ),
            ("pool_hit_rate".into(), JsonValue::Float(p.pool_hit_rate)),
        ])
    };
    JsonValue::Object(vec![
        ("schema".into(), JsonValue::str(crate::JSON_SCHEMA)),
        ("report".into(), JsonValue::str("live_path")),
        ("experiment".into(), JsonValue::str("live_zero_copy")),
        ("fanout_8".into(), point_json(f8)),
        ("best".into(), point_json(best)),
        (
            "min_pool_hit_rate".into(),
            JsonValue::Float(
                points
                    .iter()
                    .map(|p| p.pool_hit_rate)
                    .fold(f64::INFINITY, f64::min),
            ),
        ),
        (
            "points".into(),
            JsonValue::UInt(points.len() as u64),
        ),
    ])
}

/// Run the fan-out × shards sweep.
pub fn run_experiment(scale: Scale) -> Vec<Table> {
    vec![table_from_points(&sweep(scale))]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_beats_clone_at_fanout_8_and_up() {
        for fanout in [8u32, 16] {
            let p = measure(Scale::Smoke, fanout, 1);
            assert!(
                p.shared_tuples_s > p.clone_tuples_s,
                "fanout {fanout}: shared {:.0} ≤ clone {:.0}",
                p.shared_tuples_s,
                p.clone_tuples_s
            );
            assert!(p.speedup() > 1.5, "fanout {fanout}: {:.2}", p.speedup());
        }
    }

    #[test]
    fn pool_hit_rate_approaches_one_after_warmup() {
        let p = measure(Scale::Smoke, 4, 2);
        assert_eq!(p.pool_misses, 1, "only the warmup acquire allocates");
        assert_eq!(p.pool_hits, p.tuples - 1);
        assert!(p.pool_hit_rate > 0.99, "hit rate {:.4}", p.pool_hit_rate);
    }

    #[test]
    fn sharding_widens_the_drain_critical_path() {
        let one = measure(Scale::Smoke, 16, 1);
        let four = measure(Scale::Smoke, 16, 4);
        assert_eq!(one.max_shard_msgs, one.messages);
        assert_eq!(four.max_shard_msgs, four.messages / 4);
        assert!(
            four.shared_tuples_s >= one.shared_tuples_s,
            "more drain shards must never price slower"
        );
    }

    #[test]
    fn measurement_is_deterministic() {
        let a = measure(Scale::Smoke, 8, 2);
        let b = measure(Scale::Smoke, 8, 2);
        assert_eq!(a, b, "virtual-clock runs must be reproducible");
        assert_eq!(a.messages, a.tuples * 8);
        assert_eq!(a.clone_bytes, a.shared_bytes);
    }

    #[test]
    fn sweep_emits_one_row_per_point() {
        let tables = run_experiment(Scale::Smoke);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), FANOUTS.len() * SHARDS.len());
        let json = tables[0].to_json().to_json_string();
        assert!(json.contains("\"schema\":\"whale-bench/v1\""), "{json}");
        assert!(json.contains("\"figure\":\"live_zero_copy\""));
    }
}
