//! E16 — Figs 29/30: one-sided vs two-sided RDMA verbs (microbenchmark),
//! and Figs 31/32: Whale with DiffVerbs vs RDMA-based Storm end to end.

use crate::experiments::common::{config, Dataset};
use crate::report::engine_run_json;
use crate::{fmt_rate, Scale, Table};
use whale_core::{run, SystemMode};
use whale_net::VerbPolicy;
use whale_sim::{CostModel, Transport, Verb};

/// Verb microbenchmark point: sender-limited throughput and one-message
/// latency for a given message size, straight from the verbs cost model.
fn verb_point(verb: Verb, bytes: usize, cost: &CostModel) -> (f64, f64) {
    let send = cost.send_cpu(Transport::Rdma, verb, bytes).as_secs_f64();
    let recv = cost.recv_cpu(Transport::Rdma, verb).as_secs_f64();
    let wire = cost.wire_time(Transport::Rdma, bytes).as_secs_f64();
    let lat = cost.net_latency(Transport::Rdma, 0).as_secs_f64();
    // Pipeline throughput: bounded by the busiest side.
    let tput = 1.0 / send.max(recv).max(wire);
    // One-shot latency: post + wire + propagation + remote completion.
    let latency_us = (send + wire + lat + recv) * 1e6;
    (tput, latency_us)
}

/// Figs 29/30: the verb microbenchmark across message sizes.
pub fn run_verb_micro(_scale: Scale) -> Vec<Table> {
    let cost = CostModel::default();
    let mut fig29 = Table::new(
        "fig29",
        "RDMA verb throughput (sender-limited, msgs/s)",
        &["msg_bytes", "send_recv", "write", "read"],
    );
    let mut fig30 = Table::new(
        "fig30",
        "RDMA verb one-message latency (us)",
        &["msg_bytes", "send_recv", "write", "read"],
    );
    for &bytes in &[64usize, 256, 1_024, 4_096, 16_384, 65_536] {
        let (t_sr, l_sr) = verb_point(Verb::SendRecv, bytes, &cost);
        let (t_w, l_w) = verb_point(Verb::Write, bytes, &cost);
        let (t_r, l_r) = verb_point(Verb::Read, bytes, &cost);
        fig29.row_strings(vec![
            bytes.to_string(),
            fmt_rate(t_sr),
            fmt_rate(t_w),
            fmt_rate(t_r),
        ]);
        fig30.row_strings(vec![
            bytes.to_string(),
            format!("{l_sr:.1}"),
            format!("{l_w:.1}"),
            format!("{l_r:.1}"),
        ]);
    }
    vec![fig29, fig30]
}

/// Figs 31/32: end-to-end effect of the verb policy on Whale vs the
/// RDMA-based Storm baseline.
pub fn run_diffverbs(scale: Scale) -> Vec<Table> {
    let tuples = scale.pick3(10, 60, 250);
    let p = 480;
    let mut fig31 = Table::new(
        "fig31",
        "verb policy: system throughput at parallelism 480",
        &["system", "tuples_per_s"],
    );
    let mut fig32 = Table::new(
        "fig32",
        "verb policy: processing latency at parallelism 480",
        &["system", "mean_latency_ms"],
    );

    let seed = Dataset::Didi.seed();
    let baseline = run(config(Dataset::Didi, SystemMode::RdmaStorm, p, tuples));
    fig31.row_strings(vec!["RDMA-Storm".into(), fmt_rate(baseline.throughput)]);
    // Per-system metrics snapshots ride in the throughput table's JSON.
    fig31.attach_run(engine_run_json("fig31", "RDMA-Storm", p, seed, &baseline));
    fig32.row_strings(vec![
        "RDMA-Storm".into(),
        format!("{:.2}", baseline.mean_latency.as_secs_f64() * 1e3),
    ]);

    for (label, policy) in [
        ("Whale_TwoSided", VerbPolicy::TwoSided),
        ("Whale_OneSidedWrite", VerbPolicy::OneSidedWrite),
        ("Whale_OneSidedRead", VerbPolicy::OneSidedRead),
        ("Whale_DiffVerbs", VerbPolicy::DiffVerbs),
    ] {
        let mut cfg = config(Dataset::Didi, SystemMode::WhaleFull, p, tuples);
        cfg.verbs = Some(policy);
        let r = run(cfg);
        fig31.row_strings(vec![label.into(), fmt_rate(r.throughput)]);
        fig31.attach_run(engine_run_json("fig31", label, p, seed, &r));
        fig32.row_strings(vec![
            label.into(),
            format!("{:.2}", r.mean_latency.as_secs_f64() * 1e3),
        ]);
    }
    vec![fig31, fig32]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verb_ordering_read_write_sendrecv() {
        let cost = CostModel::default();
        let (t_sr, l_sr) = verb_point(Verb::SendRecv, 1_024, &cost);
        let (t_w, l_w) = verb_point(Verb::Write, 1_024, &cost);
        let (t_r, l_r) = verb_point(Verb::Read, 1_024, &cost);
        assert!(
            t_r > t_w && t_w > t_sr,
            "throughput: read > write > send/recv"
        );
        assert!(
            l_r < l_sr && l_w < l_sr,
            "latency: one-sided beats two-sided"
        );
    }

    #[test]
    fn diffverbs_beats_two_sided_whale() {
        let tables = run_diffverbs(Scale::Smoke);
        assert_eq!(tables[0].len(), 5);
        let json = tables[0].to_json().to_json_string();
        assert!(
            json.contains("\"runs\"") && json.contains("\"Whale_DiffVerbs\""),
            "fig31 JSON must carry one run snapshot per system"
        );
    }
}
