//! E25 — lazy zero-materialization decode: borrowed tuple views over
//! the wire buffer.
//!
//! Two layers, one report:
//!
//! * **Model sweep** (deterministic): prices one received tuple under
//!   the eager decoder (framing walk + per-field materialization —
//!   heap-allocating the value vector and every string, copying and
//!   UTF-8-validating the payload) against the lazy view (framing walk
//!   only at parse; a field access decodes scalars in place and borrows
//!   strings, validating UTF-8 only when the string is actually
//!   touched). Swept over payload sizes 64 B – 16 KiB for the two
//!   receive profiles the runtime serves: *key touch* (sink or
//!   key-extraction bolt reads one scalar field) and *full touch*
//!   (operator reads every field). The pricing constants are fixed —
//!   the sweep is pure arithmetic, byte-identical across reruns.
//! * **Live acceptance cells**: the real threaded runtime with the XOR
//!   acker on, once with an eager sink (`FnBolt`, whose default
//!   `execute_lazy` materializes) and once with a zero-materialization
//!   sink (`LazyFnBolt` reading one field off the wire view). Both
//!   assert `tuples_acked + tuples_failed == spout_emitted` (zero
//!   silent loss); the lazy cell additionally proves that wire tuples
//!   were delivered as borrowed views (`wire_tuples_lazy > 0`) and that
//!   *none* of them was ever materialized (`tuples_materialized == 0`).
//!
//! Thread scheduling perturbs raw counts, so the emitted rows carry
//! only run-invariant fields; `results/live_lazy_decode.json` and
//! `BENCH_lazy_decode.json` are byte-identical across same-seed reruns.

use crate::{Scale, Table};
use std::time::Duration;
use whale_dsps::{
    run_topology, AckConfig, Bolt, CommMode, Emitter, FnBolt, Grouping, IterSpout, LazyFnBolt,
    LazyTuple, LiveConfig, Operators, RunOutcome, Schema, Topology, TopologyBuilder, Tuple, Value,
};
use whale_sim::JsonValue;

/// Payload sizes swept (bytes carried by the tuple's string field).
pub const PAYLOADS: [usize; 4] = [64, 512, 2048, 16384];

// Pricing constants for one received tuple (a scalar key field plus one
// string field carrying `payload` bytes). Nanoseconds, calibrated to
// commodity-server orders of magnitude: a heap allocation costs tens of
// scalar reads, memcpy streams ~20 GB/s, UTF-8 validation ~10 GB/s.
/// Framing-walk cost per field: read the tag, bounds-check the length.
const FIELD_WALK_NS: f64 = 2.0;
/// Decode one scalar (fixed-width read, no allocation).
const SCALAR_READ_NS: f64 = 1.0;
/// One heap allocation (value vector, string, or byte blob).
const ALLOC_NS: f64 = 30.0;
/// Copy one payload byte out of the wire buffer.
const COPY_NS_PER_BYTE: f64 = 0.05;
/// Validate one byte of UTF-8.
const UTF8_NS_PER_BYTE: f64 = 0.1;

/// One payload-size point of the decode-cost sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct DecodePoint {
    /// Bytes in the tuple's string payload.
    pub payload: usize,
    /// Eager decode cost: everything materialized on receive.
    pub eager_ns: f64,
    /// Lazy cost when only the scalar key field is touched.
    pub lazy_key_ns: f64,
    /// Lazy cost when every field is touched (string stays borrowed:
    /// UTF-8 is validated but nothing is allocated or copied).
    pub lazy_full_ns: f64,
}

impl DecodePoint {
    /// Key-touch speedup over the eager decoder.
    pub fn speedup_key(&self) -> f64 {
        self.eager_ns / self.lazy_key_ns
    }

    /// Full-touch speedup over the eager decoder.
    pub fn speedup_full(&self) -> f64 {
        self.eager_ns / self.lazy_full_ns
    }

    /// Modeled receive capacity (tuples/s) for each profile.
    pub fn tuples_s(&self, ns: f64) -> f64 {
        1e9 / ns
    }
}

/// Price one payload point. The tuple is `[I64 key, Str payload]` — the
/// shape of the paper's key-grouped application streams.
pub fn measure(payload: usize) -> DecodePoint {
    let fields = 2.0;
    let walk = fields * FIELD_WALK_NS;
    let bytes = payload as f64;
    // Eager: framing walk, then materialize every field — one value
    // vector, one string allocation, the payload copied and validated.
    let eager_ns = walk
        + SCALAR_READ_NS
        + 2.0 * ALLOC_NS
        + bytes * (COPY_NS_PER_BYTE + UTF8_NS_PER_BYTE);
    // Lazy key touch: framing walk plus one in-place scalar read. The
    // payload is never copied, validated, or allocated.
    let lazy_key_ns = walk + SCALAR_READ_NS;
    // Lazy full touch: the string is borrowed (no alloc, no copy) but
    // its UTF-8 is validated at the access that touches it.
    let lazy_full_ns = walk + SCALAR_READ_NS + bytes * UTF8_NS_PER_BYTE;
    DecodePoint {
        payload,
        eager_ns,
        lazy_key_ns,
        lazy_full_ns,
    }
}

/// Measure every payload point, in row order.
pub fn sweep() -> Vec<DecodePoint> {
    PAYLOADS.iter().map(|&p| measure(p)).collect()
}

/// One live acceptance cell. Every field is run-invariant: counts that
/// thread scheduling perturbs surface as booleans asserted inside
/// [`measure_live`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LivePoint {
    /// Sink profile: `"eager"` (materializing) or `"lazy"` (view-only).
    pub sink: &'static str,
    /// Worker processes in the run.
    pub machines: u32,
    /// Tuples the spout emitted (excludes replays).
    pub emitted: u64,
    /// `emitted - acked - failed`; identically zero (at-least-once).
    pub silent_lost: u64,
    /// Whether wire tuples were delivered as borrowed lazy views.
    pub lazy_wire_active: bool,
    /// Whether any wire tuple was materialized during execution.
    pub materialized_any: bool,
}

/// All-grouped spout → sink topology carrying a key plus a string
/// payload, with a pluggable sink bolt.
fn topology<F>(n: i64, fanout: u32, sink: F) -> (Topology, Operators)
where
    F: Fn(u32) -> Box<dyn Bolt> + Send + Sync + 'static,
{
    let mut b = TopologyBuilder::new();
    b.spout("src", 1, Schema::new(vec!["key", "body"]))
        .bolt("sink", fanout, Schema::new(vec!["key", "body"]))
        .connect("src", "sink", Grouping::All);
    let t = b.build().expect("static topology is valid");
    let ops = Operators::new()
        .spout("src", move |_| {
            Box::new(IterSpout::new((0..n).map(|i| {
                Tuple::with_id(
                    i as u64,
                    vec![Value::I64(i), Value::str("w".repeat(200).as_str())],
                )
            })))
        })
        .bolt("sink", sink);
    (t, ops)
}

/// Run one tracked cell on the real runtime and verify acceptance.
pub fn measure_live(scale: Scale, sink: &'static str) -> LivePoint {
    let tuples: i64 = scale.pick3(120, 400, 1_500);
    let machines = 4;
    let config = LiveConfig {
        machines,
        comm_mode: CommMode::WorkerOriented,
        zero_copy: true,
        ack: Some(AckConfig {
            timeout: Duration::from_millis(60),
            max_replays: 20,
            drain_deadline: Duration::from_secs(20),
            eos_redundancy: 8,
            ..AckConfig::default()
        }),
        run_deadline: Some(Duration::from_secs(10)),
        ..LiveConfig::default()
    };
    let make_sink: Box<dyn Fn(u32) -> Box<dyn Bolt> + Send + Sync> = match sink {
        // Eager profile: an owned-tuple bolt; the runtime's default
        // `execute_lazy` materializes each wire tuple exactly once.
        "eager" => Box::new(|_| {
            Box::new(FnBolt::new(|t: &Tuple, _out: &mut dyn Emitter| {
                std::hint::black_box(t.arity());
            }))
        }),
        // Lazy profile: reads the key straight off the wire view and
        // never materializes anything.
        _ => Box::new(|_| {
            Box::new(LazyFnBolt::new(|t: &LazyTuple, _out: &mut dyn Emitter| {
                let key = t.field(0).and_then(|f| f.ok()).and_then(|v| v.as_i64());
                std::hint::black_box(key);
            }))
        }),
    };
    let (t, ops) = topology(tuples, 16, move |i| make_sink(i));
    let r = run_topology(t, ops, config);

    assert_eq!(r.spout_emitted, tuples as u64, "{sink}: spout must finish");
    assert_eq!(
        r.tuples_acked + r.tuples_failed,
        r.spout_emitted,
        "{sink}: silent loss"
    );
    assert_eq!(r.tuples_failed, 0, "{sink}: clean cell must ack everything");
    assert!(matches!(r.outcome, RunOutcome::Clean), "{sink}: {:?}", r.outcome);
    assert!(
        r.wire_tuples_lazy > 0,
        "{sink}: cross-machine tuples must arrive as borrowed views"
    );
    match sink {
        "eager" => assert!(
            r.tuples_materialized > 0,
            "eager sink must materialize wire tuples"
        ),
        _ => assert_eq!(
            r.tuples_materialized, 0,
            "lazy sink must never materialize a wire tuple"
        ),
    }

    LivePoint {
        sink,
        machines,
        emitted: r.spout_emitted,
        silent_lost: r.spout_emitted - r.tuples_acked - r.tuples_failed,
        lazy_wire_active: r.wire_tuples_lazy > 0,
        materialized_any: r.tuples_materialized > 0,
    }
}

/// Run both live acceptance cells: the materializing sink, then the
/// zero-materialization sink.
pub fn live_cells(scale: Scale) -> Vec<LivePoint> {
    vec![measure_live(scale, "eager"), measure_live(scale, "lazy")]
}

/// Build the decode-cost result table.
pub fn table_from_points(points: &[DecodePoint]) -> Table {
    let mut table = Table::new(
        "live_lazy_decode",
        "Lazy zero-materialization decode: receive cost vs payload size (modeled ns/tuple)",
        &[
            "payload_bytes",
            "eager_ns",
            "lazy_key_ns",
            "lazy_full_ns",
            "speedup_key_touch",
            "speedup_full_touch",
        ],
    );
    for p in points {
        table.row_strings(vec![
            p.payload.to_string(),
            format!("{:.1}", p.eager_ns),
            format!("{:.1}", p.lazy_key_ns),
            format!("{:.1}", p.lazy_full_ns),
            format!("{:.2}", p.speedup_key()),
            format!("{:.2}", p.speedup_full()),
        ]);
    }
    table
}

/// The point at one payload size.
fn by(points: &[DecodePoint], payload: usize) -> &DecodePoint {
    points
        .iter()
        .find(|p| p.payload == payload)
        .expect("sweep covers the headline points")
}

/// Headline summary written as the top-level `BENCH_lazy_decode.json`.
/// Schema-stable and byte-identical across same-scale reruns.
pub fn summary_json(points: &[DecodePoint], cells: &[LivePoint]) -> JsonValue {
    let small = by(points, PAYLOADS[0]);
    let large = by(points, PAYLOADS[PAYLOADS.len() - 1]);
    let curve: Vec<JsonValue> = points
        .iter()
        .map(|p| {
            JsonValue::Object(vec![
                ("payload_bytes".into(), JsonValue::UInt(p.payload as u64)),
                ("eager_ns".into(), JsonValue::Float(p.eager_ns)),
                ("lazy_key_ns".into(), JsonValue::Float(p.lazy_key_ns)),
                ("lazy_full_ns".into(), JsonValue::Float(p.lazy_full_ns)),
                ("speedup_key_touch".into(), JsonValue::Float(p.speedup_key())),
                (
                    "speedup_full_touch".into(),
                    JsonValue::Float(p.speedup_full()),
                ),
            ])
        })
        .collect();
    let cell_json = |p: &LivePoint| {
        JsonValue::Object(vec![
            ("sink".into(), JsonValue::str(p.sink)),
            ("machines".into(), JsonValue::UInt(p.machines as u64)),
            ("emitted".into(), JsonValue::UInt(p.emitted)),
            ("silent_lost".into(), JsonValue::UInt(p.silent_lost)),
            (
                "lazy_wire_active".into(),
                JsonValue::Bool(p.lazy_wire_active),
            ),
            (
                "materialized_any".into(),
                JsonValue::Bool(p.materialized_any),
            ),
        ])
    };
    JsonValue::Object(vec![
        ("schema".into(), JsonValue::str(crate::JSON_SCHEMA)),
        ("report".into(), JsonValue::str("lazy_decode")),
        ("experiment".into(), JsonValue::str("live_lazy_decode")),
        (
            "payload_sizes".into(),
            JsonValue::Array(
                PAYLOADS
                    .iter()
                    .map(|&p| JsonValue::UInt(p as u64))
                    .collect(),
            ),
        ),
        (
            "key_touch_speedup_64b".into(),
            JsonValue::Float(small.speedup_key()),
        ),
        (
            "key_touch_speedup_16kib".into(),
            JsonValue::Float(large.speedup_key()),
        ),
        (
            "full_touch_speedup_16kib".into(),
            JsonValue::Float(large.speedup_full()),
        ),
        ("decode_curve".into(), JsonValue::Array(curve)),
        (
            "acceptance_cells".into(),
            JsonValue::Array(cells.iter().map(cell_json).collect()),
        ),
    ])
}

/// Run the decode sweep, assert the acceptance margins, and return the
/// result table.
pub fn run_experiment(_scale: Scale) -> Vec<Table> {
    let points = sweep();
    for p in &points {
        assert!(
            p.speedup_key() > 1.0,
            "payload {}: key touch must beat eager decode, got {:.2}×",
            p.payload,
            p.speedup_key()
        );
        assert!(
            p.speedup_full() >= 1.0,
            "payload {}: full touch must never lose to eager decode",
            p.payload
        );
    }
    for w in points.windows(2) {
        assert!(
            w[1].speedup_key() >= w[0].speedup_key(),
            "key-touch speedup must grow with payload size"
        );
    }
    vec![table_from_points(&points)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_touch_beats_eager_at_every_payload() {
        for p in sweep() {
            assert!(p.speedup_key() > 1.0, "payload {}", p.payload);
            assert!(p.lazy_key_ns < p.eager_ns);
        }
    }

    #[test]
    fn full_touch_never_loses_and_key_speedup_grows() {
        let points = sweep();
        for p in &points {
            assert!(p.lazy_full_ns <= p.eager_ns, "payload {}", p.payload);
        }
        for w in points.windows(2) {
            assert!(w[1].speedup_key() > w[0].speedup_key());
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        assert_eq!(sweep(), sweep());
        let a = summary_json(&sweep(), &[]).to_json_string();
        let b = summary_json(&sweep(), &[]).to_json_string();
        assert_eq!(a, b);
    }

    #[test]
    fn live_cells_account_for_every_tuple() {
        for cell in live_cells(Scale::Smoke) {
            assert_eq!(cell.silent_lost, 0, "{}", cell.sink);
            assert!(cell.lazy_wire_active, "{}", cell.sink);
            match cell.sink {
                "eager" => assert!(cell.materialized_any),
                _ => assert!(!cell.materialized_any),
            }
        }
    }

    #[test]
    fn table_and_summary_carry_the_schema() {
        let tables = run_experiment(Scale::Smoke);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), PAYLOADS.len());
        let json = tables[0].to_json().to_json_string();
        assert!(json.contains("\"schema\":\"whale-bench/v1\""), "{json}");
        assert!(json.contains("\"figure\":\"live_lazy_decode\""));
        let summary = summary_json(&sweep(), &[]).to_json_string();
        assert!(summary.contains("\"report\":\"lazy_decode\""));
        assert!(summary.contains("decode_curve"));
        assert!(summary.contains("key_touch_speedup_16kib"));
    }
}
