//! E14–E15 — Figs 25/26 (communication time + serialization share) and
//! Figs 27/28 (communication traffic per 10,000 tuples), both datasets.

use crate::experiments::common::{config, Dataset, PARALLELISM_SWEEP};
use crate::{Scale, Table};
use whale_core::{run, SystemMode};

const SYSTEMS: [SystemMode; 3] = [
    SystemMode::Storm,
    SystemMode::RdmaStorm,
    SystemMode::WhaleFull,
];

/// Figs 25/26: source-side communication time per tuple and the share of
/// it spent serializing (ride-hailing).
pub fn run_comm_time(scale: Scale) -> Vec<Table> {
    let tuples = scale.pick3(10, 60, 250);
    let mut fig25 = Table::new(
        "fig25",
        "source communication time per tuple — ride-hailing",
        &["parallelism", "system", "comm_time_ms"],
    );
    let mut fig26 = Table::new(
        "fig26",
        "serialization share of communication time — ride-hailing",
        &["parallelism", "system", "ser_share", "ser_time_ms"],
    );
    for &p in &PARALLELISM_SWEEP {
        for mode in SYSTEMS {
            let r = run(config(Dataset::Didi, mode, p, tuples));
            let comm = r.comm_time_per_tuple.as_secs_f64() * 1e3;
            let ser = r.ser_time_per_tuple.as_secs_f64() * 1e3;
            fig25.row_strings(vec![
                p.to_string(),
                mode.label().to_string(),
                format!("{comm:.3}"),
            ]);
            fig26.row_strings(vec![
                p.to_string(),
                mode.label().to_string(),
                format!("{:.3}", if comm > 0.0 { ser / comm } else { 0.0 }),
                format!("{ser:.3}"),
            ]);
        }
    }
    vec![fig25, fig26]
}

/// Figs 27/28: bytes the source transmits per 10,000 tuples.
pub fn run_traffic(scale: Scale) -> Vec<Table> {
    let tuples = scale.pick3(10, 40, 150);
    let mut out = Vec::new();
    for (dataset, id) in [(Dataset::Didi, "fig27"), (Dataset::Nasdaq, "fig28")] {
        let mut t = Table::new(
            id,
            &format!("communication traffic per 10k tuples — {}", dataset.label()),
            &["parallelism", "system", "mbytes_per_10k"],
        );
        for &p in &PARALLELISM_SWEEP {
            for mode in SYSTEMS {
                let r = run(config(dataset, mode, p, tuples));
                t.row_strings(vec![
                    p.to_string(),
                    mode.label().to_string(),
                    format!("{:.2}", r.traffic_per_10k as f64 / 1e6),
                ]);
            }
        }
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whale_traffic_far_below_storm() {
        let tables = run_traffic(Scale::Smoke);
        // Storm and RDMA-Storm share the instance-oriented pattern, so
        // their traffic is identical (the paper notes this).
        let storm = run(config(Dataset::Didi, SystemMode::Storm, 480, 20));
        let rdma = run(config(Dataset::Didi, SystemMode::RdmaStorm, 480, 20));
        assert_eq!(storm.traffic_per_10k, rdma.traffic_per_10k);
        let whale = run(config(Dataset::Didi, SystemMode::WhaleFull, 480, 20));
        let reduction = 1.0 - whale.traffic_per_10k as f64 / storm.traffic_per_10k as f64;
        assert!(reduction > 0.8, "reduction={reduction:.3} (paper: 91.9%)");
        assert_eq!(tables.len(), 2);
    }
}
