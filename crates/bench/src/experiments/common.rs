//! Shared experiment presets: the two evaluation datasets and the
//! parallelism sweeps of §5.

use whale_core::{AppProfile, EngineConfig, SystemMode};
use whale_sim::SimDuration;
use whale_workloads::{DidiConfig, DidiGenerator, NasdaqConfig, NasdaqGenerator};

/// The two evaluation workloads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dataset {
    /// On-demand ride-hailing over the Didi-style generator.
    Didi,
    /// Stock exchange over the NASDAQ-style generator.
    Nasdaq,
}

impl Dataset {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Dataset::Didi => "ride-hailing (Didi)",
            Dataset::Nasdaq => "stock exchange (NASDAQ)",
        }
    }

    /// Measured serialized size of a representative broadcast tuple.
    pub fn tuple_bytes(self) -> usize {
        match self {
            Dataset::Didi => {
                let mut g = DidiGenerator::new(1, DidiConfig::default());
                g.next_order().to_tuple(1).payload_bytes()
            }
            Dataset::Nasdaq => {
                let mut g = NasdaqGenerator::new(1, NasdaqConfig::default());
                g.next_record().to_tuple(1).payload_bytes()
            }
        }
    }

    /// Downstream profile: ride-hailing's spatial join probes more state
    /// per request than order matching does per buy.
    pub fn app_profile(self) -> AppProfile {
        match self {
            Dataset::Didi => AppProfile::default(),
            Dataset::Nasdaq => AppProfile {
                fixed: SimDuration::from_micros(100),
                scan_total: SimDuration::from_millis(43),
                candidates_per_tuple: 6.0,
                agg_cost: SimDuration::from_micros(3),
            },
        }
    }

    /// RNG seed namespace so the two datasets never share streams.
    pub fn seed(self) -> u64 {
        match self {
            Dataset::Didi => 0xD1D1,
            Dataset::Nasdaq => 0x57CC,
        }
    }
}

/// The parallelism sweep used throughout §5.2 (120–480 instances).
pub const PARALLELISM_SWEEP: [u32; 4] = [120, 240, 360, 480];

/// An [`EngineConfig`] for one dataset/mode/parallelism point.
pub fn config(dataset: Dataset, mode: SystemMode, parallelism: u32, tuples: u64) -> EngineConfig {
    let mut cfg = EngineConfig::paper(mode, parallelism, tuples);
    cfg.tuple_bytes = dataset.tuple_bytes();
    cfg.app = dataset.app_profile();
    cfg.seed = dataset.seed();
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_sizes_are_realistic() {
        let didi = Dataset::Didi.tuple_bytes();
        let nasdaq = Dataset::Nasdaq.tuple_bytes();
        assert!((30..150).contains(&didi), "didi={didi}");
        assert!((30..150).contains(&nasdaq), "nasdaq={nasdaq}");
    }

    #[test]
    fn configs_differ_by_dataset() {
        let a = config(Dataset::Didi, SystemMode::WhaleFull, 480, 10);
        let b = config(Dataset::Nasdaq, SystemMode::WhaleFull, 480, 10);
        assert_ne!(a.seed, b.seed);
        assert_ne!(
            a.app.scan_total, b.app.scan_total,
            "profiles must be distinguishable"
        );
    }
}
