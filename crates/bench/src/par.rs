//! Parallel sweep execution — re-exported from `whale_core::sweep` so the
//! harness and library users share one implementation.

pub use whale_core::sweep::{par_map, par_map_with};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = par_map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_fallback() {
        let out = par_map_with(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = par_map_with(vec![5], 16, |x| x * x);
        assert_eq!(out, vec![25]);
    }

    #[test]
    fn unbalanced_work_still_ordered() {
        // Items with wildly different costs must still come back in order.
        let out = par_map_with((0..32).collect(), 4, |x: u64| {
            let spins = if x.is_multiple_of(7) { 200_000 } else { 10 };
            let mut acc = x;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        for (i, &(x, _)) in out.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }
}
