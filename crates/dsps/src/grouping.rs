//! Runtime grouping execution: mapping an emitted tuple to destination
//! task ids.
//!
//! The three strategies of §1: *shuffle grouping* (load-balance, one
//! destination), *key/fields grouping* (hash of a key field, one
//! destination), and *all grouping* (one-to-many: every downstream task) —
//! plus direct addressing.

use crate::task::TaskId;
use crate::topology::Grouping;
use crate::tuple::{Tuple, Value};

/// A stateful executor of one grouping over a fixed destination task list.
#[derive(Clone, Debug)]
pub struct GroupingExec {
    grouping: Grouping,
    targets: Vec<TaskId>,
    rr_next: usize,
}

impl GroupingExec {
    /// Create for a grouping and the downstream component's task ids.
    pub fn new(grouping: Grouping, targets: Vec<TaskId>) -> Self {
        assert!(!targets.is_empty(), "grouping needs at least one target");
        GroupingExec {
            grouping,
            targets,
            rr_next: 0,
        }
    }

    /// The destination task list.
    pub fn targets(&self) -> &[TaskId] {
        &self.targets
    }

    /// The grouping strategy.
    pub fn grouping(&self) -> &Grouping {
        &self.grouping
    }

    /// Destinations for one tuple. For `Direct`, pass the chosen task in
    /// `direct`; it must be one of the targets.
    pub fn route(&mut self, tuple: &Tuple, direct: Option<TaskId>) -> Vec<TaskId> {
        match &self.grouping {
            Grouping::Shuffle => {
                // Storm's shuffle is round-robin over the target list.
                let t = self.targets[self.rr_next % self.targets.len()];
                self.rr_next = (self.rr_next + 1) % self.targets.len();
                vec![t]
            }
            Grouping::Fields(idx) => {
                let key = tuple
                    .get(*idx)
                    .unwrap_or_else(|| panic!("tuple lacks key field {idx}"));
                let h = hash_value(key);
                vec![self.targets[(h % self.targets.len() as u64) as usize]]
            }
            Grouping::All => self.targets.clone(),
            Grouping::Direct => {
                let t = direct.expect("direct grouping requires an explicit destination");
                assert!(
                    self.targets.contains(&t),
                    "direct destination {t} is not a subscriber"
                );
                vec![t]
            }
        }
    }
}

/// Stable FNV-1a hash of a value, used by fields grouping so the same key
/// always lands on the same task across runs and platforms.
pub fn hash_value(v: &Value) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    let mut feed = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    match v {
        Value::I64(x) => feed(&x.to_le_bytes()),
        Value::F64(x) => feed(&x.to_bits().to_le_bytes()),
        Value::Str(s) => feed(s.as_bytes()),
        Value::Bytes(b) => feed(b),
        Value::Bool(b) => feed(&[*b as u8]),
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets(n: u32) -> Vec<TaskId> {
        (0..n).map(TaskId).collect()
    }

    fn key_tuple(k: &str) -> Tuple {
        Tuple::new(vec![Value::str(k)])
    }

    #[test]
    fn shuffle_round_robins() {
        let mut g = GroupingExec::new(Grouping::Shuffle, targets(3));
        let t = key_tuple("x");
        let seq: Vec<TaskId> = (0..6).flat_map(|_| g.route(&t, None)).collect();
        assert_eq!(
            seq,
            vec![
                TaskId(0),
                TaskId(1),
                TaskId(2),
                TaskId(0),
                TaskId(1),
                TaskId(2)
            ]
        );
    }

    #[test]
    fn fields_grouping_is_sticky() {
        let mut g = GroupingExec::new(Grouping::Fields(0), targets(8));
        let a1 = g.route(&key_tuple("driver-1"), None);
        let a2 = g.route(&key_tuple("driver-1"), None);
        assert_eq!(a1, a2, "same key must route to the same task");
        assert_eq!(a1.len(), 1);
    }

    #[test]
    fn fields_grouping_spreads_keys() {
        let mut g = GroupingExec::new(Grouping::Fields(0), targets(16));
        let mut seen = std::collections::HashSet::new();
        for i in 0..200 {
            let dst = g.route(&key_tuple(&format!("key-{i}")), None)[0];
            seen.insert(dst);
        }
        assert!(
            seen.len() >= 12,
            "200 keys over 16 tasks should hit most tasks"
        );
    }

    #[test]
    fn all_grouping_hits_everyone() {
        let mut g = GroupingExec::new(Grouping::All, targets(5));
        let dsts = g.route(&key_tuple("x"), None);
        assert_eq!(dsts, targets(5));
    }

    #[test]
    fn direct_grouping_uses_choice() {
        let mut g = GroupingExec::new(Grouping::Direct, targets(4));
        let dsts = g.route(&key_tuple("x"), Some(TaskId(2)));
        assert_eq!(dsts, vec![TaskId(2)]);
    }

    #[test]
    #[should_panic(expected = "not a subscriber")]
    fn direct_to_non_subscriber_panics() {
        let mut g = GroupingExec::new(Grouping::Direct, targets(2));
        g.route(&key_tuple("x"), Some(TaskId(9)));
    }

    #[test]
    #[should_panic(expected = "requires an explicit destination")]
    fn direct_without_choice_panics() {
        let mut g = GroupingExec::new(Grouping::Direct, targets(2));
        g.route(&key_tuple("x"), None);
    }

    #[test]
    fn hash_value_distinguishes_types() {
        // Same bit pattern, different types should not be forced equal.
        let a = hash_value(&Value::str("abc"));
        let b = hash_value(&Value::str("abd"));
        assert_ne!(a, b);
        assert_eq!(hash_value(&Value::I64(5)), hash_value(&Value::I64(5)));
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn empty_targets_rejected() {
        let _ = GroupingExec::new(Grouping::Shuffle, vec![]);
    }
}
