//! Runtime grouping execution: mapping an emitted tuple to destination
//! task ids.
//!
//! The three strategies of §1: *shuffle grouping* (load-balance, one
//! destination), *key/fields grouping* (hash of a key field, one
//! destination), and *all grouping* (one-to-many: every downstream task) —
//! plus direct addressing.

use crate::codec::{LazyTuple, ValueView};
use crate::task::TaskId;
use crate::topology::Grouping;
use crate::tuple::{Tuple, Value};

/// Why a tuple could not be routed. Routing errors come from tuple
/// *data* (a malformed or foreign tuple), so the runtime drops the tuple
/// and counts it instead of crashing the pipeline. Misuse of the API
/// itself (`Direct` without a destination) still panics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RouteError {
    /// The tuple lacks the field a fields grouping hashes.
    MissingKeyField(usize),
    /// The key field exists but its wire bytes are corrupt (a lazily
    /// validated string that failed deferred UTF-8 checking).
    CorruptKeyField(usize),
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::MissingKeyField(idx) => write!(f, "tuple lacks key field {idx}"),
            RouteError::CorruptKeyField(idx) => write!(f, "key field {idx} is corrupt on the wire"),
        }
    }
}

impl std::error::Error for RouteError {}

/// A stateful executor of one grouping over a fixed destination task list.
#[derive(Clone, Debug)]
pub struct GroupingExec {
    grouping: Grouping,
    targets: Vec<TaskId>,
    rr_next: usize,
}

impl GroupingExec {
    /// Create for a grouping and the downstream component's task ids.
    pub fn new(grouping: Grouping, targets: Vec<TaskId>) -> Self {
        Self::with_rr_seed(grouping, targets, 0)
    }

    /// Like [`GroupingExec::new`], but the shuffle round-robin cursor
    /// starts at `seed % targets.len()` instead of 0. Cloned or
    /// per-shard routers seeded differently (e.g. by source task id or
    /// shard index) spread their first emissions across the target list
    /// instead of all hitting `targets[0]` first.
    pub fn with_rr_seed(grouping: Grouping, targets: Vec<TaskId>, seed: u64) -> Self {
        assert!(!targets.is_empty(), "grouping needs at least one target");
        let rr_next = (seed % targets.len() as u64) as usize;
        GroupingExec {
            grouping,
            targets,
            rr_next,
        }
    }

    /// The destination task list.
    pub fn targets(&self) -> &[TaskId] {
        &self.targets
    }

    /// The grouping strategy.
    pub fn grouping(&self) -> &Grouping {
        &self.grouping
    }

    /// Destinations for one tuple, as a fresh vector. For `Direct`, pass
    /// the chosen task in `direct`; it must be one of the targets.
    pub fn route(&mut self, tuple: &Tuple, direct: Option<TaskId>) -> Result<Vec<TaskId>, RouteError> {
        let mut out = Vec::new();
        self.route_into(tuple, direct, &mut out)?;
        Ok(out)
    }

    /// Destinations for one tuple, appended into a caller-owned buffer
    /// (cleared first). The hot path reuses one buffer per pipeline, so
    /// steady-state routing allocates nothing — `All` in particular
    /// copies into the scratch instead of cloning the target list.
    pub fn route_into(
        &mut self,
        tuple: &Tuple,
        direct: Option<TaskId>,
        out: &mut Vec<TaskId>,
    ) -> Result<(), RouteError> {
        self.route_keyed_into(
            |idx| {
                tuple
                    .get(idx)
                    .map(hash_value)
                    .ok_or(RouteError::MissingKeyField(idx))
            },
            direct,
            out,
        )
    }

    /// Destinations for one lazily-decoded tuple. Fields grouping hashes
    /// the key straight off the wire view — no materialization, no
    /// allocation ([`hash_value_view`] equals [`hash_value`] on the
    /// owned value by construction).
    pub fn route_lazy_into(
        &mut self,
        tuple: &LazyTuple,
        direct: Option<TaskId>,
        out: &mut Vec<TaskId>,
    ) -> Result<(), RouteError> {
        self.route_keyed_into(
            |idx| match tuple.field(idx) {
                None => Err(RouteError::MissingKeyField(idx)),
                Some(Err(_)) => Err(RouteError::CorruptKeyField(idx)),
                Some(Ok(v)) => Ok(hash_value_view(&v)),
            },
            direct,
            out,
        )
    }

    /// The shared routing core: every strategy except `Fields` ignores
    /// the tuple, so the key hash is abstracted behind a closure and the
    /// owned and view paths cannot drift apart.
    fn route_keyed_into(
        &mut self,
        key_hash: impl FnOnce(usize) -> Result<u64, RouteError>,
        direct: Option<TaskId>,
        out: &mut Vec<TaskId>,
    ) -> Result<(), RouteError> {
        out.clear();
        match &self.grouping {
            Grouping::Shuffle => {
                // Storm's shuffle is round-robin over the target list.
                let t = self.targets[self.rr_next % self.targets.len()];
                self.rr_next = (self.rr_next + 1) % self.targets.len();
                out.push(t);
            }
            Grouping::Fields(idx) => {
                let h = key_hash(*idx)?;
                out.push(self.targets[(h % self.targets.len() as u64) as usize]);
            }
            Grouping::All => out.extend_from_slice(&self.targets),
            Grouping::Direct => {
                let t = direct.expect("direct grouping requires an explicit destination");
                assert!(
                    self.targets.contains(&t),
                    "direct destination {t} is not a subscriber"
                );
                out.push(t);
            }
        }
        Ok(())
    }
}

/// Stable FNV-1a hash of a value, used by fields grouping so the same key
/// always lands on the same task across runs and platforms.
///
/// Float keys hash by *value*, not bit pattern: `-0.0` is normalized to
/// `0.0` (they compare equal, so they must route together), and every
/// NaN collapses to the one canonical quiet NaN — NaN keys never compare
/// equal, but a stable single bucket beats scattering payload-dependent
/// NaN bit patterns across tasks.
pub fn hash_value(v: &Value) -> u64 {
    // One implementation serves both the owned and the borrowed path, so
    // a key routes identically whether it was materialized or read in
    // place off the wire.
    hash_value_view(&ValueView::from(v))
}

/// [`hash_value`] over a borrowed wire view — same FNV-1a stream, same
/// float normalization, no allocation.
pub fn hash_value_view(v: &ValueView<'_>) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    let mut feed = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    match v {
        ValueView::I64(x) => feed(&x.to_le_bytes()),
        ValueView::F64(x) => {
            let bits = if x.is_nan() {
                f64::NAN.to_bits()
            } else if *x == 0.0 {
                0.0f64.to_bits()
            } else {
                x.to_bits()
            };
            feed(&bits.to_le_bytes());
        }
        ValueView::Str(s) => feed(s.as_bytes()),
        ValueView::Bytes(b) => feed(b),
        ValueView::Bool(b) => feed(&[*b as u8]),
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets(n: u32) -> Vec<TaskId> {
        (0..n).map(TaskId).collect()
    }

    fn key_tuple(k: &str) -> Tuple {
        Tuple::new(vec![Value::str(k)])
    }

    #[test]
    fn shuffle_round_robins() {
        let mut g = GroupingExec::new(Grouping::Shuffle, targets(3));
        let t = key_tuple("x");
        let seq: Vec<TaskId> = (0..6).flat_map(|_| g.route(&t, None).unwrap()).collect();
        assert_eq!(
            seq,
            vec![
                TaskId(0),
                TaskId(1),
                TaskId(2),
                TaskId(0),
                TaskId(1),
                TaskId(2)
            ]
        );
    }

    #[test]
    fn seeded_shuffle_offsets_the_cursor() {
        let mut g = GroupingExec::with_rr_seed(Grouping::Shuffle, targets(3), 5);
        let t = key_tuple("x");
        let seq: Vec<TaskId> = (0..3).flat_map(|_| g.route(&t, None).unwrap()).collect();
        assert_eq!(seq, vec![TaskId(2), TaskId(0), TaskId(1)]);
    }

    #[test]
    fn seeded_clones_spread_first_emissions_near_uniformly() {
        // N cloned routers with distinct seeds: their combined first
        // emissions should be near-uniform, not all on targets[0].
        let n_targets = 4u32;
        let clones = 64u64;
        let mut hits = vec![0u32; n_targets as usize];
        let t = key_tuple("x");
        for seed in 0..clones {
            let mut g =
                GroupingExec::with_rr_seed(Grouping::Shuffle, targets(n_targets), seed);
            let dst = g.route(&t, None).unwrap()[0];
            hits[dst.0 as usize] += 1;
        }
        let expected = clones as u32 / n_targets;
        for (i, &h) in hits.iter().enumerate() {
            assert_eq!(h, expected, "target {i} got {h}, want {expected}");
        }
    }

    #[test]
    fn fields_grouping_is_sticky() {
        let mut g = GroupingExec::new(Grouping::Fields(0), targets(8));
        let a1 = g.route(&key_tuple("driver-1"), None).unwrap();
        let a2 = g.route(&key_tuple("driver-1"), None).unwrap();
        assert_eq!(a1, a2, "same key must route to the same task");
        assert_eq!(a1.len(), 1);
    }

    #[test]
    fn fields_grouping_spreads_keys() {
        let mut g = GroupingExec::new(Grouping::Fields(0), targets(16));
        let mut seen = std::collections::HashSet::new();
        for i in 0..200 {
            let dst = g.route(&key_tuple(&format!("key-{i}")), None).unwrap()[0];
            seen.insert(dst);
        }
        assert!(
            seen.len() >= 12,
            "200 keys over 16 tasks should hit most tasks"
        );
    }

    #[test]
    fn missing_key_field_is_an_error_not_a_panic() {
        let mut g = GroupingExec::new(Grouping::Fields(3), targets(4));
        let err = g.route(&key_tuple("only-one-field"), None).unwrap_err();
        assert_eq!(err, RouteError::MissingKeyField(3));
    }

    #[test]
    fn negative_zero_routes_with_positive_zero() {
        // -0.0 == 0.0, so an f64 key grouping must send both to the same
        // task; hashing raw bits would split them.
        assert_eq!(hash_value(&Value::F64(0.0)), hash_value(&Value::F64(-0.0)));
        let mut g = GroupingExec::new(Grouping::Fields(0), targets(16));
        let pos = g.route(&Tuple::new(vec![Value::F64(0.0)]), None).unwrap();
        let neg = g.route(&Tuple::new(vec![Value::F64(-0.0)]), None).unwrap();
        assert_eq!(pos, neg);
    }

    #[test]
    fn every_nan_hashes_to_one_bucket() {
        let quiet = f64::NAN;
        let weird = f64::from_bits(0x7ff8_0000_dead_beef);
        assert!(weird.is_nan());
        assert_eq!(hash_value(&Value::F64(quiet)), hash_value(&Value::F64(weird)));
    }

    #[test]
    fn all_grouping_hits_everyone() {
        let mut g = GroupingExec::new(Grouping::All, targets(5));
        let dsts = g.route(&key_tuple("x"), None).unwrap();
        assert_eq!(dsts, targets(5));
    }

    #[test]
    fn route_into_reuses_the_buffer() {
        let mut g = GroupingExec::new(Grouping::All, targets(5));
        let mut out = Vec::with_capacity(8);
        g.route_into(&key_tuple("x"), None, &mut out).unwrap();
        assert_eq!(out, targets(5));
        let cap = out.capacity();
        g.route_into(&key_tuple("y"), None, &mut out).unwrap();
        assert_eq!(out, targets(5));
        assert_eq!(out.capacity(), cap, "steady-state routing must not regrow");
    }

    #[test]
    fn direct_grouping_uses_choice() {
        let mut g = GroupingExec::new(Grouping::Direct, targets(4));
        let dsts = g.route(&key_tuple("x"), Some(TaskId(2))).unwrap();
        assert_eq!(dsts, vec![TaskId(2)]);
    }

    #[test]
    #[should_panic(expected = "not a subscriber")]
    fn direct_to_non_subscriber_panics() {
        let mut g = GroupingExec::new(Grouping::Direct, targets(2));
        let _ = g.route(&key_tuple("x"), Some(TaskId(9)));
    }

    #[test]
    #[should_panic(expected = "requires an explicit destination")]
    fn direct_without_choice_panics() {
        let mut g = GroupingExec::new(Grouping::Direct, targets(2));
        let _ = g.route(&key_tuple("x"), None);
    }

    #[test]
    fn hash_value_distinguishes_types() {
        // Same bit pattern, different types should not be forced equal.
        let a = hash_value(&Value::str("abc"));
        let b = hash_value(&Value::str("abd"));
        assert_ne!(a, b);
        assert_eq!(hash_value(&Value::I64(5)), hash_value(&Value::I64(5)));
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn empty_targets_rejected() {
        let _ = GroupingExec::new(Grouping::Shuffle, vec![]);
    }

    fn lazy_of(t: &Tuple) -> LazyTuple {
        let bytes = crate::codec::encode_tuple(t);
        let buf: std::sync::Arc<[u8]> = std::sync::Arc::from(&bytes[..]);
        LazyTuple::from_wire(buf, 0).unwrap()
    }

    #[test]
    fn lazy_routing_matches_owned_routing() {
        for key in ["driver-1", "driver-2", "k", ""] {
            let t = key_tuple(key);
            let lazy = lazy_of(&t);
            let mut owned = GroupingExec::new(Grouping::Fields(0), targets(8));
            let mut viewed = GroupingExec::new(Grouping::Fields(0), targets(8));
            let mut a = Vec::new();
            let mut b = Vec::new();
            owned.route_into(&t, None, &mut a).unwrap();
            viewed.route_lazy_into(&lazy, None, &mut b).unwrap();
            assert_eq!(a, b, "key {key:?} must route identically");
            assert!(!lazy.is_materialized(), "routing must stay lazy");
        }
    }

    #[test]
    fn hash_view_equals_hash_owned_for_every_type() {
        let values = [
            Value::I64(-3),
            Value::F64(2.5),
            Value::F64(-0.0),
            Value::F64(f64::NAN),
            Value::str("abc"),
            Value::Bytes(std::sync::Arc::from(&[1u8, 2][..])),
            Value::Bool(true),
        ];
        for v in &values {
            assert_eq!(hash_value(v), hash_value_view(&ValueView::from(v)), "{v:?}");
        }
    }

    #[test]
    fn lazy_missing_and_corrupt_key_fields_are_errors() {
        let mut g = GroupingExec::new(Grouping::Fields(3), targets(4));
        let lazy = lazy_of(&key_tuple("x"));
        let mut out = Vec::new();
        assert_eq!(
            g.route_lazy_into(&lazy, None, &mut out),
            Err(RouteError::MissingKeyField(3))
        );
        // A key whose string bytes fail deferred UTF-8 validation.
        use bytes::{BufMut, BytesMut};
        let mut raw = BytesMut::new();
        raw.put_u64_le(1);
        raw.put_u16_le(1);
        raw.put_u8(3); // TAG_STR
        raw.put_u32_le(2);
        raw.put_slice(&[0xFF, 0xFE]);
        let buf: std::sync::Arc<[u8]> = std::sync::Arc::from(&raw.freeze()[..]);
        let corrupt = LazyTuple::from_wire(buf, 0).unwrap();
        let mut g0 = GroupingExec::new(Grouping::Fields(0), targets(4));
        assert_eq!(
            g0.route_lazy_into(&corrupt, None, &mut out),
            Err(RouteError::CorruptKeyField(0))
        );
    }
}
