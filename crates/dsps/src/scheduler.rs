//! Physical placement: tasks onto workers, workers onto machines.
//!
//! Reproduces Storm's default even scheduler: each machine runs one worker
//! process (as in the paper's 30-node setup) and tasks are dealt
//! round-robin across workers, so a component with parallelism 480 on 30
//! machines puts 16 instances in every worker — the co-location that makes
//! instance-oriented one-to-many partitioning so wasteful.

use crate::task::TaskId;
use crate::topology::Topology;
use std::collections::BTreeMap;
use std::fmt;
use whale_net::{ClusterSpec, MachineId};

/// Identifier of a worker process.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WorkerId(pub u32);

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker{}", self.0)
    }
}

/// An immutable placement of a topology on a cluster.
#[derive(Clone, Debug)]
pub struct Placement {
    /// task id (dense index) → worker
    task_worker: Vec<WorkerId>,
    /// worker (dense index) → machine
    worker_machine: Vec<MachineId>,
    /// worker (dense index) → tasks hosted there, ascending
    worker_tasks: Vec<Vec<TaskId>>,
}

impl Placement {
    /// Place `topology` on `cluster` with one worker per machine and tasks
    /// dealt round-robin per component (Storm's even scheduler).
    pub fn even(topology: &Topology, cluster: &ClusterSpec) -> Self {
        Self::even_with_workers(topology, cluster, 1)
    }

    /// Same, with `workers_per_machine` worker slots on every machine.
    pub fn even_with_workers(
        topology: &Topology,
        cluster: &ClusterSpec,
        workers_per_machine: u32,
    ) -> Self {
        assert!(workers_per_machine > 0);
        let n_workers = cluster.machines() * workers_per_machine;
        let worker_machine: Vec<MachineId> = (0..n_workers)
            .map(|w| MachineId(w / workers_per_machine))
            .collect();
        let mut task_worker = vec![WorkerId(0); topology.total_tasks() as usize];
        let mut worker_tasks: Vec<Vec<TaskId>> = vec![Vec::new(); n_workers as usize];
        // Deal each component's tasks round-robin, starting each component
        // at worker 0 (Storm restarts per component).
        for comp in topology.components() {
            for (i, task) in topology.tasks().tasks_of(comp.id).into_iter().enumerate() {
                let w = WorkerId((i as u32) % n_workers);
                task_worker[task.0 as usize] = w;
                worker_tasks[w.0 as usize].push(task);
            }
        }
        for tasks in &mut worker_tasks {
            tasks.sort_unstable();
        }
        Placement {
            task_worker,
            worker_machine,
            worker_tasks,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> u32 {
        self.worker_machine.len() as u32
    }

    /// The worker hosting a task.
    pub fn worker_of(&self, task: TaskId) -> WorkerId {
        self.task_worker[task.0 as usize]
    }

    /// The machine running a worker.
    pub fn machine_of_worker(&self, worker: WorkerId) -> MachineId {
        self.worker_machine[worker.0 as usize]
    }

    /// The machine hosting a task.
    pub fn machine_of(&self, task: TaskId) -> MachineId {
        self.machine_of_worker(self.worker_of(task))
    }

    /// Tasks hosted on a worker, ascending.
    pub fn tasks_on(&self, worker: WorkerId) -> &[TaskId] {
        &self.worker_tasks[worker.0 as usize]
    }

    /// Group destination tasks by hosting worker — the key operation of
    /// worker-oriented communication: one `WorkerMessage` per map entry.
    pub fn group_by_worker(&self, dsts: &[TaskId]) -> BTreeMap<WorkerId, Vec<TaskId>> {
        let mut map: BTreeMap<WorkerId, Vec<TaskId>> = BTreeMap::new();
        for &t in dsts {
            map.entry(self.worker_of(t)).or_default().push(t);
        }
        map
    }

    /// True if two tasks share a worker process.
    pub fn colocated(&self, a: TaskId, b: TaskId) -> bool {
        self.worker_of(a) == self.worker_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Grouping, TopologyBuilder};
    use crate::tuple::Schema;

    fn topo(spout_p: u32, bolt_p: u32) -> Topology {
        let mut b = TopologyBuilder::new();
        b.spout("src", spout_p, Schema::new(vec!["k"]))
            .bolt("match", bolt_p, Schema::new(vec!["k"]))
            .connect("src", "match", Grouping::All);
        b.build().unwrap()
    }

    #[test]
    fn paper_shape_sixteen_per_worker() {
        let t = topo(1, 480);
        let c = ClusterSpec::paper_testbed();
        let p = Placement::even(&t, &c);
        assert_eq!(p.workers(), 30);
        // The 480 matching tasks spread 16 per worker; worker 0 also hosts
        // the spout task.
        let match_tasks = t.tasks_of("match");
        let by_worker = p.group_by_worker(&match_tasks);
        assert_eq!(by_worker.len(), 30);
        for tasks in by_worker.values() {
            assert_eq!(tasks.len(), 16);
        }
    }

    #[test]
    fn round_robin_deal() {
        let t = topo(1, 5);
        let c = ClusterSpec::new(3, 1, 4);
        let p = Placement::even(&t, &c);
        // Spout task 0 → worker 0. Bolt tasks 1..=5 dealt 0,1,2,0,1.
        assert_eq!(p.worker_of(TaskId(0)), WorkerId(0));
        assert_eq!(p.worker_of(TaskId(1)), WorkerId(0));
        assert_eq!(p.worker_of(TaskId(2)), WorkerId(1));
        assert_eq!(p.worker_of(TaskId(3)), WorkerId(2));
        assert_eq!(p.worker_of(TaskId(4)), WorkerId(0));
        assert_eq!(p.worker_of(TaskId(5)), WorkerId(1));
    }

    #[test]
    fn worker_machine_mapping() {
        let t = topo(1, 4);
        let c = ClusterSpec::new(2, 1, 4);
        let p = Placement::even_with_workers(&t, &c, 2);
        assert_eq!(p.workers(), 4);
        assert_eq!(p.machine_of_worker(WorkerId(0)), MachineId(0));
        assert_eq!(p.machine_of_worker(WorkerId(1)), MachineId(0));
        assert_eq!(p.machine_of_worker(WorkerId(2)), MachineId(1));
        assert_eq!(p.machine_of_worker(WorkerId(3)), MachineId(1));
    }

    #[test]
    fn tasks_on_is_consistent_with_worker_of() {
        let t = topo(2, 10);
        let c = ClusterSpec::new(4, 1, 4);
        let p = Placement::even(&t, &c);
        for w in 0..p.workers() {
            for &task in p.tasks_on(WorkerId(w)) {
                assert_eq!(p.worker_of(task), WorkerId(w));
            }
        }
        let total: usize = (0..p.workers())
            .map(|w| p.tasks_on(WorkerId(w)).len())
            .sum();
        assert_eq!(total, t.total_tasks() as usize);
    }

    #[test]
    fn group_by_worker_covers_all_dsts() {
        let t = topo(1, 12);
        let c = ClusterSpec::new(5, 1, 4);
        let p = Placement::even(&t, &c);
        let dsts = t.tasks_of("match");
        let grouped = p.group_by_worker(&dsts);
        let n: usize = grouped.values().map(Vec::len).sum();
        assert_eq!(n, 12);
        for (w, tasks) in &grouped {
            for &task in tasks {
                assert_eq!(p.worker_of(task), *w);
            }
        }
    }

    #[test]
    fn colocation() {
        let t = topo(1, 4);
        let c = ClusterSpec::new(2, 1, 4);
        let p = Placement::even(&t, &c);
        // Bolt tasks 1,2,3,4 → workers 0,1,0,1.
        assert!(p.colocated(TaskId(1), TaskId(3)));
        assert!(!p.colocated(TaskId(1), TaskId(2)));
    }
}
